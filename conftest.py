"""Root pytest configuration: the slow-tier switch.

Tier 1 is the default: ``python -m pytest -x -q`` runs every test not
marked ``@pytest.mark.slow`` and must stay fast enough to run on every
commit. Tests marked ``slow`` (full-scale perf trajectories, large
workloads) are deselected unless ``--runslow`` is passed; CI runs them
in a dedicated job rather than on the hot path.

This lives at the repo root (not ``tests/conftest.py``) so the option
exists for every collection root, including ``pytest benchmarks/``.
"""

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--runslow",
        action="store_true",
        default=False,
        help="also run tests marked @pytest.mark.slow (tier 2)",
    )


def pytest_collection_modifyitems(config, items):
    if config.getoption("--runslow"):
        return
    skip_slow = pytest.mark.skip(reason="slow tier: pass --runslow to run")
    for item in items:
        if "slow" in item.keywords:
            item.add_marker(skip_slow)
