"""Unit tests for the kNN classifier wrapper (accuracy preservation)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, OperandError
from repro.mining.knn import (
    FNNKNN,
    KNNClassifier,
    StandardKNN,
    StandardPIMKNN,
    labelled_dataset,
)


@pytest.fixture
def split():
    """Train/test split from one labelled mixture."""
    data, labels = labelled_dataset(600, 24, n_classes=6, spread=0.05, seed=3)
    return data[:500], labels[:500], data[500:], labels[500:]


class TestClassifier:
    def test_reasonable_accuracy(self, split):
        X, y, Q, qy = split
        clf = KNNClassifier(StandardKNN(), k=7).fit(X, y)
        report = clf.score(Q, qy)
        assert report.accuracy > 0.8
        assert report.n_queries == len(Q)

    def test_pim_accuracy_identical(self, split):
        # the paper's headline: PIM acceleration never changes accuracy
        X, y, Q, qy = split
        base = KNNClassifier(StandardKNN(), k=7).fit(X, y)
        pim = KNNClassifier(StandardPIMKNN(), k=7).fit(X, y)
        base_report = base.score(Q, qy)
        pim_report = pim.score(Q, qy)
        assert pim_report.accuracy == base_report.accuracy
        assert np.array_equal(base.predict(Q), pim.predict(Q))

    def test_pim_does_less_exact_work(self, split):
        X, y, Q, qy = split
        base = KNNClassifier(StandardKNN(), k=7).fit(X, y)
        pim = KNNClassifier(StandardPIMKNN(), k=7).fit(X, y)
        assert (
            pim.score(Q, qy).exact_computations
            < base.score(Q, qy).exact_computations
        )

    def test_bounded_search_also_identical(self, split):
        X, y, Q, qy = split
        base = KNNClassifier(StandardKNN(), k=7).fit(X, y)
        fnn = KNNClassifier(FNNKNN(dims=X.shape[1]), k=7).fit(X, y)
        assert np.array_equal(base.predict(Q), fnn.predict(Q))

    def test_predict_one(self, split):
        X, y, Q, _ = split
        clf = KNNClassifier(StandardKNN(), k=5).fit(X, y)
        assert clf.predict_one(Q[0]) in set(y.tolist())

    def test_tie_break_is_deterministic(self):
        data = np.array([[0.0, 0.0], [0.1, 0.0], [1.0, 1.0], [0.9, 1.0]])
        labels = np.array([0, 0, 1, 1])
        clf = KNNClassifier(StandardKNN(), k=4).fit(data, labels)
        # 2-2 tie: the label of the nearest neighbour wins
        assert clf.predict_one(np.array([0.05, 0.0])) == 0
        assert clf.predict_one(np.array([0.95, 1.0])) == 1

    def test_validation(self, split):
        X, y, Q, qy = split
        with pytest.raises(ConfigurationError):
            KNNClassifier(StandardKNN(), k=0)
        with pytest.raises(OperandError):
            KNNClassifier(StandardKNN(), k=3).fit(X, y[:-1])
        clf = KNNClassifier(StandardKNN(), k=3)
        with pytest.raises(OperandError):
            clf.predict_one(Q[0])
        clf.fit(X, y)
        with pytest.raises(OperandError):
            clf.score(Q, qy[:-1])


class TestLabelledDataset:
    def test_shapes_and_ranges(self):
        data, labels = labelled_dataset(100, 8, n_classes=4, seed=1)
        assert data.shape == (100, 8)
        assert labels.shape == (100,)
        assert set(labels.tolist()) <= set(range(4))
        assert data.min() >= 0.0 and data.max() <= 1.0

    def test_rejects_bad_args(self):
        with pytest.raises(ConfigurationError):
            labelled_dataset(0, 8)
