"""Unit tests for the k-means family: every variant must match Lloyd."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, OperandError
from repro.mining.kmeans import (
    DrakeKMeans,
    ElkanKMeans,
    LloydKMeans,
    PIMAssist,
    YinyangKMeans,
    initial_centers,
    make_kmeans,
)


@pytest.fixture
def data(rng):
    centers = rng.random((10, 24))
    labels = rng.integers(0, 10, size=600)
    return np.clip(
        centers[labels] + 0.05 * rng.standard_normal((600, 24)), 0, 1
    )


@pytest.fixture
def init(data):
    return initial_centers(data, 12, seed=5)


@pytest.fixture
def reference(data, init):
    return LloydKMeans(12, max_iters=10).fit(data, init.copy())


ALL_NAMES = [
    "Elkan",
    "Drake",
    "Yinyang",
    "Standard-PIM",
    "Elkan-PIM",
    "Drake-PIM",
    "Yinyang-PIM",
]


class TestInitialCenters:
    def test_deterministic(self, data):
        a = initial_centers(data, 5, seed=1)
        b = initial_centers(data, 5, seed=1)
        assert np.array_equal(a, b)

    def test_plusplus_deterministic_and_valid(self, data):
        from repro.mining.kmeans import initial_centers_plusplus

        a = initial_centers_plusplus(data, 6, seed=2)
        b = initial_centers_plusplus(data, 6, seed=2)
        assert np.array_equal(a, b)
        assert a.shape == (6, data.shape[1])
        for c in a:
            assert np.any(np.all(np.isclose(data, c), axis=1))

    def test_plusplus_spreads_better_than_uniform(self, data):
        from repro.mining.kmeans import initial_centers_plusplus

        def min_pairwise(centers):
            d2 = (
                np.einsum("ij,ij->i", centers, centers)[:, None]
                + np.einsum("ij,ij->i", centers, centers)[None, :]
                - 2 * centers @ centers.T
            )
            np.fill_diagonal(d2, np.inf)
            return d2.min()

        uniform = np.mean(
            [min_pairwise(initial_centers(data, 8, s)) for s in range(5)]
        )
        plusplus = np.mean(
            [
                min_pairwise(initial_centers_plusplus(data, 8, s))
                for s in range(5)
            ]
        )
        assert plusplus > uniform

    def test_plusplus_handles_duplicate_points(self):
        from repro.mining.kmeans import initial_centers_plusplus

        data = np.tile(np.array([[0.5, 0.5]]), (10, 1))
        centers = initial_centers_plusplus(data, 3, seed=0)
        assert centers.shape == (3, 2)

    def test_plusplus_rejects_bad_k(self, data):
        from repro.mining.kmeans import initial_centers_plusplus
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            initial_centers_plusplus(data, 0)

    def test_centers_are_data_points(self, data):
        centers = initial_centers(data, 5, seed=2)
        for c in centers:
            assert np.any(np.all(np.isclose(data, c), axis=1))

    def test_rejects_k_above_n(self, data):
        with pytest.raises(ConfigurationError):
            initial_centers(data, data.shape[0] + 1)


class TestLloyd:
    def test_converges_on_clustered_data(self, reference):
        assert reference.converged
        assert reference.n_iterations <= 10

    def test_assignment_is_nearest_center(self, data, reference):
        diff = data[:, None, :] - reference.centers[None, :, :]
        d2 = np.einsum("nkj,nkj->nk", diff, diff)
        best = d2[np.arange(len(data)), reference.assignments]
        assert np.all(best <= d2.min(axis=1) + 1e-9)

    def test_inertia_matches_assignments(self, data, reference):
        diff = data - reference.centers[reference.assignments]
        assert reference.inertia == pytest.approx(
            float(np.einsum("ij,ij->", diff, diff))
        )

    def test_counts_all_distances(self, data, init):
        result = LloydKMeans(12, max_iters=3).fit(data, init.copy())
        expected = data.shape[0] * 12 * result.n_iterations
        assert result.exact_distances == expected

    def test_rejects_wrong_center_shape(self, data):
        with pytest.raises(OperandError):
            LloydKMeans(4).fit(data, np.zeros((3, 3)))

    def test_rejects_unfit_usage(self):
        with pytest.raises(ConfigurationError):
            LloydKMeans(0)


@pytest.mark.parametrize("name", ALL_NAMES)
class TestVariantEquivalence:
    def test_same_clustering_as_lloyd(self, name, data, init, reference):
        result = make_kmeans(name, 12, max_iters=10).fit(data, init.copy())
        assert result.inertia == pytest.approx(reference.inertia, rel=1e-9)
        assert result.n_iterations == reference.n_iterations
        assert np.array_equal(result.assignments, reference.assignments)

    def test_fewer_exact_distances_than_lloyd(
        self, name, data, init, reference
    ):
        if name == "Elkan":
            pytest.skip("Elkan trades point distances for center distances")
        result = make_kmeans(name, 12, max_iters=10).fit(data, init.copy())
        assert result.exact_distances < reference.exact_distances


class TestPIMVariants:
    def test_pim_time_positive(self, data, init):
        result = make_kmeans("Standard-PIM", 12, max_iters=5).fit(
            data, init.copy()
        )
        assert result.pim_time_ns > 0

    def test_lb_bucket_charged(self, data, init):
        result = make_kmeans("Standard-PIM", 12, max_iters=5).fit(
            data, init.copy()
        )
        assert result.counters.events("LB_PIM-ED").calls > 0

    def test_shared_assist_reuses_programming(self, data, init):
        assist = PIMAssist()
        algo = make_kmeans("Standard-PIM", 12, max_iters=3, pim_assist=assist)
        algo.fit(data, init.copy())
        crossbars = assist.controller.pim.stats.crossbars_used
        algo2 = make_kmeans(
            "Elkan-PIM", 12, max_iters=3, pim_assist=assist
        )
        algo2.fit(data, init.copy())
        assert assist.controller.pim.stats.crossbars_used == crossbars

    def test_assist_requires_preparation(self, data):
        assist = PIMAssist()
        with pytest.raises(OperandError):
            assist.begin_iteration(np.zeros((2, data.shape[1])))


class TestBoundMaintenanceCosts:
    def test_elkan_charges_bound_update(self, data, init):
        result = ElkanKMeans(12, max_iters=5).fit(data, init.copy())
        assert result.counters.events("bound_update").flops > 0

    def test_elkan_computes_center_separations(self, data, init):
        lloyd = LloydKMeans(12, max_iters=5).fit(data, init.copy())
        elkan = ElkanKMeans(12, max_iters=5).fit(data, init.copy())
        # Elkan's ED bucket includes k*(k-1)/2 center distances/iteration
        assert elkan.counters.events("ED").calls < lloyd.counters.events(
            "ED"
        ).calls

    def test_drake_tracks_fewer_bounds_than_elkan(self):
        assert DrakeKMeans(64).n_tracked < 64

    def test_yinyang_group_count(self):
        assert YinyangKMeans(64).n_groups == 6
        assert YinyangKMeans(5).n_groups == 1


class TestFactory:
    def test_base_names(self):
        assert make_kmeans("Standard", 4).name == "Standard"
        assert make_kmeans("Standard-PIM", 4).name == "Standard-PIM"

    def test_unknown_name(self):
        with pytest.raises(ConfigurationError):
            make_kmeans("MiniBatch", 4)

    def test_iteration_exact_distance_trace(self, data, init):
        result = make_kmeans("Standard", 12, max_iters=4).fit(
            data, init.copy()
        )
        assert len(result.iteration_exact_distances) == result.n_iterations
        assert sum(result.iteration_exact_distances) == result.exact_distances


class TestIterationDynamics:
    def test_per_iteration_counters_sum_to_total(self, data, init):
        result = make_kmeans("Elkan", 12, max_iters=6).fit(
            data, init.copy()
        )
        assert len(result.iteration_counters) == result.n_iterations
        per_iter_calls = sum(
            c.events("ED").calls for c in result.iteration_counters
        )
        assert per_iter_calls == result.counters.events("ED").calls

    def test_bound_algorithms_get_cheaper_as_they_converge(self, data, init):
        # the whole point of Elkan: later iterations skip most distances
        result = make_kmeans("Elkan", 12, max_iters=8).fit(
            data, init.copy()
        )
        trace = result.iteration_exact_distances
        assert len(trace) >= 3
        assert trace[-1] < trace[0]

    @pytest.mark.parametrize(
        "name", ["Standard", "Elkan", "Drake", "Yinyang", "Drake-PIM"]
    )
    def test_k_equals_one(self, name, data):
        # degenerate but legal: a single cluster; every variant must
        # agree with the trivial answer (all points, center = mean)
        result = make_kmeans(name, 1, max_iters=3).fit(data, seed=1)
        assert np.all(result.assignments == 0)
        diff = data - data.mean(axis=0)
        assert result.inertia == pytest.approx(
            float(np.einsum("ij,ij->", diff, diff)), rel=1e-9
        )

    def test_lloyd_cost_is_flat(self, data, init):
        result = make_kmeans("Standard", 12, max_iters=6).fit(
            data, init.copy()
        )
        trace = result.iteration_exact_distances
        assert len(set(trace)) == 1  # N*k every iteration
