"""Unit tests for Hamming-distance kNN (Fig. 14 algorithms)."""

import numpy as np
import pytest

from repro.data.lsh import make_binary_codes
from repro.errors import OperandError
from repro.hardware.controller import PIMController
from repro.mining.knn.hamming import (
    HammingKNN,
    PIMHammingKNN,
    binary_pim_platform,
)


@pytest.fixture
def codes(rng):
    return rng.integers(0, 2, size=(300, 128)).astype(np.int8)


@pytest.fixture
def query_code(rng):
    return rng.integers(0, 2, size=128).astype(np.int8)


class TestHammingKNN:
    def test_exact_distances(self, codes, query_code):
        result = HammingKNN().fit(codes).query(query_code, 10)
        from repro.similarity.measures import hamming_batch

        ref = np.sort(hamming_batch(codes, query_code))[:10]
        assert np.allclose(np.sort(result.scores), ref)

    def test_transfer_counts_packed_bits(self, codes, query_code):
        result = HammingKNN().fit(codes).query(query_code, 5)
        events = result.counters.events("hamming")
        # d bits = d/8 bytes per object
        assert events.bytes_from_memory == pytest.approx(
            codes.shape[0] * codes.shape[1] / 8.0
        )


class TestPIMHammingKNN:
    def test_identical_to_cpu_scan(self, codes, query_code):
        ref = HammingKNN().fit(codes).query(query_code, 10)
        result = PIMHammingKNN().fit(codes).query(query_code, 10)
        assert np.allclose(np.sort(result.scores), np.sort(ref.scores))

    def test_no_exact_cpu_computations(self, codes, query_code):
        result = PIMHammingKNN().fit(codes).query(query_code, 10)
        assert result.exact_computations == 0
        assert result.pim_time_ns > 0

    def test_transfer_is_64_bits_per_object(self, codes, query_code):
        result = PIMHammingKNN().fit(codes).query(query_code, 5)
        events = result.counters.events("HD_PIM")
        assert events.bytes_from_memory == pytest.approx(
            codes.shape[0] * 8.0
        )

    def test_requires_binary_platform(self):
        with pytest.raises(OperandError, match="1-bit"):
            PIMHammingKNN(controller=PIMController())

    def test_binary_platform_defaults(self):
        platform = binary_pim_platform()
        assert platform.pim.operand_bits == 1
        assert platform.pim.accumulator_bits == 32


class TestLSHWorkload:
    @pytest.mark.parametrize("bits", [128, 256])
    def test_lsh_codes_work_end_to_end(self, bits):
        codes = make_binary_codes(200, bits, input_dims=64, seed=3)
        q = codes[0]
        cpu = HammingKNN().fit(codes).query(q, 5)
        pim = PIMHammingKNN().fit(codes).query(q, 5)
        assert cpu.scores[0] == 0.0  # the query is in the dataset
        assert np.allclose(np.sort(cpu.scores), np.sort(pim.scores))
