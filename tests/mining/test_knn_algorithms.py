"""Unit tests for the kNN baselines and their exactness contracts."""

import numpy as np
import pytest

from repro.cost.counters import OTHER
from repro.errors import ConfigurationError, OperandError, PlanError
from repro.mining.knn import (
    FNNKNN,
    FilteredKNN,
    OSTKNN,
    SMKNN,
    StandardKNN,
    make_baseline,
)
from repro.bounds.ed import FNNBound, PartitionUpperBound
from repro.similarity.measures import euclidean_batch


@pytest.fixture
def data(clustered_data):
    return clustered_data


@pytest.fixture
def query(query_vector):
    return query_vector


def reference_knn(data, q, k):
    """Ground truth via a plain sort."""
    ed = euclidean_batch(data, q)
    order = np.argsort(ed, kind="stable")[:k]
    return order, ed[order]


class TestStandardKNN:
    def test_matches_reference(self, data, query):
        result = StandardKNN().fit(data).query(query, 10)
        _, ref_scores = reference_knn(data, query, 10)
        assert np.allclose(np.sort(result.scores), np.sort(ref_scores))

    def test_scores_sorted_best_first(self, data, query):
        result = StandardKNN().fit(data).query(query, 10)
        assert np.all(np.diff(result.scores) >= -1e-12)

    def test_counts_every_exact_computation(self, data, query):
        result = StandardKNN().fit(data).query(query, 5)
        assert result.exact_computations == data.shape[0]
        assert result.counters.events("euclidean").calls == data.shape[0]

    def test_k_larger_than_dataset(self, rng):
        data = rng.random((5, 4))
        result = StandardKNN().fit(data).query(rng.random(4), 10)
        assert len(result.indices) == 5

    def test_cosine_direction(self, data, query):
        result = StandardKNN(measure="cosine").fit(data).query(query, 5)
        # similarities: best first means descending
        assert np.all(np.diff(result.scores) <= 1e-12)

    def test_rejects_unknown_measure(self):
        with pytest.raises(ConfigurationError):
            StandardKNN(measure="manhattan")

    def test_rejects_unfitted_query(self, query):
        with pytest.raises(OperandError):
            StandardKNN().query(query, 3)

    def test_rejects_wrong_query_shape(self, data):
        with pytest.raises(OperandError):
            StandardKNN().fit(data).query(np.zeros(3), 3)


@pytest.mark.parametrize(
    "factory",
    [
        lambda d: OSTKNN(dims=d),
        lambda d: SMKNN(dims=d),
        lambda d: FNNKNN(dims=d),
    ],
    ids=["OST", "SM", "FNN"],
)
class TestBoundedBaselinesExactness:
    def test_same_results_as_standard(self, factory, data, query):
        ref = StandardKNN().fit(data).query(query, 10)
        result = factory(data.shape[1]).fit(data).query(query, 10)
        assert np.allclose(np.sort(result.scores), np.sort(ref.scores))

    def test_multiple_queries(self, factory, data, rng):
        algo = factory(data.shape[1]).fit(data)
        standard = StandardKNN().fit(data)
        for _ in range(3):
            q = np.clip(
                data[rng.integers(0, len(data))]
                + 0.03 * rng.standard_normal(data.shape[1]),
                0,
                1,
            )
            assert np.allclose(
                np.sort(algo.query(q, 7).scores),
                np.sort(standard.query(q, 7).scores),
            )

    def test_prunes_on_clustered_data(self, factory, data, query):
        result = factory(data.shape[1]).fit(data).query(query, 10)
        assert result.exact_computations < data.shape[0]


class TestFilteredKNN:
    def test_requires_bounds(self):
        with pytest.raises(PlanError):
            FilteredKNN(bounds=[], measure="euclidean")

    def test_rejects_direction_mismatch(self):
        with pytest.raises(PlanError, match="upper"):
            FilteredKNN(
                bounds=[FNNBound(4)], measure="cosine", name="bad"
            )

    def test_stage_evaluations_reported(self, data, query):
        algo = FNNKNN(dims=data.shape[1]).fit(data)
        result = algo.query(query, 10)
        for bound in algo.bounds:
            assert bound.name in result.stage_evaluations
        assert result.stage_evaluations["euclidean"] == (
            result.exact_computations
        )

    def test_other_bucket_charged(self, data, query):
        result = FNNKNN(dims=data.shape[1]).fit(data).query(query, 10)
        assert result.counters.events(OTHER).branches > 0

    def test_pruning_ratios_in_range(self, data, rng):
        algo = FNNKNN(dims=data.shape[1]).fit(data)
        queries = data[rng.integers(0, len(data), size=2)]
        ratios = algo.pruning_ratios(queries, 5)
        assert all(0.0 <= r <= 1.0 for r in ratios.values())


class TestUpperBoundFiltering:
    def test_cosine_with_ub_part(self, data, query):
        algo = FilteredKNN(
            bounds=[PartitionUpperBound(head_dims=16)],
            measure="cosine",
            name="LEMP",
        ).fit(data)
        ref = StandardKNN(measure="cosine").fit(data).query(query, 8)
        result = algo.query(query, 8)
        assert np.allclose(np.sort(result.scores), np.sort(ref.scores))


class TestFactory:
    @pytest.mark.parametrize("name", ["Standard", "OST", "SM", "FNN"])
    def test_known_baselines(self, name, data):
        algo = make_baseline(name, data.shape[1])
        assert algo.name == name

    def test_unknown_baseline(self):
        with pytest.raises(ConfigurationError):
            make_baseline("Annoy", 10)
