"""Unit tests for outlier detection, motif discovery and MIPS.

The contract is always the same: the PIM variant returns the baseline's
exact result while computing far fewer exact distances.
"""

import numpy as np
import pytest

from repro.errors import ConfigurationError, OperandError
from repro.mining.motif import (
    PIMMotifDiscovery,
    StandardMotifDiscovery,
    sliding_windows,
)
from repro.mining.outlier import PIMOutlierDetector, StandardOutlierDetector
from repro.mining.knn.maxip import PIMMIPS, StandardMIPS


@pytest.fixture
def outlier_data(rng):
    centers = rng.random((6, 16))
    data = np.clip(
        centers[rng.integers(0, 6, 300)]
        + 0.04 * rng.standard_normal((300, 16)),
        0,
        1,
    )
    data[:5] = rng.random((5, 16))  # planted anomalies
    return data


@pytest.fixture
def series(rng):
    t = np.sin(np.linspace(0, 20 * np.pi, 500))
    t = t + 0.1 * rng.standard_normal(500)
    t[80:120] = t[380:420]  # planted motif pair
    return t


class TestOutlierDetection:
    def test_finds_planted_anomalies(self, outlier_data):
        result = (
            StandardOutlierDetector(n_neighbors=4, n_outliers=5)
            .fit(outlier_data)
            .detect()
        )
        assert set(result.indices.tolist()) == {0, 1, 2, 3, 4}

    def test_pim_matches_standard(self, outlier_data):
        std = (
            StandardOutlierDetector(n_neighbors=4, n_outliers=5)
            .fit(outlier_data)
            .detect()
        )
        pim = (
            PIMOutlierDetector(n_neighbors=4, n_outliers=5)
            .fit(outlier_data)
            .detect()
        )
        assert np.allclose(np.sort(std.scores), np.sort(pim.scores))
        assert set(std.indices.tolist()) == set(pim.indices.tolist())

    def test_pim_computes_fewer_distances(self, outlier_data):
        std = (
            StandardOutlierDetector(n_neighbors=4, n_outliers=5)
            .fit(outlier_data)
            .detect()
        )
        pim = (
            PIMOutlierDetector(n_neighbors=4, n_outliers=5)
            .fit(outlier_data)
            .detect()
        )
        assert pim.exact_computations < std.exact_computations
        assert pim.pim_time_ns > 0

    def test_scores_sorted_descending(self, outlier_data):
        result = (
            StandardOutlierDetector(n_neighbors=4, n_outliers=5)
            .fit(outlier_data)
            .detect()
        )
        assert np.all(np.diff(result.scores) <= 1e-12)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            StandardOutlierDetector(n_neighbors=0)

    def test_rejects_tiny_dataset(self, rng):
        detector = StandardOutlierDetector(n_neighbors=10, n_outliers=2)
        with pytest.raises(OperandError):
            detector.fit(rng.random((5, 4)))


class TestMotifDiscovery:
    def test_sliding_windows_shape_and_range(self, series):
        windows = sliding_windows(series, 40)
        assert windows.shape == (len(series) - 39, 40)
        assert windows.min() >= 0.0 and windows.max() <= 1.0

    def test_sliding_windows_validation(self, series):
        with pytest.raises(ConfigurationError):
            sliding_windows(series, 1)
        with pytest.raises(OperandError):
            sliding_windows(series.reshape(50, 10), 5)

    def test_finds_planted_motif(self, series):
        result = StandardMotifDiscovery(window=40).fit(series).discover()
        i, j = result.pair
        assert abs(i - 80) <= 2 and abs(j - 380) <= 2
        assert result.distance < 0.05

    def test_pim_matches_standard(self, series):
        std = StandardMotifDiscovery(window=40).fit(series).discover()
        pim = PIMMotifDiscovery(window=40).fit(series).discover()
        assert pim.distance == pytest.approx(std.distance, abs=1e-9)
        assert pim.pair == std.pair

    def test_pim_prunes_pairs(self, series):
        std = StandardMotifDiscovery(window=40).fit(series).discover()
        pim = PIMMotifDiscovery(window=40).fit(series).discover()
        assert pim.exact_computations < 0.2 * std.exact_computations

    def test_exclusion_zone_respected(self, series):
        result = StandardMotifDiscovery(window=40).fit(series).discover()
        i, j = result.pair
        assert abs(i - j) > 20  # default exclusion w/2

    def test_short_series_rejected(self):
        with pytest.raises(ConfigurationError):
            StandardMotifDiscovery(window=40).fit(np.zeros(45))


class TestMIPS:
    @pytest.fixture
    def data(self, rng):
        return rng.random((400, 32))

    def test_standard_matches_brute_force(self, data, rng):
        q = rng.random(32)
        result = StandardMIPS(top=5).fit(data).query(q)
        brute = np.sort(data @ q)[-5:]
        assert np.allclose(np.sort(result.products), brute)

    def test_pim_matches_standard(self, data, rng):
        q = rng.random(32)
        std = StandardMIPS(top=5).fit(data).query(q)
        pim = PIMMIPS(top=5).fit(data).query(q)
        assert np.allclose(np.sort(std.products), np.sort(pim.products))

    def test_pim_computes_fewer_dots(self, data, rng):
        q = rng.random(32)
        std = StandardMIPS(top=5).fit(data).query(q)
        pim = PIMMIPS(top=5).fit(data).query(q)
        assert pim.exact_computations <= std.exact_computations
        assert pim.exact_computations < data.shape[0]

    def test_products_sorted_best_first(self, data, rng):
        result = StandardMIPS(top=5).fit(data).query(rng.random(32))
        assert np.all(np.diff(result.products) <= 1e-12)

    def test_rejects_bad_top(self):
        with pytest.raises(ConfigurationError):
            StandardMIPS(top=0)
