"""Unit tests for the approximate (never-refine) PIM kNN."""

import numpy as np
import pytest

from repro.errors import OperandError
from repro.hardware.controller import PIMController
from repro.hardware.noise import NoiseModel
from repro.mining.knn import StandardKNN
from repro.mining.knn.approximate import ApproximatePIMKNN, recall_at_k


class TestApproximatePIMKNN:
    def test_zero_exact_computations(self, clustered_data, query_vector):
        result = (
            ApproximatePIMKNN().fit(clustered_data).query(query_vector, 10)
        )
        assert result.exact_computations == 0
        assert result.pim_time_ns > 0

    def test_high_recall_on_ideal_device(self, clustered_data, query_vector):
        # with alpha=1e6 and no noise, the estimate is near-exact, so
        # the approximate ranking almost always matches
        exact = StandardKNN().fit(clustered_data).query(query_vector, 10)
        approx = (
            ApproximatePIMKNN().fit(clustered_data).query(query_vector, 10)
        )
        assert recall_at_k(approx.indices, exact.indices) >= 0.9

    def test_recall_degrades_with_noise(self, clustered_data, query_vector):
        exact = StandardKNN().fit(clustered_data).query(query_vector, 10)
        noisy = ApproximatePIMKNN(
            controller=PIMController(
                noise=NoiseModel(cell_sigma=0.05, seed=5)
            )
        )
        result = noisy.fit(clustered_data).query(query_vector, 10)
        clean = (
            ApproximatePIMKNN().fit(clustered_data).query(query_vector, 10)
        )
        assert recall_at_k(result.indices, exact.indices) < recall_at_k(
            clean.indices, exact.indices
        )

    def test_scores_are_estimates_sorted(self, clustered_data, query_vector):
        result = (
            ApproximatePIMKNN().fit(clustered_data).query(query_vector, 5)
        )
        assert np.all(np.diff(result.scores) >= -1e-12)
        assert np.all(result.scores >= 0.0)

    def test_unfitted_query_rejected(self, query_vector):
        with pytest.raises(OperandError):
            ApproximatePIMKNN().query(query_vector, 3)


class TestRecallAtK:
    def test_full_and_partial_overlap(self):
        assert recall_at_k(np.array([1, 2, 3]), np.array([1, 2, 3])) == 1.0
        assert recall_at_k(np.array([1, 9, 8]), np.array([1, 2, 3])) == (
            pytest.approx(1 / 3)
        )

    def test_empty_exact_rejected(self):
        with pytest.raises(OperandError):
            recall_at_k(np.array([1]), np.array([]))
