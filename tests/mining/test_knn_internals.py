"""Unit tests for kNN internals: the heap and the sorted refine loop."""

import numpy as np
import pytest

from repro.bounds.ed import FNNBound, SMBound
from repro.mining.knn.base import _Heap
from repro.mining.knn.filtered import FilteredKNN
from repro.mining.knn.standard import StandardKNN


class TestHeap:
    def test_minimizing_keeps_smallest(self):
        heap = _Heap(3, minimize=True)
        for score, idx in [(5.0, 0), (1.0, 1), (3.0, 2), (2.0, 3), (9.0, 4)]:
            heap.push(score, idx)
        items = heap.sorted_items()
        assert [i for i, _ in items] == [1, 3, 2]
        assert [s for _, s in items] == [1.0, 2.0, 3.0]

    def test_maximizing_keeps_largest(self):
        heap = _Heap(2, minimize=False)
        for score, idx in [(0.1, 0), (0.9, 1), (0.5, 2)]:
            heap.push(score, idx)
        items = heap.sorted_items()
        assert [i for i, _ in items] == [1, 2]

    def test_threshold_before_full(self):
        heap = _Heap(3, minimize=True)
        assert heap.threshold == float("inf")
        heap.push(1.0, 0)
        assert not heap.full
        assert heap.threshold == float("inf")

    def test_threshold_after_full(self):
        heap = _Heap(2, minimize=True)
        heap.push(1.0, 0)
        heap.push(5.0, 1)
        assert heap.full
        assert heap.threshold == 5.0
        heap.push(2.0, 2)
        assert heap.threshold == 2.0

    def test_maximizing_threshold(self):
        heap = _Heap(2, minimize=False)
        heap.push(0.2, 0)
        heap.push(0.8, 1)
        assert heap.threshold == 0.2


class TestSortedRefineLoop:
    @pytest.fixture
    def algo(self, clustered_data):
        return FilteredKNN(
            bounds=[FNNBound(4)], measure="euclidean", name="test"
        ).fit(clustered_data)

    def test_first_bound_evaluated_on_all(self, algo, query_vector):
        result = algo.query(query_vector, 5)
        assert result.stage_evaluations["LB_FNN_4"] == algo.n_objects

    def test_early_stop_limits_refinements(self, algo, query_vector):
        result = algo.query(query_vector, 5)
        # on clustered data the walk terminates long before N
        assert result.exact_computations < algo.n_objects

    def test_finer_bounds_see_fewer_candidates(
        self, clustered_data, query_vector
    ):
        algo = FilteredKNN(
            bounds=[SMBound(4), FNNBound(8)],
            measure="euclidean",
            name="two-stage",
        ).fit(clustered_data)
        result = algo.query(query_vector, 5)
        assert (
            result.stage_evaluations["LB_FNN_8"]
            <= result.stage_evaluations["LB_SM_4"]
        )
        # and exactness still holds
        ref = StandardKNN().fit(clustered_data).query(query_vector, 5)
        assert np.allclose(np.sort(result.scores), np.sort(ref.scores))

    def test_k_equals_n(self, clustered_data, query_vector):
        n = clustered_data.shape[0]
        result = FilteredKNN(
            bounds=[FNNBound(4)], measure="euclidean", name="all"
        ).fit(clustered_data).query(query_vector, n)
        assert len(result.indices) == n

    def test_k_one(self, algo, query_vector, clustered_data):
        result = algo.query(query_vector, 1)
        ref = StandardKNN().fit(clustered_data).query(query_vector, 1)
        assert result.scores[0] == pytest.approx(ref.scores[0])
