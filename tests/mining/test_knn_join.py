"""Unit tests for the kNN join."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, OperandError
from repro.mining.knn.join import PIMKNNJoin, StandardKNNJoin


@pytest.fixture
def s_data(rng):
    centers = rng.random((5, 16))
    return np.clip(
        centers[rng.integers(0, 5, 200)]
        + 0.05 * rng.standard_normal((200, 16)),
        0,
        1,
    )


class TestStandardKNNJoin:
    def test_self_join_excludes_self(self, s_data):
        result = StandardKNNJoin(k=3).fit(s_data).join()
        for i in range(s_data.shape[0]):
            assert i not in result.indices[i]

    def test_neighbour_lists_are_true_knn(self, s_data):
        result = StandardKNNJoin(k=3).fit(s_data).join()
        for i in [0, 17, 113]:
            diff = s_data - s_data[i]
            dists = np.sqrt(np.einsum("sj,sj->s", diff, diff))
            dists[i] = np.inf
            expected = np.sort(dists)[:3]
            assert np.allclose(result.distances[i], expected)

    def test_rs_join(self, s_data, rng):
        r = np.clip(rng.random((10, 16)), 0, 1)
        result = StandardKNNJoin(k=4).fit(s_data).join(r)
        assert result.indices.shape == (10, 4)
        for i in range(10):
            diff = s_data - r[i]
            dists = np.sqrt(np.einsum("sj,sj->s", diff, diff))
            assert np.allclose(result.distances[i], np.sort(dists)[:4])

    def test_validation(self, s_data):
        with pytest.raises(ConfigurationError):
            StandardKNNJoin(k=0)
        with pytest.raises(OperandError):
            StandardKNNJoin(k=50).fit(s_data[:10])


class TestPIMKNNJoin:
    def test_matches_standard_self_join(self, s_data):
        std = StandardKNNJoin(k=3).fit(s_data).join()
        pim = PIMKNNJoin(k=3).fit(s_data).join()
        assert np.allclose(std.distances, pim.distances)

    def test_matches_standard_rs_join(self, s_data, rng):
        r = np.clip(rng.random((8, 16)), 0, 1)
        std = StandardKNNJoin(k=5).fit(s_data).join(r)
        pim = PIMKNNJoin(k=5).fit(s_data).join(r)
        assert np.allclose(std.distances, pim.distances)

    def test_pim_computes_far_fewer_distances(self, s_data):
        std = StandardKNNJoin(k=3).fit(s_data).join()
        pim = PIMKNNJoin(k=3).fit(s_data).join()
        assert pim.exact_computations < 0.3 * std.exact_computations
        assert pim.pim_time_ns > 0

    def test_one_wave_per_r_object(self, s_data):
        join = PIMKNNJoin(k=3).fit(s_data)
        waves_before = join.controller.pim.stats.waves
        join.join()
        waves = join.controller.pim.stats.waves - waves_before
        assert waves == s_data.shape[0]
