"""Unit tests for the PIM-optimized kNN variants.

Central contract (the paper's headline): PIM variants return results
identical to their baselines while transferring far less data.
"""

import numpy as np
import pytest

from repro.errors import CapacityError, ConfigurationError
from repro.hardware.config import (
    CrossbarConfig,
    HardwareConfig,
    PIMArrayConfig,
)
from repro.hardware.controller import PIMController
from repro.mining.knn import (
    FNNPIMKNN,
    FNNPIMOptimizeKNN,
    OSTPIMKNN,
    SMPIMKNN,
    StandardKNN,
    StandardPIMKNN,
    make_pim_variant,
)


@pytest.fixture
def data(clustered_data):
    return clustered_data


@pytest.fixture
def query(query_vector):
    return query_vector


@pytest.mark.parametrize(
    "factory",
    [
        lambda d, n: StandardPIMKNN(),
        lambda d, n: OSTPIMKNN(dims=d),
        lambda d, n: SMPIMKNN(dims=d),
        lambda d, n: FNNPIMKNN(dims=d, n_vectors=n),
    ],
    ids=["Standard-PIM", "OST-PIM", "SM-PIM", "FNN-PIM"],
)
class TestPIMVariantsExactness:
    def test_identical_results(self, factory, data, query):
        ref = StandardKNN().fit(data).query(query, 10)
        algo = factory(data.shape[1], data.shape[0]).fit(data)
        result = algo.query(query, 10)
        assert np.allclose(np.sort(result.scores), np.sort(ref.scores))

    def test_pim_time_attributed(self, factory, data, query):
        algo = factory(data.shape[1], data.shape[0]).fit(data)
        result = algo.query(query, 10)
        assert result.pim_time_ns > 0


class TestStandardPIM:
    def test_strong_pruning_on_clustered_data(self, data, query):
        result = StandardPIMKNN().fit(data).query(query, 10)
        assert result.exact_computations < 0.2 * data.shape[0]

    def test_cosine_variant(self, data, query):
        ref = StandardKNN(measure="cosine").fit(data).query(query, 10)
        result = StandardPIMKNN(measure="cosine").fit(data).query(query, 10)
        assert np.allclose(np.sort(result.scores), np.sort(ref.scores))

    def test_pearson_variant(self, data, query):
        ref = StandardKNN(measure="pearson").fit(data).query(query, 10)
        result = StandardPIMKNN(measure="pearson").fit(data).query(query, 10)
        assert np.allclose(np.sort(result.scores), np.sort(ref.scores))

    def test_hamming_rejected(self):
        with pytest.raises(ConfigurationError):
            StandardPIMKNN(measure="hamming")

    def test_capacity_guard(self, rng):
        tiny = HardwareConfig(
            pim=PIMArrayConfig(
                crossbar=CrossbarConfig(rows=8, cols=8),
                capacity_bytes=1 << 12,
                operand_bits=32,
            )
        )
        algo = StandardPIMKNN(controller=PIMController(tiny))
        with pytest.raises(CapacityError):
            algo.fit(rng.random((10000, 64)))


def _constrained_platform() -> HardwareConfig:
    """A PIM array where Theorem 4 forces s=16 for 2000 x 64 data.

    16x16 2-bit crossbars (64 B each), 600 of them: the concatenated
    mean/std matrix of s=16 segments fits (375 crossbars) while s=32
    does not (625).
    """
    return HardwareConfig(
        pim=PIMArrayConfig(
            crossbar=CrossbarConfig(rows=16, cols=16, cell_bits=2),
            capacity_bytes=600 * 64,
            operand_bits=2,
        )
    )


class TestFNNPIM:
    def test_theorem4_picks_compressed_segments(self, rng):
        algo = FNNPIMKNN(
            dims=64,
            n_vectors=2000,
            controller=PIMController(_constrained_platform()),
        )
        assert algo.n_segments == 16
        assert 64 % algo.n_segments == 0

    def test_default_plan_keeps_remaining_original_bounds(self):
        # the paper's default FNN-PIM replaces only the bottleneck (the
        # coarsest) bound and keeps the rest of the ladder (Fig. 12b);
        # the Section V-D optimizer is what removes redundant ones
        algo = FNNPIMKNN(dims=64, n_vectors=2000, n_segments=4)
        names = [b.name for b in algo.bounds]
        assert names[0] == "LB_PIM-FNN_4"
        assert names[1:] == ["LB_FNN_4", "LB_FNN_16"]

    def test_explicit_segments_respected(self, data):
        algo = FNNPIMKNN(
            dims=data.shape[1], n_vectors=data.shape[0], n_segments=8
        )
        assert algo.n_segments == 8

    def test_compressed_variant_still_exact(self, data, query):
        algo = FNNPIMKNN(
            dims=data.shape[1], n_vectors=data.shape[0], n_segments=4
        ).fit(data)
        ref = StandardKNN().fit(data).query(query, 10)
        result = algo.query(query, 10)
        assert np.allclose(np.sort(result.scores), np.sort(ref.scores))


class TestFNNPIMOptimize:
    def test_runs_explicit_plan(self, data, query):
        controller = PIMController()
        base = FNNPIMKNN(
            dims=data.shape[1],
            n_vectors=data.shape[0],
            controller=controller,
        ).fit(data)
        optimized = FNNPIMOptimizeKNN(list(base.bounds), controller)
        optimized.fit(data)
        ref = StandardKNN().fit(data).query(query, 10)
        result = optimized.query(query, 10)
        assert optimized.name == "FNN-PIM-optimize"
        assert np.allclose(np.sort(result.scores), np.sort(ref.scores))


class TestFactory:
    @pytest.mark.parametrize(
        "name", ["Standard-PIM", "OST-PIM", "SM-PIM", "FNN-PIM"]
    )
    def test_known_variants(self, name, data):
        algo = make_pim_variant(name, data.shape[1], data.shape[0])
        assert algo.name == name

    def test_unknown_variant(self):
        with pytest.raises(ConfigurationError):
            make_pim_variant("Faiss-PIM", 8, 100)
