"""Unit tests for the simulated-clock recorder and metrics registry."""

import pytest

from repro.telemetry import (
    NULL_RECORDER,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRecorder,
    SimulatedClock,
    TelemetryRecorder,
    get_recorder,
    set_recorder,
    telemetry_session,
)


class TestSimulatedClock:
    def test_starts_at_zero(self):
        assert SimulatedClock().now == 0.0

    def test_advance_accumulates(self):
        clock = SimulatedClock()
        clock.advance(10.0)
        assert clock.advance(2.5) == 12.5
        assert clock() == 12.5

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            SimulatedClock().advance(-1.0)


class TestSpans:
    def test_span_durations_come_from_the_clock(self):
        tele = TelemetryRecorder()
        tele.begin_span("outer", "phase")
        tele.advance(100.0)
        tele.begin_span("inner", "wave")
        tele.advance(40.0)
        inner = tele.end_span()
        outer = tele.end_span()
        assert inner.duration_ns == 40.0
        assert outer.duration_ns == 140.0
        assert inner.depth == 1 and outer.depth == 0

    def test_end_span_records_in_completion_order(self):
        tele = TelemetryRecorder()
        tele.begin_span("a")
        tele.begin_span("b")
        tele.end_span()
        tele.end_span()
        assert [s.name for s in tele.spans] == ["b", "a"]

    def test_end_span_merges_args(self):
        tele = TelemetryRecorder()
        tele.begin_span("s", "cat", queries=3)
        span = tele.end_span(results=9)
        assert span.args == {"queries": 3, "results": 9}

    def test_end_without_open_span_raises(self):
        with pytest.raises(RuntimeError):
            TelemetryRecorder().end_span()

    def test_context_manager_closes_on_error(self):
        tele = TelemetryRecorder()
        with pytest.raises(RuntimeError, match="boom"):
            with tele.span("s"):
                tele.advance(5.0)
                raise RuntimeError("boom")
        assert tele.open_spans == 0
        assert tele.spans[0].duration_ns == 5.0

    def test_category_filter_and_sum(self):
        tele = TelemetryRecorder()
        for _ in range(3):
            with tele.span("wave", "pim_dispatch"):
                tele.advance(7.0)
        with tele.span("cpu", "cpu"):
            tele.advance(100.0)
        assert len(tele.finished_spans("pim_dispatch")) == 3
        assert tele.span_time_ns("pim_dispatch") == 21.0
        assert tele.span_time_ns("cpu") == 100.0


class TestMetrics:
    def test_counter_accumulates_and_samples(self):
        clock = SimulatedClock()
        registry = MetricsRegistry(clock=clock)
        counter = registry.counter("pim.waves")
        counter.add()
        clock.advance(50.0)
        counter.add(2.0)
        assert counter.value == 3.0
        assert counter.samples == [(0.0, 1.0), (50.0, 3.0)]

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            MetricsRegistry(clock=SimulatedClock()).counter("c").add(-1.0)

    def test_gauge_overwrites(self):
        gauge = MetricsRegistry(clock=SimulatedClock()).gauge("g")
        gauge.set(0.5)
        gauge.set(0.25)
        assert gauge.value == 0.25
        assert [v for _, v in gauge.samples] == [0.5, 0.25]

    def test_histogram_summary(self):
        hist = MetricsRegistry(clock=SimulatedClock()).histogram("h")
        for v in (1.0, 3.0, 2.0):
            hist.observe(v)
        summary = hist.summary()
        assert summary["count"] == 3
        assert summary["min"] == 1.0 and summary["max"] == 3.0
        assert summary["mean"] == pytest.approx(2.0)

    def test_same_name_returns_same_instrument(self):
        registry = MetricsRegistry(clock=SimulatedClock())
        assert registry.counter("x") is registry.counter("x")

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry(clock=SimulatedClock())
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")

    def test_registry_container_protocol(self):
        registry = MetricsRegistry(clock=SimulatedClock())
        registry.counter("a")
        registry.gauge("b")
        assert len(registry) == 2
        assert "a" in registry and "missing" not in registry
        assert {i.name for i in registry} == {"a", "b"}
        assert registry.get("missing") is None

    def test_instrument_kinds(self):
        registry = MetricsRegistry(clock=SimulatedClock())
        assert isinstance(registry.counter("c"), Counter)
        assert isinstance(registry.gauge("g"), Gauge)
        assert isinstance(registry.histogram("h"), Histogram)


class TestActiveRecorder:
    def test_default_is_the_null_recorder(self):
        assert get_recorder() is NULL_RECORDER
        assert get_recorder().enabled is False

    def test_session_installs_and_restores(self):
        assert get_recorder() is NULL_RECORDER
        with telemetry_session() as tele:
            assert get_recorder() is tele
            assert tele.enabled is True
        assert get_recorder() is NULL_RECORDER

    def test_session_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with telemetry_session():
                raise RuntimeError
        assert get_recorder() is NULL_RECORDER

    def test_set_recorder_returns_previous(self):
        mine = TelemetryRecorder()
        previous = set_recorder(mine)
        try:
            assert previous is NULL_RECORDER
            assert get_recorder() is mine
        finally:
            set_recorder(previous)

    def test_null_recorder_is_inert(self):
        null = NullRecorder()
        with null.span("anything", "cat", extra=1) as span:
            assert span.duration_ns == 0.0
        assert null.advance(100.0) == 0.0
        null.metrics.counter("c").add(5)
        null.metrics.gauge("g").set(1.0)
        null.metrics.histogram("h").observe(2.0)
        assert null.finished_spans() == []
        assert null.span_time_ns("cat") == 0.0
        assert len(null.metrics) == 0
