"""Zero-overhead guard: disabled telemetry allocates nothing.

The tentpole contract is that an uninstrumented run is *identical* to
the pre-telemetry simulator: the active recorder defaults to the null
singleton and every hot-path site guards with ``if tele.enabled:``, so
the wave hot path performs no recorder allocations at all. tracemalloc
proves it — no allocation during a query workload may have a telemetry
frame anywhere in its stack.
"""

import os
import tracemalloc

import numpy as np
import pytest

from repro.hardware.controller import PIMController
from repro.mining.knn import make_pim_variant
from repro.telemetry import NULL_RECORDER, get_recorder, telemetry_session
from repro.telemetry import recorder as recorder_module

TELEMETRY_DIR = os.path.dirname(os.path.abspath(recorder_module.__file__))


@pytest.fixture
def pim_knn():
    rng = np.random.default_rng(11)
    data = rng.random((40, 16))
    queries = rng.random((3, 16))
    algo = make_pim_variant(
        "Standard-PIM", 16, 40, controller=PIMController()
    )
    algo.fit(data)
    return algo, queries


def _telemetry_allocations(snapshot):
    return [
        trace
        for trace in snapshot.traces
        if any(
            frame.filename.startswith(TELEMETRY_DIR)
            for frame in trace.traceback
        )
    ]


class TestDisabledOverhead:
    def test_active_recorder_defaults_to_the_null_singleton(self):
        assert get_recorder() is NULL_RECORDER

    def test_wave_hot_path_allocates_no_recorder_objects(self, pim_knn):
        algo, queries = pim_knn
        algo.query(queries[0], 3)  # warm caches and lazy imports
        tracemalloc.start(25)
        try:
            for q in queries:
                algo.query(q, 3)
            algo.query_batch(queries, 3)
            snapshot = tracemalloc.take_snapshot()
        finally:
            tracemalloc.stop()
        assert _telemetry_allocations(snapshot) == []

    def test_null_recorder_state_is_untouched_by_a_run(self, pim_knn):
        algo, queries = pim_knn
        for q in queries:
            algo.query(q, 3)
        assert NULL_RECORDER.spans == []
        assert len(NULL_RECORDER.metrics) == 0

    def test_enabled_run_does_record(self, pim_knn):
        """Sanity check that the guard above measures the right path."""
        algo, queries = pim_knn
        with telemetry_session() as tele:
            algo.query(queries[0], 3)
        assert tele.finished_spans("pim_dispatch")
        assert "pim.waves" in tele.metrics
        assert tele.metrics.counter("pim.waves").value >= 1
