"""Unit tests for the trace/metrics exporters and their validator."""

import json

import pytest

from repro.telemetry import (
    TelemetryRecorder,
    chrome_trace_events,
    metrics_jsonl_lines,
    summarize_metrics,
    write_chrome_trace,
    write_metrics_jsonl,
)
from repro.telemetry.validate import (
    ValidationError,
    main,
    validate_metrics,
    validate_trace,
)


@pytest.fixture
def recorder() -> TelemetryRecorder:
    """A recorder with nested spans and one of each instrument kind."""
    tele = TelemetryRecorder()
    with tele.span("algorithm", "phase", task="knn"):
        tele.advance(10.0)
        with tele.span("wave", "pim_dispatch", queries=2):
            tele.advance(181.92)
            tele.metrics.counter("pim.waves").add(2)
        tele.metrics.gauge("prune.ratio").set(0.9)
        tele.metrics.histogram("prune.survivors").observe(4)
        tele.advance(5.0)
    return tele


class TestChromeTrace:
    def test_metadata_then_sorted_spans(self, recorder):
        events = chrome_trace_events(recorder)
        assert [e["ph"] for e in events[:2]] == ["M", "M"]
        spans = [e for e in events if e["ph"] == "X"]
        # parent (algorithm) starts first even though it finished last
        assert [e["name"] for e in spans] == ["algorithm", "wave"]
        starts = [e["ts"] for e in spans]
        assert starts == sorted(starts)

    def test_exact_nanoseconds_in_args(self, recorder):
        wave = next(
            e for e in chrome_trace_events(recorder) if e["name"] == "wave"
        )
        assert wave["cat"] == "pim_dispatch"
        assert wave["args"]["start_ns"] == 10.0
        assert wave["args"]["dur_ns"] == 181.92
        assert wave["args"]["queries"] == 2
        assert wave["ts"] == pytest.approx(0.010)
        assert wave["dur"] == pytest.approx(0.18192)

    def test_counter_and_gauge_series_histograms_skipped(self, recorder):
        counters = [
            e for e in chrome_trace_events(recorder) if e["ph"] == "C"
        ]
        names = {e["name"] for e in counters}
        assert names == {"pim.waves", "prune.ratio"}

    def test_written_file_validates(self, tmp_path, recorder):
        path = tmp_path / "run.trace.json"
        n_events = write_chrome_trace(recorder, path)
        payload = json.loads(path.read_text())
        assert len(payload["traceEvents"]) == n_events
        assert payload["displayTimeUnit"] == "ns"
        assert validate_trace(path) > 0

    def test_open_spans_are_not_exported(self):
        tele = TelemetryRecorder()
        tele.begin_span("dangling")
        assert [e for e in chrome_trace_events(tele) if e["ph"] == "X"] == []


class TestMetricsJsonl:
    def test_samples_then_summaries(self, recorder):
        records = [json.loads(line) for line in metrics_jsonl_lines(recorder)]
        kinds = [r["kind"] for r in records]
        assert kinds == sorted(kinds, key=["sample", "summary"].index)
        samples = [r for r in records if r["kind"] == "sample"]
        assert {
            "kind", "metric", "type", "ts_ns", "value"
        } <= set(samples[0])
        wave_samples = [
            r for r in samples if r["metric"] == "pim.waves"
        ]
        assert wave_samples[0]["value"] == 2.0
        assert wave_samples[0]["ts_ns"] == pytest.approx(191.92)

    def test_written_file_validates(self, tmp_path, recorder):
        path = tmp_path / "run.metrics.jsonl"
        n_lines = write_metrics_jsonl(recorder, path)
        assert len(path.read_text().splitlines()) == n_lines
        assert validate_metrics(path) > 0

    def test_summary_table_lists_every_metric(self, recorder):
        table = summarize_metrics(recorder)
        for name in ("pim.waves", "prune.ratio", "prune.survivors"):
            assert name in table


class TestValidator:
    def test_rejects_missing_trace_events(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"events": []}))
        with pytest.raises(ValidationError, match="traceEvents"):
            validate_trace(path)

    def test_rejects_nonmonotonic_span_order(self, tmp_path, recorder):
        events = chrome_trace_events(recorder)
        spans = [e for e in events if e["ph"] == "X"]
        payload = {"traceEvents": list(reversed(spans))}
        path = tmp_path / "bad.trace.json"
        path.write_text(json.dumps(payload))
        with pytest.raises(ValidationError, match="starts before"):
            validate_trace(path)

    def test_rejects_span_missing_exact_ns(self, tmp_path, recorder):
        events = chrome_trace_events(recorder)
        for event in events:
            if event["ph"] == "X":
                del event["args"]["start_ns"]
        path = tmp_path / "bad.trace.json"
        path.write_text(json.dumps({"traceEvents": events}))
        with pytest.raises(ValidationError):
            validate_trace(path)

    def test_rejects_unparseable_jsonl(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "sample"\nnot json\n')
        with pytest.raises(ValidationError):
            validate_metrics(path)

    def test_rejects_time_travel_samples(self, tmp_path):
        lines = [
            json.dumps({"kind": "sample", "metric": "m", "type": "counter",
                        "ts_ns": 10.0, "value": 1.0}),
            json.dumps({"kind": "sample", "metric": "m", "type": "counter",
                        "ts_ns": 5.0, "value": 2.0}),
        ]
        path = tmp_path / "bad.jsonl"
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ValidationError, match="monotonic"):
            validate_metrics(path)

    def test_cli_entry_point(self, tmp_path, recorder, capsys):
        trace = tmp_path / "ok.trace.json"
        metrics = tmp_path / "ok.metrics.jsonl"
        write_chrome_trace(recorder, trace)
        write_metrics_jsonl(recorder, metrics)
        assert main([str(trace), str(metrics)]) == 0
        bad = tmp_path / "bad.trace.json"
        bad.write_text("{}")
        assert main([str(bad)]) == 1
        assert main([]) == 2
