"""Unit tests for trace contexts, labels, exemplars and the validators.

The PR-7 observability surface rests on three telemetry primitives:
deterministic trace identities (:class:`TraceContext` + ``record_span``),
the label-cardinality guard on the metrics registry, and histogram
exemplars that link latency series back to traces. These tests pin the
primitives directly; the serving-level span trees live in
``tests/serving/test_tracing.py``.
"""

import json

import pytest

from repro.telemetry import (
    TelemetryRecorder,
    chrome_trace_events,
    get_recorder,
    parse_prometheus,
    prometheus_snapshot,
    telemetry_session,
    write_chrome_trace,
    write_metrics_jsonl,
    write_prometheus,
)
from repro.telemetry.context import TraceContext
from repro.telemetry.metrics import (
    LABEL_OVERFLOW_METRIC,
    OVERFLOW_LABELS,
    MetricsRegistry,
)
from repro.telemetry.validate import (
    ValidationError,
    validate_metrics,
    validate_trace,
)


@pytest.fixture
def recorder():
    return TelemetryRecorder()


class TestTraceContext:
    def test_mint_ids_are_deterministic_and_unique(self, recorder):
        ctx_a = recorder.new_trace()
        ctx_b = recorder.new_trace()
        assert ctx_a.trace_id == "t1"
        assert ctx_a.span_id == "s2"
        assert ctx_b.trace_id == "t3"
        assert ctx_a.trace_id != ctx_b.trace_id
        assert ctx_a.span_id != ctx_b.span_id

    def test_two_recorders_mint_independently(self):
        assert TelemetryRecorder().new_trace() == TelemetryRecorder().new_trace()

    def test_baggage_rides_on_the_context(self, recorder):
        ctx = recorder.new_trace(tenant="a", request_id="r1")
        assert ctx.baggage == {"tenant": "a", "request_id": "r1"}

    def test_child_rebases_parent_keeps_trace_and_baggage(self, recorder):
        ctx = recorder.new_trace(tenant="a")
        child = ctx.child("s99")
        assert child.trace_id == ctx.trace_id
        assert child.span_id == "s99"
        assert child.baggage == ctx.baggage

    def test_context_is_frozen(self, recorder):
        ctx = recorder.new_trace()
        with pytest.raises(AttributeError):
            ctx.trace_id = "other"


class TestSpanInheritance:
    def test_spans_outside_a_trace_carry_no_identity(self, recorder):
        with recorder.span("plain"):
            pass
        (span,) = recorder.spans
        assert span.trace_id is None
        assert span.span_id is None
        assert span.parent_id is None

    def test_installed_context_parents_new_spans(self, recorder):
        ctx = recorder.new_trace()
        with recorder.trace(ctx):
            with recorder.span("work"):
                pass
        (span,) = recorder.spans
        assert span.trace_id == ctx.trace_id
        assert span.parent_id == ctx.span_id
        assert span.span_id is not None

    def test_nested_spans_parent_under_traced_ancestor(self, recorder):
        ctx = recorder.new_trace()
        with recorder.trace(ctx):
            with recorder.span("outer"):
                with recorder.span("inner"):
                    pass
        inner, outer = recorder.spans  # completion order
        assert inner.trace_id == outer.trace_id == ctx.trace_id
        assert inner.parent_id == outer.span_id
        assert outer.parent_id == ctx.span_id

    def test_trace_accepts_none_as_noop(self, recorder):
        with recorder.trace(None):
            with recorder.span("work"):
                pass
        assert recorder.spans[0].trace_id is None
        assert recorder.current_context is None

    def test_current_context_tracks_the_stack(self, recorder):
        ctx = recorder.new_trace()
        assert recorder.current_context is None
        with recorder.trace(ctx):
            assert recorder.current_context is ctx
        assert recorder.current_context is None


class TestRecordSpan:
    def test_explicit_times_do_not_touch_the_clock(self, recorder):
        span = recorder.record_span(
            "request", "request", 100.0, 400.0, trace_id="t1", span_id="s1"
        )
        assert recorder.now_ns == 0.0
        assert span.duration_ns == 300.0
        assert span.track == "requests"

    def test_span_id_minted_when_traced_but_unset(self, recorder):
        span = recorder.record_span("seg", "segment", 0.0, 1.0, trace_id="t1")
        assert span.span_id is not None

    def test_rejects_backwards_span(self, recorder):
        with pytest.raises(ValueError, match="ends before"):
            recorder.record_span("bad", "request", 10.0, 5.0)

    def test_record_event_stamps_clock_or_explicit_time(self, recorder):
        recorder.advance(50.0)
        implicit = recorder.record_event("tick")
        explicit = recorder.record_event("alert", ts_ns=7.0, category="alert")
        assert implicit["ts_ns"] == 50.0
        assert explicit["ts_ns"] == 7.0
        assert recorder.events == [implicit, explicit]


class TestLabelCardinality:
    def make_registry(self, cap=2):
        return MetricsRegistry(clock=lambda: 0.0, max_label_sets=cap)

    def test_distinct_label_sets_are_distinct_series(self):
        m = self.make_registry()
        m.counter("rpc", labels={"tenant": "a"}).add(1)
        m.counter("rpc", labels={"tenant": "b"}).add(2)
        assert m.counter("rpc", labels={"tenant": "a"}).value == 1
        assert m.counter("rpc", labels={"tenant": "b"}).value == 2

    def test_overflow_folds_into_other_bucket(self):
        m = self.make_registry(cap=2)
        for tenant in ("a", "b", "c", "d"):
            m.counter("rpc", labels={"tenant": tenant}).add(1)
        # dropped sets all resolve to the shared __other__ instrument
        overflow = m.counter("rpc", labels={"tenant": "c"})
        assert overflow is m.counter("rpc", labels={"tenant": "d"})
        assert overflow.labels == OVERFLOW_LABELS
        assert overflow.value == 2  # c and d folded together
        assert m.counter(LABEL_OVERFLOW_METRIC).value == 2

    def test_overflow_warning_counts_distinct_sets_once(self):
        m = self.make_registry(cap=1)
        for _ in range(3):  # same dropped set three times
            m.counter("rpc", labels={"tenant": "z"}).add(1)
            m.counter("rpc", labels={"tenant": "y"}).add(1)
        assert m.counter(LABEL_OVERFLOW_METRIC).value == 1
        # "z" claimed the only slot; only "y" overflowed
        assert m.counter("rpc", labels={"tenant": "y"}).value == 3

    def test_cached_labeled_lookup_still_checks_kind(self):
        m = self.make_registry()
        m.counter("rpc", labels={"tenant": "a"})  # populates the cache
        with pytest.raises(TypeError, match="counter"):
            m.gauge("rpc", labels={"tenant": "a"})

    def test_label_order_does_not_split_series(self):
        m = self.make_registry()
        first = m.counter("rpc", labels={"a": "1", "b": "2"})
        second = m.counter("rpc", labels={"b": "2", "a": "1"})
        assert first is second

    def test_display_name_renders_sorted_labels(self):
        m = self.make_registry()
        inst = m.counter("rpc", labels={"b": "2", "a": "1"})
        assert inst.display_name == "rpc{a=1,b=2}"


class TestExemplars:
    def test_largest_observations_win(self, recorder):
        hist = recorder.metrics.histogram("latency")
        for i in range(10):
            hist.observe(float(i), exemplar=f"t{i}")
        kept = sorted(trace for _, _, trace in hist.exemplars)
        assert len(hist.exemplars) == hist.MAX_EXEMPLARS
        assert kept == ["t6", "t7", "t8", "t9"]

    def test_observations_without_exemplar_keep_none(self, recorder):
        hist = recorder.metrics.histogram("latency")
        hist.observe(5.0)
        assert hist.exemplars == []

    def test_snapshot_links_top_exemplar(self, recorder):
        hist = recorder.metrics.histogram("serving.latency_ns")
        hist.observe(10.0, exemplar="t7")
        hist.observe(90.0, exemplar="t9")
        text = prometheus_snapshot(recorder)
        count_line = next(
            line for line in text.splitlines() if "_count" in line
        )
        assert '# {trace_id="t9"} 90.0' in count_line


class TestPrometheusRoundTrip:
    def test_snapshot_parses_back(self, recorder):
        m = recorder.metrics
        m.counter("pim.waves").add(3)
        m.gauge("queue.depth", labels={"tenant": "a"}).set(7)
        hist = m.histogram("serving.latency_ns")
        hist.observe(100.0, exemplar="t1")
        hist.observe(300.0, exemplar="t2")
        series = parse_prometheus(prometheus_snapshot(recorder))
        assert series["pim_waves_total"]["value"] == 3.0
        assert series['queue_depth{tenant="a"}']["labels"] == {"tenant": "a"}
        count = series["serving_latency_ns_count"]
        assert count["value"] == 2.0
        assert count["exemplar"]["labels"] == {"trace_id": "t2"}
        assert series["serving_latency_ns_sum"]["value"] == 400.0
        assert series["serving_latency_ns_max"]["value"] == 300.0

    def test_write_prometheus_counts_series_lines(self, recorder, tmp_path):
        recorder.metrics.counter("pim.waves").add(1)
        recorder.metrics.gauge("queue.depth").set(2)
        path = tmp_path / "snap.prom"
        written = write_prometheus(recorder, str(path))
        text = path.read_text()
        assert written == 2
        assert text.endswith("# EOF\n")

    def test_parse_rejects_malformed_line(self):
        with pytest.raises(ValueError):
            parse_prometheus("pim_waves_total not-a-number\n# EOF\n")


def span_event(name="work", ts=0.0, dur=1.0, cat="request", **args):
    """A minimal valid Chrome complete-span event for validator tests."""
    args = {"start_ns": ts * 1e3, "dur_ns": dur * 1e3, **args}
    return {
        "name": name,
        "cat": cat,
        "ph": "X",
        "ts": ts,
        "dur": dur,
        "pid": 1,
        "tid": 2,
        "args": args,
    }


def write_trace(tmp_path, events):
    path = tmp_path / "trace.json"
    path.write_text(json.dumps({"traceEvents": events}))
    return str(path)


class TestTraceValidator:
    def test_accepts_a_complete_tree(self, tmp_path):
        path = write_trace(
            tmp_path,
            [
                span_event("request", trace_id="t1", span_id="s1"),
                span_event(
                    "request.wave",
                    ts=0.1,
                    trace_id="t1",
                    span_id="s2",
                    parent_id="s1",
                ),
            ],
        )
        assert validate_trace(path) == 2

    def test_rejects_dangling_parent(self, tmp_path):
        path = write_trace(
            tmp_path,
            [span_event(trace_id="t1", span_id="s1", parent_id="s0")],
        )
        with pytest.raises(ValidationError, match="dangling parent_id"):
            validate_trace(path)

    def test_rejects_partial_trace_context(self, tmp_path):
        path = write_trace(tmp_path, [span_event(trace_id="t1")])
        with pytest.raises(ValidationError, match="partial trace"):
            validate_trace(path)

    def test_rejects_parent_without_identity(self, tmp_path):
        path = write_trace(tmp_path, [span_event(parent_id="s1")])
        with pytest.raises(ValidationError, match="parent_id without"):
            validate_trace(path)

    def test_rejects_duplicate_span_id(self, tmp_path):
        path = write_trace(
            tmp_path,
            [
                span_event(trace_id="t1", span_id="s1"),
                span_event(ts=1.0, trace_id="t1", span_id="s1"),
            ],
        )
        with pytest.raises(ValidationError, match="reuses span_id"):
            validate_trace(path)

    def test_rejects_cross_trace_parent(self, tmp_path):
        path = write_trace(
            tmp_path,
            [
                span_event(trace_id="t1", span_id="s1"),
                span_event(
                    ts=1.0, trace_id="t2", span_id="s2", parent_id="s1"
                ),
            ],
        )
        with pytest.raises(ValidationError, match="across traces"):
            validate_trace(path)

    def test_rejects_alert_instant_missing_payload(self, tmp_path):
        path = write_trace(
            tmp_path,
            [
                span_event(trace_id="t1", span_id="s1"),
                {
                    "name": "slo_burn_rate",
                    "cat": "alert",
                    "ph": "i",
                    "ts": 2.0,
                    "pid": 1,
                    "tid": 2,
                    "args": {"rule": "fast"},  # objective et al. missing
                },
            ],
        )
        with pytest.raises(ValidationError, match="alert event"):
            validate_trace(path)

    def test_exported_alert_instants_validate(self, tmp_path, recorder):
        with telemetry_session(recorder) as tele:
            with tele.span("work"):
                tele.advance(10.0)
            tele.record_event(
                "slo_burn_rate",
                ts_ns=5.0,
                category="alert",
                rule="fast",
                objective="shed_rate",
                burn_rate=20.0,
                severity="page",
            )
        path = tmp_path / "trace.json"
        write_chrome_trace(recorder, str(path))
        assert validate_trace(str(path)) == 1


class TestMetricsValidator:
    def test_alert_lines_round_trip(self, tmp_path, recorder):
        with telemetry_session(recorder) as tele:
            tele.metrics.counter("pim.waves").add(1)
            tele.record_event(
                "slo_burn_rate",
                ts_ns=5.0,
                category="alert",
                rule="fast",
                objective="shed_rate",
                burn_rate=20.0,
                severity="page",
            )
        path = tmp_path / "metrics.jsonl"
        lines = write_metrics_jsonl(recorder, str(path))
        assert validate_metrics(str(path)) == lines == 3

    def test_rejects_alert_line_missing_keys(self, tmp_path):
        path = tmp_path / "metrics.jsonl"
        path.write_text(
            json.dumps(
                {"kind": "alert", "name": "slo_burn_rate", "ts_ns": 1.0}
            )
            + "\n"
        )
        with pytest.raises(ValidationError, match="alert missing"):
            validate_metrics(str(path))

    def test_rejects_negative_alert_timestamp(self, tmp_path):
        path = tmp_path / "metrics.jsonl"
        path.write_text(
            json.dumps(
                {
                    "kind": "alert",
                    "name": "slo_burn_rate",
                    "ts_ns": -1.0,
                    "rule": "fast",
                    "objective": "shed_rate",
                    "burn_rate": 20.0,
                    "severity": "page",
                }
            )
            + "\n"
        )
        with pytest.raises(ValidationError, match="negative alert"):
            validate_metrics(str(path))


class TestTracksInExport:
    def test_request_track_gets_its_own_thread(self, recorder):
        recorder.record_span(
            "request", "request", 0.0, 5.0, trace_id="t1", span_id="s1"
        )
        events = chrome_trace_events(recorder)
        names = [
            e["args"]["name"] for e in events if e["name"] == "thread_name"
        ]
        assert any("request" in n for n in names)
        span = next(e for e in events if e["ph"] == "X")
        assert span["tid"] != 1  # not on the simulated-hardware track

    def test_session_scopes_the_active_recorder(self):
        assert not get_recorder().enabled
        with telemetry_session() as tele:
            assert get_recorder() is tele
        assert not get_recorder().enabled
