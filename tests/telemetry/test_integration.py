"""Acceptance tests: traces reconcile with the profiler and the CLI.

The headline guarantee of the telemetry layer is that it measures the
*same* simulated time the profiler reports: summed ``pim_dispatch``
span durations equal the profile's ``pim_time_ns`` to within a
nanosecond, both through the API and through
``repro knn --pim --trace-out ... --metrics-out ...``.
"""

import io
import json

import numpy as np
import pytest

from repro.cli import main
from repro.core.framework import PIMAccelerator
from repro.core.profiler import profile_knn
from repro.hardware.controller import PIMController
from repro.mining.knn import make_pim_variant
from repro.telemetry import telemetry_session
from repro.telemetry.validate import validate_metrics, validate_trace


@pytest.fixture(scope="module")
def workload():
    rng = np.random.default_rng(7)
    return rng.random((60, 24)), rng.random((4, 24))


class TestProfilerReconciliation:
    def test_pim_dispatch_spans_sum_to_profiled_wave_time(self, workload):
        data, queries = workload
        with telemetry_session() as tele:
            algo = make_pim_variant(
                "Standard-PIM", 24, 60, controller=PIMController()
            )
            algo.fit(data)
            profile = profile_knn(
                algo, queries, 5, batch_size=len(queries)
            )
        assert tele.span_time_ns("pim_dispatch") == pytest.approx(
            profile.pim_time_ns, abs=1.0
        )

    def test_cpu_spans_sum_to_profiled_cpu_time(self, workload):
        data, queries = workload
        with telemetry_session() as tele:
            algo = make_pim_variant(
                "Standard-PIM", 24, 60, controller=PIMController()
            )
            algo.fit(data)
            profile = profile_knn(algo, queries, 5)
        assert tele.span_time_ns("cpu") == pytest.approx(
            profile.cpu_time_ns, rel=1e-9, abs=1.0
        )

    def test_profile_gauges_mirror_the_figures(self, workload):
        data, queries = workload
        with telemetry_session() as tele:
            algo = make_pim_variant(
                "Standard-PIM", 24, 60, controller=PIMController()
            )
            algo.fit(data)
            profile = profile_knn(algo, queries, 5)
        prefix = f"profiler.{profile.name}"
        gauge = tele.metrics.get(f"{prefix}.pim_time_ns")
        assert gauge is not None and gauge.value == profile.pim_time_ns
        for component, fraction in profile.component_fractions().items():
            recorded = tele.metrics.get(f"{prefix}.component.{component}")
            assert recorded is not None and recorded.value == fraction


class TestFrameworkPhases:
    def test_kmeans_pipeline_emits_phase_and_iteration_spans(self):
        rng = np.random.default_rng(3)
        data = rng.random((50, 12))
        with telemetry_session() as tele:
            PIMAccelerator().accelerate_kmeans(
                "Standard", data, k=4, max_iters=3
            )
        phases = {s.name for s in tele.finished_spans("phase")}
        assert {
            "phase.profile_baseline",
            "phase.build_pim",
            "phase.profile_pim",
            "phase.verify",
        } <= phases
        assert tele.finished_spans("iteration")
        assert "kmeans.center_waves" in tele.metrics
        assert tele.open_spans == 0


class TestCLIAcceptance:
    def test_knn_pim_trace_matches_reported_wave_time(self, tmp_path):
        trace_path = tmp_path / "t.json"
        metrics_path = tmp_path / "m.jsonl"
        out = io.StringIO()
        code = main(
            [
                "knn", "--pim",
                "--dataset", "MSD", "--n", "80",
                "--queries", "3", "--k", "3",
                "--trace-out", str(trace_path),
                "--metrics-out", str(metrics_path),
            ],
            out=out,
        )
        assert code == 0
        assert validate_trace(str(trace_path)) > 0
        assert validate_metrics(str(metrics_path)) > 0

        payload = json.loads(trace_path.read_text())
        dispatch_ns = sum(
            e["args"]["dur_ns"]
            for e in payload["traceEvents"]
            if e.get("cat") == "pim_dispatch"
        )
        records = [
            json.loads(line)
            for line in metrics_path.read_text().splitlines()
        ]
        reported = next(
            r["value"]
            for r in records
            if r["kind"] == "summary"
            and r["metric"] == "profiler.Standard-PIM.pim_time_ns"
        )
        # the acceptance criterion: span sum == profiler time (+-1 ns)
        assert abs(dispatch_ns - reported) <= 1.0

        sampled = {r["metric"] for r in records if r["kind"] == "sample"}
        assert "pim.waves" in sampled
        assert "pim.batch_flushes" in sampled
        assert "prune.ratio" in sampled

    def test_flags_absent_means_no_files_and_same_output(self, tmp_path):
        plain, again = io.StringIO(), io.StringIO()
        argv = [
            "knn", "--pim", "--dataset", "MSD", "--n", "60",
            "--queries", "2", "--k", "3",
        ]
        assert main(argv, out=plain) == 0
        traced = io.StringIO()
        trace_path = tmp_path / "t.json"
        assert main(
            argv + ["--trace-out", str(trace_path)], out=traced
        ) == 0
        assert main(argv, out=again) == 0
        # telemetry never changes what the simulator computes or prints
        assert plain.getvalue() == again.getvalue()
        assert traced.getvalue().startswith(plain.getvalue())
