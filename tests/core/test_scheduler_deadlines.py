"""Regression tests: BatchScheduler deadline flushing is deterministic.

The serving layer leans on three scheduler behaviours that a naive
implementation gets wrong:

* ``advance`` past several overdue groups must flush them oldest
  deadline first, with submit order breaking ties — dict iteration
  order would make replays diverge;
* a per-request ``deadline_ns`` must *tighten* (never loosen) the
  owning group's flush deadline;
* a deadline in the simulated past is a programming error, not a
  silently-immediate flush.
"""

import numpy as np
import pytest

from repro.core.planner import BatchScheduler
from repro.errors import PlanError
from repro.hardware.controller import PIMController

N_MATRICES = 4


@pytest.fixture
def controller():
    controller = PIMController()
    for i in range(N_MATRICES):
        controller.pim.program_matrix(
            f"m{i}", np.full((2, 8), i + 1, dtype=np.int64)
        )
    return controller


def flush_order(scheduler):
    """Matrix names in the order their flush recorded a wave."""
    return [
        name
        for name, state in scheduler.controller.pim.stats.per_matrix.items()
        if state.waves > 0
    ]


class TestOverdueFlushOrder:
    def test_oldest_deadline_flushes_first(self, controller):
        scheduler = BatchScheduler(controller, max_batch=32)
        # submit in one order, set deadlines in the reverse order
        scheduler.submit("m0", np.ones(8, dtype=np.int64), deadline_ns=300.0)
        scheduler.submit("m1", np.ones(8, dtype=np.int64), deadline_ns=200.0)
        scheduler.submit("m2", np.ones(8, dtype=np.int64), deadline_ns=100.0)
        assert scheduler.advance(1000.0) == 3
        assert flush_order(scheduler) == ["m2", "m1", "m0"]

    def test_deadline_ties_break_by_submit_order(self, controller):
        scheduler = BatchScheduler(controller, max_batch=32)
        for name in ("m2", "m0", "m3", "m1"):
            scheduler.submit(
                name, np.ones(8, dtype=np.int64), deadline_ns=50.0
            )
        assert scheduler.advance(50.0) == 4
        assert flush_order(scheduler) == ["m2", "m0", "m3", "m1"]

    def test_replay_flushes_identically(self, controller):
        def run():
            ctl = PIMController()
            for i in range(N_MATRICES):
                ctl.pim.program_matrix(
                    f"m{i}", np.full((2, 8), i + 1, dtype=np.int64)
                )
            scheduler = BatchScheduler(ctl, max_batch=32, max_delay_ns=80.0)
            for i, name in enumerate(("m1", "m3", "m0", "m2")):
                scheduler.submit(
                    name,
                    np.full(8, i, dtype=np.int64),
                    deadline_ns=40.0 if name in ("m3", "m0") else None,
                )
            scheduler.advance(500.0)
            return flush_order(scheduler)

        assert run() == run()
        assert run()[:2] == ["m3", "m0"]  # tightened pair fires first


class TestRequestDeadlines:
    def test_request_deadline_tightens_the_group(self, controller):
        scheduler = BatchScheduler(
            controller, max_batch=32, max_delay_ns=1000.0
        )
        scheduler.submit("m0", np.ones(8, dtype=np.int64))
        ticket = scheduler.submit(
            "m0", np.ones(8, dtype=np.int64), deadline_ns=100.0
        )
        assert scheduler.advance(100.0) == 1  # well before the 1000ns age
        assert ticket.done

    def test_later_looser_deadline_does_not_loosen(self, controller):
        scheduler = BatchScheduler(controller, max_batch=32)
        scheduler.submit(
            "m0", np.ones(8, dtype=np.int64), deadline_ns=100.0
        )
        scheduler.submit(
            "m0", np.ones(8, dtype=np.int64), deadline_ns=5000.0
        )
        assert scheduler.advance(100.0) == 1

    def test_past_deadline_is_rejected(self, controller):
        scheduler = BatchScheduler(controller, max_batch=32)
        scheduler.advance(500.0)
        with pytest.raises(PlanError, match="past"):
            scheduler.submit(
                "m0", np.ones(8, dtype=np.int64), deadline_ns=100.0
            )

    def test_values_survive_deadline_flush(self, controller):
        scheduler = BatchScheduler(controller, max_batch=32)
        vec = np.arange(8, dtype=np.int64)
        ticket = scheduler.submit("m1", vec, deadline_ns=10.0)
        scheduler.advance(10.0)
        np.testing.assert_array_equal(
            ticket.values, np.full((2, 8), 2, dtype=np.int64) @ vec
        )
        assert scheduler.stats.flush_reasons == {"deadline": 1}
