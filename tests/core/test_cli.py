"""Unit tests for the command-line interface."""

import io

import pytest

from repro.cli import build_parser, main


def run_cli(*argv: str) -> tuple[int, str]:
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_dataset(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["knn", "--dataset", "CIFAR"])

    def test_rejects_unknown_algorithm(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["knn", "--algorithm", "Annoy"])


class TestInfo:
    def test_prints_platform_and_catalog(self):
        code, text = run_cli("info")
        assert code == 0
        assert "131072 crossbars" in text
        assert "MSD" in text and "Trevi" in text


class TestKNNCommand:
    def test_standard_run(self):
        code, text = run_cli(
            "knn", "--dataset", "Year", "--n", "400", "--queries", "2",
            "--k", "5",
        )
        assert code == 0
        assert "results exact  : True" in text
        assert "speedup" in text

    def test_cosine_measure(self):
        code, text = run_cli(
            "knn", "--dataset", "Year", "--n", "300", "--queries", "1",
            "--measure", "cosine",
        )
        assert code == 0
        assert "results exact  : True" in text

    def test_plan_optimization_note_for_non_fnn(self):
        code, text = run_cli(
            "knn", "--dataset", "Year", "--n", "300", "--queries", "1",
            "--optimize-plan",
        )
        assert code == 0
        assert "only applies to FNN" in text


class TestKMeansCommand:
    def test_standard_run(self):
        code, text = run_cli(
            "kmeans", "--dataset", "Year", "--n", "300", "--k", "6",
            "--max-iters", "4",
        )
        assert code == 0
        assert "same clustering: True" in text


class TestProfileCommand:
    def test_knn_profile(self):
        code, text = run_cli(
            "profile", "--dataset", "Year", "--n", "300", "--task", "knn",
        )
        assert code == 0
        assert "Tcache" in text
        assert "PIM-oracle" in text

    def test_kmeans_profile(self):
        code, text = run_cli(
            "profile", "--dataset", "Year", "--n", "300",
            "--task", "kmeans", "--algorithm", "Yinyang", "--k", "6",
        )
        assert code == 0
        assert "ED" in text


class TestServeCommand:
    def test_plain_serve_reports_health(self):
        code, text = run_cli(
            "serve", "--dataset", "Year", "--n", "200", "--shards", "2",
            "--requests", "10",
        )
        assert code == 0
        assert "health         : shard0=up shard1=up" in text

    def test_self_healing_serve_run(self):
        code, text = run_cli(
            "serve", "--dataset", "Year", "--n", "240", "--shards", "4",
            "--replication", "2", "--requests", "20", "--chaos",
            "--repair", "--spares", "12", "--scrub-period", "200",
        )
        assert code == 0
        assert "health         :" in text
        assert "scrubber       :" in text
        assert "repair         :" in text
        assert "replicas       :" in text

    def test_observability_serve_run(self, tmp_path):
        trace = tmp_path / "serve.trace.json"
        prom = tmp_path / "serve.prom"
        code, text = run_cli(
            "serve", "--dataset", "Year", "--n", "240", "--shards", "2",
            "--requests", "20", "--live-report", "10",
            "--burn-window-us", "20",
            "--trace-out", str(trace), "--prom-out", str(prom),
        )
        assert code == 0
        assert "live report" in text
        assert "alerts         :" in text
        assert "slowest request (critical path):" in text
        assert "prom written   :" in text
        assert trace.exists() and prom.exists()
        assert prom.read_text().rstrip().endswith("# EOF")
