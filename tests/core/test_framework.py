"""Unit tests for the PIMAccelerator facade."""

import numpy as np
import pytest

from repro.core.framework import PIMAccelerator
from repro.errors import ConfigurationError
from repro.hardware.config import baseline_platform


@pytest.fixture
def data(clustered_data):
    return clustered_data


@pytest.fixture
def queries(data, rng):
    picks = rng.integers(0, len(data), size=2)
    return np.clip(
        data[picks] + 0.02 * rng.standard_normal((2, data.shape[1])), 0, 1
    )


class TestConstruction:
    def test_rejects_platform_without_pim(self):
        with pytest.raises(ConfigurationError):
            PIMAccelerator(hardware=baseline_platform())


class TestAccelerateKNN:
    def test_standard_speedup_and_exactness(self, data, queries):
        report = PIMAccelerator().accelerate_knn(
            "Standard", data, queries, k=5
        )
        assert report.results_match
        assert report.speedup > 1.0
        assert report.promising
        assert report.oracle_speedup >= report.speedup * 0.9

    def test_plan_recorded(self, data, queries):
        report = PIMAccelerator().accelerate_knn(
            "Standard", data, queries, k=5
        )
        assert report.plan == ("LB_PIM-ED",)

    def test_fnn_with_plan_optimization(self, data, queries):
        report = PIMAccelerator().accelerate_knn(
            "FNN", data, queries, k=5, optimize_plan=True
        )
        assert report.results_match
        assert any("plan ratios" in note for note in report.notes)

    def test_plan_optimization_only_for_fnn(self, data, queries):
        report = PIMAccelerator().accelerate_knn(
            "Standard", data, queries, k=5, optimize_plan=True
        )
        assert any("only applies to FNN" in note for note in report.notes)

    def test_cosine_measure(self, data, queries):
        report = PIMAccelerator().accelerate_knn(
            "Standard", data, queries, k=5, measure="cosine"
        )
        assert report.results_match


class TestAccelerateOutliers:
    def test_exact_and_reported(self, data):
        report = PIMAccelerator().accelerate_outliers(
            data, n_neighbors=4, n_outliers=5
        )
        assert report.results_match
        assert report.plan == ("LB_PIM-ED",)
        assert report.baseline.total_time_ns > 0
        assert report.optimized.pim_time_ns > 0


class TestAccelerateKMeans:
    def test_standard_speedup_and_exactness(self, data):
        report = PIMAccelerator().accelerate_kmeans(
            "Standard", data, k=8, max_iters=5
        )
        assert report.results_match
        assert report.speedup > 1.0

    def test_oracle_bound_respected(self, data):
        report = PIMAccelerator().accelerate_kmeans(
            "Standard", data, k=8, max_iters=5
        )
        assert report.speedup <= report.oracle_speedup + 1e-9

    def test_plan_names_the_pim_bound(self, data):
        report = PIMAccelerator().accelerate_kmeans(
            "Drake", data, k=8, max_iters=5
        )
        assert report.plan == ("LB_PIM-ED",)
