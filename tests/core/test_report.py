"""Unit tests for the text reporting helpers."""

import pytest

from repro.core.report import (
    format_fractions,
    format_speedup,
    format_table,
    format_time_ms,
    speedup,
)


class TestFormatTable:
    def test_aligned_columns(self):
        text = format_table(
            ["name", "value"], [["alpha", 1.5], ["b", 22.0]], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "value" in lines[1]
        assert len(lines) == 5

    def test_empty_rows(self):
        text = format_table(["a"], [])
        assert "a" in text

    def test_float_formatting(self):
        text = format_table(["x"], [[1.23456789]])
        assert "1.235" in text


class TestNumbers:
    def test_format_fractions(self):
        text = format_fractions({"Tc": 0.25, "Tcache": 0.75})
        assert "Tc= 25.0%" in text
        assert "Tcache= 75.0%" in text

    def test_format_time_ms(self):
        assert format_time_ms(2.5e6) == "2.500 ms"

    def test_speedup(self):
        assert speedup(100.0, 10.0) == pytest.approx(10.0)
        assert speedup(1.0, 0.0) == float("inf")

    def test_format_speedup(self):
        assert format_speedup(100.0, 10.0) == "10.0x"
