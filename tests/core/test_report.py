"""Unit tests for the text reporting helpers."""

import pytest

from repro.core.report import (
    format_fractions,
    format_speedup,
    format_table,
    format_time_ms,
    speedup,
)


class TestFormatTable:
    def test_aligned_columns(self):
        text = format_table(
            ["name", "value"], [["alpha", 1.5], ["b", 22.0]], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "value" in lines[1]
        assert len(lines) == 5

    def test_empty_rows(self):
        text = format_table(["a"], [])
        assert "a" in text

    def test_float_formatting(self):
        text = format_table(["x"], [[1.23456789]])
        assert "1.235" in text


class TestNumbers:
    def test_format_fractions(self):
        text = format_fractions({"Tc": 0.25, "Tcache": 0.75})
        assert "Tc= 25.0%" in text
        assert "Tcache= 75.0%" in text

    def test_format_time_ms(self):
        assert format_time_ms(2.5e6) == "2.500 ms"

    def test_speedup(self):
        assert speedup(100.0, 10.0) == pytest.approx(10.0)
        assert speedup(1.0, 0.0) == float("inf")

    def test_format_speedup(self):
        assert format_speedup(100.0, 10.0) == "10.0x"


class TestRaggedRows:
    def test_short_rows_are_padded(self):
        from repro.core.report import format_table

        text = format_table(
            ["a", "b", "c"], [["x"], ["y", 2.0], ["z", 3.0, "full"]]
        )
        lines = text.splitlines()
        assert all(len(line) == len(lines[0]) for line in lines)
        assert "full" in text

    def test_rows_wider_than_headers(self):
        from repro.core.report import format_table

        text = format_table(["only"], [["v", "extra", 42]])
        assert "extra" in text and "42" in text

    def test_no_headers_at_all(self):
        from repro.core.report import format_table

        assert "x" in format_table([], [["x"]])


class TestFormatMetrics:
    def test_union_of_summary_keys(self):
        from repro.core.report import format_metrics

        table = format_metrics(
            {
                "pim.waves": {"type": "counter", "value": 12.0},
                "prune.survivors": {
                    "type": "histogram",
                    "count": 3.0,
                    "mean": 4.0,
                },
            }
        )
        lines = table.splitlines()
        header = lines[0]
        for key in ("metric", "type", "value", "count", "mean"):
            assert key in header
        assert "pim.waves" in table and "counter" in table
        assert "histogram" in table

    def test_empty_registry(self):
        from repro.core.report import format_metrics

        assert format_metrics({}) == ""
