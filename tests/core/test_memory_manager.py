"""Unit tests for the Theorem 4 capacity solver."""

import pytest

from repro.core.memory_manager import (
    choose_compressed_dims,
    choose_fnn_segments,
    choose_full_dims,
    max_vectors_at_dims,
)
from repro.errors import CapacityError
from repro.hardware.config import CrossbarConfig, PIMArrayConfig
from repro.hardware.mapper import fits


@pytest.fixture
def paper_config() -> PIMArrayConfig:
    return PIMArrayConfig()


@pytest.fixture
def constrained_config() -> PIMArrayConfig:
    """16x16 crossbars, 600 of them (see mining tests for the math)."""
    return PIMArrayConfig(
        crossbar=CrossbarConfig(rows=16, cols=16, cell_bits=2),
        capacity_bytes=600 * 64,
        operand_bits=2,
    )


class TestChooseCompressedDims:
    def test_small_data_is_lossless(self, paper_config):
        plan = choose_compressed_dims(1000, 420, paper_config)
        assert plan.is_lossless
        assert plan.compression_ratio == 1.0

    def test_paper_scale_forces_compression(self, paper_config):
        # MSD at paper scale with the doubled FNN payload compresses
        plan = choose_compressed_dims(
            992272, 420, paper_config, dims_per_object=2
        )
        assert not plan.is_lossless
        assert fits(992272, plan.compressed_dims * 2, paper_config)

    def test_maximality(self, paper_config):
        plan = choose_compressed_dims(992272, 4096, paper_config)
        assert fits(992272, plan.compressed_dims, paper_config)
        assert not fits(992272, plan.compressed_dims + 1, paper_config)

    def test_candidate_restriction(self, paper_config):
        plan = choose_compressed_dims(
            992272, 4096, paper_config, candidates=[64, 128, 256, 512]
        )
        assert plan.compressed_dims in {64, 128, 256, 512}

    def test_nothing_fits(self, constrained_config):
        with pytest.raises(CapacityError):
            choose_compressed_dims(10**9, 64, constrained_config)


class TestChooseFNNSegments:
    def test_divides_dims(self, constrained_config):
        s = choose_fnn_segments(2000, 64, constrained_config)
        assert 64 % s == 0
        assert s == 16  # worked example from the mapper math

    def test_unconstrained_is_full(self, paper_config):
        assert choose_fnn_segments(1000, 64, paper_config) == 64


class TestChooseFullDims:
    def test_reports_feasibility(self, paper_config):
        plan = choose_full_dims(992272, 420, paper_config)
        assert not plan.is_lossless or plan.compressed_dims == 420


class TestMaxVectorsAtDims:
    def test_inverse_of_fits(self, constrained_config):
        n = max_vectors_at_dims(8, constrained_config)
        assert fits(n, 8, constrained_config)
        assert not fits(n + 1, 8, constrained_config)

    def test_paper_array_holds_msd(self, paper_config):
        assert max_vectors_at_dims(105, paper_config) >= 992272
