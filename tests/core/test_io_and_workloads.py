"""Unit tests for artifact persistence and workload generators."""

import numpy as np
import pytest

from repro.data.workloads import KINDS, make_workload, workload_suite
from repro.errors import DatasetError
from repro.io import load_quantized, save_quantized
from repro.similarity.quantization import Quantizer


class TestArtifactRoundTrip:
    def test_round_trip(self, tmp_path, rng):
        data = rng.random((40, 8))
        quantizer = Quantizer(alpha=1000, assume_normalized=True)
        qv = quantizer.fit_quantize(data)
        phi = (qv.scaled**2).sum(axis=1)
        path = save_quantized(
            tmp_path / "msd", quantizer, qv.integers, {"phi": phi}
        )
        loaded_q, integers, side = load_quantized(path)
        assert np.array_equal(integers, qv.integers)
        assert np.allclose(side["phi"], phi)
        assert loaded_q.alpha == quantizer.alpha
        assert loaded_q.assume_normalized

    def test_reloaded_quantizer_quantizes_identically(self, tmp_path, rng):
        data = rng.random((20, 6)) * 7 - 2  # raw, needs normalisation
        quantizer = Quantizer(alpha=500)
        qv = quantizer.fit_quantize(data)
        path = save_quantized(tmp_path / "raw", quantizer, qv.integers)
        loaded_q, _, _ = load_quantized(path)
        query = rng.random(6) * 7 - 2
        assert np.array_equal(
            loaded_q.quantize(query).integers,
            quantizer.quantize(query).integers,
        )

    def test_appends_npz_suffix(self, tmp_path, rng):
        quantizer = Quantizer(assume_normalized=True)
        qv = quantizer.fit_quantize(rng.random((5, 3)))
        path = save_quantized(tmp_path / "x", quantizer, qv.integers)
        assert path.suffix == ".npz"
        assert path.exists()

    def test_rejects_unfitted_quantizer(self, tmp_path):
        with pytest.raises(DatasetError):
            save_quantized(tmp_path / "x", Quantizer(), np.zeros((1, 1)))

    def test_rejects_reserved_name(self, tmp_path, rng):
        quantizer = Quantizer(assume_normalized=True)
        qv = quantizer.fit_quantize(rng.random((5, 3)))
        with pytest.raises(DatasetError, match="reserved"):
            save_quantized(
                tmp_path / "x", quantizer, qv.integers,
                {"integers": np.zeros(3)},
            )

    def test_missing_file(self, tmp_path):
        with pytest.raises(DatasetError, match="no artifact"):
            load_quantized(tmp_path / "missing.npz")

    def test_non_artifact_file(self, tmp_path):
        path = tmp_path / "other.npz"
        np.savez(path, stuff=np.zeros(3))
        with pytest.raises(DatasetError, match="not a repro artifact"):
            load_quantized(path)


class TestWorkloads:
    @pytest.fixture
    def data(self, rng):
        return rng.random((100, 12))

    def test_all_kinds_generate(self, data):
        suite = workload_suite(data, n_queries=4)
        assert set(suite) == set(KINDS)
        for queries in suite.values():
            assert queries.shape == (4, 12)
            assert queries.min() >= 0.0 and queries.max() <= 1.0

    def test_member_queries_are_dataset_rows(self, data):
        queries = make_workload(data, "member", n_queries=3, seed=1)
        for q in queries:
            assert np.any(np.all(np.isclose(data, q), axis=1))

    def test_deterministic(self, data):
        a = make_workload(data, "near", seed=2)
        b = make_workload(data, "near", seed=2)
        assert np.array_equal(a, b)

    def test_adversarial_queries_sit_centrally(self, data):
        queries = make_workload(data, "adversarial", n_queries=3, seed=1)
        center = data.mean(axis=0)
        for q in queries:
            assert np.linalg.norm(q - center) < np.linalg.norm(
                data - center, axis=1
            ).mean()

    def test_validation(self, data):
        with pytest.raises(DatasetError):
            make_workload(data, "weird")
        with pytest.raises(DatasetError):
            make_workload(data, "near", n_queries=0)
        with pytest.raises(DatasetError):
            make_workload(data[0], "near")
