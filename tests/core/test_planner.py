"""Unit tests for the Section V-D execution-plan optimizer."""

import numpy as np
import pytest

from repro.bounds.ed import FNNBound
from repro.bounds.pim import PIMFNNBound
from repro.core.planner import (
    ExecutionPlanner,
    optimize_fnn_plan,
    standalone_pruning_ratios,
)
from repro.errors import PlanError
from repro.hardware.controller import PIMController
from repro.mining.knn import StandardKNN


@pytest.fixture
def prepared_bounds(clustered_data):
    controller = PIMController()
    pim = PIMFNNBound(16, controller)
    originals = [FNNBound(2), FNNBound(8), FNNBound(16)]
    for bound in [pim] + originals:
        bound.prepare(clustered_data)
    return pim, originals


@pytest.fixture
def reference(clustered_data):
    return StandardKNN().fit(clustered_data)


class TestStandalonePruningRatios:
    def test_ratios_in_unit_interval(
        self, prepared_bounds, reference, clustered_data, rng
    ):
        pim, originals = prepared_bounds
        queries = clustered_data[rng.integers(0, len(clustered_data), 2)]
        ratios = standalone_pruning_ratios(
            [pim] + originals, reference, queries, 5
        )
        assert all(0.0 <= r <= 1.0 for r in ratios.values())

    def test_tighter_bound_prunes_more(
        self, prepared_bounds, reference, clustered_data, rng
    ):
        _, originals = prepared_bounds
        queries = clustered_data[rng.integers(0, len(clustered_data), 2)]
        ratios = standalone_pruning_ratios(originals, reference, queries, 5)
        assert ratios["LB_FNN_16"] >= ratios["LB_FNN_2"] - 1e-9

    def test_pim_bound_nearly_as_strong_as_same_resolution_original(
        self, prepared_bounds, reference, clustered_data, rng
    ):
        pim, originals = prepared_bounds
        queries = clustered_data[rng.integers(0, len(clustered_data), 2)]
        ratios = standalone_pruning_ratios(
            [pim, originals[2]], reference, queries, 5
        )
        assert ratios["LB_PIM-FNN_16"] >= ratios["LB_FNN_16"] - 0.02


class TestExecutionPlanner:
    def test_enumerates_all_subsets(self, prepared_bounds):
        pim, originals = prepared_bounds
        planner = ExecutionPlanner([pim] + originals, 1000, 32)
        plans = planner.enumerate_plans({})
        assert len(plans) == 2**4 - 1

    def test_plans_sorted_by_cost(self, prepared_bounds):
        pim, originals = prepared_bounds
        planner = ExecutionPlanner([pim] + originals, 1000, 32)
        plans = planner.enumerate_plans({b.name: 0.5 for b in [pim] + originals})
        costs = [p.transfer_bits for p in plans]
        assert costs == sorted(costs)

    def test_strong_pim_bound_wins_alone(self, prepared_bounds):
        # the paper's Fig. 16 outcome: when LB_PIM-FNN prunes more than
        # every original bound, the best plan keeps only the PIM bound
        pim, originals = prepared_bounds
        planner = ExecutionPlanner([pim] + originals, 10000, 420)
        ratios = {pim.name: 0.99}
        ratios.update({b.name: 0.9 for b in originals})
        best = planner.best_plan(ratios)
        assert best.names == (pim.name,)

    def test_weak_pim_bound_keeps_stronger_original(self, prepared_bounds):
        pim, originals = prepared_bounds
        planner = ExecutionPlanner([pim, originals[2]], 10000, 420)
        ratios = {pim.name: 0.30, originals[2].name: 0.95}
        best = planner.best_plan(ratios)
        assert pim.name in best.names
        assert originals[2].name in best.names

    def test_bounds_ordered_cheap_first(self, prepared_bounds):
        pim, originals = prepared_bounds
        planner = ExecutionPlanner([pim] + originals, 1000, 64)
        plans = planner.enumerate_plans({})
        for plan in plans:
            costs = [b.per_object_transfer_bits for b in plan.bounds]
            assert costs == sorted(costs)

    def test_rejects_empty_candidates(self):
        with pytest.raises(PlanError):
            ExecutionPlanner([], 10, 4)

    def test_no_filter_cost_is_full_scan(self, prepared_bounds):
        pim, _ = prepared_bounds
        planner = ExecutionPlanner([pim], 1000, 64)
        assert planner.no_filter_cost() == 1000 * 64 * 32


class TestGreedyPlanner:
    def test_matches_exhaustive_on_small_sets(self, prepared_bounds):
        pim, originals = prepared_bounds
        planner = ExecutionPlanner([pim] + originals, 10000, 420)
        ratios = {pim.name: 0.99}
        ratios.update({b.name: 0.9 for b in originals})
        exhaustive = planner.best_plan(ratios)
        greedy = planner.greedy_plan(ratios)
        assert greedy.names == exhaustive.names
        assert greedy.transfer_bits == pytest.approx(
            exhaustive.transfer_bits
        )

    def test_never_worse_than_single_best_bound(self, prepared_bounds):
        pim, originals = prepared_bounds
        planner = ExecutionPlanner([pim] + originals, 5000, 420)
        ratios = {b.name: 0.5 for b in [pim] + originals}
        greedy = planner.greedy_plan(ratios)
        singles = [
            planner._plan_cost((b,), ratios) for b in [pim] + originals
        ]
        assert greedy.transfer_bits <= min(singles) + 1e-9

    def test_empty_when_no_bound_helps(self, prepared_bounds):
        # with zero pruning, any filter only adds transfer
        pim, originals = prepared_bounds
        planner = ExecutionPlanner([pim] + originals, 1000, 4)
        greedy = planner.greedy_plan({})
        assert greedy.names == ()
        assert greedy.transfer_bits == planner.no_filter_cost()


class TestOptimizeFNNPlan:
    def test_returns_plan_and_ratios(
        self, prepared_bounds, reference, clustered_data, rng
    ):
        pim, originals = prepared_bounds
        queries = clustered_data[rng.integers(0, len(clustered_data), 2)]
        plan, ratios = optimize_fnn_plan(
            pim, originals, reference, queries, 5
        )
        assert plan.transfer_bits > 0
        assert set(ratios) == {pim.name} | {b.name for b in originals}

    def test_clustered_data_drops_originals(
        self, prepared_bounds, reference, clustered_data, rng
    ):
        # with the paper's alpha the PIM bound at the same resolution
        # dominates all originals, so the optimized plan is PIM-only
        pim, originals = prepared_bounds
        queries = clustered_data[rng.integers(0, len(clustered_data), 2)]
        plan, _ = optimize_fnn_plan(pim, originals, reference, queries, 5)
        assert plan.names == (pim.name,)


class TestBatchScheduler:
    @pytest.fixture
    def programmed(self):
        from repro.core.planner import BatchScheduler

        controller = PIMController()
        matrix = np.arange(32, dtype=np.int64).reshape(4, 8)
        controller.pim.program_matrix("d", matrix)
        return BatchScheduler, controller, matrix

    def test_size_flush_at_max_batch(self, programmed):
        BatchScheduler, controller, matrix = programmed
        scheduler = BatchScheduler(controller, max_batch=3)
        tickets = [
            scheduler.submit("d", np.full(8, i, dtype=np.int64))
            for i in range(3)
        ]
        assert all(t.done for t in tickets)
        assert scheduler.stats.flush_reasons == {"size": 1}
        assert scheduler.pending() == 0

    def test_deadline_flush_on_advance(self, programmed):
        BatchScheduler, controller, matrix = programmed
        scheduler = BatchScheduler(
            controller, max_batch=32, max_delay_ns=100.0
        )
        ticket = scheduler.submit("d", np.ones(8, dtype=np.int64))
        assert scheduler.advance(50.0) == 0
        assert not ticket.done
        assert scheduler.advance(60.0) == 1
        assert ticket.done
        assert scheduler.stats.flush_reasons == {"deadline": 1}

    def test_manual_flush_by_name(self, programmed):
        BatchScheduler, controller, matrix = programmed
        controller.pim.program_matrix(
            "e", np.ones((2, 8), dtype=np.int64)
        )
        scheduler = BatchScheduler(controller, max_batch=32)
        td = scheduler.submit("d", np.ones(8, dtype=np.int64))
        te = scheduler.submit("e", np.ones(8, dtype=np.int64))
        assert scheduler.flush("d") == 1
        assert td.done and not te.done
        assert scheduler.pending("e") == 1

    def test_demand_flush_only_touches_own_group(self, programmed):
        BatchScheduler, controller, matrix = programmed
        controller.pim.program_matrix(
            "e", np.ones((2, 8), dtype=np.int64)
        )
        scheduler = BatchScheduler(controller, max_batch=32)
        td = scheduler.submit("d", np.full(8, 2, dtype=np.int64))
        te = scheduler.submit("e", np.full(8, 2, dtype=np.int64))
        np.testing.assert_array_equal(
            td.values, matrix @ np.full(8, 2, dtype=np.int64)
        )
        assert not te.done
        assert scheduler.stats.flush_reasons == {"demand": 1}

    def test_rejects_bad_parameters(self, programmed):
        BatchScheduler, controller, matrix = programmed
        with pytest.raises(PlanError):
            BatchScheduler(controller, max_batch=0)
        with pytest.raises(PlanError):
            BatchScheduler(controller, max_delay_ns=-1.0)
        scheduler = BatchScheduler(controller)
        with pytest.raises(PlanError):
            scheduler.advance(-5.0)

    def test_grouping_respects_input_bits(self, programmed):
        BatchScheduler, controller, matrix = programmed
        scheduler = BatchScheduler(controller, max_batch=2)
        a = scheduler.submit("d", np.ones(8, dtype=np.int64), input_bits=4)
        b = scheduler.submit("d", np.ones(8, dtype=np.int64), input_bits=8)
        assert not a.done and not b.done  # distinct groups, no size flush
        assert scheduler.flush() == 2
        assert scheduler.stats.batches_flushed == 2
