"""Unit tests for the Section IV profiler."""

import numpy as np
import pytest

from repro.core.profiler import profile_kmeans, profile_knn
from repro.mining.kmeans import initial_centers, make_kmeans
from repro.mining.knn import FNNKNN, StandardKNN, StandardPIMKNN


@pytest.fixture
def data(clustered_data):
    return clustered_data


@pytest.fixture
def queries(data, rng):
    picks = rng.integers(0, len(data), size=3)
    return np.clip(
        data[picks] + 0.02 * rng.standard_normal((3, data.shape[1])), 0, 1
    )


class TestProfileKNN:
    def test_baseline_profile_fields(self, data, queries):
        profile = profile_knn(StandardKNN().fit(data), queries, 5)
        assert profile.name == "Standard"
        assert profile.cpu_time_ns > 0
        assert profile.pim_time_ns == 0.0
        assert profile.total_time_ms > 0
        assert profile.extras["n_queries"] == 3.0

    def test_fig5_shape_cache_dominates(self, data, queries):
        # the paper's Fig. 5: Tcache accounts for 65-83% of kNN time
        profile = profile_knn(StandardKNN().fit(data), queries, 5)
        fractions = profile.component_fractions()
        assert fractions["Tcache"] > 0.5
        assert sum(fractions.values()) == pytest.approx(1.0)

    def test_fig6_shape_ed_dominates_standard(self, data, queries):
        profile = profile_knn(StandardKNN().fit(data), queries, 5)
        fractions = profile.function_fractions()
        assert fractions["euclidean"] > 0.8

    def test_fig6_shape_bounds_dominate_fnn(self, data, queries):
        profile = profile_knn(FNNKNN(data.shape[1]).fit(data), queries, 5)
        fractions = profile.function_fractions()
        bound_share = sum(
            v for k, v in fractions.items() if k.startswith("LB_FNN")
        )
        assert bound_share > fractions.get("other", 0.0)

    def test_eq2_oracle_below_total(self, data, queries):
        profile = profile_knn(StandardKNN().fit(data), queries, 5)
        assert profile.pim_oracle_ns < profile.cpu_time_ns
        assert profile.oracle_speedup > 1.0

    def test_pim_variant_includes_wave_time(self, data, queries):
        profile = profile_knn(StandardPIMKNN().fit(data), queries, 5)
        assert profile.pim_time_ns > 0
        assert profile.total_time_ns == pytest.approx(
            profile.cpu_time_ns + profile.pim_time_ns
        )

    def test_pim_variant_faster_than_baseline(self, data, queries):
        base = profile_knn(StandardKNN().fit(data), queries, 5)
        pim = profile_knn(StandardPIMKNN().fit(data), queries, 5)
        assert pim.total_time_ns < base.total_time_ns

    def test_pim_no_slower_than_oracle(self, data, queries):
        # Eq. 2: the oracle is a floor for any PIM implementation
        base = profile_knn(StandardKNN().fit(data), queries, 5)
        pim = profile_knn(StandardPIMKNN().fit(data), queries, 5)
        assert pim.total_time_ns >= base.pim_oracle_ns


class TestProfileKMeans:
    def test_per_iteration_metric(self, data):
        centers = initial_centers(data, 8, seed=1)
        profile = profile_kmeans(
            make_kmeans("Standard", 8, max_iters=5), data, centers=centers
        )
        assert profile.extras["time_per_iteration_ms"] > 0
        assert profile.extras["n_iterations"] >= 1

    def test_ed_dominates_lloyd(self, data):
        centers = initial_centers(data, 8, seed=1)
        profile = profile_kmeans(
            make_kmeans("Standard", 8, max_iters=5), data, centers=centers
        )
        assert profile.function_fractions()["ED"] > 0.5

    def test_pim_variant_faster(self, data):
        centers = initial_centers(data, 8, seed=1)
        base = profile_kmeans(
            make_kmeans("Standard", 8, max_iters=5),
            data,
            centers=centers.copy(),
        )
        pim = profile_kmeans(
            make_kmeans("Standard-PIM", 8, max_iters=5),
            data,
            centers=centers.copy(),
        )
        assert pim.total_time_ns < base.total_time_ns
        assert pim.extras["inertia"] == pytest.approx(base.extras["inertia"])


class TestOracleSpeedup:
    def _profile(self, cpu_ns: float, pim_ns: float, oracle_ns: float):
        from repro.core.profiler import AlgorithmProfile
        from repro.cost.counters import PerfCounters
        from repro.cost.model import ComponentBreakdown

        return AlgorithmProfile(
            name="synthetic",
            counters=PerfCounters(),
            components=ComponentBreakdown(cpu_ns, 0.0, 0.0, 0.0, 0.0),
            function_times_ns={},
            cpu_time_ns=cpu_ns,
            pim_time_ns=pim_ns,
            offloadable=(),
            pim_oracle_ns=oracle_ns,
        )

    def test_counts_pim_wave_time(self):
        # regression: the docstring promises T_total / T_PIM-oracle, so
        # a PIM variant's wave time must be part of the numerator
        profile = self._profile(cpu_ns=100.0, pim_ns=50.0, oracle_ns=30.0)
        assert profile.oracle_speedup == pytest.approx(
            profile.total_time_ns / 30.0
        )
        assert profile.oracle_speedup == pytest.approx(5.0)

    def test_baseline_unchanged(self):
        # for baselines (pim_time_ns == 0) total and CPU time coincide
        profile = self._profile(cpu_ns=100.0, pim_ns=0.0, oracle_ns=25.0)
        assert profile.oracle_speedup == pytest.approx(4.0)

    def test_zero_oracle_is_infinite(self):
        profile = self._profile(cpu_ns=100.0, pim_ns=0.0, oracle_ns=0.0)
        assert profile.oracle_speedup == float("inf")
