"""Unit tests for the Table 3 CPU bounds.

The defining contracts: lower bounds never exceed the squared ED, and
UB_part never undershoots the cosine similarity.
"""

import numpy as np
import pytest

from repro.bounds.ed import FNNBound, OSTBound, PartitionUpperBound, SMBound
from repro.cost.counters import PerfCounters
from repro.errors import ConfigurationError, OperandError
from repro.similarity.measures import cosine_batch, euclidean_batch


@pytest.fixture
def data(clustered_data):
    return clustered_data


@pytest.fixture
def query(query_vector):
    return query_vector


class TestOSTBound:
    def test_lower_bounds_ed(self, data, query):
        bound = OSTBound(head_dims=16)
        bound.prepare(data)
        lb = bound.evaluate(query)
        ed = euclidean_batch(data, query)
        assert np.all(lb <= ed + 1e-9)

    def test_full_head_equals_ed_plus_zero_tail(self, data, query):
        bound = OSTBound(head_dims=data.shape[1])
        bound.prepare(data)
        assert np.allclose(bound.evaluate(query), euclidean_batch(data, query))

    def test_subset_evaluation(self, data, query):
        bound = OSTBound(head_dims=8)
        bound.prepare(data)
        full = bound.evaluate(query)
        subset = bound.evaluate(query, np.array([3, 7, 11]))
        assert np.allclose(subset, full[[3, 7, 11]])

    def test_transfer_and_flops_profile(self):
        bound = OSTBound(head_dims=16)
        assert bound.per_object_transfer_bits == (16 + 1) * 32
        assert bound.per_object_flops > 0

    def test_unprepared_raises(self, query):
        with pytest.raises(OperandError):
            OSTBound(head_dims=4).evaluate(query)

    def test_head_exceeding_dims(self, data):
        bound = OSTBound(head_dims=100)
        with pytest.raises(ConfigurationError):
            bound.prepare(data)

    def test_charge_records_events(self, data, query):
        bound = OSTBound(head_dims=8)
        bound.prepare(data)
        counters = PerfCounters()
        bound.charge(counters, 10)
        events = counters.events(bound.name)
        assert events.calls == 10
        assert events.bytes_from_memory == pytest.approx(
            bound.per_object_transfer_bits / 8 * 10
        )


class TestSMBound:
    def test_lower_bounds_ed(self, data, query):
        bound = SMBound(n_segments=8)
        bound.prepare(data)
        assert np.all(bound.evaluate(query) <= euclidean_batch(data, query) + 1e-9)

    def test_coarser_is_looser(self, data, query):
        ed = euclidean_batch(data, query)
        coarse = SMBound(n_segments=2)
        fine = SMBound(n_segments=16)
        coarse.prepare(data)
        fine.prepare(data)
        # both are valid; the finer one is on average tighter
        assert fine.evaluate(query).mean() >= coarse.evaluate(query).mean() - 1e-9
        assert np.all(fine.evaluate(query) <= ed + 1e-9)

    def test_rejects_zero_segments(self):
        with pytest.raises(ConfigurationError):
            SMBound(n_segments=0)


class TestFNNBound:
    def test_lower_bounds_ed(self, data, query):
        bound = FNNBound(n_segments=8)
        bound.prepare(data)
        assert np.all(bound.evaluate(query) <= euclidean_batch(data, query) + 1e-9)

    def test_tighter_than_sm(self, data, query):
        # LB_FNN adds the sigma term, so it dominates LB_SM per segment
        sm = SMBound(n_segments=8)
        fnn = FNNBound(n_segments=8)
        sm.prepare(data)
        fnn.prepare(data)
        assert np.all(fnn.evaluate(query) >= sm.evaluate(query) - 1e-9)

    def test_transfer_counts_means_and_stds(self):
        assert FNNBound(n_segments=8).per_object_transfer_bits == 2 * 8 * 32

    def test_subset_evaluation(self, data, query):
        bound = FNNBound(n_segments=4)
        bound.prepare(data)
        idx = np.array([0, 5, 9])
        assert np.allclose(
            bound.evaluate(query, idx), bound.evaluate(query)[idx]
        )


class TestPartitionUpperBound:
    def test_upper_bounds_cosine(self, data, query):
        bound = PartitionUpperBound(head_dims=16)
        bound.prepare(data)
        ub = bound.evaluate(query)
        cs = cosine_batch(data, query)
        assert np.all(ub >= cs - 1e-9)

    def test_unnormalized_bounds_dot_product(self, data, query):
        bound = PartitionUpperBound(head_dims=16, normalize=False)
        bound.prepare(data)
        ub = bound.evaluate(query)
        dots = data @ query
        assert np.all(ub >= dots - 1e-9)

    def test_pruning_direction_is_upper(self):
        bound = PartitionUpperBound(head_dims=4)
        values = np.array([0.1, 0.9])
        assert bound.prunes(values, 0.5).tolist() == [True, False]


class TestPruningSemantics:
    def test_lower_bound_prunes_above_threshold(self, data, query):
        bound = FNNBound(n_segments=8)
        bound.prepare(data)
        values = np.array([0.5, 1.5, 2.5])
        assert bound.prunes(values, 1.5).tolist() == [False, False, True]

    def test_survivors_with_indices(self, data, query):
        bound = FNNBound(n_segments=8)
        bound.prepare(data)
        values = np.array([0.5, 2.5, 1.0])
        indices = np.array([10, 20, 30])
        survivors = bound.survivors(values, 1.5, indices)
        assert survivors.tolist() == [10, 30]
