"""Unit tests for the PIM-aware bounds (Theorems 1-2 and friends)."""

import numpy as np
import pytest

from repro.bounds.ed import FNNBound, OSTBound, SMBound
from repro.bounds.pim import (
    PIMCosineBound,
    PIMEuclideanBound,
    PIMFNNBound,
    PIMHammingDistance,
    PIMOSTBound,
    PIMPearsonBound,
    PIMSMBound,
)
from repro.errors import OperandError
from repro.hardware.config import HardwareConfig, PIMArrayConfig
from repro.hardware.controller import PIMController
from repro.similarity.measures import (
    cosine_batch,
    euclidean_batch,
    hamming_batch,
    pearson_batch,
)
from repro.similarity.quantization import Quantizer


@pytest.fixture
def data(clustered_data):
    return clustered_data


@pytest.fixture
def query(query_vector):
    return query_vector


class TestPIMEuclideanBound:
    def test_theorem1_lower_bound(self, controller, data, query):
        bound = PIMEuclideanBound(controller)
        bound.prepare(data)
        lb = bound.evaluate(query)
        ed = euclidean_batch(data, query)
        assert np.all(lb <= ed + 1e-9)
        assert np.all(lb >= 0.0)

    def test_theorem3_error_bound(self, data, query):
        quantizer = Quantizer(alpha=1000, assume_normalized=True)
        bound = PIMEuclideanBound(PIMController(), quantizer)
        bound.prepare(data)
        lb = bound.evaluate(query)
        ed = euclidean_batch(data, query)
        assert np.all(ed - lb <= quantizer.error_bound(data.shape[1]) + 1e-9)

    def test_tightness_with_paper_alpha(self, controller, data, query):
        bound = PIMEuclideanBound(controller)
        bound.prepare(data)
        lb = bound.evaluate(query)
        ed = euclidean_batch(data, query)
        nonzero = ed > 1e-6
        assert (lb[nonzero] / ed[nonzero]).mean() > 0.999

    def test_subset_indices(self, controller, data, query):
        bound = PIMEuclideanBound(controller)
        bound.prepare(data)
        full = bound.evaluate(query)
        idx = np.array([1, 4, 9])
        assert np.allclose(bound.evaluate(query, idx), full[idx])

    def test_wave_cache_avoids_refiring(self, controller, data, query):
        bound = PIMEuclideanBound(controller)
        bound.prepare(data)
        bound.evaluate(query)
        waves = controller.pim.stats.waves
        bound.evaluate(query, np.array([0, 1]))
        assert controller.pim.stats.waves == waves

    def test_new_query_fires_new_wave(self, controller, data, query, rng):
        bound = PIMEuclideanBound(controller)
        bound.prepare(data)
        bound.evaluate(query)
        waves = controller.pim.stats.waves
        bound.evaluate(np.clip(query + 0.01 * rng.standard_normal(32), 0, 1))
        assert controller.pim.stats.waves == waves + 1

    def test_transfer_is_three_operands(self, controller):
        assert PIMEuclideanBound(controller).per_object_transfer_bits == 96

    def test_reprepare_same_data_is_noop(self, controller, data):
        bound = PIMEuclideanBound(controller)
        bound.prepare(data)
        crossbars = controller.pim.stats.crossbars_used
        bound.prepare(data)
        assert controller.pim.stats.crossbars_used == crossbars

    def test_reprepare_different_data_raises(self, controller, data, rng):
        bound = PIMEuclideanBound(controller)
        bound.prepare(data)
        with pytest.raises(OperandError, match="different dataset"):
            bound.prepare(rng.random((10, 32)))

    def test_unprepared_raises(self, controller, query):
        with pytest.raises(OperandError):
            PIMEuclideanBound(controller).evaluate(query)

    def test_evaluate_matrix_matches_loop(self, controller, data, rng):
        bound = PIMEuclideanBound(controller)
        bound.prepare(data)
        queries = np.clip(rng.random((4, data.shape[1])), 0, 1)
        matrix = bound.evaluate_matrix(queries)
        assert matrix.shape == (data.shape[0], 4)
        for j, q in enumerate(queries):
            assert np.allclose(matrix[:, j], bound.evaluate(q))


class TestPIMFNNBound:
    def test_theorem2_below_lb_fnn(self, controller, data, query):
        original = FNNBound(8)
        original.prepare(data)
        pim = PIMFNNBound(8, controller)
        pim.prepare(data)
        assert np.all(pim.evaluate(query) <= original.evaluate(query) + 1e-9)

    def test_also_below_ed(self, controller, data, query):
        pim = PIMFNNBound(4, controller)
        pim.prepare(data)
        assert np.all(
            pim.evaluate(query) <= euclidean_batch(data, query) + 1e-9
        )

    def test_single_wave_covers_means_and_stds(self, controller, data, query):
        pim = PIMFNNBound(8, controller)
        pim.prepare(data)
        waves = controller.pim.stats.waves
        pim.evaluate(query)
        assert controller.pim.stats.waves == waves + 1
        layout = controller.pim.layouts()[pim._matrix_name]
        assert layout.dims == 2 * 8  # concatenated mu/sigma


class TestPIMSMBound:
    def test_below_lb_sm(self, controller, data, query):
        original = SMBound(8)
        original.prepare(data)
        pim = PIMSMBound(8, controller)
        pim.prepare(data)
        assert np.all(pim.evaluate(query) <= original.evaluate(query) + 1e-9)


class TestPIMOSTBound:
    def test_below_lb_ost(self, controller, data, query):
        original = OSTBound(head_dims=16)
        original.prepare(data)
        pim = PIMOSTBound(16, controller)
        pim.prepare(data)
        assert np.all(pim.evaluate(query) <= original.evaluate(query) + 1e-9)

    def test_below_ed(self, controller, data, query):
        pim = PIMOSTBound(16, controller)
        pim.prepare(data)
        assert np.all(
            pim.evaluate(query) <= euclidean_batch(data, query) + 1e-9
        )

    def test_rejects_head_at_full_dims(self, controller, data):
        pim = PIMOSTBound(data.shape[1], controller)
        with pytest.raises(OperandError):
            pim.prepare(data)


class TestPIMCosineBound:
    def test_upper_bounds_cosine(self, controller, data, query):
        bound = PIMCosineBound(controller)
        bound.prepare(data)
        ub = bound.evaluate(query)
        cs = cosine_batch(data, query)
        assert np.all(ub >= cs - 1e-9)
        assert np.all(ub <= 1.0 + 1e-12)


class TestPIMPearsonBound:
    def test_upper_bounds_pearson(self, controller, data, query):
        bound = PIMPearsonBound(controller)
        bound.prepare(data)
        ub = bound.evaluate(query)
        pc = pearson_batch(data, query)
        assert np.all(ub >= pc - 1e-9)

    def test_constant_row_never_pruned(self, controller, rng):
        data = rng.random((20, 8))
        data[3] = 0.5  # zero variance
        bound = PIMPearsonBound(controller)
        bound.prepare(data)
        ub = bound.evaluate(rng.random(8))
        assert ub[3] == pytest.approx(1.0)


class TestPIMHammingDistance:
    @pytest.fixture
    def binary_controller(self):
        return PIMController(
            HardwareConfig(
                pim=PIMArrayConfig(operand_bits=1, accumulator_bits=32)
            )
        )

    def test_exact_distance(self, binary_controller, rng):
        codes = rng.integers(0, 2, size=(50, 128))
        q = rng.integers(0, 2, size=128)
        hd = PIMHammingDistance(binary_controller)
        hd.prepare(codes)
        assert np.array_equal(
            hd.evaluate(q).astype(int), hamming_batch(codes, q)
        )

    def test_two_waves_per_query(self, binary_controller, rng):
        codes = rng.integers(0, 2, size=(10, 64))
        hd = PIMHammingDistance(binary_controller)
        hd.prepare(codes)
        waves = binary_controller.pim.stats.waves
        hd.evaluate(rng.integers(0, 2, size=64))
        assert binary_controller.pim.stats.waves == waves + 2

    def test_transfer_is_two_results(self, binary_controller):
        hd = PIMHammingDistance(binary_controller)
        assert hd.per_object_transfer_bits == 64

    def test_rejects_non_binary(self, binary_controller):
        hd = PIMHammingDistance(binary_controller)
        with pytest.raises(OperandError):
            hd.prepare(np.array([[0, 2]]))


class TestSharedController:
    def test_multiple_bounds_share_capacity(self, controller, data):
        b1 = PIMEuclideanBound(controller)
        b2 = PIMFNNBound(8, controller)
        b1.prepare(data)
        used = controller.pim.stats.crossbars_used
        b2.prepare(data)
        assert controller.pim.stats.crossbars_used > used
        assert len(controller.pim.layouts()) == 2
