"""Unit tests for bound cascades."""

import numpy as np
import pytest

from repro.bounds.cascade import BoundCascade
from repro.bounds.ed import FNNBound, PartitionUpperBound, SMBound
from repro.cost.counters import PerfCounters
from repro.errors import PlanError
from repro.similarity.measures import euclidean_batch


@pytest.fixture
def cascade(clustered_data):
    cascade = BoundCascade([FNNBound(2), FNNBound(8)])
    cascade.prepare(clustered_data)
    return cascade


class TestConstruction:
    def test_empty_cascade_rejected(self):
        with pytest.raises(PlanError):
            BoundCascade([])

    def test_mixed_directions_rejected(self):
        with pytest.raises(PlanError, match="mixes"):
            BoundCascade([FNNBound(2), PartitionUpperBound(head_dims=4)])


class TestFiltering:
    def test_survivors_never_include_true_neighbors_wrongly(
        self, cascade, clustered_data, query_vector
    ):
        ed = euclidean_batch(clustered_data, query_vector)
        threshold = float(np.sort(ed)[10])
        result = cascade.run(query_vector, threshold)
        # every object within the threshold must survive the cascade
        within = set(np.nonzero(ed <= threshold)[0].tolist())
        assert within.issubset(set(result.indices.tolist()))

    def test_stats_accumulate(self, cascade, clustered_data, query_vector):
        ed = euclidean_batch(clustered_data, query_vector)
        threshold = float(np.sort(ed)[10])
        cascade.run(query_vector, threshold)
        stats = cascade.stats
        assert stats[0].evaluated == clustered_data.shape[0]
        assert stats[1].evaluated == stats[0].evaluated - stats[0].pruned

    def test_counters_charged(self, cascade, clustered_data, query_vector):
        counters = PerfCounters()
        cascade.run(query_vector, 1.0, counters=counters)
        assert counters.events(cascade.bounds[0].name).calls > 0

    def test_initial_indices_respected(self, cascade, query_vector):
        subset = np.array([0, 1, 2, 3])
        result = cascade.run(query_vector, np.inf, indices=subset)
        assert set(result.indices.tolist()) == set(subset.tolist())

    def test_zero_threshold_prunes_everything_far(self, cascade, query_vector):
        result = cascade.run(query_vector, -1.0)
        assert result.indices.size == 0

    def test_pruning_ratios_and_reset(self, cascade, clustered_data, query_vector):
        cascade.run(query_vector, 0.5)
        ratios = cascade.pruning_ratios()
        assert set(ratios) == {b.name for b in cascade.bounds}
        cascade.reset_stats()
        assert all(s.evaluated == 0 for s in cascade.stats)
