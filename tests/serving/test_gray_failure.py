"""Gray-failure defenses: detection, ejection, hedging, brownout.

Unit-level pins for DESIGN.md section 14: the latency-outlier detector
ejects the right shard (and only for *relative* slowness, never for
structural load imbalance), adaptive hedges race a duplicate wave and
cancel on first win with honest accounting (the slow-but-successful
loser must not double-count into latency, utilization or the merged
PIMStats), the hedge budget is a hard cap, flaky links drop or delay
without ever changing values, observed latency bends replica routing,
and the brownout controller trades fidelity for availability only
while a burn-rate alert is firing.
"""

import numpy as np
import pytest

from repro.errors import ConfigurationError, ServingError
from repro.faults import FaultEvent, FaultPlan
from repro.observability import BrownoutController, BurnRateMonitor
from repro.serving import (
    HedgeBudget,
    QueryService,
    RecoveryPolicy,
    ShardHealthTracker,
    ShardManager,
)
from repro.substrate import CostRouter
from repro.telemetry import telemetry_session

K = 10
HORIZON_NS = 1.5e7


@pytest.fixture(scope="module")
def data():
    return np.random.default_rng(42).random((512, 32))


@pytest.fixture(scope="module")
def queries():
    return np.random.default_rng(7).normal(size=(40, 32))


def straggler_plan(shard="shard0", factor=12.0, seed=3):
    """One shard sustained-slow for the whole horizon."""
    return FaultPlan(
        (
            FaultEvent(
                t_ns=0.0,
                kind="slow_shard",
                target=shard,
                duration_ns=HORIZON_NS,
                params={"factor": factor},
            ),
        ),
        seed=seed,
    )


def serve_trace(data, queries, plan, policy, n_shards=4):
    """Drive a paced trace; returns (manager, latencies, timings)."""
    manager = ShardManager(
        data, n_shards=n_shards, replication=2,
        fault_plan=plan, recovery=policy, seed=0,
    )
    gap = HORIZON_NS / (len(queries) + 1)
    t = 0.0
    latencies, timings = [], []
    for q in queries:
        _, timing = manager.knn_batch(np.atleast_2d(q), K, now_ns=t)
        latencies.append(timing.service_ns)
        timings.append(timing)
        t += timing.service_ns + gap
    return manager, np.asarray(latencies), timings


DEFENDED = RecoveryPolicy(
    outlier_ejection=True, adaptive_hedge=True, hedge_budget=0.5
)


class TestOutlierDetection:
    def test_straggler_is_ejected_and_only_the_straggler(
        self, data, queries
    ):
        manager, _, _ = serve_trace(
            data, queries, straggler_plan(), DEFENDED, n_shards=4
        )
        snap = manager.health.snapshot(HORIZON_NS)
        ejections = [entry["ejections"] for entry in snap]
        assert ejections[0] >= 1
        assert sum(ejections[1:]) == 0
        assert snap[0]["suspicion"] > snap[1]["suspicion"]

    def test_answers_stay_bit_exact_under_the_straggler(
        self, data, queries
    ):
        clean = ShardManager(data, n_shards=1)
        reference = [clean.knn(q, K) for q in queries]
        manager = ShardManager(
            data, n_shards=4, replication=2,
            fault_plan=straggler_plan(), recovery=DEFENDED, seed=0,
        )
        t = 0.0
        for q, ref in zip(queries, reference):
            answers, timing = manager.knn_batch(
                np.atleast_2d(q), K, now_ns=t
            )
            assert answers[0].indices.tolist() == ref.indices.tolist()
            assert answers[0].scores.tolist() == ref.scores.tolist()
            t += timing.service_ns + HORIZON_NS / (len(queries) + 1)

    def test_structural_imbalance_is_not_ejected(self, data, queries):
        # no faults at all: any latency spread between shards is
        # structural (chunk sizes, substrate), and the magnitude gate
        # must keep every suspicion at zero
        manager, _, _ = serve_trace(
            data, queries, None, DEFENDED, n_shards=4
        )
        for entry in manager.health.snapshot(HORIZON_NS):
            assert entry["ejections"] == 0
            assert entry["status"] == "up"

    def test_snapshot_carries_detector_fields_and_gauges(
        self, data, queries
    ):
        with telemetry_session() as tele:
            manager, _, _ = serve_trace(
                data, queries, straggler_plan(), DEFENDED, n_shards=4
            )
            snap = manager.health.snapshot(HORIZON_NS)
            for entry in snap:
                assert "suspicion" in entry
                assert "ejected" in entry
                assert "observed_p95_ns" in entry
            assert snap[0]["observed_p95_ns"] is not None
            suspicion = tele.metrics.gauge("serving.shard0.suspicion")
            assert suspicion.value == pytest.approx(
                snap[0]["suspicion"]
            )
            assert (
                tele.metrics.gauge("serving.shard0.ejected").value
                == (1.0 if snap[0]["ejected"] else 0.0)
            )

    def test_ejection_is_demotion_not_blocking(self):
        policy = RecoveryPolicy(outlier_ejection=True)
        tracker = ShardHealthTracker(2, policy)
        tracker._eject(0, t_ns=0.0)
        assert tracker.available(0, 1.0)
        assert tracker.demoted(0, 1.0)
        assert tracker.prefer_order([0, 1], 1.0) == (1, 0)


class TestHedging:
    def test_hedge_wins_cut_the_tail(self, data, queries):
        _, lat_off, _ = serve_trace(
            data, queries, straggler_plan(), RecoveryPolicy()
        )
        _, lat_on, timings = serve_trace(
            data, queries, straggler_plan(), DEFENDED
        )
        assert sum(t.hedges_won for t in timings) >= 1
        # the detector needs min-samples to convict, so judge the tail
        # on the converged second half of the trace: once defenses are
        # up no request may pay the full straggler wave again
        steady = lat_on[len(lat_on) // 2:]
        assert steady.max() < np.percentile(lat_off, 99)
        assert np.percentile(lat_on, 50) < np.percentile(lat_off, 50)

    def test_losing_hedge_does_not_double_count(self, data, queries):
        """The slow-but-successful loser regression (satellite fix).

        Whichever side of the race loses still *completes* its wave;
        the loser's tail past the decision instant must vanish from
        the shard busy time and the merged PIMStats instead of being
        charged twice.
        """
        manager, lat_on, timings = serve_trace(
            data, queries, straggler_plan(), DEFENDED
        )
        cancelled = sum(t.hedge_cancelled_ns for t in timings)
        assert cancelled > 0.0
        merged = manager.merged_stats()
        assert merged.extra["hedge_cancelled_ns"] == pytest.approx(
            sum(s.cancelled_pim_ns for s in manager.shards)
        )
        # device time actually charged = raw array accounting minus
        # what the races discarded
        raw = sum(
            s.pim_stats.pim_time_ns for s in manager.shards
        )
        assert merged.pim_time_ns < raw
        # latency always follows the winner: no completed request may
        # be slower than the unhedged straggler wave
        manager_off, lat_off, _ = serve_trace(
            data, queries, straggler_plan(), RecoveryPolicy()
        )
        assert lat_on.max() <= lat_off.max()
        # the straggler's busy time sheds the cancelled tails too
        assert (
            manager.shards[0].busy_ns < manager_off.shards[0].busy_ns
        )

    def test_hedge_rate_respects_the_budget(self, data, queries):
        budget = 0.005
        policy = RecoveryPolicy(
            outlier_ejection=True, adaptive_hedge=True,
            hedge_budget=budget,
        )
        _, _, timings = serve_trace(
            data, queries, straggler_plan(), policy
        )
        attempts = sum(t.attempts for t in timings)
        hedges = sum(t.hedges for t in timings)
        assert attempts > 0
        assert hedges <= budget * attempts + 1.0  # initial burst token
        assert sum(t.hedges_denied for t in timings) >= 1

    def test_budget_token_bucket_arithmetic(self):
        budget = HedgeBudget(0.25, burst=1.0)
        assert budget.try_take()  # the initial burst token
        assert not budget.try_take()
        for _ in range(4):
            budget.accrue()
        assert budget.try_take()
        assert not budget.try_take()
        snap = budget.snapshot()
        assert snap["granted"] == 2
        assert snap["denied"] == 2


class TestFlakyLinks:
    def test_drops_are_counted_and_answers_exact(self, data, queries):
        plan = FaultPlan(
            (
                FaultEvent(
                    t_ns=0.0,
                    kind="link_flaky",
                    target="shard0",
                    duration_ns=HORIZON_NS,
                    params={
                        "drop_probability": 0.5,
                        "delay_probability": 0.3,
                        "delay_ns": 50_000.0,
                    },
                ),
            ),
            seed=5,
        )
        clean = ShardManager(data, n_shards=1)
        reference = [clean.knn(q, K) for q in queries]
        manager = ShardManager(
            data, n_shards=2, replication=2,
            fault_plan=plan, recovery=RecoveryPolicy(), seed=0,
        )
        drops = 0
        t = 0.0
        for q, ref in zip(queries, reference):
            answers, timing = manager.knn_batch(
                np.atleast_2d(q), K, now_ns=t
            )
            drops += timing.link_drops
            assert answers[0].indices.tolist() == ref.indices.tolist()
            t += timing.service_ns + HORIZON_NS / (len(queries) + 1)
        assert drops >= 1

    def test_link_verdicts_are_stateless_in_time(self):
        # detector-on and detector-off arms consult the plan a
        # different number of times; the weather must not depend on it
        plan = FaultPlan.gray_chaos(2, HORIZON_NS, seed=9)
        first = [plan.hash_unit("link", "shard0", w) for w in range(50)]
        again = [plan.hash_unit("link", "shard0", w) for w in range(50)]
        assert first == again


class TestObservedRouting:
    def test_observed_latency_reorders_replicas(self):
        router = CostRouter(objective="latency", observed_weight=1.0)
        candidates = [
            (0, "crossbar", 100, 8), (1, "crossbar", 100, 8),
        ]
        predicted = [
            s for s, _, _ in router.order(0, candidates).ranked
        ]
        observed = {predicted[0]: 1e9, predicted[1]: 1.0}
        seen = [
            s for s, _, _ in router.order(
                0, candidates, observed=observed
            ).ranked
        ]
        assert seen[0] == predicted[1]

    def test_observed_weight_is_validated(self):
        with pytest.raises(ConfigurationError):
            CostRouter(objective="latency", observed_weight=1.5)

    def test_route_cache_invalidated_on_health_version(self, data):
        manager = ShardManager(
            data, n_shards=2, replication=2, recovery=DEFENDED,
            route="latency", seed=0,
        )
        manager.knn(data[0], K)
        assert manager._route_cache
        manager.health.version += 1
        manager.knn(data[0], K)
        assert manager._health_version_seen == manager.health.version


class _StubMonitor:
    def __init__(self):
        self.now = lambda: 0.0
        self._firing = []

    def firing(self):
        return list(self._firing)


class TestBrownout:
    def test_requires_a_monitor(self):
        with pytest.raises(ServingError):
            BrownoutController(None)

    def test_engages_while_firing_and_holds(self):
        monitor = _StubMonitor()
        ctl = BrownoutController(monitor, hold_ns=100.0)
        assert not ctl.active(0.0)
        monitor._firing = [("p99_deadline", "fast")]
        assert ctl.active(10.0)
        monitor._firing = []
        assert ctl.active(50.0)  # inside the hold-down window
        assert not ctl.active(200.0)
        snap = ctl.snapshot()
        assert snap["engagements"] == 1
        assert [e["event"] for e in snap["events"]] == [
            "engaged", "released",
        ]

    def test_ignores_unwatched_objectives(self):
        monitor = _StubMonitor()
        ctl = BrownoutController(
            monitor, objectives=("p99_deadline",), hold_ns=100.0
        )
        monitor._firing = [("exactness", "fast")]
        assert not ctl.active(10.0)

    def test_service_rejects_mismatched_monitor(self, data):
        manager = ShardManager(data, n_shards=2)
        tenants = []
        monitor = BurnRateMonitor()
        other = BurnRateMonitor()
        with pytest.raises(ServingError):
            QueryService(
                manager, tenants, monitor=monitor,
                brownout=BrownoutController(other),
            )
        with pytest.raises(ServingError):
            QueryService(
                manager, tenants,
                brownout=BrownoutController(monitor),
            )
