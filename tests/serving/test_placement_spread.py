"""Domain-spread replica placement and the durability accounting.

The placement contract: with a failure-domain topology attached, no two
replicas of a chunk share a domain whenever the fleet shape allows —
and when it doesn't, the violation is *recorded*, never silent. Because
answers are placement-invariant by construction, every spread layout
must also serve bit-identically to the ring layout it replaces.
"""

import numpy as np
import pytest

from repro.errors import CapacityError, ServingError
from repro.hardware import FailureDomainTopology
from repro.repair import RepairController, RepairPolicy
from repro.serving import ShardManager
from repro.similarity.quantization import Quantizer


def topo(n_shards, spb=2, bpc=2, cpp=1):
    return FailureDomainTopology(
        n_shards=n_shards,
        shards_per_board=spb,
        boards_per_channel=bpc,
        channels_per_power_domain=cpp,
    )


def dataset(rows=64, dims=6, seed=0):
    return np.random.default_rng(seed).random((rows, dims))


class TestSpreadPlacement:
    def test_no_two_replicas_share_a_power_domain(self):
        t = topo(8)
        m = ShardManager(dataset(), 8, replication=2, topology=t)
        for c, replicas in enumerate(m.replicas):
            domains = {t.power_domain_of(s) for s in replicas}
            assert len(domains) == len(replicas), (
                f"chunk {c} replicas {replicas} share a power domain"
            )
        assert m.placement_violations == []

    def test_replication_three_spreads_across_boards_too(self):
        # 12 shards / boards of 2 / 3 boards per channel / 2 channels
        # per power domain -> 6 boards, 2 channels, 1 power domain:
        # full power spread is impossible (one rail), but three
        # replicas can always take three distinct boards
        t = topo(12, spb=2, bpc=3, cpp=2)
        m = ShardManager(dataset(96), 12, replication=3, topology=t)
        for replicas in m.replicas:
            boards = {t.board_of(s) for s in replicas}
            assert len(boards) == len(replicas)

    def test_impossible_spread_is_recorded_not_silent(self):
        # every shard on one board: any replica pair must share it
        t = topo(4, spb=4)
        m = ShardManager(dataset(32), 4, replication=2, topology=t)
        assert m.placement_violations, (
            "co-domain placement happened but nothing was recorded"
        )
        for v in m.placement_violations:
            assert v["context"] == "placement"
            assert v["level"] == "board"

    def test_spread_false_keeps_the_ring_layout(self):
        plain = ShardManager(dataset(), 8, replication=2)
        naive = ShardManager(
            dataset(), 8, replication=2, topology=topo(8), spread=False
        )
        assert naive.replicas == plain.replicas

    def test_spread_layout_serves_bit_identically(self):
        data = dataset(80, 8)
        queries = np.random.default_rng(3).random((5, 8))
        spread = ShardManager(data, 8, replication=2, topology=topo(8))
        ring = ShardManager(data, 8, replication=2)
        a, _ = spread.knn_batch(queries, 7)
        b, _ = ring.knn_batch(queries, 7)
        for x, y in zip(a, b):
            assert np.array_equal(x.indices, y.indices)
            assert np.array_equal(x.scores, y.scores)

    def test_topology_shard_count_must_match(self):
        with pytest.raises(ServingError):
            ShardManager(dataset(), 4, topology=topo(8))


class TestDurabilityAccounting:
    def test_spread_fleet_reports_no_risk_ring_fleet_does(self):
        t = topo(8)
        spread = ShardManager(dataset(), 8, replication=2, topology=t)
        ring = ShardManager(
            dataset(), 8, replication=2, topology=t, spread=False
        )
        assert spread.spread_report()["n_at_risk"] == 0
        # ring neighbours (c, c+1) share a board for even c
        assert ring.spread_report()["n_at_risk"] > 0

    def test_chunk_risk_names_the_widest_vulnerable_level(self):
        t = topo(8)
        m = ShardManager(
            dataset(), 8, replication=2, topology=t, spread=False
        )
        # chunk 0 lives on shards (0, 1): same board, channel and rail;
        # the *widest* single outage taking both is the power domain
        assert m.chunk_risk(0) == "power"
        # spread chunks keep fully disjoint replicas
        spread = ShardManager(dataset(), 8, replication=2, topology=t)
        assert spread.chunk_risk(0) is None

    def test_single_domain_levels_do_not_count_as_risk(self):
        # one board hosting everything: board/channel/power all have a
        # single fleet-wide domain, so no level can discriminate and
        # flagging every chunk would drown the signal
        t = topo(2, spb=2)
        m = ShardManager(dataset(16), 2, replication=2, topology=t)
        assert m.spread_report()["n_at_risk"] == 0

    def test_no_topology_degrades_to_replica_counting(self):
        m = ShardManager(dataset(), 4, replication=1)
        report = m.spread_report()
        assert report["topology"] is None
        assert report["n_at_risk"] == m.n_chunks  # one replica each

    def test_snapshot_carries_domains_and_at_risk_counts(self):
        t = topo(8)
        m = ShardManager(
            dataset(), 8, replication=2, topology=t, spread=False
        )
        snap = m.health.snapshot(0.0)
        assert snap[0]["domains"] == t.domains_of(0)
        assert any(r["hosted_at_risk_chunks"] > 0 for r in snap)

    def test_snapshot_without_topology_keeps_uniform_shape(self):
        m = ShardManager(dataset(), 4)
        for record in m.health.snapshot(0.0):
            assert record["domains"] is None
            # no-topology at-risk accounting still counts single-replica
            assert record["hosted_at_risk_chunks"] >= 0


class TestAddReplicaSpread:
    def test_auto_target_restores_spread(self):
        t = topo(8)
        m = ShardManager(
            dataset(), 8, replication=2, topology=t, spread=False
        )
        # chunk 0 lives on (0, 1) — same board; the chosen target must
        # land outside their shared power domain {0..3}
        record = m.add_replica(0)
        assert record["target"] >= 4
        assert m.chunk_risk(0) is None

    def test_explicit_codomain_target_records_a_warning(self):
        t = topo(8)
        m = ShardManager(
            dataset(), 8, replication=2, topology=t, spread=False
        )
        before = len(m.placement_violations)
        m.add_replica(0, 2)  # same channel as shards 0 and 1
        after = [
            v
            for v in m.placement_violations[before:]
            if v["context"] == "re-replication"
        ]
        assert len(after) == 1
        assert after[0]["chunk"] == 0
        assert after[0]["shard"] == 2

    def test_codomain_fallback_when_nothing_better_exists(self):
        # single-board fleet: every target shares the board, and the
        # copy must still happen (a co-domain copy beats no copy)
        t = topo(3, spb=3)
        m = ShardManager(dataset(24), 3, replication=2, topology=t)
        before = len(m.placement_violations)
        m.add_replica(0)
        assert len(m.placement_violations) == before + 1

    def test_replica_log_records_every_success(self):
        m = ShardManager(dataset(), 8, replication=2, topology=topo(8))
        record = m.add_replica(3)
        assert m.replica_log == [(3, record["target"])]

    def test_auto_target_without_capacity_raises(self):
        data = dataset(16, 4)
        m = ShardManager(data, 2, replication=2)
        # both shards already host both chunks: nowhere to go
        with pytest.raises(CapacityError):
            m.add_replica(0)


class TestRepairRestoresSpread:
    def test_heal_clears_at_risk_chunks_after_a_shard_death(self):
        t = topo(8)
        data = dataset(96, 6)
        m = ShardManager(
            data,
            8,
            replication=2,
            topology=t,
            quantizer=Quantizer(assume_normalized=True),
        )
        ctrl = RepairController(
            m, RepairPolicy(scrub_period_ns=10_000.0)
        )
        # kill shard 4: its chunks fail over to their other replica,
        # which then sits alone — count-based repair would stop at k
        # copies wherever they landed; spread repair must also leave
        # no chunk with all copies inside one domain
        m.health.record_failure(4, 0.0, permanent=True)
        ctrl.heal(0.0)
        report = m.spread_report()
        assert report["n_at_risk"] == 0
        for c, count in enumerate(m.replica_counts()):
            assert count >= 2, f"chunk {c} below target replication"

    def test_spread_repair_events_are_flagged(self):
        # replication 1 is at count target yet every chunk is at risk:
        # the extra copies queued here are spread repair, not deficit
        # repair, and carry the flag so dashboards can tell them apart
        t = topo(8)
        m = ShardManager(dataset(), 8, replication=1, topology=t)
        assert m.spread_report()["n_at_risk"] == m.n_chunks
        ctrl = RepairController(m, RepairPolicy())
        ctrl.heal(0.0)
        flagged = [
            e
            for e in ctrl.drain_events()
            if e["kind"] == "rereplicate_start"
            and e.get("spread_repair")
        ]
        assert len(flagged) == m.n_chunks
        assert m.spread_report()["n_at_risk"] == 0

    def test_spread_false_opts_out_of_spread_repair(self):
        # the naive arm of the DR campaign must *stay* naive: with
        # spread=False the healer restores counts only, never placement
        t = topo(8)
        m = ShardManager(
            dataset(), 8, replication=2, topology=t, spread=False
        )
        ctrl = RepairController(m, RepairPolicy())
        ctrl.heal(0.0)
        assert ctrl.drain_events() == []
        assert m.spread_report()["n_at_risk"] > 0
