"""Serving-level tests for request tracing, burn-rate alerts and the
live report.

The PR-7 acceptance criteria, pinned as unit/integration tests:

* every admitted request — completions *and* sheds — exports exactly
  one root ``request`` span with a fully parented child tree;
* the critical-path segments partition the end-to-end latency exactly
  (residual under 1 simulated ns);
* a sustained deadline/shed breach trips the fast burn-rate window
  while a healthy baseline trips nothing (multi-window + hysteresis);
* ``--live-report`` emits deterministic periodic status lines.
"""

import io

import numpy as np
import pytest

from repro.observability import (
    DEFAULT_OBJECTIVES,
    BurnRateMonitor,
    BurnRateRule,
    LiveReport,
    SLObjective,
    default_rules,
    format_breakdown,
    orphan_spans,
    request_breakdowns,
    request_roots,
    slowest_request,
)
from repro.serving import (
    QueryService,
    ShardManager,
    SLOTracker,
    TenantSpec,
    WorkloadDriver,
)
from repro.telemetry import chrome_trace_events, telemetry_session

DIMS = 8
TENANTS = [TenantSpec("a", k=5), TenantSpec("b", k=3)]


@pytest.fixture
def data(rng):
    return rng.random((80, DIMS))


def run_traced(data, *, rate_qps=1_000.0, n_requests=30, monitor=None,
               live_report=None, queue_capacity=64, **service_kwargs):
    """One traced serving run; returns (responses, trace events, service)."""
    manager = ShardManager(data, n_shards=2)
    driver = WorkloadDriver(data, TENANTS, seed=13)
    requests = driver.open_loop(rate_qps, n_requests)
    with telemetry_session() as tele:
        service = QueryService(
            manager,
            TENANTS,
            max_batch=4,
            queue_capacity=queue_capacity,
            monitor=monitor,
            live_report=live_report,
            **service_kwargs,
        )
        responses = service.run(requests)
        events = chrome_trace_events(tele)
    return responses, events, service


class TestRequestTrees:
    def test_one_root_per_terminal_response(self, data):
        responses, events, _ = run_traced(data)
        roots = request_roots(events)
        assert len(roots) == len(responses) == 30
        root_ids = [r["args"]["request_id"] for r in roots]
        assert sorted(root_ids) == sorted(r.request_id for r in responses)

    def test_trace_ids_are_unique_per_request(self, data):
        _, events, _ = run_traced(data)
        traces = [r["args"]["trace_id"] for r in request_roots(events)]
        assert len(set(traces)) == len(traces)

    def test_no_orphan_spans(self, data):
        _, events, _ = run_traced(data)
        assert orphan_spans(events) == []

    def test_sheds_still_export_a_tree(self, data):
        # 2-deep queue under a hard burst: most requests shed
        responses, events, service = run_traced(
            data,
            rate_qps=1e7,
            queue_capacity=2,
            policy="reject",
        )
        assert service.tracker.shed > 0
        roots = request_roots(events)
        assert len(roots) == len(responses)
        shed_roots = [r for r in roots if not r["args"]["ok"]]
        assert len(shed_roots) == service.tracker.shed
        assert all(r["args"]["shed_reason"] for r in shed_roots)

    def test_segments_partition_latency_exactly(self, data):
        responses, events, _ = run_traced(data, rate_qps=50_000.0)
        breakdowns = request_breakdowns(events)
        assert len(breakdowns) == len(responses)
        for b in breakdowns:
            assert abs(b["residual_ns"]) < 1.0
        # at least one request should show real queue/wave attribution
        assert any(b["segments"].get("wave_ns", 0) > 0 for b in breakdowns)

    def test_response_segments_mirror_the_tree(self, data):
        responses, events, _ = run_traced(data)
        by_id = {b["request_id"]: b for b in request_breakdowns(events)}
        for response in responses:
            if not response.ok:
                continue
            tree = by_id[response.request_id]
            total = sum(response.segments.values())
            assert total == pytest.approx(response.latency_ns, abs=1.0)
            for key, dur in tree["segments"].items():
                assert response.segments[key] == pytest.approx(dur)

    def test_wave_spans_carry_shard_attribution(self, data):
        _, events, _ = run_traced(data)
        breakdowns = [b for b in request_breakdowns(events) if b["ok"]]
        waves = [w for b in breakdowns for w in b["waves"]]
        assert waves, "completed requests should export shard waves"
        for wave in waves:
            assert wave["shard"] is not None
            assert wave["pim_ns"] >= 0

    def test_untraced_run_exports_nothing(self, data):
        manager = ShardManager(data, n_shards=2)
        requests = WorkloadDriver(data, TENANTS, seed=13).open_loop(1e3, 10)
        service = QueryService(manager, TENANTS)
        responses = service.run(requests)
        assert all(r.ok for r in responses)
        assert all(r.segments is None for r in responses)

    def test_traced_run_is_deterministic(self, data):
        _, first, _ = run_traced(data)
        _, second, _ = run_traced(data)
        assert first == second


class TestCriticalPathHelpers:
    def test_slowest_request_picks_max_ok_latency(self, data):
        _, events, _ = run_traced(data)
        worst = slowest_request(events)
        latencies = [b["latency_ns"] for b in request_breakdowns(events)
                     if b["ok"]]
        assert worst["latency_ns"] == max(latencies)

    def test_slowest_request_none_without_completions(self):
        assert slowest_request([]) is None

    def test_format_breakdown_renders_segments_and_waves(self, data):
        _, events, _ = run_traced(data)
        text = format_breakdown(slowest_request(events))
        assert "us" in text
        assert "wave shard" in text
        assert "%" in text


def bad_response(t_ns, *, ok=False, reason="deadline"):
    """A minimal terminal-response stand-in for monitor unit tests."""

    class _R:
        pass

    r = _R()
    r.ok = ok
    r.shed_reason = None if ok else reason
    r.completion_ns = t_ns
    return r


class TestBurnRateMonitor:
    def test_objective_and_rule_validation(self):
        with pytest.raises(ValueError, match="budget"):
            SLObjective("bad", 0.0)
        with pytest.raises(ValueError, match="short window"):
            BurnRateRule("bad", 10.0, 20.0, 2.0)
        with pytest.raises(ValueError, match="threshold"):
            BurnRateRule("bad", 20.0, 10.0, 0.0)

    def test_default_rules_shape(self):
        fast, slow = default_rules(1_000.0)
        assert fast.severity == "page" and slow.severity == "ticket"
        assert fast.short_window_ns == 250.0
        assert slow.long_window_ns == 6_000.0
        assert {o.name for o in DEFAULT_OBJECTIVES} == {
            "p99_deadline", "shed_rate", "exactness",
        }

    def test_sustained_sheds_trip_fast_window_once(self):
        monitor = BurnRateMonitor(base_window_ns=1_000.0)
        for i in range(20):
            monitor.observe(bad_response(float(i * 10), reason="queue_full"))
        fired = [(a["objective"], a["rule"]) for a in monitor.alerts]
        assert fired.count(("shed_rate", "fast")) == 1  # hysteresis
        assert ("shed_rate", "fast") in monitor.firing()

    def test_recovery_then_breach_alerts_again(self):
        monitor = BurnRateMonitor(base_window_ns=1_000.0)
        for i in range(20):
            monitor.observe(bad_response(float(i * 10), reason="queue_full"))
        # a healthy stretch clears the windows and resets the latch
        for i in range(200):
            monitor.observe(bad_response(5_000.0 + i * 10, ok=True))
        assert ("shed_rate", "fast") not in monitor.firing()
        for i in range(20):
            monitor.observe(
                bad_response(20_000.0 + i * 10, reason="queue_full")
            )
        fired = [a for a in monitor.alerts
                 if (a["objective"], a["rule"]) == ("shed_rate", "fast")]
        assert len(fired) == 2

    def test_healthy_stream_never_alerts(self):
        monitor = BurnRateMonitor(base_window_ns=1_000.0)
        for i in range(200):
            monitor.observe(bad_response(float(i * 10), ok=True))
        assert monitor.alerts == []
        assert monitor.firing() == []

    def test_min_events_suppresses_early_spikes(self):
        monitor = BurnRateMonitor(base_window_ns=1_000.0, min_events=12)
        for i in range(11):  # all bad, but below the evidence floor
            monitor.observe(bad_response(float(i * 10)))
        assert monitor.alerts == []

    def test_late_deadline_completion_counts_against_p99(self):
        monitor = BurnRateMonitor(base_window_ns=1_000.0)
        for i in range(20):
            monitor.observe(
                bad_response(float(i * 10), ok=True), deadline_ns=1.0
            )
        assert any(a["objective"] == "p99_deadline" for a in monitor.alerts)

    def test_exactness_violations_burn_the_tight_budget(self):
        monitor = BurnRateMonitor(base_window_ns=1_000.0)
        for i in range(11):
            monitor.observe(bad_response(float(i * 10), ok=True))
        monitor.record_violation(115.0)
        assert any(a["objective"] == "exactness" for a in monitor.alerts)

    def test_unknown_objective_is_ignored(self):
        monitor = BurnRateMonitor(base_window_ns=1_000.0)
        monitor.record("made_up", 1.0, True)  # no raise, no state
        assert monitor.alerts == []

    def test_alerts_land_on_the_recorder(self):
        with telemetry_session() as tele:
            monitor = BurnRateMonitor(base_window_ns=1_000.0)
            for i in range(20):
                monitor.observe(bad_response(float(i * 10)))
            alert_events = [e for e in tele.events
                            if e["category"] == "alert"]
            assert len(alert_events) == len(monitor.alerts)
            labeled = [i for i in tele.metrics
                       if i.name == "observability.alerts"]
            assert sum(i.value for i in labeled) == len(monitor.alerts)

    def test_snapshot_reports_burn_per_window(self):
        monitor = BurnRateMonitor(base_window_ns=1_000.0)
        for i in range(20):
            monitor.observe(bad_response(float(i * 10), reason="queue_full"))
        snap = monitor.snapshot()
        windows = snap["shed_rate"]["windows"]
        assert windows["fast"]["firing"] is True
        assert windows["fast"]["burn_rate"] == pytest.approx(
            1.0 / 0.05
        )  # 100% sheds against a 5% budget


class TestServiceAlerting:
    def test_overload_trips_shed_alert_healthy_does_not(self, data):
        breach = BurnRateMonitor(base_window_ns=10_000.0)
        run_traced(
            data,
            rate_qps=1e7,
            n_requests=60,
            queue_capacity=2,
            policy="reject",
            monitor=breach,
        )
        assert any(
            a["objective"] == "shed_rate" and a["rule"] == "fast"
            for a in breach.alerts
        )
        healthy = BurnRateMonitor(base_window_ns=10_000.0)
        run_traced(data, rate_qps=1_000.0, n_requests=60, monitor=healthy)
        assert healthy.alerts == []

    def test_summary_exposes_alerts_and_burn(self, data):
        monitor = BurnRateMonitor(base_window_ns=10_000.0)
        _, _, service = run_traced(data, monitor=monitor)
        summary = service.summary()
        assert summary["alerts"] == []
        assert set(summary["burn"]) == {o.name for o in DEFAULT_OBJECTIVES}


class TestLiveReport:
    def test_period_must_be_positive(self):
        with pytest.raises(ValueError, match="period"):
            LiveReport(period_ns=0.0)

    def test_emits_periodic_lines(self, data):
        out = io.StringIO()
        report = LiveReport(period_ns=100_000.0, out=out)
        run_traced(data, rate_qps=50_000.0, live_report=report)
        assert report.lines, "a 600 us run should cross 100 us periods"
        assert report.lines[0].startswith("live report")
        assert out.getvalue().count("\n") == len(report.lines)
        for line in report.lines[1:]:
            assert "done=" in line and "p99=" in line and "shards:" in line

    def test_burn_column_present_with_monitor(self, data):
        report = LiveReport(period_ns=100_000.0, out=io.StringIO())
        monitor = BurnRateMonitor(base_window_ns=100_000.0)
        run_traced(
            data, rate_qps=50_000.0, live_report=report, monitor=monitor
        )
        assert any("burn=" in line for line in report.lines)

    def test_report_is_deterministic(self, data):
        first = LiveReport(period_ns=100_000.0, out=io.StringIO())
        run_traced(data, rate_qps=50_000.0, live_report=first)
        second = LiveReport(period_ns=100_000.0, out=io.StringIO())
        run_traced(data, rate_qps=50_000.0, live_report=second)
        assert first.lines == second.lines
