"""Heterogeneous placement: unlike substrates behind one ShardManager.

Covers the serving-layer substrate surface: per-shard backend tags,
validation, cost-routed replica preference (values invariant, order
routed), the routing report artifact, cache invalidation on topology
change, and repair/re-replication flows spanning unlike backends.
"""

import numpy as np
import pytest

from repro.errors import ServingError
from repro.faults import FaultEvent, FaultPlan
from repro.repair import RepairController, RepairPolicy
from repro.serving import ShardManager

DIMS = 24
MIX = ["crossbar", "hbm_pim", "crossbar", "hbm_pim"]


@pytest.fixture
def data(rng):
    return rng.random((320, DIMS))


@pytest.fixture
def queries(rng):
    return rng.random((6, DIMS))


def baseline(data):
    return ShardManager(data, n_shards=1)


class TestConstruction:
    def test_uniform_string_fans_out(self, data):
        m = ShardManager(data, n_shards=3, substrates="hbm_pim")
        assert m.substrates == ["hbm_pim"] * 3
        assert all(s.substrate == "hbm_pim" for s in m.shards)

    def test_default_stays_crossbar_with_no_router(self, data):
        m = ShardManager(data, n_shards=3)
        assert m.substrates == ["crossbar"] * 3
        assert m._router is None

    def test_list_length_must_match_shards(self, data):
        with pytest.raises(ServingError, match="names 2 shards"):
            ShardManager(data, n_shards=3, substrates=["crossbar"] * 2)

    def test_unknown_backend_rejected_with_registry_hint(self, data):
        with pytest.raises(ServingError, match="registered"):
            ShardManager(data, n_shards=2, substrates="optical")

    def test_chunked_engine_is_crossbar_only(self, data):
        with pytest.raises(ServingError, match="chunked"):
            ShardManager(
                data, n_shards=2, substrates="hbm_pim", chunked=True
            )

    def test_bad_route_policy_rejected(self, data):
        with pytest.raises(ServingError, match="route"):
            ShardManager(data, n_shards=2, route="fastest")

    def test_auto_enables_router_only_when_heterogeneous(self, data):
        hom = ShardManager(data, n_shards=4, substrates="hbm_pim")
        het = ShardManager(data, n_shards=4, substrates=MIX)
        assert hom._router is None
        assert het._router is not None
        forced = ShardManager(
            data, n_shards=4, substrates="hbm_pim", route="energy"
        )
        assert forced._router is not None
        assert forced._router.objective == "energy"


class TestRoutedServing:
    def test_values_identical_under_routing(self, data, queries):
        a, _ = baseline(data).knn_batch(queries, 7)
        m = ShardManager(data, n_shards=4, replication=2, substrates=MIX)
        b, _ = m.knn_batch(queries, 7)
        for x, y in zip(a, b):
            assert np.array_equal(x.indices, y.indices)
            assert np.array_equal(x.scores, y.scores)

    def test_routing_report_records_decisions(self, data, queries):
        m = ShardManager(data, n_shards=4, replication=2, substrates=MIX)
        m.knn_batch(queries, 5)
        report = m.routing_report()
        assert report["enabled"]
        assert report["objective"] == "latency"
        assert report["substrates"] == MIX
        assert len(report["decisions"]) == m.n_chunks
        for decision in report["decisions"]:
            assert decision["winner_substrate"] in ("crossbar", "hbm_pim")
            assert len(decision["ranked"]) == 2

    def test_route_none_keeps_round_robin(self, data, queries):
        m = ShardManager(
            data, n_shards=4, replication=2, substrates=MIX, route="none"
        )
        m.knn_batch(queries, 5)
        assert m._router is None
        assert m.routing_report()["decisions"] == []

    def test_route_cache_reused_per_shape(self, data, queries):
        m = ShardManager(data, n_shards=4, replication=2, substrates=MIX)
        m.knn_batch(queries, 5)
        decisions = len(m._route_decisions)
        m.knn_batch(queries, 5)  # same (chunk, batch) shapes -> cached
        assert len(m._route_decisions) == decisions

    def test_add_replica_invalidates_route_cache(self, data, queries):
        m = ShardManager(data, n_shards=4, substrates=MIX)
        m.knn_batch(queries, 5)
        assert m._route_cache
        m.add_replica(0, 1)
        assert not m._route_cache

    def test_wave_spans_labeled_by_substrate(self, data, queries):
        from repro.telemetry import telemetry_session

        m = ShardManager(data, n_shards=2, substrates=["crossbar", "hbm_pim"])
        with telemetry_session() as tele:
            m.knn_batch(queries, 5)
        seen = {
            s.args["substrate"]
            for s in tele.spans
            if s.name == "serving.scatter"
        }
        assert seen == {"crossbar", "hbm_pim"}


class TestMixedRepair:
    def test_rereplication_across_unlike_backends(self, data, queries):
        a, _ = baseline(data).knn_batch(queries, 7)
        m = ShardManager(data, n_shards=4, substrates=MIX)
        # chunk 1 lives on an HBM shard; host it on a crossbar shard too
        info = m.add_replica(1, 0)
        assert info["rows"] > 0
        assert m.replicas[1] == (1, 0)
        b, _ = m.knn_batch(queries, 7)
        for x, y in zip(a, b):
            assert np.array_equal(x.indices, y.indices)
            assert np.array_equal(x.scores, y.scores)

    def test_repair_restores_replication_on_mixed_fleet(self, data, queries):
        a, _ = baseline(data).knn_batch(queries, 7)
        plan = FaultPlan(
            [FaultEvent(t_ns=0.0, kind="shard_crash", target="shard1")]
        )
        m = ShardManager(
            data,
            n_shards=4,
            replication=2,
            substrates=MIX,
            fault_plan=plan,
            spare_crossbars=2,
        )
        repair = RepairController(
            m, RepairPolicy(scrub_period_ns=1e6)
        )
        b, _ = m.knn_batch(queries, 7)
        for x, y in zip(a, b):
            assert np.array_equal(x.indices, y.indices)
        repair.advance(0.0, 1e9)
        repair.heal(1e9)
        # the dead HBM shard's chunks are re-replicated onto survivors
        assert repair.rereplications >= 1
        assert m.replica_counts() == [2] * m.n_chunks
        c, _ = m.knn_batch(queries, 7)
        for x, y in zip(a, c):
            assert np.array_equal(x.indices, y.indices)
            assert np.array_equal(x.scores, y.scores)

    def test_wear_reports_cover_both_device_classes(self, data):
        m = ShardManager(data, n_shards=2, substrates=["crossbar", "hbm_pim"])
        reports = m.wear_reports(top=2)
        assert len(reports) == 2
        assert all(r["units_tracked"] > 0 for r in reports)
