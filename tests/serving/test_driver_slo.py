"""Unit tests for workload generation and SLO accounting."""

import numpy as np
import pytest

from repro.errors import ServingError
from repro.serving import (
    QueryService,
    Response,
    ShardManager,
    SLOTracker,
    TenantSpec,
    WorkloadDriver,
)

TENANTS = [
    TenantSpec("a", workload="near", k=5, weight=1.0),
    TenantSpec("b", workload="uniform", k=3, weight=3.0),
]


@pytest.fixture
def data(rng):
    return rng.random((50, 6))


class TestOpenLoop:
    def test_trace_is_deterministic(self, data):
        t1 = WorkloadDriver(data, TENANTS, seed=11).open_loop(1e5, 40)
        t2 = WorkloadDriver(data, TENANTS, seed=11).open_loop(1e5, 40)
        assert [r.request_id for r in t1] == [r.request_id for r in t2]
        assert [r.arrival_ns for r in t1] == [r.arrival_ns for r in t2]
        assert all(
            np.array_equal(x.query, y.query) for x, y in zip(t1, t2)
        )

    def test_seed_changes_the_trace(self, data):
        t1 = WorkloadDriver(data, TENANTS, seed=1).open_loop(1e5, 40)
        t2 = WorkloadDriver(data, TENANTS, seed=2).open_loop(1e5, 40)
        assert [r.arrival_ns for r in t1] != [r.arrival_ns for r in t2]

    def test_poisson_hits_the_mean_rate(self, data):
        driver = WorkloadDriver(data, TENANTS, seed=3)
        trace = driver.open_loop(rate_qps=1e6, n_requests=400)
        assert len(trace) == 400
        arrivals = [r.arrival_ns for r in trace]
        assert arrivals == sorted(arrivals)
        mean_gap = arrivals[-1] / len(arrivals)
        assert 1e3 * 0.7 < mean_gap < 1e3 * 1.3  # 1e6 qps -> 1000 ns

    def test_weights_skew_the_tenant_mix(self, data):
        trace = WorkloadDriver(data, TENANTS, seed=4).open_loop(1e5, 300)
        counts = {t.name: 0 for t in TENANTS}
        for r in trace:
            counts[r.tenant] += 1
        assert counts["b"] > counts["a"]  # weight 3 vs 1

    def test_bursty_produces_back_to_back_arrivals(self, data):
        driver = WorkloadDriver(data, TENANTS, seed=5)
        trace = driver.open_loop(
            rate_qps=1e4, n_requests=100, arrival="bursty", burstiness=5.0
        )
        gaps = np.diff([r.arrival_ns for r in trace])
        # burst members are exactly 1 us apart; mean gap is 1e5 ns
        assert (gaps == 1_000.0).sum() > 10

    def test_deadlines_come_from_the_tenant_spec(self, data):
        tenants = [TenantSpec("d", deadline_ns=5e5)]
        trace = WorkloadDriver(data, tenants, seed=6).open_loop(1e5, 10)
        for r in trace:
            assert r.deadline_ns == r.arrival_ns + 5e5

    def test_rejects_bad_arguments(self, data):
        driver = WorkloadDriver(data, TENANTS)
        with pytest.raises(ServingError):
            driver.open_loop(0.0, 10)
        with pytest.raises(ServingError):
            driver.open_loop(1e5, 0)
        with pytest.raises(ServingError):
            driver.open_loop(1e5, 10, arrival="fractal")
        with pytest.raises(ServingError):
            driver.open_loop(1e5, 10, arrival="bursty", burstiness=0.5)
        with pytest.raises(ServingError):
            WorkloadDriver(data, [])


class TestClosedLoop:
    def test_serves_exactly_n_requests(self, data):
        manager = ShardManager(data, n_shards=2)
        service = QueryService(manager, TENANTS, tracker=SLOTracker())
        driver = WorkloadDriver(data, TENANTS, seed=9)
        responses = driver.closed_loop(
            service, n_clients=4, n_requests=24, think_ns=1e5
        )
        assert len(responses) == 24
        assert service.tracker.completed == 24

    def test_arrivals_respect_think_time(self, data):
        manager = ShardManager(data)
        service = QueryService(manager, TENANTS, tracker=SLOTracker())
        driver = WorkloadDriver(data, TENANTS, seed=10)
        driver.closed_loop(service, n_clients=1, n_requests=5,
                           think_ns=1e6)
        oks = [r for r in service.responses if r.ok]
        for prev, nxt in zip(oks, oks[1:]):
            assert nxt.arrival_ns >= prev.completion_ns + 1e6


def respond(i, *, ok=True, tenant="a", arrival=0.0, latency=1000.0,
            reason=None, approximate=False):
    return Response(
        request_id=f"r{i}",
        tenant=tenant,
        kind="knn",
        ok=ok,
        arrival_ns=arrival,
        completion_ns=arrival + latency,
        shed_reason=reason,
        approximate=approximate,
    )


class TestSLOTracker:
    def test_counts_completions_and_sheds(self):
        tracker = SLOTracker()
        tracker.observe(respond(0, latency=100.0))
        tracker.observe(respond(1, ok=False, reason="queue_full"))
        tracker.observe(respond(2, ok=False, reason="deadline"))
        tracker.observe(respond(3, approximate=True))
        assert tracker.offered == 4
        assert tracker.completed == 2
        assert tracker.degraded == 1
        assert tracker.shed == 2
        assert tracker.shed_rate == 0.5
        assert tracker.shed_reasons == {"queue_full": 1, "deadline": 1}

    def test_percentiles_are_ordered(self):
        tracker = SLOTracker()
        for i in range(100):
            tracker.observe(respond(i, latency=float(i + 1)))
        pcts = tracker.percentiles()
        assert pcts["p50_ns"] <= pcts["p95_ns"] <= pcts["p99_ns"]
        assert pcts["p99_ns"] <= 100.0

    def test_empty_tracker_is_all_zeros(self):
        tracker = SLOTracker()
        assert tracker.shed_rate == 0.0
        assert tracker.throughput_qps() == 0.0
        assert tracker.percentiles()["p99_ns"] == 0.0

    def test_throughput_over_horizon(self):
        tracker = SLOTracker()
        for i in range(10):
            tracker.observe(respond(i, arrival=i * 100.0))
        # 10 completions over a 1000 ns horizon = 1e7 qps
        assert tracker.throughput_qps(horizon_ns=1000.0) == 1e7

    def test_summary_is_json_clean(self):
        import json

        tracker = SLOTracker()
        tracker.observe(respond(0, tenant="a"))
        tracker.observe(respond(1, tenant="b"))
        summary = tracker.summary(
            horizon_ns=5000.0, shard_busy_ns=[100.0, 300.0]
        )
        encoded = json.dumps(summary)  # no numpy scalars anywhere
        assert json.loads(encoded)["completed"] == 2
        assert summary["shard_utilization"] == [0.02, 0.06]
        assert set(summary["per_tenant"]) == {"a", "b"}
