"""Unit tests for the self-healing loop (:mod:`repro.repair`).

The contract: silent device faults are *detected* by background
scrubbing within one scrub period of idle time, *repaired* by remapping
the affected crossbars onto spares (or, when a shard is beyond repair,
by re-replicating its chunks elsewhere under a bandwidth budget), and
the repaired shard re-enters rotation only through quarantine — all of
it without ever changing an answer byte.
"""

import math

import numpy as np
import pytest

from repro.errors import (
    CapacityError,
    ChunkUnavailableError,
    ServingError,
    WatchdogTimeoutError,
)
from repro.faults import FaultEvent, FaultPlan
from repro.hardware.config import pim_platform
from repro.hardware.mapper import total_crossbars
from repro.repair import BackgroundScrubber, RepairController, RepairPolicy
from repro.repair.controller import _Transfer
from repro.serving import (
    QueryService,
    RecoveryPolicy,
    Request,
    ShardHealthTracker,
    ShardManager,
    SLOTracker,
)

DIMS = 32


@pytest.fixture
def data(rng):
    return rng.random((240, DIMS))


def stuck(shard, t=0.0, fraction=0.05):
    """A permanent silent stuck-at-zero defect on ``shard``."""
    return FaultEvent(
        t_ns=t,
        kind="stuck_cells",
        target=f"shard{shard}",
        params={"fraction": fraction, "stuck_to": 0},
    )


def crash(shard, t=0.0):
    return FaultEvent(t_ns=t, kind="shard_crash", target=f"shard{shard}")


def dead_array(shard, t=0.0):
    return FaultEvent(t_ns=t, kind="crossbar_dead", target=f"shard{shard}")


def build(data, events=None, *, n_shards=4, replication=1, spares=12,
          seed=3, recovery=None, plan=None):
    if plan is None and events is not None:
        plan = FaultPlan(events, seed=seed)
    return ShardManager(
        data,
        n_shards,
        replication=replication,
        fault_plan=plan,
        spare_crossbars=spares,
        recovery=recovery,
    )


def kinds_of(events):
    return [e["kind"] for e in events]


class TestRepairPolicy:
    def test_defaults_are_valid(self):
        policy = RepairPolicy()
        assert policy.scrub_period_ns > 0
        assert policy.copy_ns_per_byte == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ServingError):
            RepairPolicy(scrub_period_ns=0.0)
        with pytest.raises(ServingError):
            RepairPolicy(probe_confirmations=0)
        with pytest.raises(ServingError):
            RepairPolicy(repair_bandwidth_bytes_per_s=0.0)
        with pytest.raises(ServingError):
            RepairPolicy(target_replication=0)
        with pytest.raises(ServingError):
            RepairPolicy(quarantine_probes=-1)

    def test_copy_cost_follows_the_bandwidth(self):
        policy = RepairPolicy(repair_bandwidth_bytes_per_s=2e9)
        assert policy.copy_ns_per_byte == pytest.approx(0.5)


class TestBackgroundScrubber:
    def test_clean_probe_on_a_healthy_shard(self, data):
        manager = build(data, [])
        scrubber = BackgroundScrubber(manager, RepairPolicy())
        probe = scrubber.probe(0.0)
        assert probe["outcome"] == "clean"
        assert probe["cost_ns"] > 0
        assert manager.shards[0].busy_ns > 0  # probe time is charged

    def test_interval_spreads_one_sweep_over_the_period(self, data):
        manager = build(data, [])
        scrubber = BackgroundScrubber(
            manager, RepairPolicy(scrub_period_ns=4e6)
        )
        assert scrubber.interval_ns == pytest.approx(1e6)

    def test_advance_walks_shards_and_counts_sweeps(self, data):
        manager = build(data, [])
        scrubber = BackgroundScrubber(
            manager, RepairPolicy(scrub_period_ns=4e6)
        )
        assert scrubber.due_ns() == 0.0
        for expected_cursor in (1, 2, 3, 0):
            scrubber.advance(0.0)
            assert scrubber.cursor == expected_cursor
        assert scrubber.sweeps == 1
        assert scrubber.due_ns() == pytest.approx(4e6)

    def test_backlog_is_capped_at_one_period(self, data):
        manager = build(data, [])
        scrubber = BackgroundScrubber(
            manager, RepairPolicy(scrub_period_ns=4e6)
        )
        scrubber.advance(1e12)  # a long stretch without idle time
        assert scrubber.due_ns() >= 1e12 - 4e6

    def test_hold_keeps_the_cursor_for_confirmation(self, data):
        manager = build(data, [])
        scrubber = BackgroundScrubber(manager, RepairPolicy())
        due = scrubber.due_ns()
        scrubber.hold()
        assert scrubber.cursor == 0
        assert scrubber.due_ns() == due

    def test_dead_shard_is_skipped(self, data):
        manager = build(data, [])
        manager.health.record_failure(0, 0.0, permanent=True)
        scrubber = BackgroundScrubber(manager, RepairPolicy())
        probe = scrubber.probe(0.0)
        assert probe["outcome"] == "skip"
        assert probe["cost_ns"] == 0.0

    def test_silent_stuck_cells_probe_corrupt(self, data):
        manager = build(data, [stuck(0)])
        scrubber = BackgroundScrubber(manager, RepairPolicy())
        probe = scrubber.probe(1.0)
        assert probe["outcome"] == "corrupt"
        assert probe["bad_waves"] >= 1

    def test_dead_crossbar_probe_is_conclusive(self, data):
        manager = build(data, [dead_array(0)])
        scrubber = BackgroundScrubber(manager, RepairPolicy())
        probe = scrubber.probe(1.0)
        assert probe["outcome"] == "dead_array"
        assert probe["cost_ns"] == manager.recovery.crash_detect_ns

    def test_crashed_shard_probe_reports_crash(self, data):
        manager = build(data, [crash(0)])
        scrubber = BackgroundScrubber(manager, RepairPolicy())
        probe = scrubber.probe(1.0)
        assert probe["outcome"] == "crash"
        assert probe["cost_ns"] == manager.recovery.crash_detect_ns

    def test_hung_shard_probe_costs_the_watchdog(self, data):
        manager = build(
            data,
            [FaultEvent(t_ns=0.0, kind="shard_hang", target="shard0")],
        )
        scrubber = BackgroundScrubber(manager, RepairPolicy())
        probe = scrubber.probe(1.0)
        assert probe["outcome"] == "hang"
        assert probe["cost_ns"] > 0

    def test_report_accumulates_outcomes(self, data):
        manager = build(data, [stuck(0)])
        scrubber = BackgroundScrubber(manager, RepairPolicy())
        scrubber.probe(1.0)
        scrubber.advance(1.0)
        scrubber.probe(1.0)
        report = scrubber.report()
        assert report["probes"] == 2
        assert report["outcomes"].get("corrupt") == 1


class TestScrubDetectionAndRemap:
    def test_stuck_shard_is_detected_and_remapped_within_a_period(
        self, data
    ):
        period = 1e6
        manager = build(data, [stuck(0)])
        ctrl = RepairController(
            manager, RepairPolicy(scrub_period_ns=period)
        )
        ctrl.advance(0.0, period)
        events = ctrl.drain_events()
        assert ctrl.detections == 1
        assert ctrl.remaps >= 1
        assert ctrl.remap_ns > 0
        assert "detect" in kinds_of(events)
        assert "remap" in kinds_of(events)
        assert "quarantine" in kinds_of(events)
        # detection happened within one scrub period of idle time
        detect = next(e for e in events if e["kind"] == "detect")
        assert detect["t_ns"] <= period

    def test_repaired_shard_sits_in_quarantine(self, data):
        manager = build(data, [stuck(0)])
        ctrl = RepairController(manager, RepairPolicy(scrub_period_ns=1e6))
        ctrl.advance(0.0, 1e6)
        entry = manager.health.snapshot(1e6)[0]
        assert entry["status"] == "quarantine"
        assert entry["quarantine_left"] > 0
        assert entry["quarantined_since_ns"] is not None

    def test_answers_stay_exact_after_the_remap(self, data):
        manager = build(data, [stuck(0)])
        ctrl = RepairController(manager, RepairPolicy(scrub_period_ns=1e6))
        ctrl.advance(0.0, 1e6)
        expected = ShardManager(data, 1).knn(data[0], 10)
        got = manager.knn(data[0], 10)
        assert np.array_equal(got.indices, expected.indices)
        assert np.array_equal(got.scores, expected.scores)

    def test_corruption_needs_consecutive_confirmations(self, data):
        manager = build(data, [stuck(0)])
        ctrl = RepairController(
            manager,
            RepairPolicy(scrub_period_ns=1e6, probe_confirmations=3),
        )
        # two probes' worth of window: suspicion accumulates but no
        # repair fires before the third confirmation
        used = ctrl._scrub_once(0.0)
        ctrl._scrub_once(used)
        assert ctrl.detections == 0
        assert ctrl.remaps == 0
        assert ctrl.scrubber.cursor == 0  # held for confirmation

    def test_transient_corruption_is_left_to_the_query_path(self, data):
        # wave_corrupt is live at probe time but has no repairable
        # substrate: the controller must record the detection and walk
        # away without remapping or quarantining anything
        event = FaultEvent(
            t_ns=0.0,
            kind="wave_corrupt",
            target="shard0",
            params={"probability": 1.0, "magnitude": 101},
        )
        manager = build(data, [event])
        ctrl = RepairController(manager, RepairPolicy(scrub_period_ns=1e6))
        ctrl.advance(0.0, 1e6)
        events = ctrl.drain_events()
        assert ctrl.detections >= 1
        assert ctrl.remaps == 0
        assert "quarantine" not in kinds_of(events)
        assert manager.health.snapshot(1e6)[0]["status"] != "quarantine"

    def test_dead_crossbar_remaps_without_confirmation(self, data):
        manager = build(data, [dead_array(0)])
        ctrl = RepairController(
            manager,
            RepairPolicy(scrub_period_ns=1e6, probe_confirmations=5),
        )
        ctrl._scrub_once(0.0)  # one probe must be enough
        assert ctrl.detections == 1
        assert ctrl.remaps == 1

    def test_spare_exhaustion_on_a_stuck_shard_is_not_fatal(self, data):
        manager = build(data, [stuck(0)], spares=0)
        ctrl = RepairController(manager, RepairPolicy(scrub_period_ns=1e6))
        ctrl.advance(0.0, 1e6)
        events = ctrl.drain_events()
        assert "spares_exhausted" in kinds_of(events)
        assert ctrl.remaps == 0
        # a stuck shard still answers (the query path re-detects); it
        # must not be declared dead just because the pool is empty
        assert manager.health.alive(0)

    def test_exhaustion_precheck_spends_no_partial_spares(self, data):
        # 8 data crossbars need remapping but only 2 spares exist: the
        # pre-check must refuse up front instead of burning both spares
        # on a fault that stays live
        manager = build(data, [stuck(0)], spares=2)
        ctrl = RepairController(manager, RepairPolicy(scrub_period_ns=1e6))
        ctrl.advance(0.0, 1e6)
        assert ctrl.remaps == 0
        assert manager.shards[0].controller.pim.spares_remaining == 2

    def test_dead_crossbar_without_spares_kills_the_shard(self, data):
        manager = build(
            data, [dead_array(0)], replication=2, spares=0
        )
        ctrl = RepairController(manager, RepairPolicy(scrub_period_ns=1e6))
        ctrl.advance(0.0, 1e6)
        events = ctrl.drain_events()
        assert "spares_exhausted" in kinds_of(events)
        assert "shard_dead" in kinds_of(events)
        assert not manager.health.alive(0)
        # re-replication takes over: the dead shard's chunks are queued
        assert "rereplicate_start" in kinds_of(events)


class TestRereplication:
    def test_crashed_shard_restores_every_chunk_to_k(self, data):
        manager = build(data, [crash(1, t=0.0)], replication=2)
        ctrl = RepairController(manager, RepairPolicy(scrub_period_ns=1e6))
        ctrl.advance(0.0, 1e9)
        ctrl.heal(1e9)
        events = ctrl.drain_events()
        assert "shard_dead" in kinds_of(events)
        assert ctrl.rereplications >= 1
        assert ctrl.rereplicated_bytes > 0
        assert manager.replica_counts() == [2] * manager.n_chunks
        assert ctrl.report()["pending_transfers"] == 0

    def test_rereplicated_rows_equal_their_source(self, data):
        manager = build(data, [crash(1, t=0.0)], replication=2)
        ctrl = RepairController(manager, RepairPolicy(scrub_period_ns=1e6))
        ctrl.advance(0.0, 1e9)
        ctrl.heal(1e9)
        done = [
            e for e in ctrl.drain_events() if e["kind"] == "rereplicate_done"
        ]
        assert done
        for event in done:
            source = manager.shards[event["source"]]
            target = manager.shards[event["target"]]
            sl_s = source.chunk_slices[event["chunk"]]
            sl_t = target.chunk_slices[event["chunk"]]
            assert np.array_equal(
                source.integers[sl_s], target.integers[sl_t]
            )
            assert np.array_equal(
                source.global_indices[sl_s], target.global_indices[sl_t]
            )
            assert np.array_equal(source.floats[sl_s], target.floats[sl_t])
            assert np.array_equal(source.phi[sl_s], target.phi[sl_t])

    def test_copy_is_throttled_by_the_bandwidth_budget(self, data):
        # ~30 KiB per chunk at 1 MB/s -> tens of ms of copy time; a
        # 1 ms idle window cannot finish a single transfer
        manager = build(data, [crash(1, t=0.0)], replication=2)
        ctrl = RepairController(
            manager,
            RepairPolicy(
                scrub_period_ns=1e5, repair_bandwidth_bytes_per_s=1e6
            ),
        )
        ctrl.advance(0.0, 1e6)
        assert ctrl.rereplications == 0
        assert ctrl.report()["pending_transfers"] >= 1
        # ... but the transfer resumes across windows and finishes
        ctrl.heal(1e6)
        assert ctrl.rereplications >= 1
        assert manager.replica_counts() == [2] * manager.n_chunks

    def test_transfer_time_matches_bytes_over_bandwidth(self, data):
        manager = build(data, [crash(1, t=0.0)], replication=2)
        bw = 1e8
        ctrl = RepairController(
            manager,
            RepairPolicy(
                scrub_period_ns=1e6, repair_bandwidth_bytes_per_s=bw
            ),
        )
        ctrl.advance(0.0, 1e9)
        ctrl.heal(1e9)
        done = [
            e for e in ctrl.drain_events() if e["kind"] == "rereplicate_done"
        ]
        for event in done:
            floor_ns = event["bytes"] * 1e9 / bw + event["program_ns"]
            assert event["duration_ns"] >= floor_ns - 1e-6

    def test_unreplicated_chunk_is_declared_unrecoverable_once(self, data):
        manager = build(data, [crash(1, t=0.0)], replication=1)
        ctrl = RepairController(manager, RepairPolicy(scrub_period_ns=1e6))
        ctrl.advance(0.0, 1e7)
        ctrl.advance(1e7, 2e7)
        events = ctrl.drain_events()
        unrecoverable = [
            e for e in events if e["kind"] == "unrecoverable"
        ]
        assert len(unrecoverable) == 1  # noted once, not per window
        assert ctrl.rereplications == 0

    def test_exhausted_stuck_repair_leaves_no_outage_window(self, data):
        # spares gone + stuck cells: nothing is repaired, so no outage
        # window may be opened — otherwise the next routine success
        # would mint a spurious MTTR sample
        manager = build(data, [stuck(0)], spares=0)
        ctrl = RepairController(manager, RepairPolicy(scrub_period_ns=1e6))
        ctrl.advance(0.0, 1e6)
        assert "spares_exhausted" in kinds_of(ctrl.drain_events())
        health = manager.health
        assert health.snapshot(1e6)[0]["down_since_ns"] is None
        health.record_success(0, 2e6)
        assert health.drain_recoveries() == []

    def test_heal_gives_up_when_no_target_can_host(self, data):
        # 2 shards, one dead: the survivor already hosts every chunk,
        # so heal() must terminate with nothing queued (not spin)
        manager = build(
            data, [crash(1, t=0.0)], n_shards=2, replication=2
        )
        ctrl = RepairController(manager, RepairPolicy(scrub_period_ns=1e6))
        ctrl.advance(0.0, 1e7)
        ctrl.heal(1e7)
        assert ctrl.report()["pending_transfers"] == 0


def tight_platform(fit_rows, no_fit_rows, dims):
    """A platform whose array fits ``fit_rows`` vectors but not
    ``no_fit_rows`` — one crossbar short of the larger matrix."""
    ref = pim_platform().pim
    per_xbar_bytes = ref.crossbar.capacity_bits // 8
    assert total_crossbars(fit_rows, dims, ref) < total_crossbars(
        no_fit_rows, dims, ref
    )
    return pim_platform(
        pim_capacity_bytes=(total_crossbars(no_fit_rows, dims, ref) - 1)
        * per_xbar_bytes
    )


class TestRereplicationCapacity:
    """Re-replication must never overfill (or destroy) a target shard."""

    def test_add_replica_refuses_an_overfull_target_without_damage(
        self, data
    ):
        # 2 shards of 120 rows each; the array fits one chunk, not two
        hw = tight_platform(120, 240, DIMS)
        manager = ShardManager(data, 2, hardware=hw)
        expected = manager.knn(data[0], 10)
        with pytest.raises(CapacityError):
            manager.add_replica(0, 1)
        # the pre-check must refuse before touching shard 1: its healthy
        # replica of chunk 1 keeps serving, bit-identically
        target = manager.shards[1]
        assert 0 not in target.chunk_slices
        assert target.n_rows == 120
        assert 1 not in manager.replicas[0]
        got = manager.knn(data[0], 10)
        assert np.array_equal(got.indices, expected.indices)
        assert np.array_equal(got.scores, expected.scores)

    def test_controller_skips_targets_that_cannot_fit(self, data):
        # 3 shards, replication 2: each hosts 160 rows (+1 checksum
        # row); no array can take a third chunk (241 rows). When shard
        # 1 dies the controller must leave the deficit unfilled instead
        # of crashing the serving loop with CapacityError
        hw = tight_platform(161, 241, DIMS)
        manager = ShardManager(
            data,
            3,
            hardware=hw,
            replication=2,
            fault_plan=FaultPlan([crash(1, t=0.0)], seed=3),
        )
        ctrl = RepairController(manager, RepairPolicy(scrub_period_ns=1e6))
        ctrl.advance(0.0, 1e9)
        ctrl.heal(1e9)
        assert ctrl.rereplications == 0
        assert ctrl.report()["pending_transfers"] == 0
        assert min(manager.replica_counts()) == 1

    def test_stale_transfer_to_an_overfull_target_is_absorbed(self, data):
        # backstop behind the candidate filter: a queued transfer whose
        # target can no longer fit fails softly with a timeline event
        hw = tight_platform(120, 240, DIMS)
        manager = ShardManager(data, 2, hardware=hw)
        ctrl = RepairController(manager)
        ctrl._pending.append(
            _Transfer(
                chunk=0, target=1, started_ns=0.0, bytes=8, remaining_ns=0.0
            )
        )
        ctrl._transfer_step(0.0, math.inf)
        assert "rereplicate_failed" in kinds_of(ctrl.drain_events())
        assert ctrl.report()["pending_transfers"] == 0
        assert manager.shards[1].n_rows == 120  # target untouched


class TestProbeTokenReleaseOnAbort:
    """An aborted dispatch must not wedge a probationary shard."""

    def test_aborted_dispatch_releases_the_probe_claim(self, data):
        recovery = RecoveryPolicy(
            breaker_threshold=1,
            breaker_reset_ns=100.0,
            allow_degraded=False,
        )
        manager = ShardManager(data, 2, recovery=recovery)
        health = manager.health
        health.record_failure(0, 0.0)  # half-open once the window elapses
        health.record_failure(1, 0.0, permanent=True)  # chunk 1 is doomed
        # chunk 0 claims shard 0's probe token, then chunk 1 aborts the
        # dispatch because degraded recompute is disabled
        with pytest.raises(ChunkUnavailableError):
            manager.knn_batch(data[:1], 5, now_ns=200.0)
        assert not health.snapshot(200.0)[0]["probe_in_flight"]
        assert health.available(0, 200.0)
        assert health.begin_probe(0, 200.0)


class TestProbeTokenRegression:
    """The half-open window admits exactly ONE probe dispatch."""

    def tracker(self):
        return ShardHealthTracker(
            2,
            RecoveryPolicy(breaker_threshold=1, breaker_reset_ns=100.0),
        )

    def test_open_circuit_blocks_until_the_window_elapses(self):
        health = self.tracker()
        health.record_failure(0, 0.0)
        assert not health.available(0, 50.0)
        assert health.available(0, 150.0)

    def test_half_open_admits_exactly_one_probe(self):
        health = self.tracker()
        health.record_failure(0, 0.0)
        assert health.begin_probe(0, 150.0)
        # the probe token is held: every later caller is refused
        assert not health.available(0, 150.0)
        assert not health.begin_probe(0, 150.0)

    def test_probe_success_closes_the_circuit(self):
        health = self.tracker()
        health.record_failure(0, 0.0)
        assert health.begin_probe(0, 150.0)
        health.record_success(0, 200.0)
        assert health.available(0, 200.0)
        assert not health.probationary(0, 200.0)

    def test_probe_failure_reopens_behind_a_fresh_window(self):
        health = self.tracker()
        health.record_failure(0, 0.0)
        assert health.begin_probe(0, 150.0)
        health.record_failure(0, 160.0)
        assert not health.available(0, 200.0)
        assert health.available(0, 160.0 + 100.0)

    def test_release_frees_an_abandoned_claim(self):
        health = self.tracker()
        health.record_failure(0, 0.0)
        assert health.begin_probe(0, 150.0)
        health.release_probe(0)
        assert health.available(0, 150.0)
        assert health.begin_probe(0, 150.0)

    def test_healthy_shard_needs_no_probe(self):
        health = self.tracker()
        assert health.available(1, 0.0)
        assert not health.begin_probe(1, 0.0)


class TestQuarantine:
    def tracker(self):
        return ShardHealthTracker(
            2,
            RecoveryPolicy(breaker_threshold=1, breaker_reset_ns=100.0),
        )

    def test_mark_repaired_revives_even_a_dead_shard(self):
        health = self.tracker()
        health.record_failure(0, 0.0, permanent=True)
        assert not health.alive(0)
        health.mark_repaired(0, 1_000.0, probes=2)
        assert health.alive(0)
        assert health.probationary(0, 1_000.0)

    def test_readmission_needs_n_clean_probes(self):
        health = self.tracker()
        health.record_failure(0, 0.0, permanent=True)
        health.mark_repaired(0, 1_000.0, probes=2)
        assert health.begin_probe(0, 1_100.0)
        health.record_success(0, 1_100.0)
        assert health.probationary(0, 1_100.0)  # one down, one to go
        assert health.drain_recoveries() == []
        assert health.begin_probe(0, 1_200.0)
        health.record_success(0, 1_200.0)
        assert not health.probationary(0, 1_200.0)
        # the MTTR sample covers detection -> re-admission
        assert health.drain_recoveries() == [1_200.0]

    def test_failed_probe_restarts_the_probation(self):
        health = self.tracker()
        health.record_failure(0, 0.0, permanent=True)
        health.mark_repaired(0, 1_000.0, probes=2)
        assert health.begin_probe(0, 1_100.0)
        health.record_success(0, 1_100.0)
        health.record_failure(0, 1_200.0)
        # back to the full probe count, behind a fresh open window
        assert not health.available(0, 1_250.0)
        snapshot = health.snapshot(1_250.0)[0]
        assert snapshot["quarantine_left"] == 2

    def test_zero_probes_readmits_immediately(self):
        health = self.tracker()
        health.record_failure(0, 0.0, permanent=True)
        health.mark_repaired(0, 500.0, probes=0)
        assert health.available(0, 500.0)
        assert health.drain_recoveries() == [500.0]

    def test_snapshot_carries_the_breaker_and_quarantine_fields(self):
        health = self.tracker()
        health.record_failure(0, 0.0)
        health.record_failure(1, 0.0, permanent=True)
        entries = health.snapshot(50.0)
        assert entries[0]["status"] == "open"
        assert entries[0]["open_until_ns"] == pytest.approx(100.0)
        assert entries[1]["status"] == "dead"
        assert entries[1]["dead_since_ns"] == 0.0
        health.mark_repaired(1, 200.0, probes=3)
        entry = health.snapshot(250.0)[1]
        assert entry["status"] == "quarantine"
        assert entry["quarantined_since_ns"] == 200.0
        assert entry["quarantine_left"] == 3


class TestSLOTrackerRepair:
    def test_record_repair_counts_by_kind(self):
        tracker = SLOTracker()
        tracker.record_repair({"t_ns": 1.0, "kind": "remap", "shard": 0})
        tracker.record_repair({"t_ns": 2.0, "kind": "remap", "shard": 1})
        tracker.record_repair({"t_ns": 3.0, "kind": "rereplicate_done"})
        assert tracker.repair_counts == {"remap": 2, "rereplicate_done": 1}
        assert len(tracker.repair_events) == 3

    def test_summary_surfaces_the_repair_activity(self):
        tracker = SLOTracker()
        tracker.record_repair({"t_ns": 1.0, "kind": "detect", "shard": 0})
        summary = tracker.summary()
        assert summary["repair_activity"] == {"detect": 1}

    def test_events_are_copied_not_aliased(self):
        tracker = SLOTracker()
        event = {"t_ns": 1.0, "kind": "remap"}
        tracker.record_repair(event)
        event["kind"] = "mutated"
        assert tracker.repair_events[0]["kind"] == "remap"


class TestServiceIntegration:
    HORIZON = 4e9
    N_REQUESTS = 60

    def requests(self):
        queries = np.random.default_rng(99).random((self.N_REQUESTS, DIMS))
        return [
            Request(
                request_id=f"r{i:03d}",
                tenant="t",
                query=queries[i],
                k=10,
                arrival_ns=i * self.HORIZON / self.N_REQUESTS,
            )
            for i in range(self.N_REQUESTS)
        ]

    def plan(self):
        return FaultPlan.sustained(
            4, self.HORIZON, seed=3, stuck_shards=2, kill_shards=1
        )

    def serve(self, data, *, repair: bool):
        manager = build(
            data,
            plan=self.plan(),
            replication=2,
            spares=12,
            recovery=RecoveryPolicy(quarantine_probes=2),
        )
        ctrl = (
            RepairController(manager, RepairPolicy(scrub_period_ns=2e8))
            if repair
            else None
        )
        service = QueryService(manager, repair=ctrl)
        responses = service.run(self.requests())
        return responses, service

    def test_repair_controller_must_share_the_manager(self, data):
        manager = build(data, [])
        other = build(data, [])
        ctrl = RepairController(other)
        with pytest.raises(ServingError, match="share"):
            QueryService(manager, repair=ctrl)

    def test_healed_run_is_bit_identical_to_fault_free(self, data):
        responses, _ = self.serve(data, repair=True)
        clean = QueryService(ShardManager(data, 1))
        expected = clean.run(self.requests())
        assert len(responses) == len(expected)
        for got, want in zip(responses, expected):
            assert got.ok and want.ok
            assert np.array_equal(got.indices, want.indices)
            assert np.array_equal(got.scores, want.scores)

    def test_repair_beats_failover_only_on_degraded_recompute(self, data):
        _, with_repair = self.serve(data, repair=True)
        _, baseline = self.serve(data, repair=False)
        healed = with_repair.tracker.degraded_chunks
        unhealed = baseline.tracker.degraded_chunks
        assert healed < unhealed

    def test_replicas_return_to_k_and_mttr_is_recorded(self, data):
        _, service = self.serve(data, repair=True)
        summary = service.summary()
        report = summary["repair"]
        assert report["replica_counts"] == [2] * service.manager.n_chunks
        assert report["rereplications"] >= 1
        assert report["remaps"] >= 1
        assert summary["mttr_ns"] > 0
        activity = summary["repair_activity"]
        assert activity.get("remap", 0) >= 1
        assert activity.get("rereplicate_done", 0) >= 1
        assert activity.get("quarantine", 0) >= 1

    def test_summary_always_carries_the_health_snapshot(self, data):
        manager = build(data, [])
        service = QueryService(manager)
        service.run(self.requests()[:4])
        summary = service.summary()
        statuses = [entry["status"] for entry in summary["health"]]
        assert statuses == ["up"] * 4
        assert all("open_until_ns" in entry for entry in summary["health"])
        assert "repair" not in summary  # only present with a controller

    def test_healing_runs_are_deterministic(self, data):
        first, svc_a = self.serve(data, repair=True)
        second, svc_b = self.serve(data, repair=True)
        for a, b in zip(first, second):
            assert a.completion_ns == b.completion_ns
            assert np.array_equal(a.indices, b.indices)
            assert np.array_equal(a.scores, b.scores)
        ra, rb = svc_a.summary()["repair"], svc_b.summary()["repair"]
        for key in ("detections", "remaps", "rereplications", "busy_ns"):
            assert ra[key] == rb[key]
        assert ra["scrub"] == rb["scrub"]
