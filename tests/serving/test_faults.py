"""Unit tests for serving-layer fault recovery.

The contract under test: whatever the fault plan does — crashes, hangs,
stragglers, corrupted waves, every replica of a chunk gone — completed
responses are bit-identical to a fault-free single-array run, and the
recovery bookkeeping (retries, failovers, breaker state, MTTR, SLO
fields) tells the true story of what it took. References are clean
``ShardManager`` instances over the same data; equality checks are
exact, never approximate.
"""

import numpy as np
import pytest

from repro.errors import (
    ChunkUnavailableError,
    ProgrammingError,
    ServingError,
    ShardHungError,
    WatchdogTimeoutError,
)
from repro.faults import FaultEvent, FaultPlan
from repro.hardware.pim_array import PIMStats
from repro.serving import (
    QueryService,
    RecoveryPolicy,
    Request,
    Response,
    ShardHealthTracker,
    ShardManager,
    SLOTracker,
)
from repro.serving.sharding import GatherTiming


@pytest.fixture
def data(rng):
    return rng.random((40, 8))


@pytest.fixture
def queries(rng):
    return rng.random((3, 8))


def crash(shard, t_ns=0.0):
    return FaultEvent(t_ns=t_ns, kind="shard_crash", target=f"shard{shard}")


def assert_same_answers(got, expected):
    for a, b in zip(got, expected):
        assert np.array_equal(a.indices, b.indices)
        assert np.array_equal(a.scores, b.scores)


class TestRecoveryPolicy:
    def test_backoff_grows_exponentially_to_the_cap(self):
        policy = RecoveryPolicy(
            backoff_base_ns=100.0, backoff_factor=2.0, backoff_cap_ns=350.0
        )
        assert policy.backoff_ns(0) == 0.0
        assert policy.backoff_ns(1) == 100.0
        assert policy.backoff_ns(2) == 200.0
        assert policy.backoff_ns(3) == 350.0
        assert policy.backoff_ns(9) == 350.0

    def test_validation(self):
        with pytest.raises(ServingError):
            RecoveryPolicy(max_retries=-1)
        with pytest.raises(ServingError):
            RecoveryPolicy(backoff_factor=0.5)
        with pytest.raises(ServingError):
            RecoveryPolicy(dispatch_timeout_ns=0.0)
        with pytest.raises(ServingError):
            RecoveryPolicy(hedge_after_ns=-1.0)
        with pytest.raises(ServingError):
            RecoveryPolicy(crash_detect_ns=-1.0)
        with pytest.raises(ServingError):
            RecoveryPolicy(breaker_threshold=0)


class TestShardHealthTracker:
    def test_breaker_opens_then_half_opens(self):
        policy = RecoveryPolicy(breaker_threshold=2, breaker_reset_ns=1000.0)
        health = ShardHealthTracker(2, policy)
        health.record_failure(0, 0.0)
        assert health.available(0, 1.0)  # one failure: still routable
        health.record_failure(0, 10.0)
        assert not health.available(0, 500.0)  # circuit open
        assert health.available(0, 1010.0)  # half-open probe allowed
        assert health.available(1, 0.0)  # the other shard is untouched

    def test_success_closes_the_circuit(self):
        policy = RecoveryPolicy(breaker_threshold=2, breaker_reset_ns=1000.0)
        health = ShardHealthTracker(1, policy)
        health.record_failure(0, 0.0)
        health.record_failure(0, 10.0)
        health.record_success(0, 1010.0)
        assert health.available(0, 1011.0)
        assert health.snapshot(1011.0)[0]["consecutive_failures"] == 0

    def test_permanent_failure_is_forever(self):
        health = ShardHealthTracker(3)
        health.record_failure(1, 5.0, permanent=True)
        assert not health.alive(1)
        assert health.dead_shards == [1]
        assert not health.available(1, 1e18)
        assert health.snapshot(1e18)[1]["status"] == "dead"

    def test_mttr_samples_measure_down_to_up(self):
        health = ShardHealthTracker(1)
        health.record_failure(0, 100.0)
        health.record_success(0, 400.0)
        assert health.drain_recoveries() == [300.0]
        assert health.drain_recoveries() == []  # drained exactly once

    def test_snapshot_statuses(self):
        policy = RecoveryPolicy(breaker_threshold=3, breaker_reset_ns=1e6)
        health = ShardHealthTracker(4, policy)
        health.record_failure(1, 0.0)  # below threshold -> suspect
        for _ in range(3):
            health.record_failure(2, 0.0)  # at threshold -> open
        health.record_failure(3, 0.0, permanent=True)
        statuses = [h["status"] for h in health.snapshot(10.0)]
        assert statuses == ["up", "suspect", "open", "dead"]

    def test_needs_at_least_one_shard(self):
        with pytest.raises(ServingError):
            ShardHealthTracker(0)


class TestSLOTracker:
    def _response(self, ok=True, degraded=False, approximate=False):
        return Response(
            request_id="r",
            tenant="t",
            kind="knn",
            ok=ok,
            arrival_ns=0.0,
            completion_ns=100.0,
            shed_reason=None if ok else "fault:chunk_unavailable",
            approximate=approximate,
            degraded=degraded,
        )

    def test_record_dispatch_aggregates_gather_timing(self):
        tracker = SLOTracker()
        timing = GatherTiming(
            attempts=5,
            retries=2,
            failovers=1,
            timeouts=1,
            crashes=1,
            corrupt_detected=2,
            hedges=1,
            degraded_chunks=1,
        )
        tracker.record_dispatch(timing)
        tracker.record_dispatch(timing)
        assert tracker.dispatches == 2
        assert tracker.attempts == 10
        assert tracker.retries == 4
        assert tracker.failovers == 2
        assert tracker.timeouts == 2
        assert tracker.crashes == 2
        assert tracker.corrupt_detected == 4
        assert tracker.hedges == 2
        assert tracker.degraded_chunks == 2
        assert tracker.retry_rate == pytest.approx(0.4)

    def test_availability_is_completed_over_offered(self):
        tracker = SLOTracker()
        assert tracker.availability == 1.0  # idle: vacuously available
        for _ in range(3):
            tracker.observe(self._response(ok=True))
        tracker.observe(self._response(ok=False))
        assert tracker.availability == pytest.approx(0.75)

    def test_degraded_exact_counts_separately_from_approximate(self):
        tracker = SLOTracker()
        tracker.observe(self._response(degraded=True))
        tracker.observe(self._response(approximate=True))
        assert tracker.degraded_exact == 1
        assert tracker.degraded == 1

    def test_mttr_is_the_mean_of_recovery_samples(self):
        tracker = SLOTracker()
        assert tracker.mttr_ns == 0.0
        tracker.record_recovery(100.0)
        tracker.record_recovery(300.0)
        assert tracker.mttr_ns == pytest.approx(200.0)

    def test_summary_carries_the_robustness_fields(self):
        tracker = SLOTracker()
        tracker.observe(self._response(degraded=True))
        tracker.record_dispatch(GatherTiming(attempts=2, retries=1))
        tracker.record_recovery(50.0)
        summary = tracker.summary()
        assert summary["availability"] == 1.0
        assert summary["retry_rate"] == pytest.approx(0.5)
        assert summary["mttr_ns"] == 50.0
        assert summary["degraded_exact"] == 1
        assert summary["recovery"] == {
            "dispatches": 1,
            "attempts": 2,
            "retries": 1,
            "failovers": 0,
            "timeouts": 0,
            "crashes": 0,
            "corrupt_detected": 0,
            "hedges": 0,
            "hedges_won": 0,
            "hedges_lost": 0,
            "hedges_denied": 0,
            "hedge_cancelled_ns": 0.0,
            "hedge_rate": 0.0,
            "link_drops": 0,
            "degraded_chunks": 0,
        }


class TestGatherTiming:
    def test_service_ns_prefers_wave_end_times(self):
        timing = GatherTiming(
            per_shard_pim_ns=[10.0, 30.0],
            per_shard_cpu_ns=[5.0, 1.0],
            merge_cpu_ns=2.0,
        )
        assert timing.service_ns == 33.0  # legacy fallback: max(pim+cpu)
        timing.wave_end_ns = [50.0, 20.0]
        timing.degraded_cpu_ns = 4.0
        assert timing.service_ns == 56.0


class TestReplication:
    def test_replicated_placement_is_bit_identical_to_plain(
        self, data, queries
    ):
        plain = ShardManager(data, 4)
        replicated = ShardManager(data, 4, replication=2)
        a, _ = plain.knn_batch(queries, 5)
        b, _ = replicated.knn_batch(queries, 5)
        assert_same_answers(b, a)
        ap, _ = plain.assign(data[:3])
        bp, _ = replicated.assign(data[:3])
        assert np.array_equal(bp.assignments, ap.assignments)
        assert np.array_equal(bp.distances, ap.distances)

    def test_each_chunk_lands_on_its_replica_set(self, data):
        manager = ShardManager(data, 4, replication=2)
        assert manager.replicas == [(0, 1), (1, 2), (2, 3), (3, 0)]
        for c, reps in enumerate(manager.replicas):
            rows = manager.chunk_rows[c]
            for s in reps:
                shard = manager.shards[s]
                sl = shard.chunk_slices[c]
                assert np.array_equal(shard.global_indices[sl], rows)

    def test_replication_bounds_are_validated(self, data):
        with pytest.raises(ServingError):
            ShardManager(data, 4, replication=0)
        with pytest.raises(ServingError):
            ShardManager(data, 4, replication=5)

    def test_verify_requires_resident_programming(self, data):
        with pytest.raises(ServingError):
            ShardManager(data, 2, chunked=True, verify=True)

    def test_merged_stats_namespace_replicated_shards(self, data, queries):
        manager = ShardManager(data, 2, replication=2)
        manager.knn_batch(queries, 3)
        merged = manager.merged_stats()
        assert merged.waves == sum(
            s.pim_stats.waves for s in manager.shards
        )
        assert set(merged.matrices) == {"shard0.shard0", "shard1.shard1"}

    def test_merge_needs_one_prefix_per_part(self):
        with pytest.raises(ProgrammingError):
            PIMStats.merge([PIMStats()], prefixes=["a.", "b."])


class TestRecoveryDispatch:
    def test_crash_fails_over_and_stays_exact(self, data, queries):
        clean = ShardManager(data, 1)
        plan = FaultPlan([crash(1)])
        manager = ShardManager(data, 4, replication=2, fault_plan=plan)
        answers, timing = manager.knn_batch(queries, 5)
        expected, _ = clean.knn_batch(queries, 5)
        assert_same_answers(answers, expected)
        assert not answers[0].degraded
        assert timing.crashes >= 1
        assert timing.failovers >= 1
        assert manager.health.dead_shards == [1]

    def test_lost_chunk_degrades_to_exact_host_recompute(
        self, data, queries
    ):
        clean = ShardManager(data, 1)
        plan = FaultPlan([crash(0)])
        manager = ShardManager(data, 4, replication=1, fault_plan=plan)
        answers, timing = manager.knn_batch(queries, 5)
        expected, _ = clean.knn_batch(queries, 5)
        assert_same_answers(answers, expected)
        assert all(a.degraded for a in answers)
        assert timing.degraded_chunks == 1
        assert timing.degraded_cpu_ns > 0.0

    def test_unavailable_chunk_raises_when_degradation_disabled(
        self, data, queries
    ):
        plan = FaultPlan([crash(0)])
        manager = ShardManager(
            data,
            4,
            replication=1,
            fault_plan=plan,
            recovery=RecoveryPolicy(allow_degraded=False),
        )
        with pytest.raises(ChunkUnavailableError) as excinfo:
            manager.knn_batch(queries, 5)
        assert excinfo.value.unit == "chunk0"
        assert excinfo.value.context["replicas"] == [0]

    def test_corruption_is_detected_and_recovered_exactly(
        self, data, queries
    ):
        clean = ShardManager(data, 1)
        plan = FaultPlan(
            [
                FaultEvent(
                    t_ns=0.0,
                    kind="wave_corrupt",
                    target="shard0",
                    params={"probability": 1.0},
                )
            ]
        )
        manager = ShardManager(data, 4, replication=2, fault_plan=plan)
        assert manager.verify  # on by default when a plan is attached
        answers, timing = manager.knn_batch(queries, 5)
        expected, _ = clean.knn_batch(queries, 5)
        assert_same_answers(answers, expected)
        assert not answers[0].degraded  # a clean replica served the chunk
        assert timing.corrupt_detected >= 1
        assert timing.retries >= 1

    def test_hang_times_out_and_fails_over(self, data, queries):
        clean = ShardManager(data, 1)
        plan = FaultPlan(
            [FaultEvent(t_ns=0.0, kind="shard_hang", target="shard0")]
        )
        manager = ShardManager(data, 4, replication=2, fault_plan=plan)
        answers, timing = manager.knn_batch(queries, 5)
        expected, _ = clean.knn_batch(queries, 5)
        assert_same_answers(answers, expected)
        assert timing.timeouts >= 1
        # the abandoned attempt still occupied the dispatch for the full
        # watchdog window
        assert timing.service_ns >= manager.recovery.dispatch_timeout_ns

    def test_hang_without_watchdog_raises(self, data, queries):
        plan = FaultPlan(
            [FaultEvent(t_ns=0.0, kind="shard_hang", target="shard0")]
        )
        manager = ShardManager(
            data,
            2,
            fault_plan=plan,
            recovery=RecoveryPolicy(dispatch_timeout_ns=None),
        )
        with pytest.raises(ShardHungError) as excinfo:
            manager.knn_batch(queries, 5)
        assert isinstance(excinfo.value, TimeoutError)
        assert excinfo.value.unit == "shard0"

    def test_slow_shard_stretches_time_not_values(self, data, queries):
        baseline = ShardManager(data, 2, fault_plan=FaultPlan())
        slowed = ShardManager(
            data,
            2,
            fault_plan=FaultPlan(
                [
                    FaultEvent(
                        t_ns=0.0,
                        kind="slow_shard",
                        target="shard0",
                        params={"factor": 5.0},
                    )
                ]
            ),
        )
        a, t_base = baseline.knn_batch(queries, 5)
        b, t_slow = slowed.knn_batch(queries, 5)
        assert_same_answers(b, a)
        assert t_slow.service_ns > t_base.service_ns

    def test_hedging_duplicates_straggler_waves(self, data, queries):
        clean = ShardManager(data, 1)
        manager = ShardManager(
            data,
            2,
            replication=2,
            fault_plan=FaultPlan(),
            recovery=RecoveryPolicy(hedge_after_ns=1.0),
        )
        answers, timing = manager.knn_batch(queries, 5)
        expected, _ = clean.knn_batch(queries, 5)
        assert_same_answers(answers, expected)
        assert timing.hedges >= 1

    def test_assign_survives_crash_and_degradation(self, data):
        centers = data[:3]
        clean, _ = ShardManager(data, 1).assign(centers)
        plan = FaultPlan([crash(1)])
        replicated = ShardManager(data, 4, replication=2, fault_plan=plan)
        a, _ = replicated.assign(centers)
        assert np.array_equal(a.assignments, clean.assignments)
        assert np.array_equal(a.distances, clean.distances)
        assert not a.degraded
        lone = ShardManager(data, 4, replication=1, fault_plan=plan)
        b, timing = lone.assign(centers)
        assert np.array_equal(b.assignments, clean.assignments)
        assert np.array_equal(b.distances, clean.distances)
        assert b.degraded and timing.degraded_chunks == 1


class TestServiceUnderFaults:
    def _request(self, rid="r0", t=0.0, query=None, kind="knn"):
        return Request(
            request_id=rid,
            tenant="t",
            query=query,
            k=5,
            kind=kind,
            arrival_ns=t,
        )

    def test_unabsorbable_fault_becomes_a_reasoned_shed(self, data, rng):
        plan = FaultPlan([crash(0)])
        manager = ShardManager(
            data,
            1,
            fault_plan=plan,
            recovery=RecoveryPolicy(allow_degraded=False),
        )
        service = QueryService(manager)
        responses = service.run([self._request(query=rng.random(8))])
        assert len(responses) == 1
        assert not responses[0].ok
        assert responses[0].shed_reason == "fault:chunk_unavailable"
        assert service.tracker.shed_reasons == {
            "fault:chunk_unavailable": 1
        }

    def test_hung_shard_without_watchdog_escapes_as_timeout(
        self, data, rng
    ):
        plan = FaultPlan(
            [FaultEvent(t_ns=0.0, kind="shard_hang", target="shard0")]
        )
        manager = ShardManager(
            data,
            1,
            fault_plan=plan,
            recovery=RecoveryPolicy(dispatch_timeout_ns=None),
        )
        service = QueryService(manager)
        with pytest.raises(TimeoutError):
            service.run([self._request(query=rng.random(8))])

    def test_non_finite_service_time_trips_the_watchdog(self, data, rng):
        service = QueryService(ShardManager(data, 1))
        service._serve = lambda batch: float("inf")
        service.submit(self._request(query=rng.random(8)))
        with pytest.raises(WatchdogTimeoutError):
            service.drain()

    def test_degraded_completion_feeds_the_slo_tracker(self, data, rng):
        plan = FaultPlan([crash(0)])
        manager = ShardManager(data, 4, replication=1, fault_plan=plan)
        service = QueryService(manager)
        query = rng.random(8)
        responses = service.run(
            [self._request(rid=f"r{i}", query=query) for i in range(2)]
        )
        assert all(r.ok and r.degraded for r in responses)
        clean = ShardManager(data, 1).knn(query, 5)
        for r in responses:
            assert np.array_equal(r.indices, clean.indices)
            assert np.array_equal(r.scores, clean.scores)
        tracker = service.tracker
        assert tracker.degraded_exact == 2
        assert tracker.availability == 1.0
        assert tracker.crashes >= 1
        assert tracker.dispatches >= 1

    def test_recoveries_flow_into_mttr(self, data, rng):
        # a transient hang: down for one window, then back up
        plan = FaultPlan(
            [
                FaultEvent(
                    t_ns=0.0,
                    kind="shard_hang",
                    target="shard0",
                    duration_ns=1000.0,
                )
            ]
        )
        manager = ShardManager(
            data,
            2,
            replication=2,
            fault_plan=plan,
            recovery=RecoveryPolicy(dispatch_timeout_ns=2000.0),
        )
        service = QueryService(manager)
        service.run(
            [
                self._request(rid="r0", t=0.0, query=rng.random(8)),
                self._request(rid="r1", t=1e9, query=rng.random(8)),
            ]
        )
        assert service.tracker.timeouts >= 1
        assert service.tracker.mttr_ns > 0.0
