"""Unit tests for dataset placement and exact scatter/gather.

The load-bearing contract: a :class:`ShardManager` answers exactly the
same kNN / k-means-assist queries as a single array — sharding changes
timing, never answers. Brute-force references below route through the
shards' own canonical kernel (:func:`exact_sq_distances` on quantizer-
normalised vectors) so equality checks are bit-exact, not approximate.
"""

import numpy as np
import pytest

from repro.errors import ProgrammingError, ServingError
from repro.hardware.config import (
    CrossbarConfig,
    HardwareConfig,
    PIMArrayConfig,
)
from repro.serving import (
    KNNAnswer,
    ShardManager,
    ShardPlacement,
    plan_placement,
)
from repro.serving.sharding import GatherTiming, exact_sq_distances
from repro.similarity.quantization import Quantizer


def brute_knn(manager: ShardManager, data, query, k):
    """Canonical (score, index) top-k with the shards' own arithmetic."""
    nd = manager.quantizer.normalize(np.asarray(data, dtype=np.float64))
    nq = manager.quantizer.normalize(np.atleast_2d(query))[0]
    scores = exact_sq_distances(nd, nq)
    order = np.lexsort((np.arange(scores.size), scores))[:k]
    return order, scores[order]


@pytest.fixture
def data(rng):
    return rng.random((60, 8))


class TestPlacement:
    def test_range_blocks_cover_all_rows(self):
        placement = plan_placement(10, 3, kind="range")
        assert placement.n_rows == 10
        # first n % S shards absorb the remainder
        assert [placement.rows_of(s).size for s in range(3)] == [4, 3, 3]
        assert np.array_equal(
            np.sort(np.concatenate([placement.rows_of(s) for s in range(3)])),
            np.arange(10),
        )

    def test_range_rows_are_contiguous(self):
        placement = plan_placement(9, 3, kind="range")
        for s in range(3):
            rows = placement.rows_of(s)
            assert np.array_equal(rows, np.arange(rows[0], rows[-1] + 1))

    def test_hash_is_deterministic_and_seeded(self):
        a = plan_placement(50, 4, kind="hash", seed=0)
        b = plan_placement(50, 4, kind="hash", seed=0)
        c = plan_placement(50, 4, kind="hash", seed=9)
        assert np.array_equal(a.assignments, b.assignments)
        assert not np.array_equal(a.assignments, c.assignments)

    def test_hash_covers_every_shard(self):
        placement = plan_placement(64, 4, kind="hash")
        assert sorted(set(placement.assignments.tolist())) == [0, 1, 2, 3]

    def test_rejects_bad_arguments(self):
        with pytest.raises(ServingError):
            plan_placement(0, 2)
        with pytest.raises(ServingError):
            plan_placement(10, 0)
        with pytest.raises(ServingError):
            plan_placement(10, 2, kind="zigzag")

    def test_explicit_placement_validates_ids(self):
        with pytest.raises(ServingError):
            ShardPlacement(n_shards=2, assignments=np.array([0, 2]))
        with pytest.raises(ServingError):
            ShardPlacement(n_shards=0, assignments=np.array([], dtype=int))
        with pytest.raises(ServingError):
            ShardPlacement(n_shards=2, assignments=np.zeros((2, 2), int))

    def test_empty_shards_are_legal(self, data):
        placement = ShardPlacement(
            n_shards=3, assignments=np.zeros(len(data), dtype=np.int64)
        )
        manager = ShardManager(data, placement=placement)
        assert manager.shard_sizes() == [60, 0, 0]
        answer = manager.knn(data[4], k=5)
        assert answer.indices[0] == 4


class TestKNNExactness:
    def test_matches_brute_force(self, data):
        manager = ShardManager(data, n_shards=3)
        query = data[7] + 0.01
        answer = manager.knn(query, k=8)
        ref_idx, ref_scores = brute_knn(manager, data, query, 8)
        assert np.array_equal(answer.indices, ref_idx)
        assert np.array_equal(answer.scores, ref_scores)

    @pytest.mark.parametrize("placement", ["range", "hash"])
    @pytest.mark.parametrize("n_shards", [1, 2, 4])
    def test_placement_invariant(self, data, placement, n_shards):
        single = ShardManager(data, n_shards=1)
        sharded = ShardManager(data, n_shards=n_shards, placement=placement)
        queries = data[[3, 11]] * 0.97
        singles, _ = single.knn_batch(queries, 5)
        shardeds, _ = sharded.knn_batch(queries, 5)
        for a, b in zip(singles, shardeds):
            assert np.array_equal(a.indices, b.indices)
            assert np.array_equal(a.scores, b.scores)

    def test_duplicate_distance_ties_take_lowest_index(self):
        # rows 2, 5, 9 identical -> equal scores -> canonical order
        data = np.ones((12, 4)) * np.arange(12)[:, None] / 12.0
        data[5] = data[2]
        data[9] = data[2]
        manager = ShardManager(data, n_shards=3, placement="hash")
        answer = manager.knn(data[2], k=3)
        assert answer.indices.tolist() == [2, 5, 9]
        assert answer.scores[0] == answer.scores[1] == answer.scores[2]

    def test_k_larger_than_dataset(self, data):
        manager = ShardManager(data[:6], n_shards=2)
        answer = manager.knn(data[0], k=50)
        assert answer.indices.size == 6

    def test_per_query_k_and_degrade_flags(self, data):
        manager = ShardManager(data, n_shards=2)
        answers, _ = manager.knn_batch(
            data[[0, 1]], ks=[3, 7], approximate=[False, True]
        )
        assert answers[0].indices.size == 3
        assert not answers[0].approximate
        assert answers[1].indices.size == 7
        assert answers[1].approximate
        assert answers[1].refined == 0  # degraded path never refines

    def test_approximate_scores_lower_bound_exact(self, data):
        manager = ShardManager(data, n_shards=2)
        exact = manager.knn(data[3], k=5)
        approx, _ = manager.knn_batch(data[[3]], 5, approximate=True)
        # Theorem 1: every lower bound <= its exact distance
        assert approx[0].scores[0] <= exact.scores[0] + 1e-12

    def test_rejects_bad_queries(self, data):
        manager = ShardManager(data, n_shards=2)
        with pytest.raises(ServingError):
            manager.knn(np.zeros(5), k=3)  # wrong dims
        with pytest.raises(ServingError):
            manager.knn_batch(data[:2], ks=[1, 2, 3])
        with pytest.raises(ServingError):
            manager.knn(data[0], k=0)
        with pytest.raises(ServingError):
            ShardManager(np.zeros((0, 4)))


class TestAssign:
    def test_matches_brute_force_argmin(self, data, rng):
        manager = ShardManager(data, n_shards=3, placement="hash")
        centers = rng.random((5, 8))
        answer, timing = manager.assign(centers)
        nd = manager.quantizer.normalize(data)
        nc = manager.quantizer.normalize(centers)
        dd = ((nd[:, None, :] - nc[None, :, :]) ** 2).sum(axis=2)
        assert np.array_equal(answer.assignments, dd.argmin(axis=1))
        assert isinstance(timing, GatherTiming)
        assert timing.service_ns > 0

    def test_tie_breaks_to_lowest_center(self, data):
        manager = ShardManager(data, n_shards=2)
        centers = np.stack([data[0], data[0]])  # identical centers
        answer, _ = manager.assign(centers)
        assert (answer.assignments == 0).all()


class TestTimingAndStats:
    def test_gather_timing_is_max_plus_merge(self):
        timing = GatherTiming(
            per_shard_pim_ns=[10.0, 30.0],
            per_shard_cpu_ns=[5.0, 1.0],
            merge_cpu_ns=2.0,
        )
        assert timing.service_ns == 33.0
        assert GatherTiming().service_ns == 0.0

    def test_sharding_shrinks_service_time(self, rng):
        big = rng.random((2048, 16))
        t1 = ShardManager(big, n_shards=1).knn_batch(big[:4], 5)[1]
        t4 = ShardManager(big, n_shards=4).knn_batch(big[:4], 5)[1]
        assert t4.service_ns < t1.service_ns

    def test_busy_accounting_and_reset(self, data):
        manager = ShardManager(data, n_shards=2)
        assert manager.shard_busy_ns() == [0.0, 0.0]
        manager.knn(data[0], k=3)
        assert all(b > 0 for b in manager.shard_busy_ns())
        manager.reset_busy()
        assert manager.shard_busy_ns() == [0.0, 0.0]

    def test_merged_stats_namespaces_shards(self, data):
        manager = ShardManager(data, n_shards=2)
        manager.knn(data[0], k=3)
        stats = manager.merged_stats()
        assert stats.waves == sum(
            s.pim_stats.waves for s in manager.shards
        )
        assert "shard0.shard0" in stats.matrices
        assert "shard1.shard1" in stats.matrices


class TestChunkedShards:
    @staticmethod
    def _tiny_platform():
        xbar = CrossbarConfig(rows=16, cols=16, cell_bits=2)
        return HardwareConfig(
            pim=PIMArrayConfig(
                crossbar=xbar,
                capacity_bytes=8 * (xbar.capacity_bits // 8),
                operand_bits=8,
            )
        )

    def _manager(self, data, **kwargs):
        return ShardManager(
            data,
            n_shards=2,
            hardware=self._tiny_platform(),
            quantizer=Quantizer(alpha=200),
            chunked=True,
            **kwargs,
        )

    def test_chunked_matches_resident(self, rng):
        data = rng.random((200, 8))
        chunked = self._manager(data)
        assert any(s.engine.n_chunks > 1 for s in chunked.shards)
        resident = ShardManager(
            data, n_shards=2, quantizer=Quantizer(alpha=200)
        )
        a = chunked.knn(data[3], k=6)
        b = resident.knn(data[3], k=6)
        assert np.array_equal(a.indices, b.indices)
        assert np.array_equal(a.scores, b.scores)

    def test_reprogram_budget_enforced(self, rng):
        data = rng.random((200, 8))
        manager = self._manager(data, reprogram_budget=0)
        with pytest.raises(ServingError, match="budget"):
            for _ in range(4):  # chunk swaps accumulate re-programmings
                manager.knn(data[0], k=3)
