"""Crash-consistent checkpoint/restore: the cold-start fidelity contract.

A restored manager must be indistinguishable from one that never
crashed: same answers bit for bit, same shard row layouts, same
endurance counters and breaker state. Anything less than byte-level
integrity must surface as :class:`CheckpointError` at restore time,
never as silently wrong answers at serve time.
"""

import json
import os

import numpy as np
import pytest

import repro.checkpoint as checkpoint_mod
from repro.checkpoint import (
    CHECKPOINT_VERSION,
    read_manifest,
    restore_manager,
    verify_checkpoint,
    write_checkpoint,
)
from repro.errors import CheckpointError
from repro.hardware import FailureDomainTopology
from repro.serving import ShardManager
from repro.similarity.quantization import Quantizer


def topo8():
    return FailureDomainTopology(
        n_shards=8,
        shards_per_board=2,
        boards_per_channel=2,
        channels_per_power_domain=1,
    )


def dataset(rows=64, dims=6, seed=0):
    return np.random.default_rng(seed).random((rows, dims))


def manager8(data=None):
    if data is None:
        data = dataset()
    return ShardManager(data, 8, replication=2, topology=topo8())


class TestRoundTrip:
    def test_restored_answers_are_bit_identical(self, tmp_path):
        data = dataset(80, 8)
        queries = np.random.default_rng(7).random((6, 8))
        m = ShardManager(data, 8, replication=2, topology=topo8())
        before, _ = m.knn_batch(queries, 9)
        path = str(tmp_path / "ck.npz")
        write_checkpoint(m, path, t_ns=123.0)
        restored = restore_manager(path)
        after, _ = restored.knn_batch(queries, 9)
        for x, y in zip(before, after):
            assert np.array_equal(x.indices, y.indices)
            assert np.array_equal(x.scores, y.scores)
            assert not y.degraded

    def test_restored_layout_matches_shard_for_shard(self, tmp_path):
        m = manager8()
        m.add_replica(2)  # mutate past the constructor's layout
        path = str(tmp_path / "ck.npz")
        write_checkpoint(m, path)
        restored = restore_manager(path)
        assert restored.replica_log == m.replica_log
        assert restored.replicas == m.replicas
        for ours, theirs in zip(m.shards, restored.shards):
            assert theirs.chunk_slices == ours.chunk_slices
            assert theirs.n_rows == ours.n_rows

    def test_endurance_counters_survive_the_crash(self, tmp_path):
        m = manager8()
        trackers = [
            t
            for t in map(checkpoint_mod._endurance_tracker, m.shards)
            if t is not None
        ]
        assert trackers, "fleet exposes no endurance trackers"
        key = next(iter(trackers[0].writes))
        trackers[0].writes[key] += 17
        expected = dict(trackers[0].writes)
        path = str(tmp_path / "ck.npz")
        write_checkpoint(m, path)
        restored = restore_manager(path)
        back = checkpoint_mod._endurance_tracker(restored.shards[0])
        assert back.writes == expected

    def test_health_state_survives_and_can_be_reset(self, tmp_path):
        m = manager8()
        m.health.record_failure(4, 0.0, permanent=True)
        path = str(tmp_path / "ck.npz")
        write_checkpoint(m, path)
        restored = restore_manager(path)
        assert not restored.health.alive(4)
        fresh = restore_manager(path, restore_health=False)
        assert fresh.health.alive(4)

    def test_recovery_point_is_the_snapshot_time(self, tmp_path):
        m = manager8()
        path = str(tmp_path / "ck.npz")
        write_checkpoint(m, path, t_ns=4.5e6)
        assert m.last_checkpoint_ns == 4.5e6
        restored = restore_manager(path)
        assert restored.last_checkpoint_ns == 4.5e6
        assert restored.spread_report()["last_checkpoint_ns"] == 4.5e6

    def test_placement_metadata_round_trips(self, tmp_path):
        # a single-board fleet cannot spread, so construction records
        # violations — history that must come back verbatim, not be
        # re-derived (replay would double-count them)
        single_board = FailureDomainTopology(
            n_shards=4, shards_per_board=4
        )
        m = ShardManager(
            dataset(32), 4, replication=2, topology=single_board
        )
        assert m.placement_violations
        path = str(tmp_path / "ck.npz")
        write_checkpoint(m, path)
        restored = restore_manager(path)
        assert restored.placement_violations == m.placement_violations
        assert restored.topology == m.topology


class TestIntegrity:
    def test_tampered_array_is_refused(self, tmp_path):
        m = manager8()
        path = str(tmp_path / "ck.npz")
        write_checkpoint(m, path)
        with np.load(path) as payload:
            arrays = {name: payload[name] for name in payload.files}
        tampered = np.array(arrays["data"])
        tampered[0, 0] += 0.5
        arrays["data"] = tampered
        np.savez_compressed(path, **arrays)
        with pytest.raises(CheckpointError, match="hash mismatch"):
            restore_manager(path)

    def test_truncated_container_is_refused(self, tmp_path):
        m = manager8()
        path = str(tmp_path / "ck.npz")
        write_checkpoint(m, path)
        blob = open(path, "rb").read()
        with open(path, "wb") as fh:
            fh.write(blob[: len(blob) // 2])
        with pytest.raises(CheckpointError, match="unreadable"):
            read_manifest(path)

    def test_missing_array_is_refused(self, tmp_path):
        m = manager8()
        path = str(tmp_path / "ck.npz")
        write_checkpoint(m, path)
        with np.load(path) as payload:
            arrays = {name: payload[name] for name in payload.files}
        del arrays["assignments"]
        np.savez_compressed(path, **arrays)
        with pytest.raises(CheckpointError, match="missing arrays"):
            restore_manager(path)

    def test_version_mismatch_is_refused(self, tmp_path, monkeypatch):
        m = manager8()
        path = str(tmp_path / "ck.npz")
        monkeypatch.setattr(
            checkpoint_mod, "CHECKPOINT_VERSION", CHECKPOINT_VERSION + 1
        )
        write_checkpoint(m, path)
        monkeypatch.undo()
        with pytest.raises(CheckpointError, match="unsupported version"):
            read_manifest(path)

    def test_inconsistent_quantizer_is_refused(self, tmp_path):
        # swap the dataset under an unchanged manifest hash set: the
        # re-quantize oracle (not just the hashes) must catch it, so
        # rewrite the stored hashes to match the forged data
        m = manager8()
        path = str(tmp_path / "ck.npz")
        write_checkpoint(m, path)
        with np.load(path) as payload:
            arrays = {name: payload[name] for name in payload.files}
        forged = np.array(arrays["data"])
        forged[:] = forged[::-1]
        arrays["data"] = forged
        manifest = json.loads(bytes(arrays["manifest"]).decode())
        manifest["hashes"]["data"] = checkpoint_mod._digest(forged)
        mb = np.frombuffer(
            json.dumps(manifest, sort_keys=True).encode(), dtype=np.uint8
        )
        arrays["manifest"] = mb
        arrays["manifest_sha"] = np.frombuffer(
            checkpoint_mod._digest(mb).encode("ascii"), dtype=np.uint8
        )
        np.savez_compressed(path, **arrays)
        with pytest.raises(CheckpointError, match="re-quantized"):
            restore_manager(path)

    def test_verify_checkpoint_reports_without_restoring(self, tmp_path):
        m = manager8()
        path = str(tmp_path / "ck.npz")
        write_checkpoint(m, path, t_ns=99.0)
        report = verify_checkpoint(path)
        assert report["version"] == CHECKPOINT_VERSION
        assert report["t_ns"] == 99.0
        assert report["n_shards"] == 8
        assert report["hashes_verified"] >= 3
        assert set(report["arrays"]) >= {"data", "assignments", "qint"}


class TestWriteProtocol:
    def test_no_tmp_file_survives_a_write(self, tmp_path):
        m = manager8()
        path = str(tmp_path / "ck.npz")
        write_checkpoint(m, path)
        assert os.path.exists(path)
        assert not os.path.exists(path + ".tmp")

    def test_failed_write_leaves_the_old_checkpoint_intact(
        self, tmp_path, monkeypatch
    ):
        m = manager8()
        path = str(tmp_path / "ck.npz")
        write_checkpoint(m, path, t_ns=1.0)
        golden = verify_checkpoint(path)

        def boom(*args, **kwargs):
            raise OSError("disk full")

        monkeypatch.setattr(checkpoint_mod.np, "savez_compressed", boom)
        with pytest.raises(OSError):
            write_checkpoint(m, path, t_ns=2.0)
        monkeypatch.undo()
        assert not os.path.exists(path + ".tmp")
        assert verify_checkpoint(path) == golden  # old snapshot intact
        assert read_manifest(path)["t_ns"] == 1.0

    def test_chunked_manager_cannot_checkpoint(self, tmp_path):
        m = ShardManager(dataset(32, 4), 2, chunked=True)
        with pytest.raises(CheckpointError, match="chunked"):
            write_checkpoint(m, str(tmp_path / "ck.npz"))

    def test_unfitted_quantizer_round_trips(self, tmp_path):
        # assume_normalized quantizers carry no per-dimension stats;
        # the container must simply omit them and restore cleanly
        grid = np.array([0.0, 0.25, 0.5, 0.75, 1.0])
        data = np.random.default_rng(1).choice(grid, size=(40, 4))
        m = ShardManager(
            data, 4, quantizer=Quantizer(assume_normalized=True)
        )
        q = np.random.default_rng(2).choice(grid, size=(3, 4))
        before, _ = m.knn_batch(q, 5)
        path = str(tmp_path / "ck.npz")
        write_checkpoint(m, path)
        restored = restore_manager(path)
        after, _ = restored.knn_batch(q, 5)
        for x, y in zip(before, after):
            assert np.array_equal(x.indices, y.indices)
            assert np.array_equal(x.scores, y.scores)
