"""Unit tests for the discrete-event query service.

Covers the acceptance criterion head-on: a 4-shard service answers the
same fixed-seed trace bit-identically to a 1-shard service, twice in a
row — plus admission control, every backpressure policy, deadline
shedding, batching, and input validation.
"""

import numpy as np
import pytest

from repro.errors import ServingError
from repro.serving import (
    QueryService,
    Request,
    ShardManager,
    SLOTracker,
    TenantSpec,
    WorkloadDriver,
)

DIMS = 8


@pytest.fixture
def data(rng):
    return rng.random((80, DIMS))


def make_request(i, query, *, tenant="t", arrival=0.0, **kwargs):
    return Request(
        request_id=f"r{i:04d}",
        tenant=tenant,
        query=query,
        arrival_ns=arrival,
        **kwargs,
    )


class TestAcceptance:
    """4 shards == 1 array, bit-identical, twice in a row."""

    def run_once(self, data, n_shards):
        manager = ShardManager(data, n_shards=n_shards, placement="hash")
        tenants = [TenantSpec("a", k=5), TenantSpec("b", k=5)]
        driver = WorkloadDriver(data, tenants, seed=77)
        # low offered load + no batch window: nothing sheds or degrades
        requests = driver.open_loop(rate_qps=1_000, n_requests=30)
        service = QueryService(
            manager, tenants, max_batch=4, queue_capacity=64
        )
        responses = service.run(requests)
        assert all(r.ok for r in responses)
        return {
            r.request_id: (r.indices.tolist(), r.scores.tolist())
            for r in responses
        }

    def test_sharded_equals_single_twice(self, data):
        for _ in range(2):  # twice in a row, same fixed seed
            single = self.run_once(data, 1)
            sharded = self.run_once(data, 4)
            assert single == sharded

    def test_rerun_is_bit_identical(self, data):
        manager = ShardManager(data, n_shards=4)
        tenants = [TenantSpec("a")]
        traces = []
        for _ in range(2):
            driver = WorkloadDriver(data, tenants, seed=5)
            service = QueryService(manager, tenants, max_batch=4)
            responses = service.run(
                driver.open_loop(rate_qps=200_000, n_requests=25)
            )
            traces.append(
                [
                    (r.request_id, r.ok, r.completion_ns,
                     None if r.indices is None else r.indices.tolist())
                    for r in responses
                ]
            )
        assert traces[0] == traces[1]


class TestAdmission:
    def test_token_bucket_sheds_over_rate(self, data):
        manager = ShardManager(data)
        tenants = [TenantSpec("slow", rate_qps=1.0, burst=2)]
        service = QueryService(manager, tenants, tracker=SLOTracker())
        # burst of 5 at t=0: 2 tokens -> 3 admission sheds
        for i in range(5):
            service.submit(make_request(i, data[0], tenant="slow", k=3))
        service.drain()
        assert service.tracker.shed_reasons == {"admission": 3}
        assert service.tracker.completed == 2

    def test_unknown_tenant_is_refused(self, data):
        service = QueryService(ShardManager(data), [TenantSpec("a")])
        with pytest.raises(ServingError, match="unknown tenant"):
            service.submit(make_request(0, data[0], tenant="nobody"))

    def test_unknown_kind_is_refused(self, data):
        service = QueryService(ShardManager(data))
        with pytest.raises(ServingError, match="kind"):
            service.submit(make_request(0, data[0], kind="scan"))

    def test_arrivals_must_move_forward(self, data):
        service = QueryService(ShardManager(data))
        service.submit(make_request(0, data[0], arrival=100.0))
        with pytest.raises(ServingError, match="order"):
            service.submit(make_request(1, data[0], arrival=50.0))

    def test_constructor_validation(self, data):
        manager = ShardManager(data)
        with pytest.raises(ServingError):
            QueryService(manager, max_batch=0)
        with pytest.raises(ServingError):
            QueryService(manager, queue_capacity=0)
        with pytest.raises(ServingError):
            QueryService(manager, policy="spill")
        with pytest.raises(ServingError):
            QueryService(manager, batch_window_ns=-1.0)


class TestBackpressure:
    def overload(self, data, policy):
        """3 arrivals pile into a queue of 2 while the server is busy.

        r0000 occupies the server (its service time dwarfs the 1 ns
        arrival gaps), so r0001..r0003 all queue; the third hits the
        capacity-2 bound and triggers the policy under test.
        """
        manager = ShardManager(data)
        service = QueryService(
            manager, max_batch=1, queue_capacity=2, policy=policy,
            tracker=SLOTracker(),
        )
        for i in range(4):
            service.submit(
                make_request(i, data[i], k=3, arrival=float(i))
            )
        service.drain()
        return service

    def test_reject_sheds_the_newcomer(self, data):
        service = self.overload(data, "reject")
        shed = [r for r in service.responses if not r.ok]
        assert [r.request_id for r in shed] == ["r0003"]
        assert shed[0].shed_reason == "queue_full"

    def test_drop_oldest_sheds_the_head(self, data):
        service = self.overload(data, "drop_oldest")
        shed = [r for r in service.responses if not r.ok]
        assert [r.request_id for r in shed] == ["r0001"]

    def test_degrade_serves_approximately(self, data):
        service = self.overload(data, "degrade")
        assert service.tracker.shed == 0
        approx = [r for r in service.responses if r.approximate]
        assert [r.request_id for r in approx] == ["r0003"]
        assert service.tracker.degraded == 1


class TestDeadlines:
    def test_expired_requests_shed_at_dispatch(self, data):
        manager = ShardManager(data)
        service = QueryService(
            manager, max_batch=1, default_deadline_ns=1.0,
            tracker=SLOTracker(),
        )
        # r0 occupies the server long past r1's 1ns deadline
        service.submit(make_request(0, data[0], k=3))
        service.submit(make_request(1, data[1], k=3))
        service.drain()
        assert service.tracker.shed_reasons == {"deadline": 1}

    def test_tenant_deadline_overrides_default(self, data):
        manager = ShardManager(data)
        tenants = [TenantSpec("vip", deadline_ns=1e12)]
        service = QueryService(
            manager, tenants, max_batch=1, default_deadline_ns=1.0,
            tracker=SLOTracker(),
        )
        service.submit(make_request(0, data[0], tenant="vip", k=3))
        service.submit(make_request(1, data[1], tenant="vip", k=3))
        service.drain()
        assert service.tracker.shed == 0

    def test_edf_orders_dispatch(self, data):
        manager = ShardManager(data)
        service = QueryService(manager, max_batch=1)
        # r0 occupies the server; r1/r2 queue and r2's earlier
        # deadline wins the next dispatch despite arriving later
        service.submit(make_request(0, data[0], k=3, arrival=0.0))
        service.submit(
            make_request(1, data[1], k=3, arrival=1.0, deadline_ns=1e9)
        )
        service.submit(
            make_request(2, data[2], k=3, arrival=2.0, deadline_ns=1e6)
        )
        responses = service.drain()
        completions = [r for r in responses if r.ok]
        assert [r.request_id for r in completions] == [
            "r0000", "r0002", "r0001",
        ]


class TestBatching:
    def test_window_accumulates_batches(self, data):
        manager = ShardManager(data)
        service = QueryService(
            manager, max_batch=4, batch_window_ns=1e6
        )
        for i in range(4):
            service.submit(make_request(i, data[i], k=3, arrival=i * 10.0))
        responses = service.drain()
        assert all(r.batch_size == 4 for r in responses)

    def test_without_window_head_dispatches_alone(self, data):
        manager = ShardManager(data)
        service = QueryService(manager, max_batch=4, batch_window_ns=0.0)
        service.submit(make_request(0, data[0], k=3, arrival=0.0))
        # second request lands while the server is busy with r0
        service.submit(make_request(1, data[1], k=3, arrival=1.0))
        responses = service.drain()
        assert responses[0].batch_size == 1

    def test_assign_requests_ride_the_service(self, data, rng):
        manager = ShardManager(data, n_shards=2)
        centers = rng.random((4, DIMS))
        service = QueryService(manager)
        service.submit(make_request(0, centers, kind="assign"))
        service.submit(make_request(1, data[0], k=3))
        responses = service.drain()
        by_id = {r.request_id: r for r in responses}
        assert by_id["r0000"].indices.size == len(data)  # one per row
        direct, _ = manager.assign(centers)
        assert np.array_equal(by_id["r0000"].indices, direct.assignments)

    def test_summary_exposes_slo_numbers(self, data):
        manager = ShardManager(data, n_shards=2)
        service = QueryService(manager, tracker=SLOTracker())
        for i in range(6):
            service.submit(make_request(i, data[i], k=3, arrival=i * 100.0))
        service.drain()
        summary = service.summary()
        assert summary["completed"] == 6
        assert summary["p99_ns"] >= summary["p50_ns"] > 0
        assert len(summary["shard_utilization"]) == 2
        assert summary["throughput_qps"] > 0
