"""Property-based tests: noise never breaks a guarantee.

For every noise magnitude and dataset, (1) noisy readings stay within
the model's declared worst case, (2) compensated bounds bracket the
truth, and (3) the quantized ED lower bound under a noisy controller
still lower-bounds the exact distance.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware.config import HardwareConfig, PIMArrayConfig
from repro.hardware.controller import PIMController
from repro.hardware.noise import (
    NoiseModel,
    NoisyPIMArray,
    compensate_dot_lower,
    compensate_dot_upper,
)


@st.composite
def noisy_cases(draw):
    sigma = draw(st.sampled_from([0.0, 0.001, 0.01, 0.05]))
    adc_step = draw(st.sampled_from([0.0, 16.0, 1024.0]))
    seed = draw(st.integers(min_value=0, max_value=2**31))
    n = draw(st.integers(min_value=1, max_value=30))
    dims = draw(st.sampled_from([4, 8, 16]))
    rng = np.random.default_rng(seed)
    matrix = rng.integers(0, 10**5, size=(n, dims))
    query = rng.integers(0, 10**5, size=dims)
    model = NoiseModel(cell_sigma=sigma, adc_step=adc_step, seed=seed % 997)
    return model, matrix, query


class TestNoiseEnvelope:
    @given(noisy_cases())
    @settings(max_examples=40, deadline=None)
    def test_readings_within_declared_worst_case(self, case):
        model, matrix, query = case
        array = NoisyPIMArray(HardwareConfig(pim=PIMArrayConfig()), model)
        array.program_matrix("d", matrix)
        truth = (matrix @ query).astype(np.float64)
        noisy = array.query("d", query).values
        e = model.relative_error_bound
        a = model.additive_error_bound
        assert np.all(noisy <= truth * (1 + e) + a + 1e-6)
        assert np.all(noisy >= truth * (1 - e) - a - 1e-6)

    @given(noisy_cases())
    @settings(max_examples=40, deadline=None)
    def test_compensation_brackets_truth(self, case):
        model, matrix, query = case
        array = NoisyPIMArray(HardwareConfig(pim=PIMArrayConfig()), model)
        array.program_matrix("d", matrix)
        truth = (matrix @ query).astype(np.float64)
        noisy = array.query("d", query).values
        assert np.all(
            compensate_dot_upper(noisy, model)
            >= truth * (1.0 - 1e-12) - 1e-6
        )
        assert np.all(
            compensate_dot_lower(noisy, model)
            <= truth * (1.0 + 1e-12) + 1e-6
        )


class TestNoisyBoundsProperty:
    @given(
        st.sampled_from([0.0, 0.01, 0.05]),
        st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=25, deadline=None)
    def test_lb_pim_ed_valid_under_noise(self, sigma, seed):
        from repro.bounds.pim import PIMEuclideanBound
        from repro.similarity.measures import euclidean_batch

        rng = np.random.default_rng(seed)
        data = rng.random((25, 16))
        query = rng.random(16)
        model = NoiseModel(cell_sigma=sigma, seed=seed % 997)
        bound = PIMEuclideanBound(PIMController(noise=model))
        bound.prepare(data)
        lb = bound.evaluate(query)
        ed = euclidean_batch(data, query)
        assert np.all(lb <= ed + 1e-9)
