"""Property-based tests: fused kernels equal the loop oracles bit for bit.

The fused whole-array kernels (vectorised bit-slicing, one-contraction
crossbar waves, cached-decomposition PIM waves, block-scored serving
refinement) must be *bit-identical* — values, counts and simulated
timings — to the sequential loop implementations they replaced, which
stay available as ``reference`` oracles. Integer paths are exact by
mod-2**64 ring algebra; float paths share one canonical scoring kernel
(:func:`repro.serving.sharding.exact_sq_distances`) whose per-row values
are batch-independent. These properties are the contract that lets the
simulator run orders of magnitude faster without moving a single bit.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults.plan import FaultEvent, FaultPlan
from repro.hardware import bitslice
from repro.hardware.config import (
    CrossbarConfig,
    HardwareConfig,
    PIMArrayConfig,
)
from repro.hardware.crossbar import Crossbar
from repro.hardware.noise import NoiseModel, NoisyPIMArray
from repro.hardware.pim_array import PIMArray
from repro.serving import ShardManager


# ----------------------------------------------------------------------
# bitslice helpers: vectorised vs loop oracle
# ----------------------------------------------------------------------
class TestBitsliceFusion:
    @given(
        st.integers(min_value=1, max_value=63),
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=60, deadline=None)
    def test_slice_operands_matches_reference(self, bits, h, seed):
        rng = np.random.default_rng(seed)
        values = rng.integers(0, 2**bits, size=(5, 7), dtype=np.int64)
        fused = bitslice.slice_operands(values, bits, h)
        loop = bitslice.slice_operands_reference(values, bits, h)
        assert fused.dtype == loop.dtype
        assert np.array_equal(fused, loop)

    @given(
        st.integers(min_value=1, max_value=63),
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=60, deadline=None)
    def test_reconstruct_matches_reference(self, bits, h, seed):
        rng = np.random.default_rng(seed)
        values = rng.integers(0, 2**bits, size=11, dtype=np.int64)
        slices = bitslice.slice_operands(values, bits, h)
        fused = bitslice.reconstruct(slices, h)
        loop = bitslice.reconstruct_reference(slices, h)
        assert np.array_equal(fused, loop)
        assert np.array_equal(fused.astype(np.int64), values)

    @given(
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=60, deadline=None)
    def test_shift_add_matches_reference_with_wrap(
        self, n_op, n_in, h, g, seed
    ):
        # partials large enough that high slices shift into (and past)
        # the sign bit: the wrap-around must match the sequential loop
        rng = np.random.default_rng(seed)
        partials = rng.integers(
            -(2**62), 2**62, size=(n_op, n_in, 3, 4), dtype=np.int64
        )
        fused = bitslice.shift_add_partials(partials, h, g)
        loop = bitslice.shift_add_partials_reference(partials, h, g)
        assert fused.dtype == loop.dtype == np.int64
        assert fused.shape == loop.shape
        assert np.array_equal(fused, loop)


# ----------------------------------------------------------------------
# crossbar wave: fused contraction vs per-input-slice loop
# ----------------------------------------------------------------------
@st.composite
def crossbar_cases(draw):
    rows = draw(st.integers(min_value=1, max_value=12))
    cell_bits = draw(st.integers(min_value=1, max_value=4))
    dac_bits = draw(st.integers(min_value=1, max_value=4))
    operand_bits = draw(st.integers(min_value=1, max_value=12))
    slices = -(-operand_bits // cell_bits)
    cols = draw(st.integers(min_value=slices, max_value=4 * slices))
    n_vectors = draw(st.integers(min_value=1, max_value=cols // slices))
    dims = draw(st.integers(min_value=1, max_value=rows))
    seed = draw(st.integers(min_value=0, max_value=2**31))
    rng = np.random.default_rng(seed)
    matrix = rng.integers(0, 2**operand_bits, size=(n_vectors, dims))
    query = rng.integers(0, 2**operand_bits, size=dims)
    config = CrossbarConfig(
        rows=rows, cols=cols, cell_bits=cell_bits, dac_bits=dac_bits
    )
    return config, matrix, query, operand_bits


class TestCrossbarFusion:
    @given(crossbar_cases())
    @settings(max_examples=60, deadline=None)
    def test_fused_wave_matches_loop_oracle(self, case):
        config, matrix, query, bits = case
        xbar = Crossbar(config)
        xbar.program(matrix, operand_bits=bits)
        fused = xbar.dot_product(query, input_bits=bits)
        loop = xbar.dot_product(query, input_bits=bits, reference=True)
        assert np.array_equal(fused.values, loop.values)
        assert fused.cycles == loop.cycles
        assert fused.adc_conversions == loop.adc_conversions


# ----------------------------------------------------------------------
# PIM array: fused cached-decomposition kernel vs crossbar loop vs fast
# ----------------------------------------------------------------------
@st.composite
def array_cases(draw):
    """A random small platform plus a matrix spanning >= 1 crossbar."""
    rows = draw(st.integers(min_value=2, max_value=10))
    cell_bits = draw(st.integers(min_value=1, max_value=3))
    dac_bits = draw(st.integers(min_value=1, max_value=3))
    operand_bits = draw(st.integers(min_value=1, max_value=8))
    slices = -(-operand_bits // cell_bits)
    cols = draw(st.integers(min_value=slices, max_value=6 * slices))
    hardware = HardwareConfig(
        pim=PIMArrayConfig(
            crossbar=CrossbarConfig(
                rows=rows, cols=cols, cell_bits=cell_bits, dac_bits=dac_bits
            ),
            capacity_bytes=1 << 22,
            operand_bits=operand_bits,
            accumulator_bits=draw(st.sampled_from([32, 64])),
        )
    )
    dims = draw(st.integers(min_value=1, max_value=3 * rows))
    n_vectors = draw(st.integers(min_value=1, max_value=20))
    batch = draw(st.integers(min_value=1, max_value=4))
    seed = draw(st.integers(min_value=0, max_value=2**31))
    rng = np.random.default_rng(seed)
    matrix = rng.integers(0, 2**operand_bits, size=(n_vectors, dims))
    queries = rng.integers(0, 2**operand_bits, size=(batch, dims))
    return hardware, matrix, queries


def _triple(hardware, matrix):
    fused = PIMArray(hardware, simulate_cells=True)
    loop = PIMArray(hardware, simulate_cells=True, reference=True)
    fast = PIMArray(hardware)
    for array in (fused, loop, fast):
        array.program_matrix("m", matrix)
    return fused, loop, fast


class TestArrayFusion:
    @given(array_cases())
    @settings(max_examples=40, deadline=None)
    def test_query_paths_bit_identical(self, case):
        hardware, matrix, queries = case
        fused, loop, fast = _triple(hardware, matrix)
        results = [a.query("m", queries[0]) for a in (fused, loop, fast)]
        assert np.array_equal(results[0].values, results[1].values)
        assert np.array_equal(results[0].values, results[2].values)
        assert (
            results[0].timing.total_ns
            == results[1].timing.total_ns
            == results[2].timing.total_ns
        )

    @given(array_cases())
    @settings(max_examples=30, deadline=None)
    def test_batch_paths_bit_identical(self, case):
        hardware, matrix, queries = case
        fused, loop, fast = _triple(hardware, matrix)
        many = [a.query_many("m", queries) for a in (fused, loop, fast)]
        batch = [a.query_batch("m", queries) for a in (fused, loop, fast)]
        for other in many[1:]:
            assert np.array_equal(many[0].values, other.values)
        for other in batch[1:]:
            assert np.array_equal(batch[0].values, other.values)
        assert np.array_equal(batch[0].values, many[0].values)
        assert (
            batch[0].timing.total_ns
            == batch[1].timing.total_ns
            == batch[2].timing.total_ns
        )
        # identical simulated time accounting across all three paths
        assert (
            fused.stats.pim_time_ns
            == loop.stats.pim_time_ns
            == fast.stats.pim_time_ns
        )
        assert fused.stats.batch_saved_ns == loop.stats.batch_saved_ns

    @given(array_cases())
    @settings(max_examples=20, deadline=None)
    def test_narrow_input_bits_bit_identical(self, case):
        hardware, matrix, queries = case
        bits = max(1, hardware.pim.operand_bits // 2)
        narrow = queries[0] % (1 << bits)
        fused, loop, fast = _triple(hardware, matrix)
        results = [
            a.query("m", narrow, input_bits=bits) for a in (fused, loop, fast)
        ]
        assert np.array_equal(results[0].values, results[1].values)
        assert np.array_equal(results[0].values, results[2].values)
        assert results[0].timing.total_ns == results[1].timing.total_ns

    @given(
        st.integers(min_value=1, max_value=30),
        st.integers(min_value=1, max_value=64),
        st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=20, deadline=None)
    def test_hamming_binary_path_bit_identical(self, n_codes, dims, seed):
        # the Hamming distance path stores binary codes and their
        # complement: operand_bits=1, 32-bit accumulator
        hardware = HardwareConfig(
            pim=PIMArrayConfig(
                crossbar=CrossbarConfig(
                    rows=32, cols=32, cell_bits=2, dac_bits=1
                ),
                capacity_bytes=1 << 22,
                operand_bits=1,
                accumulator_bits=32,
            )
        )
        rng = np.random.default_rng(seed)
        codes = rng.integers(0, 2, size=(n_codes, dims))
        query = rng.integers(0, 2, size=dims)
        fused, loop, fast = _triple(hardware, codes)
        complement = 1 - codes
        for array in (fused, loop, fast):
            array.program_matrix("c", complement)
        for name in ("m", "c"):
            results = [a.query(name, query) for a in (fused, loop, fast)]
            assert np.array_equal(results[0].values, results[1].values)
            assert np.array_equal(results[0].values, results[2].values)
            assert results[0].timing.total_ns == results[1].timing.total_ns


# ----------------------------------------------------------------------
# fault and noise hooks survive fusion
# ----------------------------------------------------------------------
class TestFusionUnderFaultsAndNoise:
    @given(
        st.integers(min_value=0, max_value=2**31),
        st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=15, deadline=None)
    def test_wave_corruption_identical_across_paths(self, seed, plan_seed):
        from repro.faults.injectors import FaultyPIMArray

        hardware = HardwareConfig(
            pim=PIMArrayConfig(
                crossbar=CrossbarConfig(
                    rows=8, cols=8, cell_bits=2, dac_bits=2
                ),
                capacity_bytes=1 << 20,
                operand_bits=8,
                accumulator_bits=64,
            )
        )
        rng = np.random.default_rng(seed)
        matrix = rng.integers(0, 256, size=(9, 12))
        query = rng.integers(0, 256, size=12)
        plan = FaultPlan(
            [FaultEvent(t_ns=0.0, kind="wave_corrupt", target="array")],
            seed=plan_seed,
        )
        waves = []
        for reference in (False, True):
            inner = PIMArray(
                hardware, simulate_cells=True, reference=reference
            )
            faulty = FaultyPIMArray(inner, plan, "array")
            faulty.program_matrix("m", matrix)
            waves.append(faulty.query("m", query))
        # the injector corrupts whatever the pipeline produced; since
        # both pipelines produce identical bits and the fault RNG is
        # derived from the plan seed, the corrupted waves match too
        assert np.array_equal(waves[0].values, waves[1].values)
        assert waves[0].timing.total_ns == waves[1].timing.total_ns

    @given(st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=15, deadline=None)
    def test_noisy_waves_deterministic_per_seed(self, seed):
        rng = np.random.default_rng(seed)
        matrix = rng.integers(0, 256, size=(10, 16))
        query = rng.integers(0, 256, size=16)
        values = []
        for _ in range(2):
            array = NoisyPIMArray(
                noise=NoiseModel(cell_sigma=0.02, adc_step=1.0, seed=seed)
            )
            array.program_matrix("m", matrix)
            values.append(array.query("m", query).values)
        assert np.array_equal(values[0], values[1])


# ----------------------------------------------------------------------
# serving scatter/gather: fused block kernels vs per-candidate loops
# ----------------------------------------------------------------------
@st.composite
def serving_cases(draw):
    n = draw(st.integers(min_value=8, max_value=120))
    dims = draw(st.integers(min_value=2, max_value=16))
    n_shards = draw(st.integers(min_value=1, max_value=4))
    k = draw(st.integers(min_value=1, max_value=10))
    batch = draw(st.integers(min_value=1, max_value=3))
    placement = draw(st.sampled_from(["range", "hash"]))
    seed = draw(st.integers(min_value=0, max_value=2**31))
    rng = np.random.default_rng(seed)
    data = rng.random((n, dims))
    queries = rng.random((batch, dims))
    return data, queries, n_shards, k, placement


class TestServingFusion:
    @given(serving_cases())
    @settings(max_examples=20, deadline=None)
    def test_knn_batch_matches_reference_loops(self, case):
        data, queries, n_shards, k, placement = case
        fused = ShardManager(data, n_shards=n_shards, placement=placement)
        loop = ShardManager(
            data, n_shards=n_shards, placement=placement, reference=True
        )
        af, tf = fused.knn_batch(queries, k)
        ar, tr = loop.knn_batch(queries, k)
        for x, y in zip(af, ar):
            assert np.array_equal(x.indices, y.indices)
            assert np.array_equal(x.scores, y.scores)
            assert x.refined == y.refined
            assert x.pruned == y.pruned
        assert tf.service_ns == tr.service_ns
        assert tf.per_shard_cpu_ns == tr.per_shard_cpu_ns
        assert tf.merge_cpu_ns == tr.merge_cpu_ns

    @given(serving_cases())
    @settings(max_examples=15, deadline=None)
    def test_assign_matches_reference_loops(self, case):
        data, centers, n_shards, _, placement = case
        fused = ShardManager(data, n_shards=n_shards, placement=placement)
        loop = ShardManager(
            data, n_shards=n_shards, placement=placement, reference=True
        )
        bf, tf = fused.assign(centers)
        br, tr = loop.assign(centers)
        assert np.array_equal(bf.assignments, br.assignments)
        assert np.array_equal(bf.distances, br.distances)
        assert bf.refined == br.refined
        assert bf.pruned == br.pruned
        assert tf.service_ns == tr.service_ns

    @given(serving_cases())
    @settings(max_examples=10, deadline=None)
    def test_degraded_chunks_match_reference_loops(self, case):
        # crash every shard permanently: every chunk degrades to the
        # host-side recompute, exercising the fused degrade kernels
        data, queries, n_shards, k, placement = case
        plan = FaultPlan(
            [
                FaultEvent(
                    t_ns=0.0, kind="shard_crash", target=f"shard{s}"
                )
                for s in range(n_shards)
            ]
        )
        managers = []
        for reference in (False, True):
            managers.append(
                ShardManager(
                    data,
                    n_shards=n_shards,
                    placement=placement,
                    fault_plan=plan,
                    reference=reference,
                )
            )
        af, tf = managers[0].knn_batch(queries, k)
        ar, tr = managers[1].knn_batch(queries, k)
        for x, y in zip(af, ar):
            assert x.degraded and y.degraded
            assert np.array_equal(x.indices, y.indices)
            assert np.array_equal(x.scores, y.scores)
            assert x.refined == y.refined
        assert tf.service_ns == tr.service_ns
        bf, _ = managers[0].assign(queries)
        br, _ = managers[1].assign(queries)
        assert np.array_equal(bf.assignments, br.assignments)
        assert np.array_equal(bf.distances, br.distances)
