"""Property-based tests: the extended mining tasks are exact.

Random data, random parameters — outlier detection, motif discovery,
MIPS and the chunked engine must match their reference computations.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware.config import (
    CrossbarConfig,
    HardwareConfig,
    PIMArrayConfig,
)
from repro.hardware.reprogramming import ChunkedDotProductEngine
from repro.mining.knn.maxip import PIMMIPS, StandardMIPS
from repro.mining.motif import PIMMotifDiscovery, StandardMotifDiscovery
from repro.mining.outlier import PIMOutlierDetector, StandardOutlierDetector


@st.composite
def outlier_cases(draw):
    n = draw(st.integers(min_value=20, max_value=80))
    dims = draw(st.sampled_from([4, 8, 16]))
    k = draw(st.integers(min_value=1, max_value=4))
    m = draw(st.integers(min_value=1, max_value=5))
    seed = draw(st.integers(min_value=0, max_value=2**31))
    rng = np.random.default_rng(seed)
    centers = rng.random((4, dims))
    data = np.clip(
        centers[rng.integers(0, 4, n)]
        + 0.08 * rng.standard_normal((n, dims)),
        0,
        1,
    )
    return data, k, m


class TestOutlierProperty:
    @given(outlier_cases())
    @settings(max_examples=15, deadline=None)
    def test_pim_matches_standard(self, case):
        data, k, m = case
        std = (
            StandardOutlierDetector(n_neighbors=k, n_outliers=m)
            .fit(data)
            .detect()
        )
        pim = (
            PIMOutlierDetector(n_neighbors=k, n_outliers=m)
            .fit(data)
            .detect()
        )
        assert np.allclose(np.sort(std.scores), np.sort(pim.scores))

    @given(outlier_cases())
    @settings(max_examples=10, deadline=None)
    def test_scores_are_true_knn_distances(self, case):
        data, k, m = case
        result = (
            StandardOutlierDetector(n_neighbors=k, n_outliers=m)
            .fit(data)
            .detect()
        )
        for idx, score in zip(result.indices, result.scores):
            diff = data - data[idx]
            dists = np.sqrt(np.einsum("ij,ij->i", diff, diff))
            dists = np.delete(dists, idx)
            assert score == pytest.approx(np.sort(dists)[k - 1], abs=1e-9)


class TestMotifProperty:
    @given(
        st.integers(min_value=100, max_value=250),
        st.sampled_from([8, 16]),
        st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=15, deadline=None)
    def test_pim_matches_standard(self, length, window, seed):
        rng = np.random.default_rng(seed)
        series = np.cumsum(rng.standard_normal(length))  # random walk
        std = StandardMotifDiscovery(window=window).fit(series).discover()
        pim = PIMMotifDiscovery(window=window).fit(series).discover()
        assert pim.distance <= std.distance + 1e-9
        assert std.distance <= pim.distance + 1e-9


class TestMIPSProperty:
    @given(
        st.integers(min_value=10, max_value=100),
        st.sampled_from([4, 8, 16]),
        st.integers(min_value=1, max_value=5),
        st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=20, deadline=None)
    def test_both_match_brute_force(self, n, dims, top, seed):
        rng = np.random.default_rng(seed)
        data = rng.random((max(n, top), dims))
        q = rng.random(dims)
        brute = np.sort(data @ q)[-top:]
        std = StandardMIPS(top=top).fit(data).query(q)
        pim = PIMMIPS(top=top).fit(data).query(q)
        assert np.allclose(np.sort(std.products), brute)
        assert np.allclose(np.sort(pim.products), brute)


class TestChunkedEngineProperty:
    @given(
        st.integers(min_value=5, max_value=120),
        st.sampled_from([4, 8, 16]),
        st.sampled_from(["round_robin", "pinned"]),
        st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=20, deadline=None)
    def test_chunked_dot_products_exact(self, n, dims, policy, seed):
        rng = np.random.default_rng(seed)
        xbar = CrossbarConfig(rows=16, cols=16, cell_bits=2)
        platform = HardwareConfig(
            pim=PIMArrayConfig(
                crossbar=xbar,
                capacity_bytes=8 * (xbar.capacity_bits // 8),
                operand_bits=8,
            )
        )
        engine = ChunkedDotProductEngine(platform, policy=policy)
        data = rng.integers(0, 256, size=(n, dims))
        engine.load(data)
        query = rng.integers(0, 256, size=dims)
        assert np.array_equal(engine.dot_products_all(query), data @ query)
