"""Property-based tests: crossbar arithmetic is bit-exact.

The analog pipeline (bit-slicing, DAC waves, shift-and-add) must equal
NumPy integer dot products for *every* geometry and operand width — the
foundation the whole simulator's correctness rests on.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware import bitslice
from repro.hardware.config import CrossbarConfig
from repro.hardware.crossbar import Crossbar


@st.composite
def crossbar_cases(draw):
    """A random small crossbar with compatible operands and query."""
    rows = draw(st.integers(min_value=1, max_value=12))
    cell_bits = draw(st.integers(min_value=1, max_value=4))
    dac_bits = draw(st.integers(min_value=1, max_value=4))
    operand_bits = draw(st.integers(min_value=1, max_value=10))
    slices = -(-operand_bits // cell_bits)
    cols = draw(st.integers(min_value=slices, max_value=4 * slices))
    n_vectors = draw(st.integers(min_value=1, max_value=cols // slices))
    dims = draw(st.integers(min_value=1, max_value=rows))
    seed = draw(st.integers(min_value=0, max_value=2**31))
    rng = np.random.default_rng(seed)
    matrix = rng.integers(0, 2**operand_bits, size=(n_vectors, dims))
    query = rng.integers(0, 2**operand_bits, size=dims)
    config = CrossbarConfig(
        rows=rows, cols=cols, cell_bits=cell_bits, dac_bits=dac_bits
    )
    return config, matrix, query, operand_bits


class TestCrossbarExactness:
    @given(crossbar_cases())
    @settings(max_examples=60, deadline=None)
    def test_dot_product_matches_numpy(self, case):
        config, matrix, query, bits = case
        xbar = Crossbar(config)
        xbar.program(matrix, operand_bits=bits)
        result = xbar.dot_product(query, input_bits=bits)
        assert np.array_equal(result.values, matrix @ query)

    @given(crossbar_cases())
    @settings(max_examples=40, deadline=None)
    def test_programming_is_lossless(self, case):
        config, matrix, _, bits = case
        xbar = Crossbar(config)
        xbar.program(matrix, operand_bits=bits)
        assert np.array_equal(xbar.stored_matrix(), matrix)


class TestBitsliceProperties:
    @given(
        st.integers(min_value=1, max_value=16),
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=80, deadline=None)
    def test_slice_reconstruct_round_trip(self, operand_bits, slice_bits, seed):
        rng = np.random.default_rng(seed)
        values = rng.integers(0, 2**operand_bits, size=17)
        slices = bitslice.slice_operands(values, operand_bits, slice_bits)
        assert np.array_equal(
            bitslice.reconstruct(slices, slice_bits), values
        )

    @given(
        st.integers(min_value=1, max_value=12),
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=60, deadline=None)
    def test_sliced_dot_product_identity(self, bits, h, g, seed):
        rng = np.random.default_rng(seed)
        p = rng.integers(0, 2**bits, size=9)
        q = rng.integers(0, 2**bits, size=9)
        p_s = bitslice.slice_operands(p, bits, h)
        q_s = bitslice.slice_operands(q, bits, g)
        n_p, n_q = p_s.shape[-1], q_s.shape[-1]
        partials = np.array(
            [
                [
                    int(p_s[:, j].astype(np.int64) @ q_s[:, k])
                    for k in range(n_q)
                ]
                for j in range(n_p)
            ]
        )
        assert int(bitslice.shift_add_partials(partials, h, g)) == int(p @ q)
