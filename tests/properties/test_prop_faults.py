"""Property-based tests: recovery is exact under ARBITRARY fault plans.

The robustness contract, stated adversarially: for any schedule of
shard-level faults — crashes, hangs, stragglers, corrupted waves, dead
crossbars, in any combination, against any replication degree — every
answer a replicated :class:`~repro.serving.ShardManager` completes is
bit-identical to a fault-free single-array run. Failover, retried
waves, and even the host-side degraded recompute of a chunk whose
replicas all died must be invisible in the values.

Data comes from a small grid so duplicate rows (and tied distances) are
common — the canonical tie-break has to do real work while the fault
machinery reshuffles which shard refines what. Corruption magnitudes
are drawn odd, so the injected residue error is never ``0 mod 2**bits``
and detection is certain (the 1/M blind spot is exercised separately in
the unit tests).
"""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ChunkUnavailableError
from repro.faults import FaultEvent, FaultPlan
from repro.serving import RecoveryPolicy, ShardManager
from repro.similarity.quantization import Quantizer

#: Coarse value grid -> many exact duplicate coordinates and rows.
GRID = [0.0, 0.25, 0.5, 0.75, 1.0]

#: Shard-affecting fault kinds the recovery machinery must absorb.
#: ``stuck_cells`` is excluded on purpose: it is a persistent *value*
#: fault whose residue detection is probabilistic (the ABFT 1/M blind
#: spot), so it cannot carry a for-all exactness guarantee.
KINDS = [
    "shard_crash",
    "shard_hang",
    "slow_shard",
    "wave_corrupt",
    "latency_spike",
    "crossbar_dead",
]


@st.composite
def gridded_data(draw, max_rows=18):
    n = draw(st.integers(min_value=4, max_value=max_rows))
    dims = draw(st.sampled_from([2, 4]))
    cells = st.sampled_from(GRID)
    data = np.array(
        draw(
            st.lists(
                st.lists(cells, min_size=dims, max_size=dims),
                min_size=n,
                max_size=n,
            )
        )
    )
    query = np.array(draw(st.lists(cells, min_size=dims, max_size=dims)))
    k = draw(st.integers(min_value=1, max_value=n))
    return data, query, k


@st.composite
def fault_case(draw):
    """A dataset, a sharded+replicated layout, and an arbitrary plan."""
    data, query, k = draw(gridded_data())
    n_shards = draw(st.integers(min_value=2, max_value=4))
    replication = draw(st.integers(min_value=1, max_value=n_shards))
    events = []
    for _ in range(draw(st.integers(min_value=1, max_value=3))):
        kind = draw(st.sampled_from(KINDS))
        shard = draw(st.integers(min_value=0, max_value=n_shards - 1))
        t_ns = draw(st.sampled_from([0.0, 5_000.0, 1e5]))
        duration = draw(st.sampled_from([None, 50_000.0]))
        params = {}
        if kind in ("slow_shard", "latency_spike"):
            params["factor"] = draw(st.sampled_from([2.0, 8.0]))
        if kind == "wave_corrupt":
            params["probability"] = draw(st.sampled_from([0.5, 1.0]))
            params["magnitude"] = draw(
                st.sampled_from([3, 101, 1_000_003])
            )
        events.append(
            FaultEvent(
                t_ns=t_ns,
                kind=kind,
                target=f"shard{shard}",
                duration_ns=duration,
                params=params,
            )
        )
    seed = draw(st.integers(min_value=0, max_value=5))
    return data, query, k, n_shards, replication, FaultPlan(events, seed)


def clean_manager(data):
    """The fault-free single-array reference over the same data.

    A degenerate all-equal grid dataset breaks min-max normalisation, so
    the quantizer is told the data is already normalised — every manager
    in a comparison shares the setting, keeping the equality honest.
    """
    return ShardManager(data, 1, quantizer=Quantizer(assume_normalized=True))


class TestExactRecovery:
    @settings(max_examples=20, deadline=None)
    @given(fault_case())
    def test_any_fault_plan_yields_bit_identical_topk(self, case):
        data, query, k, n_shards, replication, plan = case
        expected = clean_manager(data).knn(query, k)
        manager = ShardManager(
            data,
            n_shards,
            replication=replication,
            fault_plan=plan,
            quantizer=Quantizer(assume_normalized=True),
        )
        answer = manager.knn(query, k)
        assert np.array_equal(answer.indices, expected.indices)
        assert np.array_equal(answer.scores, expected.scores)

    @settings(max_examples=10, deadline=None)
    @given(gridded_data(max_rows=12), st.integers(0, 5))
    def test_assign_is_exact_under_total_crash(self, case, seed):
        data, query, _ = case
        centers = np.stack([query, data[0]])
        expected, _ = clean_manager(data).assign(centers)
        # every shard dead from t=0: every chunk takes the degraded path
        plan = FaultPlan(
            [
                FaultEvent(t_ns=0.0, kind="shard_crash", target=f"shard{s}")
                for s in range(3)
            ],
            seed=seed,
        )
        manager = ShardManager(
            data,
            3,
            fault_plan=plan,
            quantizer=Quantizer(assume_normalized=True),
        )
        answer, timing = manager.assign(centers)
        assert np.array_equal(answer.assignments, expected.assignments)
        assert np.array_equal(answer.distances, expected.distances)
        assert answer.degraded
        assert timing.degraded_chunks == manager.n_chunks


class TestCorruptionIsNeverSilentlyUsed:
    @settings(max_examples=15, deadline=None)
    @given(
        gridded_data(),
        st.integers(min_value=2, max_value=3),
        st.integers(min_value=0, max_value=100),
        st.integers(min_value=0, max_value=5),
    )
    def test_all_replicas_corrupt_degrades_but_stays_exact(
        self, case, n_shards, magnitude_half, seed
    ):
        data, query, k = case
        expected = clean_manager(data).knn(query, k)
        # every wave of every shard corrupted by an odd (always-detected)
        # offset: no replica can serve, so exactness must come from
        # detection + host-side recompute, never from a corrupted wave
        plan = FaultPlan(
            [
                FaultEvent(
                    t_ns=0.0,
                    kind="wave_corrupt",
                    target=f"shard{s}",
                    params={
                        "probability": 1.0,
                        "magnitude": 2 * magnitude_half + 1,
                    },
                )
                for s in range(n_shards)
            ],
            seed=seed,
        )
        manager = ShardManager(
            data,
            n_shards,
            fault_plan=plan,
            quantizer=Quantizer(assume_normalized=True),
        )
        assert manager.verify
        answers, timing = manager.knn_batch(np.atleast_2d(query), k)
        assert np.array_equal(answers[0].indices, expected.indices)
        assert np.array_equal(answers[0].scores, expected.scores)
        assert answers[0].degraded
        assert timing.corrupt_detected >= 1
        assert timing.degraded_chunks == manager.n_chunks


class TestNoLiveReplica:
    @settings(max_examples=10, deadline=None)
    @given(
        gridded_data(max_rows=10),
        st.integers(min_value=2, max_value=4),
    )
    def test_unservable_chunk_raises_when_degradation_disabled(
        self, case, n_shards
    ):
        data, query, k = case
        plan = FaultPlan(
            [
                FaultEvent(t_ns=0.0, kind="shard_crash", target=f"shard{s}")
                for s in range(n_shards)
            ]
        )
        manager = ShardManager(
            data,
            n_shards,
            replication=n_shards,
            fault_plan=plan,
            recovery=RecoveryPolicy(allow_degraded=False),
            quantizer=Quantizer(assume_normalized=True),
        )
        with pytest.raises(ChunkUnavailableError):
            manager.knn(query, k)


class TestRepairLoopStaysExact:
    """PR-5: healing between queries never changes an answer byte.

    The repair loop runs adversarially interleaved with queries: scrub
    probes fire, shards get declared dead, crossbars remap onto spares,
    chunks re-replicate — and every k-NN answer along the way (and after
    the final heal) must still be bit-identical to the fault-free
    single-array reference.
    """

    @settings(max_examples=15, deadline=None)
    @given(fault_case())
    def test_answers_with_repair_enabled_are_bit_identical(self, case):
        from repro.repair import RepairController, RepairPolicy

        data, query, k, n_shards, replication, plan = case
        expected = clean_manager(data).knn(query, k)
        manager = ShardManager(
            data,
            n_shards,
            replication=replication,
            fault_plan=plan,
            spare_crossbars=8,
            quantizer=Quantizer(assume_normalized=True),
        )
        ctrl = RepairController(
            manager, RepairPolicy(scrub_period_ns=50_000.0)
        )
        for start in (0.0, 1e5, 2e5, 1e6):
            ctrl.advance(start, start + 50_000.0)
            answer = manager.knn(query, k)
            assert np.array_equal(answer.indices, expected.indices)
            assert np.array_equal(answer.scores, expected.scores)
        ctrl.heal(2e6)
        answer = manager.knn(query, k)
        assert np.array_equal(answer.indices, expected.indices)
        assert np.array_equal(answer.scores, expected.scores)


class TestPlanSeedDeterminism:
    """PR-10: a seeded plan is a pure function of its arguments.

    The DR bench replays one plan against several fleets (naive vs
    spread vs restored) and attributes every answer difference to
    placement; that attribution is only sound if constructing the same
    plan twice yields the same timeline, event for event.
    """

    @settings(max_examples=20, deadline=None)
    @given(
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=2, max_value=8),
    )
    def test_chaos_is_deterministic_per_seed(self, seed, n_shards):
        a = FaultPlan.chaos(n_shards, 1e7, seed=seed, slow_shards=1)
        b = FaultPlan.chaos(n_shards, 1e7, seed=seed, slow_shards=1)
        assert a.describe() == b.describe()

    @settings(max_examples=20, deadline=None)
    @given(
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=2, max_value=8),
    )
    def test_gray_chaos_is_deterministic_per_seed(self, seed, n_shards):
        a = FaultPlan.gray_chaos(n_shards, 1e7, seed=seed)
        b = FaultPlan.gray_chaos(n_shards, 1e7, seed=seed)
        assert a.describe() == b.describe()

    @settings(max_examples=20, deadline=None)
    @given(
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=1, max_value=2),
    )
    def test_domain_outage_is_deterministic_per_seed(
        self, seed, outage_domains
    ):
        from repro.hardware import FailureDomainTopology

        topology = FailureDomainTopology(
            n_shards=8,
            shards_per_board=2,
            boards_per_channel=1,
            channels_per_power_domain=1,
        )
        a = FaultPlan.domain_outage(
            topology, 1e7, seed=seed,
            outage_domains=outage_domains, brownout_domains=1,
        )
        b = FaultPlan.domain_outage(
            topology, 1e7, seed=seed,
            outage_domains=outage_domains, brownout_domains=1,
        )
        assert a.describe() == b.describe()
        # different seeds must be able to pick different victims: the
        # timeline depends on the seed, not just the shape arguments
        alternates = {
            json.dumps(
                FaultPlan.domain_outage(
                    topology, 1e7, seed=s,
                    outage_domains=outage_domains,
                ).describe(),
                sort_keys=True,
            )
            for s in range(8)
        }
        assert len(alternates) > 1


class TestRereplicationCopiesExactBytes:
    """PR-5: a re-replicated chunk is byte-identical to its source."""

    @settings(max_examples=15, deadline=None)
    @given(
        gridded_data(max_rows=16),
        st.integers(min_value=2, max_value=4),
        st.integers(min_value=0, max_value=5),
    )
    def test_restored_replicas_equal_their_source(
        self, case, n_shards, seed
    ):
        from repro.repair import RepairController, RepairPolicy

        data, query, k = case
        plan = FaultPlan(
            [FaultEvent(t_ns=0.0, kind="shard_crash", target="shard0")],
            seed=seed,
        )
        replication = min(2, n_shards)
        manager = ShardManager(
            data,
            n_shards,
            replication=replication,
            fault_plan=plan,
            quantizer=Quantizer(assume_normalized=True),
        )
        ctrl = RepairController(
            manager, RepairPolicy(scrub_period_ns=10_000.0)
        )
        ctrl.advance(0.0, 1e6)
        ctrl.heal(1e6)
        alive = [
            s for s in range(n_shards) if manager.health.alive(s)
        ]
        target_k = min(replication, len(alive))
        for c, count in enumerate(manager.replica_counts()):
            assert count >= target_k
        for event in ctrl.drain_events():
            if event["kind"] != "rereplicate_done":
                continue
            source = manager.shards[event["source"]]
            target = manager.shards[event["target"]]
            sl_s = source.chunk_slices[event["chunk"]]
            sl_t = target.chunk_slices[event["chunk"]]
            assert np.array_equal(
                source.integers[sl_s], target.integers[sl_t]
            )
            assert np.array_equal(
                source.global_indices[sl_s],
                target.global_indices[sl_t],
            )
            assert np.array_equal(source.floats[sl_s], target.floats[sl_t])
            assert np.array_equal(source.phi[sl_s], target.phi[sl_t])
        expected = clean_manager(data).knn(query, k)
        answer = manager.knn(query, k)
        assert np.array_equal(answer.indices, expected.indices)
        assert np.array_equal(answer.scores, expected.scores)
