"""Property-based tests: sharded serving is exact for ANY placement.

The serving layer's core invariant, stated adversarially: for an
*arbitrary* assignment of rows to shards — unbalanced, interleaved,
with empty shards — the merged scatter/gather top-k is bit-identical
to the single-array answer. Values are drawn from a small grid so
duplicate rows (and therefore duplicate distances) are common, forcing
the canonical ``(score, global index)`` tie-break to do real work: a
first-seen or per-shard-order tie-break would fail these cases.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serving import ShardManager, ShardPlacement
from repro.similarity.quantization import Quantizer

#: Coarse value grid -> many exact duplicate coordinates and rows.
GRID = [0.0, 0.25, 0.5, 0.75, 1.0]


@st.composite
def placement_case(draw):
    """A gridded dataset, an arbitrary placement of it, and a query."""
    n = draw(st.integers(min_value=2, max_value=24))
    dims = draw(st.sampled_from([2, 4, 6]))
    n_shards = draw(st.integers(min_value=1, max_value=4))
    cells = st.sampled_from(GRID)
    data = np.array(
        draw(
            st.lists(
                st.lists(cells, min_size=dims, max_size=dims),
                min_size=n,
                max_size=n,
            )
        )
    )
    assignments = np.array(
        draw(
            st.lists(
                st.integers(min_value=0, max_value=n_shards - 1),
                min_size=n,
                max_size=n,
            )
        ),
        dtype=np.int64,
    )
    query = np.array(draw(st.lists(cells, min_size=dims, max_size=dims)))
    k = draw(st.integers(min_value=1, max_value=n))
    return data, assignments, n_shards, query, k


def _managers(data, assignments, n_shards):
    """One single-array manager and one with the drawn placement.

    A degenerate all-equal dataset breaks min-max normalisation, so the
    quantizer is told the data is already normalised — both managers
    share the setting, keeping the comparison honest.
    """
    quantizer = lambda: Quantizer(assume_normalized=True)  # noqa: E731
    single = ShardManager(data, n_shards=1, quantizer=quantizer())
    sharded = ShardManager(
        data,
        placement=ShardPlacement(
            n_shards=n_shards, assignments=assignments
        ),
        quantizer=quantizer(),
    )
    return single, sharded


class TestPlacementInvariance:
    @given(placement_case())
    @settings(max_examples=25, deadline=None)
    def test_knn_identical_for_any_placement(self, case):
        data, assignments, n_shards, query, k = case
        single, sharded = _managers(data, assignments, n_shards)
        a = single.knn(query, k)
        b = sharded.knn(query, k)
        assert np.array_equal(a.indices, b.indices)
        assert np.array_equal(a.scores, b.scores)

    @given(placement_case())
    @settings(max_examples=15, deadline=None)
    def test_ties_resolve_to_lowest_global_index(self, case):
        data, assignments, n_shards, query, k = case
        _, sharded = _managers(data, assignments, n_shards)
        answer = sharded.knn(query, k)
        # canonical order: scores ascending, index ascending among ties
        for (s1, i1), (s2, i2) in zip(
            zip(answer.scores, answer.indices),
            zip(answer.scores[1:], answer.indices[1:]),
        ):
            assert (s1, i1) < (s2, i2)

    @given(placement_case())
    @settings(max_examples=15, deadline=None)
    def test_assign_identical_for_any_placement(self, case):
        data, assignments, n_shards, centers_src, _ = case
        single, sharded = _managers(data, assignments, n_shards)
        centers = np.vstack([centers_src, data[0]])
        a, _ = single.assign(centers)
        b, _ = sharded.assign(centers)
        assert np.array_equal(a.assignments, b.assignments)
        assert np.array_equal(a.distances, b.distances)
