"""Property-based tests: correlated outages and cold restarts are exact.

Two for-all claims back the disaster-recovery story:

* **domain-outage bit-identity** — for any seeded correlated outage
  that leaves at least one failure domain per chunk alive, a
  domain-spread fleet answers bit-identically to the fault-free
  single-array reference, without ever taking the degraded path: the
  surviving replica *is* the answer, not an approximation of it;
* **restore bit-identity** — for any mutation history (extra replicas,
  shard deaths) and any split point, serving through a
  checkpoint → crash → restore cycle yields exactly the answers an
  uninterrupted twin produces.

Data comes from a small grid so tied distances are common and the
canonical tie-break does real work while outages reshuffle which shard
refines what.
"""

import tempfile
from pathlib import Path

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.checkpoint import restore_manager, write_checkpoint
from repro.faults import FaultPlan
from repro.hardware import FailureDomainTopology
from repro.serving import ShardManager
from repro.similarity.quantization import Quantizer

#: Coarse value grid -> many exact duplicate coordinates and rows.
GRID = [0.0, 0.25, 0.5, 0.75, 1.0]


@st.composite
def gridded_data(draw, max_rows=18):
    n = draw(st.integers(min_value=8, max_value=max_rows))
    dims = draw(st.sampled_from([2, 4]))
    cells = st.sampled_from(GRID)
    data = np.array(
        draw(
            st.lists(
                st.lists(cells, min_size=dims, max_size=dims),
                min_size=n,
                max_size=n,
            )
        )
    )
    query = np.array(draw(st.lists(cells, min_size=dims, max_size=dims)))
    k = draw(st.integers(min_value=1, max_value=n))
    return data, query, k


def clean_manager(data):
    return ShardManager(
        data, 1, quantizer=Quantizer(assume_normalized=True)
    )


class TestDomainOutageExactness:
    @settings(max_examples=15, deadline=None)
    @given(
        gridded_data(),
        st.sampled_from([1, 2]),  # shards per board
        st.integers(min_value=0, max_value=7),  # plan seed
    )
    def test_survivable_outage_is_bit_identical_and_full_fidelity(
        self, case, spb, seed
    ):
        data, query, k = case
        expected = clean_manager(data).knn(query, k)
        # one board per channel, one channel per rail: spb=1 -> four
        # power domains, spb=2 -> two; either way the spread placement
        # puts a chunk's two replicas on different rails, so one whole
        # rail dying leaves every chunk servable
        topology = FailureDomainTopology(
            n_shards=4,
            shards_per_board=spb,
            boards_per_channel=1,
            channels_per_power_domain=1,
        )
        plan = FaultPlan.domain_outage(
            topology,
            1e6,
            seed=seed,
            outage_domains=1,
            level="power",
            outage_at_ns=0.0,  # dead before the first request
        )
        manager = ShardManager(
            data,
            4,
            replication=2,
            topology=topology,
            fault_plan=plan,
            quantizer=Quantizer(assume_normalized=True),
        )
        assert manager.spread_report()["n_at_risk"] == 0
        answer = manager.knn(query, k)
        assert np.array_equal(answer.indices, expected.indices)
        assert np.array_equal(answer.scores, expected.scores)
        # the point of spread placement: survival without degradation
        assert not answer.degraded

    @settings(max_examples=10, deadline=None)
    @given(gridded_data(max_rows=12), st.integers(0, 7))
    def test_brownout_recovery_is_bit_identical(self, case, seed):
        data, query, k = case
        expected = clean_manager(data).knn(query, k)
        topology = FailureDomainTopology(
            n_shards=4,
            shards_per_board=1,
            boards_per_channel=1,
            channels_per_power_domain=1,
        )
        plan = FaultPlan.domain_outage(
            topology,
            1e6,
            seed=seed,
            outage_domains=1,
            brownout_domains=1,
            outage_at_ns=0.0,
            brownout_at_ns=0.0,
        )
        manager = ShardManager(
            data,
            4,
            replication=2,
            topology=topology,
            fault_plan=plan,
            quantizer=Quantizer(assume_normalized=True),
        )
        answer = manager.knn(query, k)
        assert np.array_equal(answer.indices, expected.indices)
        assert np.array_equal(answer.scores, expected.scores)


class TestRestoreExactness:
    @settings(max_examples=10, deadline=None)
    @given(
        gridded_data(max_rows=14),
        st.integers(min_value=0, max_value=3),  # chunk to over-replicate
        st.booleans(),  # kill a shard before the snapshot?
    )
    def test_restore_after_crash_matches_the_uninterrupted_twin(
        self, case, extra_chunk, kill_one
    ):
        data, query, k = case
        topology = FailureDomainTopology(n_shards=4, shards_per_board=2)

        def build():
            return ShardManager(
                data,
                4,
                replication=2,
                topology=topology,
                quantizer=Quantizer(assume_normalized=True),
            )

        twin = build()
        manager = build()
        for m in (twin, manager):
            m.add_replica(extra_chunk % m.n_chunks)
            if kill_one:
                m.health.record_failure(3, 0.0, permanent=True)
        # serve once pre-crash so route caches and clocks are warm
        manager.knn(query, k)
        twin.knn(query, k)
        with tempfile.TemporaryDirectory() as tmp:
            path = str(Path(tmp) / "ck.npz")
            write_checkpoint(manager, path, t_ns=1.0)
            del manager  # the crash
            restored = restore_manager(path)
        a = restored.knn(query, k)
        b = twin.knn(query, k)
        assert np.array_equal(a.indices, b.indices)
        assert np.array_equal(a.scores, b.scores)
        assert restored.replica_log == twin.replica_log
        assert restored.last_checkpoint_ns == 1.0
