"""Property-based tests: every bound respects its inequality.

These are the paper's correctness theorems under random data:
Theorem 1 (LB_PIM-ED <= ED), Theorem 2 (LB_PIM-FNN <= LB_FNN <= ED),
Theorem 3 (the quantization error cap), plus the Table 3 baselines and
the CS/PCC upper bounds.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bounds.ed import FNNBound, OSTBound, PartitionUpperBound, SMBound
from repro.bounds.pim import (
    PIMCosineBound,
    PIMEuclideanBound,
    PIMFNNBound,
    PIMPearsonBound,
)
from repro.hardware.controller import PIMController
from repro.similarity.measures import (
    cosine_batch,
    euclidean_batch,
    pearson_batch,
)
from repro.similarity.quantization import Quantizer


@st.composite
def dataset_and_query(draw):
    """Random [0,1] data with a query, sized for fast PIM preparation.

    Dimensionalities are multiples of 8 so every sampled segment count
    (2, 4, 8) yields equal-length segments.
    """
    n = draw(st.integers(min_value=2, max_value=40))
    dims = draw(st.sampled_from([8, 16, 24, 32]))
    seed = draw(st.integers(min_value=0, max_value=2**31))
    rng = np.random.default_rng(seed)
    data = rng.random((n, dims))
    query = rng.random(dims)
    return data, query


class TestCPUBoundInequalities:
    @given(dataset_and_query(), st.sampled_from([2, 4, 8]))
    @settings(max_examples=40, deadline=None)
    def test_fnn_below_ed(self, case, segments):
        data, query = case
        bound = FNNBound(segments)
        bound.prepare(data)
        assert np.all(
            bound.evaluate(query) <= euclidean_batch(data, query) + 1e-9
        )

    @given(dataset_and_query(), st.sampled_from([2, 4, 8]))
    @settings(max_examples=40, deadline=None)
    def test_sm_below_fnn(self, case, segments):
        data, query = case
        sm = SMBound(segments)
        fnn = FNNBound(segments)
        sm.prepare(data)
        fnn.prepare(data)
        assert np.all(sm.evaluate(query) <= fnn.evaluate(query) + 1e-9)

    @given(dataset_and_query())
    @settings(max_examples=40, deadline=None)
    def test_ost_below_ed(self, case):
        data, query = case
        bound = OSTBound(head_dims=max(1, data.shape[1] // 2))
        bound.prepare(data)
        assert np.all(
            bound.evaluate(query) <= euclidean_batch(data, query) + 1e-9
        )

    @given(dataset_and_query())
    @settings(max_examples=40, deadline=None)
    def test_ub_part_above_cosine(self, case):
        data, query = case
        bound = PartitionUpperBound(head_dims=max(1, data.shape[1] // 2))
        bound.prepare(data)
        assert np.all(
            bound.evaluate(query) >= cosine_batch(data, query) - 1e-9
        )


@pytest.fixture(scope="module")
def shared_controller():
    return PIMController()


class TestPIMBoundInequalities:
    @given(dataset_and_query(), st.sampled_from([10.0, 100.0, 10000.0]))
    @settings(max_examples=30, deadline=None)
    def test_theorem1_and_theorem3(self, case, alpha):
        data, query = case
        quantizer = Quantizer(alpha=alpha, assume_normalized=True)
        bound = PIMEuclideanBound(PIMController(), quantizer)
        bound.prepare(data)
        lb = bound.evaluate(query)
        ed = euclidean_batch(data, query)
        assert np.all(lb <= ed + 1e-9)
        assert np.all(ed - lb <= quantizer.error_bound(data.shape[1]) + 1e-9)

    @given(dataset_and_query(), st.sampled_from([2, 4]))
    @settings(max_examples=25, deadline=None)
    def test_theorem2_chain(self, case, segments):
        data, query = case
        original = FNNBound(segments)
        original.prepare(data)
        pim = PIMFNNBound(segments, PIMController())
        pim.prepare(data)
        lb_pim = pim.evaluate(query)
        lb_fnn = original.evaluate(query)
        ed = euclidean_batch(data, query)
        assert np.all(lb_pim <= lb_fnn + 1e-9)
        assert np.all(lb_fnn <= ed + 1e-9)

    @given(dataset_and_query())
    @settings(max_examples=25, deadline=None)
    def test_cosine_upper_bound(self, case):
        data, query = case
        bound = PIMCosineBound(PIMController())
        bound.prepare(data)
        assert np.all(
            bound.evaluate(query) >= cosine_batch(data, query) - 1e-9
        )

    @given(dataset_and_query())
    @settings(max_examples=25, deadline=None)
    def test_pearson_upper_bound(self, case):
        data, query = case
        bound = PIMPearsonBound(PIMController())
        bound.prepare(data)
        assert np.all(
            bound.evaluate(query) >= pearson_batch(data, query) - 1e-9
        )

    @given(
        dataset_and_query(),
        st.sampled_from([100.0, 1000.0]),
    )
    @settings(max_examples=25, deadline=None)
    def test_alpha_monotone_tightness(self, case, alpha):
        # Theorem 3: larger alpha gives (weakly) tighter average bounds
        data, query = case
        loose_q = Quantizer(alpha=alpha, assume_normalized=True)
        tight_q = Quantizer(alpha=alpha * 100, assume_normalized=True)
        loose = PIMEuclideanBound(PIMController(), loose_q)
        tight = PIMEuclideanBound(PIMController(), tight_q)
        loose.prepare(data)
        tight.prepare(data)
        ed = euclidean_batch(data, query)
        gap_loose = float(np.mean(ed - loose.evaluate(query)))
        gap_tight = float(np.mean(ed - tight.evaluate(query)))
        assert gap_tight <= gap_loose + 1e-9
