"""Property-based tests: batched execution is exact.

The batched engine's contract is the paper's core claim restated for
multi-query waves: batching changes *when* waves fire and what setup
they amortize, never *what* they compute. Under random datasets,
measures and batch sizes:

* :meth:`PIMArray.query_batch` returns bit-identical values to a
  sequential ``query`` loop and books the same logical wave count;
* every PIM kNN variant's ``query_batch`` reproduces the sequential
  ``query`` loop exactly (indices, score ordering, wave counts);
* the :class:`BatchScheduler` delivers the same values regardless of
  how submissions interleave or which flush trigger fires;
* a batch of B is never slower than B single waves (and strictly
  faster for B >= 2).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.planner import BatchScheduler
from repro.hardware.controller import PIMController
from repro.hardware.timing import batch_wave_timing, wave_timing
from repro.mining.knn.hamming import PIMHammingKNN, binary_pim_platform
from repro.mining.knn.pim import make_pim_variant


@st.composite
def dataset_and_queries(draw):
    """Random [0,1] data plus a small multi-query workload."""
    n = draw(st.integers(min_value=3, max_value=40))
    dims = draw(st.sampled_from([8, 16, 24, 32]))
    n_queries = draw(st.integers(min_value=1, max_value=5))
    seed = draw(st.integers(min_value=0, max_value=2**31))
    rng = np.random.default_rng(seed)
    data = rng.random((n, dims))
    queries = rng.random((n_queries, dims))
    return data, queries


def _programmed_pair(data):
    """Two controllers with the same integer matrix programmed."""
    matrix = np.floor(data * 255).astype(np.int64)
    seq, bat = PIMController(), PIMController()
    seq.pim.program_matrix("d", matrix)
    bat.pim.program_matrix("d", matrix)
    return matrix, seq, bat


class TestArrayLevelEquivalence:
    @given(dataset_and_queries())
    @settings(max_examples=25, deadline=None)
    def test_query_batch_matches_sequential_queries(self, case):
        data, queries = case
        matrix, seq, bat = _programmed_pair(data)
        ints = np.floor(queries * 255).astype(np.int64)

        sequential = np.vstack([seq.pim.query("d", q).values for q in ints])
        batch = bat.pim.query_batch("d", ints)

        assert np.array_equal(sequential, batch.values)
        assert batch.values.dtype == sequential.dtype

    @given(dataset_and_queries())
    @settings(max_examples=25, deadline=None)
    def test_query_batch_books_same_logical_waves(self, case):
        data, queries = case
        matrix, seq, bat = _programmed_pair(data)
        ints = np.floor(queries * 255).astype(np.int64)

        for q in ints:
            seq.pim.query("d", q)
        bat.pim.query_batch("d", ints)

        assert bat.pim.stats.waves == seq.pim.stats.waves
        assert (
            bat.pim.stats.results_produced == seq.pim.stats.results_produced
        )
        assert bat.pim.stats.batches == 1
        assert bat.pim.stats.batched_queries == len(ints)

    @given(dataset_and_queries())
    @settings(max_examples=25, deadline=None)
    def test_batch_never_slower_than_sequential(self, case):
        data, queries = case
        matrix, seq, bat = _programmed_pair(data)
        ints = np.floor(queries * 255).astype(np.int64)

        for q in ints:
            seq.pim.query("d", q)
        bat.pim.query_batch("d", ints)

        seq_ns = seq.pim.stats.pim_time_ns
        bat_ns = bat.pim.stats.pim_time_ns
        if len(ints) == 1:
            assert bat_ns == seq_ns
        else:
            assert bat_ns < seq_ns
        assert np.isclose(
            bat.pim.stats.batch_saved_ns, seq_ns - bat_ns, atol=1e-6
        )


class TestKNNVariantEquivalence:
    """query_batch == sequential query loop for every PIM kNN variant."""

    def _check(self, variant, data, queries, k, measure="euclidean"):
        n, dims = data.shape
        seq_algo = make_pim_variant(
            variant, dims, n, measure=measure, controller=PIMController()
        )
        bat_algo = make_pim_variant(
            variant, dims, n, measure=measure, controller=PIMController()
        )
        seq_algo.fit(data)
        bat_algo.fit(data)

        sequential = [seq_algo.query(q, k) for q in queries]
        batched = bat_algo.query_batch(queries, k)

        assert len(batched) == len(sequential)
        for rs, rb in zip(sequential, batched):
            assert np.array_equal(rb.indices, rs.indices)
            assert np.array_equal(rb.scores, rs.scores)
            assert rb.exact_computations == rs.exact_computations
        assert (
            bat_algo.controller.pim.stats.waves
            == seq_algo.controller.pim.stats.waves
        )

    @given(
        dataset_and_queries(),
        st.sampled_from(["euclidean", "cosine", "pearson"]),
        st.integers(min_value=1, max_value=3),
    )
    @settings(max_examples=20, deadline=None)
    def test_standard_pim(self, case, measure, k):
        data, queries = case
        self._check("Standard-PIM", data, queries, k, measure=measure)

    @given(dataset_and_queries(), st.integers(min_value=1, max_value=3))
    @settings(max_examples=12, deadline=None)
    def test_ost_pim(self, case, k):
        data, queries = case
        self._check("OST-PIM", data, queries, k)

    @given(dataset_and_queries(), st.integers(min_value=1, max_value=3))
    @settings(max_examples=12, deadline=None)
    def test_sm_pim(self, case, k):
        data, queries = case
        self._check("SM-PIM", data, queries, k)

    @given(dataset_and_queries(), st.integers(min_value=1, max_value=3))
    @settings(max_examples=12, deadline=None)
    def test_fnn_pim(self, case, k):
        data, queries = case
        self._check("FNN-PIM", data, queries, k)

    @given(
        st.integers(min_value=4, max_value=24),
        st.sampled_from([16, 32, 64]),
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=15, deadline=None)
    def test_hamming_pim(self, n, dims, n_queries, seed):
        rng = np.random.default_rng(seed)
        data = rng.integers(0, 2, size=(n, dims), dtype=np.int64)
        queries = rng.integers(0, 2, size=(n_queries, dims), dtype=np.int64)
        k = min(3, n)

        seq_algo = PIMHammingKNN(PIMController(binary_pim_platform()))
        bat_algo = PIMHammingKNN(PIMController(binary_pim_platform()))
        seq_algo.fit(data)
        bat_algo.fit(data)

        sequential = [seq_algo.query(q, k) for q in queries]
        batched = bat_algo.query_batch(queries, k)

        for rs, rb in zip(sequential, batched):
            assert np.array_equal(rb.indices, rs.indices)
            assert np.array_equal(rb.scores, rs.scores)
        assert (
            bat_algo.controller.pim.stats.waves
            == seq_algo.controller.pim.stats.waves
        )


class TestSchedulerEquivalence:
    @given(
        dataset_and_queries(),
        st.integers(min_value=1, max_value=6),
    )
    @settings(max_examples=20, deadline=None)
    def test_scheduler_values_match_direct_dispatch(self, case, max_batch):
        data, queries = case
        matrix, direct, batched = _programmed_pair(data)
        ints = np.floor(queries * 255).astype(np.int64)

        scheduler = BatchScheduler(batched, max_batch=max_batch)
        tickets = [scheduler.submit("d", q) for q in ints]
        scheduler.flush()

        for q, ticket in zip(ints, tickets):
            assert ticket.done
            assert np.array_equal(ticket.values, direct.pim.query("d", q).values)
        assert batched.pim.stats.waves == len(ints)

    @given(dataset_and_queries())
    @settings(max_examples=15, deadline=None)
    def test_demand_flush_matches_direct_dispatch(self, case):
        data, queries = case
        matrix, direct, batched = _programmed_pair(data)
        ints = np.floor(queries * 255).astype(np.int64)

        scheduler = BatchScheduler(batched, max_batch=64)
        tickets = [scheduler.submit("d", q) for q in ints]
        # Reading any ticket's values forces its group to flush.
        for q, ticket in zip(ints, tickets):
            assert np.array_equal(ticket.values, direct.pim.query("d", q).values)
        assert scheduler.stats.queries_flushed == len(ints)


class TestTimingModelProperties:
    @given(
        st.integers(min_value=1, max_value=12),
        dataset_and_queries(),
    )
    @settings(max_examples=25, deadline=None)
    def test_batch_timing_vs_b_single_waves(self, b, case):
        data, _ = case
        controller = PIMController()
        matrix = np.floor(data * 255).astype(np.int64)
        layout = controller.pim.program_matrix("d", matrix)
        pim = controller.pim

        single = wave_timing(layout, pim.config, pim.hardware)
        batch = batch_wave_timing(
            layout, pim.config, pim.hardware, n_queries=b
        )
        if b == 1:
            assert batch.total_ns == single.total_ns
            assert batch.total_cycles == single.total_cycles
        else:
            assert batch.total_ns < b * single.total_ns
            assert batch.amortized_ns_per_query < single.total_ns
