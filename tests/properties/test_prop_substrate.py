"""Property-based tests: substrate choice never changes answers.

The substrate contract, stated adversarially: for ANY placement of rows
onto shards, ANY per-shard assignment of backends (all-crossbar,
all-HBM, or mixed), and ANY survivable fault plan, serving returns
answers bit-identical to the all-crossbar single-array baseline — the
cost models differ wildly, the values may not. The same holds at the
mining layer for Hamming kNN (1-bit operands, two resident matrices)
and the k-means PIM assist.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import FaultPlan
from repro.faults.plan import FaultEvent
from repro.hardware.controller import PIMController
from repro.mining.knn.hamming import PIMHammingKNN, binary_pim_platform
from repro.serving import ShardManager, ShardPlacement
from repro.similarity.quantization import Quantizer

GRID = [0.0, 0.25, 0.5, 0.75, 1.0]
SUBSTRATES = ["crossbar", "hbm_pim"]


@st.composite
def substrate_case(draw):
    """Gridded data, an arbitrary placement, and per-shard backends."""
    n = draw(st.integers(min_value=2, max_value=24))
    dims = draw(st.sampled_from([2, 4, 6]))
    n_shards = draw(st.integers(min_value=1, max_value=4))
    cells = st.sampled_from(GRID)
    data = np.array(
        draw(
            st.lists(
                st.lists(cells, min_size=dims, max_size=dims),
                min_size=n,
                max_size=n,
            )
        )
    )
    assignments = np.array(
        draw(
            st.lists(
                st.integers(min_value=0, max_value=n_shards - 1),
                min_size=n,
                max_size=n,
            )
        ),
        dtype=np.int64,
    )
    backends = draw(
        st.lists(
            st.sampled_from(SUBSTRATES),
            min_size=n_shards,
            max_size=n_shards,
        )
    )
    query = np.array(draw(st.lists(cells, min_size=dims, max_size=dims)))
    k = draw(st.integers(min_value=1, max_value=n))
    return data, assignments, n_shards, backends, query, k


def _quantizer():
    # degenerate all-equal grids break min-max fitting; both managers
    # share the setting so the comparison stays honest
    return Quantizer(assume_normalized=True)


def _baseline(data):
    return ShardManager(data, n_shards=1, quantizer=_quantizer())


def _mixed(data, assignments, n_shards, backends, **kw):
    return ShardManager(
        data,
        placement=ShardPlacement(
            n_shards=n_shards, assignments=assignments
        ),
        quantizer=_quantizer(),
        substrates=backends,
        **kw,
    )


class TestSubstrateInvariance:
    @given(substrate_case())
    @settings(max_examples=25, deadline=None)
    def test_knn_identical_for_any_backend_mix(self, case):
        data, assignments, n_shards, backends, query, k = case
        a = _baseline(data).knn(query, k)
        b = _mixed(data, assignments, n_shards, backends).knn(query, k)
        assert np.array_equal(a.indices, b.indices)
        assert np.array_equal(a.scores, b.scores)

    @given(substrate_case())
    @settings(max_examples=10, deadline=None)
    def test_routing_objective_never_changes_values(self, case):
        data, assignments, n_shards, backends, query, k = case
        a = _baseline(data).knn(query, k)
        for route in ("latency", "energy", "none"):
            b = _mixed(
                data, assignments, n_shards, backends, route=route
            ).knn(query, k)
            assert np.array_equal(a.indices, b.indices), route
            assert np.array_equal(a.scores, b.scores), route

    @given(substrate_case())
    @settings(max_examples=15, deadline=None)
    def test_assign_identical_for_any_backend_mix(self, case):
        data, assignments, n_shards, backends, centers_src, _ = case
        centers = np.vstack([centers_src, data[0]])
        a, _ = _baseline(data).assign(centers)
        b, _ = _mixed(data, assignments, n_shards, backends).assign(
            centers
        )
        assert np.array_equal(a.assignments, b.assignments)
        assert np.array_equal(a.distances, b.distances)


@st.composite
def faulted_case(draw):
    """A replicated mixed fleet and a survivable shard crash."""
    n = draw(st.integers(min_value=4, max_value=20))
    dims = draw(st.sampled_from([2, 4]))
    n_shards = draw(st.integers(min_value=2, max_value=4))
    cells = st.sampled_from(GRID)
    data = np.array(
        draw(
            st.lists(
                st.lists(cells, min_size=dims, max_size=dims),
                min_size=n,
                max_size=n,
            )
        )
    )
    backends = draw(
        st.lists(
            st.sampled_from(SUBSTRATES),
            min_size=n_shards,
            max_size=n_shards,
        )
    )
    victim = draw(st.integers(min_value=0, max_value=n_shards - 1))
    query = np.array(draw(st.lists(cells, min_size=dims, max_size=dims)))
    k = draw(st.integers(min_value=1, max_value=n))
    return data, n_shards, backends, victim, query, k


class TestFaultedSubstrateInvariance:
    @given(faulted_case())
    @settings(max_examples=15, deadline=None)
    def test_survivable_crash_keeps_answers_identical(self, case):
        data, n_shards, backends, victim, query, k = case
        a = _baseline(data).knn(query, k)
        plan = FaultPlan(
            [
                FaultEvent(
                    t_ns=0.0, kind="shard_crash", target=f"shard{victim}"
                )
            ]
        )
        survivor = ShardManager(
            data,
            n_shards=n_shards,
            quantizer=_quantizer(),
            substrates=backends,
            replication=2,
            fault_plan=plan,
        )
        b = survivor.knn(query, k)
        assert np.array_equal(a.indices, b.indices)
        assert np.array_equal(a.scores, b.scores)


class TestMiningLayerInvariance:
    @given(
        st.integers(min_value=2, max_value=30),
        st.sampled_from([8, 24, 33]),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=15, deadline=None)
    def test_hamming_knn_identical_across_substrates(self, n, bits, seed):
        rng = np.random.default_rng(seed)
        codes = rng.integers(0, 2, size=(n, bits)).astype(np.int64)
        query = rng.integers(0, 2, size=bits).astype(np.int64)
        k = min(5, n)
        results = {}
        for substrate in SUBSTRATES:
            algo = PIMHammingKNN(
                controller=PIMController(
                    binary_pim_platform(), substrate=substrate
                )
            )
            results[substrate] = algo.fit(codes).query(query, k)
        a, b = results["crossbar"], results["hbm_pim"]
        assert np.array_equal(a.indices, b.indices)
        assert np.array_equal(a.scores, b.scores)

    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=5, deadline=None)
    def test_kmeans_assist_identical_across_substrates(self, seed):
        from repro.mining.kmeans import initial_centers, make_kmeans
        from repro.mining.kmeans.pim import PIMAssist

        rng = np.random.default_rng(seed)
        data = rng.random((60, 6))
        centers = initial_centers(data, 4, seed=seed)
        labels = {}
        for substrate in SUBSTRATES:
            assist = PIMAssist(
                controller=PIMController(substrate=substrate)
            )
            algo = make_kmeans(
                "Standard-PIM", 4, max_iters=4, pim_assist=assist
            )
            labels[substrate] = algo.fit(data, centers=centers)
        a, b = labels["crossbar"], labels["hbm_pim"]
        assert np.array_equal(a.assignments, b.assignments)
        assert np.array_equal(a.centers, b.centers)
