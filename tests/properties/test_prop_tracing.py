"""Property-based tests: trace trees stay whole under ARBITRARY faults.

The observability contract, stated adversarially: for any schedule of
shard-level faults — crashes, hangs, stragglers, corrupted waves, dead
crossbars, against any replication degree — a traced serving run
exports *exactly one* root ``request`` span per terminal response,
every child span (segments, shard waves, retries, failover waves,
degraded recomputes) parents back to its root inside the same trace,
and the critical-path segments partition each request's latency to
within one simulated nanosecond. Fault handling may reshuffle *where*
time goes; it must never lose or mis-parent the accounting.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import FaultEvent, FaultPlan
from repro.observability import (
    orphan_spans,
    request_breakdowns,
    request_roots,
)
from repro.serving import (
    QueryService,
    ShardManager,
    TenantSpec,
    WorkloadDriver,
)
from repro.similarity.quantization import Quantizer
from repro.telemetry import chrome_trace_events, telemetry_session

#: Coarse value grid -> duplicate rows, ties, degenerate shards.
GRID = [0.0, 0.25, 0.5, 0.75, 1.0]

#: Same shard-affecting kinds the exactness properties absorb
#: (``stuck_cells`` excluded there for its probabilistic detection;
#: here it would be fine but we keep the fault space identical).
KINDS = [
    "shard_crash",
    "shard_hang",
    "slow_shard",
    "wave_corrupt",
    "latency_spike",
    "crossbar_dead",
]


@st.composite
def traced_case(draw):
    """A dataset, a sharded layout, an arbitrary plan, and a load."""
    n = draw(st.integers(min_value=6, max_value=16))
    dims = draw(st.sampled_from([2, 4]))
    cells = st.sampled_from(GRID)
    data = np.array(
        draw(
            st.lists(
                st.lists(cells, min_size=dims, max_size=dims),
                min_size=n,
                max_size=n,
            )
        )
    )
    n_shards = draw(st.integers(min_value=2, max_value=4))
    replication = draw(st.integers(min_value=1, max_value=n_shards))
    events = []
    for _ in range(draw(st.integers(min_value=1, max_value=3))):
        kind = draw(st.sampled_from(KINDS))
        shard = draw(st.integers(min_value=0, max_value=n_shards - 1))
        t_ns = draw(st.sampled_from([0.0, 5_000.0, 1e5]))
        duration = draw(st.sampled_from([None, 50_000.0]))
        params = {}
        if kind in ("slow_shard", "latency_spike"):
            params["factor"] = draw(st.sampled_from([2.0, 8.0]))
        if kind == "wave_corrupt":
            params["probability"] = draw(st.sampled_from([0.5, 1.0]))
            params["magnitude"] = draw(st.sampled_from([3, 101]))
        events.append(
            FaultEvent(
                t_ns=t_ns,
                kind=kind,
                target=f"shard{shard}",
                duration_ns=duration,
                params=params,
            )
        )
    plan = FaultPlan(events, seed=draw(st.integers(0, 5)))
    rate_qps = draw(st.sampled_from([5e4, 5e5]))
    return data, n_shards, replication, plan, rate_qps


def run_traced(case, n_requests=10):
    """Serve a short traced workload under the drawn fault plan."""
    data, n_shards, replication, plan, rate_qps = case
    manager = ShardManager(
        data,
        n_shards,
        replication=replication,
        fault_plan=plan,
        quantizer=Quantizer(assume_normalized=True),
    )
    tenants = [TenantSpec("a", k=3)]
    driver = WorkloadDriver(data, tenants, seed=9)
    requests = driver.open_loop(rate_qps, n_requests)
    with telemetry_session() as tele:
        service = QueryService(
            manager, tenants, max_batch=3, queue_capacity=8
        )
        responses = service.run(requests)
        events = chrome_trace_events(tele)
    return responses, events


def parent_chain_reaches_root(span, by_id):
    """Walk parent_ids; True iff the chain ends at a parentless span."""
    seen = set()
    args = span["args"]
    while "parent_id" in args:
        parent_id = args["parent_id"]
        if parent_id in seen or parent_id not in by_id:
            return False
        seen.add(parent_id)
        args = by_id[parent_id]["args"]
    return True


class TestTraceIntegrity:
    @settings(max_examples=15, deadline=None)
    @given(traced_case())
    def test_exactly_one_root_per_terminal_response(self, case):
        responses, events = run_traced(case)
        roots = request_roots(events)
        assert len(roots) == len(responses)
        root_requests = sorted(r["args"]["request_id"] for r in roots)
        assert root_requests == sorted(r.request_id for r in responses)
        trace_ids = [r["args"]["trace_id"] for r in roots]
        assert len(set(trace_ids)) == len(trace_ids)

    @settings(max_examples=15, deadline=None)
    @given(traced_case())
    def test_no_orphans_and_chains_reach_roots(self, case):
        _, events = run_traced(case)
        assert orphan_spans(events) == []
        spans = [e for e in events if e.get("ph") == "X"]
        by_id = {
            e["args"]["span_id"]: e
            for e in spans
            if "span_id" in e.get("args", {})
        }
        root_traces = {
            r["args"]["trace_id"]: r["args"]["span_id"]
            for r in request_roots(events)
        }
        for span in spans:
            args = span.get("args", {})
            if "trace_id" not in args:
                continue
            assert parent_chain_reaches_root(span, by_id)
            # retry / failover / degraded spans must stay inside the
            # trace of the request that caused them
            assert args["trace_id"] in root_traces

    @settings(max_examples=15, deadline=None)
    @given(traced_case())
    def test_segments_partition_latency_under_faults(self, case):
        responses, events = run_traced(case)
        breakdowns = request_breakdowns(events)
        assert len(breakdowns) == len(responses)
        for b in breakdowns:
            assert abs(b["residual_ns"]) < 1.0

    @settings(max_examples=10, deadline=None)
    @given(traced_case())
    def test_traced_run_serves_same_answers_as_untraced(self, case):
        data, n_shards, replication, plan, rate_qps = case

        def serve():
            manager = ShardManager(
                data,
                n_shards,
                replication=replication,
                fault_plan=plan,
                quantizer=Quantizer(assume_normalized=True),
            )
            tenants = [TenantSpec("a", k=3)]
            requests = WorkloadDriver(data, tenants, seed=9).open_loop(
                rate_qps, 10
            )
            service = QueryService(
                manager, tenants, max_batch=3, queue_capacity=8
            )
            return service.run(requests)

        with telemetry_session():
            traced = serve()
        plain = serve()
        assert [r.ok for r in traced] == [r.ok for r in plain]
        for a, b in zip(traced, plain):
            if a.ok:
                assert np.array_equal(a.indices, b.indices)
                assert a.completion_ns == b.completion_ns
