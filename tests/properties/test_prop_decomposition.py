"""Property-based tests: Table 4 decompositions are identities.

``F(p, q) == G(Phi(p), Phi(q), p·q)`` must hold for every measure on
arbitrary vectors — this is what makes the offline/online split of the
paper lossless before any quantization enters.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.similarity import measures
from repro.similarity.decomposition import (
    cosine_decomposition,
    euclidean_decomposition,
    fnn_decomposition,
    hamming_decomposition,
    pearson_decomposition,
)
from repro.similarity.segments import summarize


@st.composite
def vector_pairs(draw):
    dims = draw(st.sampled_from([2, 4, 8, 16, 32]))
    seed = draw(st.integers(min_value=0, max_value=2**31))
    scale = draw(st.sampled_from([1.0, 10.0, 1000.0]))
    rng = np.random.default_rng(seed)
    return rng.random(dims) * scale, rng.random(dims) * scale


class TestDecompositionIdentities:
    @given(vector_pairs())
    @settings(max_examples=60, deadline=None)
    def test_euclidean(self, pair):
        p, q = pair
        assert euclidean_decomposition().evaluate(p, q) == pytest.approx(
            measures.euclidean(p, q), rel=1e-9, abs=1e-9
        )

    @given(vector_pairs())
    @settings(max_examples=60, deadline=None)
    def test_cosine(self, pair):
        p, q = pair
        assert cosine_decomposition().evaluate(p, q) == pytest.approx(
            measures.cosine(p, q), rel=1e-9, abs=1e-9
        )

    @given(vector_pairs())
    @settings(max_examples=60, deadline=None)
    def test_pearson(self, pair):
        p, q = pair
        assert pearson_decomposition().evaluate(p, q) == pytest.approx(
            measures.pearson(p, q), rel=1e-6, abs=1e-6
        )

    @given(
        st.integers(min_value=1, max_value=64),
        st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=60, deadline=None)
    def test_hamming(self, dims, seed):
        rng = np.random.default_rng(seed)
        p = rng.integers(0, 2, size=dims)
        q = rng.integers(0, 2, size=dims)
        assert hamming_decomposition().evaluate(p, q) == pytest.approx(
            float(measures.hamming(p, q))
        )

    @given(
        st.sampled_from([8, 16, 32]),
        st.sampled_from([2, 4, 8]),
        st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=40, deadline=None)
    def test_fnn_decomposition_equals_direct_formula(
        self, dims, segments, seed
    ):
        rng = np.random.default_rng(seed)
        p, q = rng.random(dims), rng.random(dims)
        sp = summarize(p, segments)
        sq = summarize(q, segments)
        direct = sp.segment_length * float(
            ((sp.means - sq.means) ** 2).sum()
            + ((sp.stds - sq.stds) ** 2).sum()
        )
        assert fnn_decomposition(segments).evaluate(p, q) == pytest.approx(
            direct, rel=1e-9, abs=1e-9
        )


class TestSegmentIdentities:
    @given(
        st.sampled_from([8, 16, 32]),
        st.sampled_from([1, 2, 4, 8]),
        st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=40, deadline=None)
    def test_segment_stats_match_manual(self, dims, segments, seed):
        rng = np.random.default_rng(seed)
        v = rng.random(dims)
        summary = summarize(v, segments)
        length = dims // segments
        for i in range(segments):
            chunk = v[i * length : (i + 1) * length]
            assert summary.means[i] == pytest.approx(chunk.mean())
            assert summary.stds[i] == pytest.approx(chunk.std())

    @given(
        st.sampled_from([8, 16, 32]),
        st.sampled_from([2, 4, 8]),
        st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=40, deadline=None)
    def test_fnn_lower_bounds_ed_at_any_resolution(
        self, dims, segments, seed
    ):
        # the classic inequality behind LB_FNN, on raw random vectors
        rng = np.random.default_rng(seed)
        p, q = rng.random(dims), rng.random(dims)
        lb = fnn_decomposition(segments).evaluate(p, q)
        assert lb <= measures.euclidean(p, q) + 1e-9
