"""Property-based tests: mining results are exact under randomness.

The paper's headline guarantee — PIM optimization never changes results
— must hold for arbitrary datasets, ks and measures.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mining.kmeans import LloydKMeans, make_kmeans, initial_centers
from repro.mining.knn import (
    FNNKNN,
    HammingKNN,
    PIMHammingKNN,
    StandardKNN,
    StandardPIMKNN,
)


@st.composite
def knn_case(draw):
    n = draw(st.integers(min_value=5, max_value=80))
    dims = draw(st.sampled_from([8, 16, 24]))
    k = draw(st.integers(min_value=1, max_value=min(n, 10)))
    seed = draw(st.integers(min_value=0, max_value=2**31))
    rng = np.random.default_rng(seed)
    # mixture data so the test also exercises the pruning path
    centers = rng.random((4, dims))
    data = np.clip(
        centers[rng.integers(0, 4, n)]
        + 0.1 * rng.standard_normal((n, dims)),
        0,
        1,
    )
    query = rng.random(dims)
    return data, query, k


class TestKNNExactness:
    @given(knn_case())
    @settings(max_examples=25, deadline=None)
    def test_standard_pim_equals_standard(self, case):
        data, query, k = case
        ref = StandardKNN().fit(data).query(query, k)
        res = StandardPIMKNN().fit(data).query(query, k)
        assert np.allclose(np.sort(res.scores), np.sort(ref.scores))

    @given(knn_case())
    @settings(max_examples=25, deadline=None)
    def test_fnn_equals_standard(self, case):
        data, query, k = case
        ref = StandardKNN().fit(data).query(query, k)
        res = FNNKNN(dims=data.shape[1]).fit(data).query(query, k)
        assert np.allclose(np.sort(res.scores), np.sort(ref.scores))

    @given(knn_case(), st.sampled_from(["cosine", "pearson"]))
    @settings(max_examples=20, deadline=None)
    def test_similarity_measures_exact(self, case, measure):
        data, query, k = case
        ref = StandardKNN(measure=measure).fit(data).query(query, k)
        res = StandardPIMKNN(measure=measure).fit(data).query(query, k)
        assert np.allclose(np.sort(res.scores), np.sort(ref.scores))


class TestHammingExactness:
    @given(
        st.integers(min_value=5, max_value=60),
        st.sampled_from([32, 64]),
        st.integers(min_value=1, max_value=5),
        st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=20, deadline=None)
    def test_pim_equals_cpu(self, n, bits, k, seed):
        rng = np.random.default_rng(seed)
        codes = rng.integers(0, 2, size=(n, bits))
        q = rng.integers(0, 2, size=bits)
        ref = HammingKNN().fit(codes).query(q, k)
        res = PIMHammingKNN().fit(codes).query(q, k)
        assert np.allclose(np.sort(res.scores), np.sort(ref.scores))


@st.composite
def kmeans_case(draw):
    n = draw(st.integers(min_value=20, max_value=100))
    dims = draw(st.sampled_from([4, 8, 16]))
    k = draw(st.integers(min_value=2, max_value=min(8, n // 3)))
    seed = draw(st.integers(min_value=0, max_value=2**31))
    rng = np.random.default_rng(seed)
    centers = rng.random((k, dims))
    data = np.clip(
        centers[rng.integers(0, k, n)]
        + 0.08 * rng.standard_normal((n, dims)),
        0,
        1,
    )
    return data, k, seed


class TestKMeansEquivalence:
    @given(
        kmeans_case(),
        st.sampled_from(
            ["Elkan", "Drake", "Yinyang", "Standard-PIM", "Elkan-PIM"]
        ),
    )
    @settings(max_examples=20, deadline=None)
    def test_variant_matches_lloyd(self, case, name):
        data, k, seed = case
        init = initial_centers(data, k, seed=seed % 1000)
        ref = LloydKMeans(k, max_iters=6).fit(data, init.copy())
        res = make_kmeans(name, k, max_iters=6).fit(data, init.copy())
        assert res.inertia <= ref.inertia * (1 + 1e-9) + 1e-12
        assert res.n_iterations == ref.n_iterations
        assert np.array_equal(res.assignments, ref.assignments)
