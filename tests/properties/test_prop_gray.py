"""Property-based tests: gray failures slow answers, never change them.

Two adversarial contracts from DESIGN.md section 14:

1. **Exactness for-all gray weather.** For any schedule of gray faults
   — sustained stragglers, intermittent slowdowns, bank-group
   stragglers, flaky host<->shard links — every answer a defended
   :class:`~repro.serving.ShardManager` (outlier ejection + adaptive
   hedging on) completes is bit-identical to a fault-free single-array
   run. The detector may eject, hedges may race and cancel, probes may
   visit the straggler: none of it is allowed to show up in a value.

2. **Probation hysteresis (flap-admit).** Driving the
   :class:`~repro.serving.ShardHealthTracker` directly with an
   arbitrary clean/slow probe sequence: the required clean streak
   doubles on every slow probe (capped at ``ejection_max_probes``),
   never decreases, re-admission happens exactly when a full streak of
   clean probes lands, and a later re-ejection keeps the escalated
   target — a flapping shard earns longer probation, never shorter.

Data comes from the same coarse grid as ``test_prop_faults`` so tied
distances make the canonical tie-break do real work while ejections
and hedges reshuffle which replica answers what. ``link_flaky`` is
only drawn at replication >= 2: a dropped dispatch needs a second
replica to keep the for-all completion guarantee honest (single-replica
drop handling is exercised in the unit tests).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import FaultEvent, FaultPlan
from repro.serving import RecoveryPolicy, ShardHealthTracker, ShardManager
from repro.similarity.quantization import Quantizer

#: Coarse value grid -> many exact duplicate coordinates and rows.
GRID = [0.0, 0.25, 0.5, 0.75, 1.0]

HORIZON_NS = 1.5e7

#: Gray kinds only: every one perturbs timing, none can touch a value.
GRAY_KINDS = [
    "slow_shard",
    "intermittent_slow",
    "bankgroup_straggler",
    "link_flaky",
]


@st.composite
def gridded_data(draw, max_rows=18):
    n = draw(st.integers(min_value=4, max_value=max_rows))
    dims = draw(st.sampled_from([2, 4]))
    cells = st.sampled_from(GRID)
    data = np.array(
        draw(
            st.lists(
                st.lists(cells, min_size=dims, max_size=dims),
                min_size=n,
                max_size=n,
            )
        )
    )
    query = np.array(draw(st.lists(cells, min_size=dims, max_size=dims)))
    k = draw(st.integers(min_value=1, max_value=n))
    return data, query, k


@st.composite
def gray_case(draw):
    """A dataset, a replicated layout, and an arbitrary gray plan."""
    data, query, k = draw(gridded_data())
    n_shards = draw(st.integers(min_value=2, max_value=4))
    replication = draw(st.integers(min_value=1, max_value=n_shards))
    kinds = GRAY_KINDS if replication >= 2 else GRAY_KINDS[:-1]
    events = []
    for _ in range(draw(st.integers(min_value=1, max_value=3))):
        kind = draw(st.sampled_from(kinds))
        shard = draw(st.integers(min_value=0, max_value=n_shards - 1))
        t_ns = draw(st.sampled_from([0.0, 0.2 * HORIZON_NS]))
        duration = draw(st.sampled_from([None, 0.6 * HORIZON_NS]))
        params = {}
        if kind in ("slow_shard", "bankgroup_straggler"):
            params["factor"] = draw(st.sampled_from([2.0, 12.0]))
        if kind == "intermittent_slow":
            params["factor"] = draw(st.sampled_from([4.0, 10.0]))
            params["period_ns"] = HORIZON_NS / 16.0
            params["duty"] = draw(st.sampled_from([0.25, 0.5, 0.75]))
        if kind == "link_flaky":
            params["drop_probability"] = draw(st.sampled_from([0.2, 0.5]))
            params["delay_probability"] = draw(st.sampled_from([0.0, 0.3]))
            params["delay_ns"] = 50_000.0
        events.append(
            FaultEvent(
                t_ns=t_ns,
                kind=kind,
                target=f"shard{shard}",
                duration_ns=duration,
                params=params,
            )
        )
    seed = draw(st.integers(min_value=0, max_value=5))
    return data, query, k, n_shards, replication, FaultPlan(events, seed)


def clean_manager(data):
    """The fault-free single-array reference over the same data."""
    return ShardManager(data, 1, quantizer=Quantizer(assume_normalized=True))


class TestGrayExactness:
    @settings(max_examples=20, deadline=None)
    @given(gray_case())
    def test_any_gray_plan_is_bit_exact_with_defenses_on(self, case):
        data, query, k, n_shards, replication, plan = case
        expected = clean_manager(data).knn(query, k)
        manager = ShardManager(
            data,
            n_shards,
            replication=replication,
            fault_plan=plan,
            recovery=RecoveryPolicy(
                outlier_ejection=True,
                adaptive_hedge=True,
                hedge_budget=0.5,
            ),
            quantizer=Quantizer(assume_normalized=True),
        )
        # serve the same query across the horizon so ejections, probes
        # and hedges all get a chance to fire mid-trace
        t = 0.0
        for _ in range(8):
            answers, timing = manager.knn_batch(
                np.atleast_2d(query), k, now_ns=t
            )
            assert np.array_equal(answers[0].indices, expected.indices)
            assert np.array_equal(answers[0].scores, expected.scores)
            t += timing.service_ns + HORIZON_NS / 9.0

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=1, max_value=4), st.integers(0, 5))
    def test_gray_chaos_generator_emits_only_gray_kinds(
        self, n_shards, seed
    ):
        plan = FaultPlan.gray_chaos(
            n_shards, HORIZON_NS, seed=seed, bankgroup_shards=1
        )
        kinds = {event["kind"] for event in plan.describe()}
        assert kinds <= set(GRAY_KINDS)


BASE_NS = 1_000.0
SLOW_NS = 20_000.0


def convicted_tracker(policy):
    """A 2-shard tracker with shard0 freshly ejected as a straggler.

    shard1 supplies a stable peer baseline of ``BASE_NS`` so probe
    verdicts on shard0 are deterministic: ``BASE_NS`` is clean,
    ``SLOW_NS`` is slow (readmit_slack x baseline sits between them).
    """
    tracker = ShardHealthTracker(2, policy)
    for i in range(policy.detector_min_samples + 2):
        tracker.record_service_time(1, float(i), BASE_NS)
    t = 100.0
    for _ in range(200):
        if tracker._shards[0].ejected:
            break
        tracker.record_service_time(0, t, SLOW_NS)
        t += 1.0
    assert tracker._shards[0].ejected
    return tracker, t


class TestProbationHysteresis:
    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.booleans(), min_size=1, max_size=30))
    def test_streak_doubles_on_slow_and_never_shrinks(self, probes):
        policy = RecoveryPolicy(outlier_ejection=True)
        tracker, t = convicted_tracker(policy)
        h = tracker._shards[0]
        assert h.eject_probe_target == policy.ejection_probes
        assert h.eject_probes_left == policy.ejection_probes
        # mirror the promised state machine step by step
        exp_target = policy.ejection_probes
        exp_left = exp_target
        for clean in probes:
            if not h.ejected:
                break
            prev_target = h.eject_probe_target
            tracker.record_service_time(
                0, t, BASE_NS if clean else SLOW_NS
            )
            t += policy.ejection_probe_period_ns
            if clean:
                exp_left -= 1
            else:
                exp_target = min(
                    exp_target * 2, policy.ejection_max_probes
                )
                exp_left = exp_target
            assert h.eject_probe_target == exp_target
            assert h.eject_probe_target >= prev_target
            assert h.eject_probe_target <= policy.ejection_max_probes
            if exp_left <= 0:
                # a full clean streak landed: re-admitted, and only now
                assert not h.ejected
            else:
                assert h.ejected
                assert h.eject_probes_left == exp_left

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=1, max_value=6))
    def test_reejection_keeps_the_escalated_probation(self, n_slow):
        policy = RecoveryPolicy(outlier_ejection=True)
        tracker, t = convicted_tracker(policy)
        h = tracker._shards[0]
        for _ in range(n_slow):
            tracker.record_service_time(0, t, SLOW_NS)
            t += policy.ejection_probe_period_ns
        escalated = h.eject_probe_target
        assert escalated == min(
            policy.ejection_probes * 2**n_slow,
            policy.ejection_max_probes,
        )
        # serve the full clean streak to earn re-admission
        for _ in range(h.eject_probes_left):
            tracker.record_service_time(0, t, BASE_NS)
            t += policy.ejection_probe_period_ns
        assert not h.ejected
        # the sticky part: a later ejection restarts probation at the
        # escalated target, not the policy default
        tracker._eject(0, t_ns=t)
        assert h.eject_probe_target == escalated
        assert h.eject_probes_left == escalated

    def test_readmission_bumps_the_route_version(self):
        policy = RecoveryPolicy(outlier_ejection=True)
        tracker, t = convicted_tracker(policy)
        h = tracker._shards[0]
        version = tracker.version
        for _ in range(h.eject_probes_left):
            tracker.record_service_time(0, t, BASE_NS)
            t += policy.ejection_probe_period_ns
        assert not h.ejected
        assert tracker.version == version + 1
        assert tracker.suspicion(0) == pytest.approx(0.0)
