"""Property-based tests: Theorem 4 capacity math is consistent.

Crossbar counts must be monotone in every argument, the solver's choice
must be feasible-and-maximal, and the gather tree must terminate.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.memory_manager import choose_compressed_dims
from repro.errors import CapacityError
from repro.hardware.config import CrossbarConfig, PIMArrayConfig
from repro.hardware import mapper


@st.composite
def array_configs(draw):
    rows = draw(st.sampled_from([4, 8, 16, 64, 256]))
    cell_bits = draw(st.sampled_from([1, 2, 4]))
    operand_bits = draw(st.sampled_from([1, 8, 16, 32]))
    slices = -(-operand_bits // cell_bits)
    if slices > rows:  # ensure at least one vector fits a crossbar row
        operand_bits = cell_bits
    crossbar = CrossbarConfig(rows=rows, cols=rows, cell_bits=cell_bits)
    capacity = draw(
        st.integers(min_value=64, max_value=1 << 22)
    )
    capacity = max(capacity, crossbar.capacity_bits // 8 + 1)
    return PIMArrayConfig(
        crossbar=crossbar,
        capacity_bytes=capacity,
        operand_bits=operand_bits,
        accumulator_bits=64,
    )


class TestMonotonicity:
    @given(
        array_configs(),
        st.integers(min_value=1, max_value=5000),
        st.integers(min_value=1, max_value=512),
    )
    @settings(max_examples=60, deadline=None)
    def test_crossbars_monotone_in_dims(self, config, n, dims):
        a = mapper.total_crossbars(n, dims, config)
        b = mapper.total_crossbars(n, dims + 1, config)
        assert b >= a

    @given(
        array_configs(),
        st.integers(min_value=1, max_value=5000),
        st.integers(min_value=1, max_value=512),
    )
    @settings(max_examples=60, deadline=None)
    def test_crossbars_monotone_in_vectors(self, config, n, dims):
        a = mapper.total_crossbars(n, dims, config)
        b = mapper.total_crossbars(n + 50, dims, config)
        assert b >= a

    @given(array_configs(), st.integers(min_value=1, max_value=2048))
    @settings(max_examples=60, deadline=None)
    def test_gather_tree_terminates_and_counts(self, config, dims):
        levels = mapper.gather_tree_levels(dims, config.crossbar.rows)
        assert 1 <= levels <= 12
        if dims <= config.crossbar.rows:
            assert mapper.gather_crossbars(10, dims, config) == 0
        else:
            assert mapper.gather_crossbars(10, dims, config) > 0


class TestSolver:
    @given(
        array_configs(),
        st.integers(min_value=1, max_value=3000),
        st.integers(min_value=1, max_value=256),
    )
    @settings(max_examples=60, deadline=None)
    def test_choice_is_feasible_and_maximal(self, config, n, dims):
        try:
            plan = choose_compressed_dims(n, dims, config)
        except CapacityError:
            assert not mapper.fits(n, 1, config)
            return
        s = plan.compressed_dims
        assert 1 <= s <= dims
        assert mapper.fits(n, s, config)
        if s < dims:
            assert not mapper.fits(n, s + 1, config)
