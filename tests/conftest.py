"""Shared fixtures for the test suite.

Small geometries keep the cell-level crossbar simulation affordable;
clustered datasets give the bounds realistic pruning behaviour. Every
test also gets NumPy's *global* RNG seeded deterministically from its
node id, so stray ``np.random.*`` calls are reproducible regardless of
execution order (``pytest -p no:randomly`` replays exactly).
"""

from __future__ import annotations

import zlib

import numpy as np
import pytest

from repro.hardware.config import (
    CrossbarConfig,
    HardwareConfig,
    PIMArrayConfig,
)
from repro.hardware.controller import PIMController


@pytest.fixture(autouse=True)
def _seed_global_numpy_rng(request) -> int:
    """Seed ``np.random`` per test from a hash of the test's node id.

    The seed is recorded in the report (``numpy_seed`` user property) so
    a failure can be replayed standalone with ``np.random.seed(seed)``.
    """
    seed = zlib.crc32(request.node.nodeid.encode("utf-8")) & 0xFFFFFFFF
    np.random.seed(seed)
    request.node.user_properties.append(("numpy_seed", seed))
    return seed


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def small_crossbar_config() -> CrossbarConfig:
    """8x8 crossbar with 2-bit cells — tiny enough for cell simulation."""
    return CrossbarConfig(rows=8, cols=8, cell_bits=2, dac_bits=2)


@pytest.fixture
def small_pim_platform(small_crossbar_config) -> HardwareConfig:
    """A miniature PIM platform (1 MB array of 8x8 crossbars)."""
    return HardwareConfig(
        pim=PIMArrayConfig(
            crossbar=small_crossbar_config,
            capacity_bytes=1 << 20,
            operand_bits=8,
            accumulator_bits=64,
        )
    )


@pytest.fixture
def controller() -> PIMController:
    """A full-size (paper Table 5) PIM controller."""
    return PIMController()


@pytest.fixture
def clustered_data(rng) -> np.ndarray:
    """Clustered [0,1] data where bounds actually prune."""
    centers = rng.random((8, 32))
    labels = rng.integers(0, 8, size=400)
    data = centers[labels] + 0.05 * rng.standard_normal((400, 32))
    return np.clip(data, 0.0, 1.0)


@pytest.fixture
def query_vector(clustered_data, rng) -> np.ndarray:
    """A query near the data manifold."""
    q = clustered_data[7] + 0.02 * rng.standard_normal(32)
    return np.clip(q, 0.0, 1.0)
