"""Unit tests for the single-crossbar functional model."""

import numpy as np
import pytest

from repro.errors import OperandError, ProgrammingError
from repro.hardware.config import CrossbarConfig
from repro.hardware.crossbar import Crossbar
from repro.hardware.endurance import EnduranceTracker


@pytest.fixture
def crossbar(small_crossbar_config) -> Crossbar:
    return Crossbar(small_crossbar_config)


class TestProgramming:
    def test_unprogrammed_crossbar_rejects_queries(self, crossbar):
        with pytest.raises(ProgrammingError):
            crossbar.dot_product(np.zeros(8, dtype=np.int64))

    def test_program_and_reconstruct(self, crossbar, rng):
        matrix = rng.integers(0, 256, size=(2, 8))
        crossbar.program(matrix, operand_bits=8)
        assert np.array_equal(crossbar.stored_matrix(), matrix)

    def test_vectors_capacity(self, crossbar):
        # 8 columns / (8-bit operands over 2-bit cells = 4 slices) = 2
        assert crossbar.vectors_capacity(8) == 2

    def test_rejects_too_many_vectors(self, crossbar, rng):
        matrix = rng.integers(0, 256, size=(3, 8))
        with pytest.raises(OperandError, match="column capacity"):
            crossbar.program(matrix, operand_bits=8)

    def test_rejects_too_many_dims(self, crossbar, rng):
        matrix = rng.integers(0, 256, size=(1, 9))
        with pytest.raises(OperandError, match="rows"):
            crossbar.program(matrix, operand_bits=8)

    def test_reset_clears_state(self, crossbar, rng):
        crossbar.program(rng.integers(0, 4, size=(1, 4)), operand_bits=2)
        crossbar.reset()
        assert not crossbar.is_programmed
        with pytest.raises(ProgrammingError):
            crossbar.stored_matrix()


class TestDotProduct:
    def test_matches_numpy_exactly(self, crossbar, rng):
        matrix = rng.integers(0, 256, size=(2, 8))
        crossbar.program(matrix, operand_bits=8)
        query = rng.integers(0, 256, size=8)
        result = crossbar.dot_product(query)
        assert np.array_equal(result.values, matrix @ query)

    def test_paper_figure1_example(self):
        # Fig. 1: [3,1,0],[1,2,3],[2,0,1] against [3,1,2]
        cfg = CrossbarConfig(rows=3, cols=3, cell_bits=2, dac_bits=2)
        xbar = Crossbar(cfg)
        matrix = np.array([[3, 1, 0], [1, 2, 3], [2, 0, 1]])
        xbar.program(matrix, operand_bits=2)
        result = xbar.dot_product(np.array([3, 1, 2]))
        assert result.values.tolist() == [10, 11, 8]

    def test_partial_row_usage(self, crossbar, rng):
        matrix = rng.integers(0, 4, size=(2, 5))
        crossbar.program(matrix, operand_bits=2)
        query = rng.integers(0, 4, size=5)
        result = crossbar.dot_product(query)
        assert np.array_equal(result.values, matrix @ query)

    def test_cycles_follow_input_slicing(self, crossbar, rng):
        matrix = rng.integers(0, 256, size=(1, 8))
        crossbar.program(matrix, operand_bits=8)
        query = rng.integers(0, 256, size=8)
        # 8-bit inputs on a 2-bit DAC = 4 input waves
        assert crossbar.dot_product(query).cycles == 4

    def test_narrow_input_bits(self, crossbar, rng):
        matrix = rng.integers(0, 256, size=(1, 8))
        crossbar.program(matrix, operand_bits=8)
        query = rng.integers(0, 4, size=8)
        result = crossbar.dot_product(query, input_bits=2)
        assert result.cycles == 1
        assert np.array_equal(result.values, matrix @ query)

    def test_rejects_wrong_query_length(self, crossbar, rng):
        crossbar.program(rng.integers(0, 4, size=(1, 8)), operand_bits=2)
        with pytest.raises(OperandError):
            crossbar.dot_product(np.zeros(5, dtype=np.int64))

    def test_adc_conversions_counted(self, crossbar, rng):
        crossbar.program(rng.integers(0, 256, size=(2, 8)), operand_bits=8)
        result = crossbar.dot_product(rng.integers(0, 256, size=8))
        # 4 input waves x (2 vectors x 4 operand slices) columns
        assert result.adc_conversions == 4 * 8


class TestEnduranceIntegration:
    def test_programs_count_against_endurance(self, small_crossbar_config, rng):
        tracker = EnduranceTracker(endurance=2)
        xbar = Crossbar(
            small_crossbar_config, crossbar_id=7, endurance_tracker=tracker
        )
        xbar.program(rng.integers(0, 4, size=(1, 4)), operand_bits=2)
        xbar.reset()
        assert tracker.write_count(7) == 2

    def test_exhaustion_raises(self, small_crossbar_config, rng):
        from repro.errors import EnduranceExceededError

        tracker = EnduranceTracker(endurance=1)
        xbar = Crossbar(
            small_crossbar_config, crossbar_id=1, endurance_tracker=tracker
        )
        xbar.program(rng.integers(0, 4, size=(1, 4)), operand_bits=2)
        with pytest.raises(EnduranceExceededError):
            xbar.reset()
