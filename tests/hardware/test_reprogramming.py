"""Unit tests for the chunked re-programming engine (future work #1)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, OperandError
from repro.hardware.config import (
    CrossbarConfig,
    HardwareConfig,
    PIMArrayConfig,
)
from repro.hardware.reprogramming import ChunkedDotProductEngine


def _tiny_platform(n_crossbars: int = 8) -> HardwareConfig:
    """A small array so modest datasets need several chunks."""
    xbar = CrossbarConfig(rows=16, cols=16, cell_bits=2)
    return HardwareConfig(
        pim=PIMArrayConfig(
            crossbar=xbar,
            capacity_bytes=n_crossbars * (xbar.capacity_bits // 8),
            operand_bits=8,
        )
    )


@pytest.fixture
def engine() -> ChunkedDotProductEngine:
    return ChunkedDotProductEngine(_tiny_platform())


class TestLoading:
    def test_partitions_oversized_dataset(self, engine, rng):
        data = rng.integers(0, 256, size=(100, 16))
        assert engine.load(data) > 1

    def test_single_chunk_when_it_fits(self, rng):
        engine = ChunkedDotProductEngine()
        data = rng.integers(0, 2**20, size=(100, 16))
        assert engine.load(data) == 1

    def test_rejects_unknown_policy(self):
        with pytest.raises(ConfigurationError):
            ChunkedDotProductEngine(policy="lru")

    def test_query_before_load(self, engine):
        with pytest.raises(OperandError):
            engine.dot_products_all(np.zeros(4, dtype=np.int64))


class TestCorrectness:
    def test_results_match_numpy_across_chunks(self, engine, rng):
        data = rng.integers(0, 256, size=(100, 16))
        engine.load(data)
        query = rng.integers(0, 256, size=16)
        assert np.array_equal(engine.dot_products_all(query), data @ query)

    def test_pinned_policy_also_exact(self, rng):
        engine = ChunkedDotProductEngine(_tiny_platform(), policy="pinned")
        data = rng.integers(0, 256, size=(90, 16))
        engine.load(data)
        for _ in range(3):
            query = rng.integers(0, 256, size=16)
            assert np.array_equal(
                engine.dot_products_all(query), data @ query
            )


class TestCostAccounting:
    def test_round_robin_reprograms_every_chunk(self, engine, rng):
        data = rng.integers(0, 256, size=(100, 16))
        n_chunks = engine.load(data)
        query = rng.integers(0, 256, size=16)
        engine.dot_products_all(query)
        assert engine.stats.reprogrammings == n_chunks
        engine.dot_products_all(query)
        # the last chunk stays resident, so the second query swaps
        # all chunks again except it starts from chunk 0
        assert engine.stats.reprogrammings == 2 * n_chunks

    def test_pinned_saves_one_swap_per_query(self, rng):
        data = rng.integers(0, 256, size=(100, 16))
        rr = ChunkedDotProductEngine(_tiny_platform(), policy="round_robin")
        pinned = ChunkedDotProductEngine(_tiny_platform(), policy="pinned")
        n_chunks = rr.load(data)
        pinned.load(data)
        query = rng.integers(0, 256, size=16)
        for _ in range(4):
            rr.dot_products_all(query)
            pinned.dot_products_all(query)
        assert pinned.stats.reprogrammings < rr.stats.reprogrammings

    def test_resident_dataset_never_reprograms_after_first(self, rng):
        engine = ChunkedDotProductEngine()
        data = rng.integers(0, 2**20, size=(50, 16))
        engine.load(data)
        query = rng.integers(0, 2**20, size=16)
        for _ in range(5):
            engine.dot_products_all(query)
        assert engine.stats.reprogrammings == 1
        assert engine.projected_lifetime_queries() > 1e9

    def test_lifetime_shrinks_with_chunking(self, engine, rng):
        data = rng.integers(0, 256, size=(100, 16))
        engine.load(data)
        query = rng.integers(0, 256, size=16)
        engine.dot_products_all(query)
        lifetime = engine.projected_lifetime_queries()
        endurance = engine.pim.config.crossbar.endurance
        assert lifetime == pytest.approx(
            endurance / engine.writes_per_query()
        )
        assert lifetime < endurance  # more than one write per query

    def test_programming_time_charged(self, engine, rng):
        data = rng.integers(0, 256, size=(100, 16))
        engine.load(data)
        engine.dot_products_all(rng.integers(0, 256, size=16))
        assert engine.stats.programming_time_ns > 0
        assert engine.stats.wave_time_ns > 0
        assert engine.amortized_query_time_ns() == pytest.approx(
            engine.stats.total_time_ns
        )
