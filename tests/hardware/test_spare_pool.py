"""Unit tests for the spare-crossbar pool and wear accounting.

The repair layer's hardware substrate: ``PIMArray`` withholds a spare
pool from data placement, remaps a flagged crossbar onto the least-worn
spare (charging real reprogramming latency and one endurance write),
retires the old id forever, and reports wear through the shared
``wear_report`` helper. Values must be unchanged by a remap — only the
physical placement moves.
"""

import numpy as np
import pytest

from repro.errors import (
    CapacityError,
    ConfigurationError,
    EnduranceExceededError,
    ProgrammingError,
)
from repro.hardware.endurance import EnduranceTracker
from repro.hardware.mapper import reserve_spares
from repro.hardware.pim_array import PIMArray
from repro.hardware.reprogramming import crossbar_reprogram_ns


@pytest.fixture
def array(rng):
    """A default-platform array with a 4-crossbar spare pool."""
    a = PIMArray(spare_crossbars=4)
    a.program_matrix("data", rng.integers(0, 256, size=(40, 32)))
    return a


class TestReserveSpares:
    def test_returns_the_usable_pool(self, small_pim_platform):
        config = small_pim_platform.pim
        assert reserve_spares(config, 0) == config.num_crossbars
        assert reserve_spares(config, 3) == config.num_crossbars - 3

    def test_negative_reservation_rejected(self, small_pim_platform):
        with pytest.raises(ConfigurationError):
            reserve_spares(small_pim_platform.pim, -1)

    def test_reservation_must_leave_data_room(self, small_pim_platform):
        config = small_pim_platform.pim
        with pytest.raises(CapacityError):
            reserve_spares(config, config.num_crossbars)

    def test_array_capacity_shrinks_by_the_reservation(self):
        plain = PIMArray()
        spared = PIMArray(spare_crossbars=4)
        assert spared.data_capacity == plain.data_capacity - 4
        assert spared.spares_remaining == 4


class TestSparePool:
    def test_spares_take_the_first_physical_ids(self, array):
        # spare ids 0..3 are withheld; data placement starts above them
        assert all(xid >= 4 for xid in array.crossbar_ids_of("data"))

    def test_remap_moves_one_id_onto_a_spare(self, array):
        old = array.crossbar_ids_of("data")[0]
        spare, ns = array.remap_crossbar(old)
        assert spare < 4  # came from the pool
        assert ns > 0
        assert array.spares_remaining == 3
        assert array.remap_table == {old: spare}
        ids = array.crossbar_ids_of("data")
        assert old not in ids
        assert spare in ids

    def test_remap_preserves_query_values(self, array, rng):
        query = rng.integers(0, 256, size=32)
        before = array.query("data", query).values
        old = array.crossbar_ids_of("data")[0]
        array.remap_crossbar(old)
        after = array.query("data", query).values
        assert np.array_equal(before, after)

    def test_remap_picks_the_least_worn_spare(self, array):
        # pre-wear spares 0 and 1: the tie-broken least-worn is spare 2
        array.endurance.record_write(0)
        array.endurance.record_write(1)
        spare, _ = array.remap_crossbar(array.crossbar_ids_of("data")[0])
        assert spare == 2

    def test_wear_tie_breaks_on_the_lowest_id(self, array):
        spare, _ = array.remap_crossbar(array.crossbar_ids_of("data")[0])
        assert spare == 0  # all spares untouched -> lowest id wins

    def test_remap_charges_the_spare_one_write(self, array):
        spare, _ = array.remap_crossbar(array.crossbar_ids_of("data")[0])
        assert array.endurance.write_count(spare) == 1

    def test_retired_ids_never_come_back(self, array, rng):
        old = array.crossbar_ids_of("data")[0]
        array.remap_crossbar(old)
        array.reset_matrix("data")
        layout = array.program_matrix(
            "data2", rng.integers(0, 256, size=(40, 32))
        )
        assert layout.n_crossbars >= 1
        assert old not in array.crossbar_ids_of("data2")

    def test_pool_exhaustion_raises_capacity_error(self, rng):
        array = PIMArray(spare_crossbars=1)
        array.program_matrix("m", rng.integers(0, 256, size=(40, 32)))
        ids = array.crossbar_ids_of("m")
        array.remap_crossbar(ids[0])
        with pytest.raises(CapacityError):
            array.remap_crossbar(ids[1])

    def test_unowned_crossbar_rejected(self, array):
        with pytest.raises(ProgrammingError, match="backs no programmed"):
            array.remap_crossbar(999_999)

    def test_remap_latency_matches_the_reprogramming_model(self, array):
        layout = array.layouts()["data"]
        _, ns = array.remap_crossbar(array.crossbar_ids_of("data")[0])
        assert ns == pytest.approx(crossbar_reprogram_ns(layout, array.config))

    def test_remap_accumulates_stats(self, array):
        before = array.stats.programming_time_ns
        _, ns = array.remap_crossbar(array.crossbar_ids_of("data")[0])
        assert array.stats.remaps == 1
        assert array.stats.programming_time_ns == pytest.approx(before + ns)

    def test_remap_crossbars_batches_and_sums(self, array):
        ids = array.crossbar_ids_of("data")[:2]
        spares, total = array.remap_crossbars(ids)
        assert len(spares) == 2
        assert len(set(spares)) == 2  # distinct spares
        assert total > 0
        assert array.spares_remaining == 2


class TestEnduranceTerminalWrite:
    """The terminal write is recorded *before* the exception is raised."""

    def test_terminal_write_is_not_lost(self):
        tracker = EnduranceTracker(endurance=1)
        tracker.record_write(7)
        with pytest.raises(EnduranceExceededError):
            tracker.record_write(7)
        # the write physically happened: the count must show it
        assert tracker.write_count(7) == 2
        assert tracker.wear_fraction(7) == 2.0

    def test_repeated_calls_keep_advancing_the_count(self):
        tracker = EnduranceTracker(endurance=1)
        tracker.record_write(3)
        for expected in (2, 3, 4):
            with pytest.raises(EnduranceExceededError) as excinfo:
                tracker.record_write(3)
            assert tracker.write_count(3) == expected
            assert excinfo.value.context["writes"] == expected

    def test_exception_carries_structured_context(self):
        tracker = EnduranceTracker(endurance=2)
        tracker.record_write(5, count=2)
        with pytest.raises(EnduranceExceededError) as excinfo:
            tracker.record_write(5)
        assert excinfo.value.unit == 5
        assert excinfo.value.context["endurance"] == 2


class TestWearReport:
    def test_report_shape_and_aggregates(self):
        tracker = EnduranceTracker(endurance=10)
        tracker.record_write(0, count=3)
        tracker.record_write(1, count=5)
        report = tracker.wear_report()
        assert report["endurance"] == 10
        assert report["units_tracked"] == 2
        assert report["total_writes"] == 8
        assert report["max_writes"] == 5
        assert report["max_wear_fraction"] == pytest.approx(0.5)

    def test_hottest_is_sorted_and_tie_broken_by_id(self):
        tracker = EnduranceTracker(endurance=10)
        tracker.record_write(4, count=2)
        tracker.record_write(1, count=2)
        tracker.record_write(9, count=7)
        hottest = tracker.wear_report()["hottest"]
        assert [entry["unit"] for entry in hottest] == [9, 1, 4]
        assert hottest[0]["wear_fraction"] == pytest.approx(0.7)

    def test_top_limits_the_listing(self):
        tracker = EnduranceTracker(endurance=10)
        for unit in range(5):
            tracker.record_write(unit)
        report = tracker.wear_report(top=2)
        assert len(report["hottest"]) == 2
        assert report["units_tracked"] == 5  # aggregates stay global

    def test_zero_endurance_reports_zero_fractions(self):
        tracker = EnduranceTracker(endurance=0)
        assert tracker.wear_report()["max_wear_fraction"] == 0.0
