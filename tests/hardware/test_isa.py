"""Unit tests for the controller instruction trace."""

import numpy as np
import pytest

from repro.errors import OperandError
from repro.hardware.isa import (
    Instruction,
    InstructionTrace,
    TracingPIMController,
    replay,
)
from repro.hardware.controller import PIMController
from repro.mining.knn import StandardPIMKNN


class TestInstruction:
    def test_rejects_unknown_opcode(self):
        with pytest.raises(OperandError):
            Instruction("JMP", "x")


class TestTraceRecording:
    @pytest.fixture
    def traced(self, rng):
        controller = TracingPIMController()
        matrix = rng.integers(0, 1000, size=(20, 8))
        controller.program("d", matrix, side_data_bytes=160)
        controller.dot_products("d", rng.integers(0, 1000, size=8))
        controller.dot_products("d", rng.integers(0, 1000, size=8))
        return controller

    def test_opcode_counts(self, traced):
        assert traced.trace.count("PROGRAM") == 1
        assert traced.trace.count("STORE") == 1
        assert traced.trace.count("COMPUTE") == 2
        assert traced.trace.count("READBUF") == 2

    def test_payload_accounting(self, traced):
        # 20x8 values at 32-bit operands
        assert traced.trace.payload_bytes("PROGRAM") == 20 * 8 * 4
        assert traced.trace.payload_bytes("STORE") == 160
        # two waves of 20 64-bit results each
        assert traced.trace.payload_bytes("READBUF") == 2 * 20 * 8

    def test_offline_online_split(self, traced):
        online_start, total = traced.trace.offline_online_split()
        assert online_start == 2  # PROGRAM + STORE before any COMPUTE
        assert total == len(traced.trace)

    def test_well_formedness(self, traced):
        assert traced.trace.is_well_formed()

    def test_compute_on_dead_matrix_is_malformed(self):
        trace = InstructionTrace()
        trace.append(Instruction("COMPUTE", "ghost"))
        assert not trace.is_well_formed()

    def test_reset_then_compute_is_malformed(self):
        trace = InstructionTrace()
        trace.append(Instruction("PROGRAM", "d"))
        trace.append(Instruction("RESET", "d"))
        trace.append(Instruction("COMPUTE", "d"))
        assert not trace.is_well_formed()

    def test_query_many_counted_once(self, rng):
        controller = TracingPIMController()
        controller.program("d", rng.integers(0, 100, size=(5, 4)))
        controller.dot_products_many(
            "d", rng.integers(0, 100, size=(3, 4))
        )
        assert controller.trace.count("COMPUTE") == 1
        assert "3 wave(s)" in controller.trace.instructions[-2].detail


class TestAlgorithmTraces:
    def test_knn_issues_no_program_online(self, clustered_data, query_vector):
        controller = TracingPIMController()
        algo = StandardPIMKNN(controller=controller).fit(clustered_data)
        offline_len = len(controller.trace)
        algo.query(query_vector, 5)
        online = controller.trace.instructions[offline_len:]
        assert all(i.opcode in ("COMPUTE", "READBUF") for i in online)
        assert controller.trace.is_well_formed()


class TestReplay:
    def test_replay_reproduces_results(self, rng):
        controller = TracingPIMController()
        matrix = rng.integers(0, 1000, size=(15, 6))
        controller.program("d", matrix)
        queries = [rng.integers(0, 1000, size=6) for _ in range(3)]
        originals = [
            controller.dot_products("d", q).values for q in queries
        ]
        replayed = replay(
            controller.trace,
            matrices={"d": matrix},
            queries={"d": queries},
            controller=PIMController(),
        )
        for a, b in zip(originals, replayed):
            assert np.array_equal(a, b)
