"""Unit tests for the controller facade (offline/online orchestration)."""

import numpy as np
import pytest

from repro.hardware.config import HardwareConfig, PIMArrayConfig
from repro.hardware.controller import PIMController


@pytest.fixture
def small_controller(small_pim_platform) -> PIMController:
    return PIMController(small_pim_platform)


class TestProgramReceipts:
    def test_receipt_fields(self, small_controller, rng):
        matrix = rng.integers(0, 256, size=(6, 12))
        receipt = small_controller.program("d", matrix, side_data_bytes=48)
        assert receipt.name == "d"
        assert receipt.crossbars > 0
        assert receipt.crossbar_write_ns > 0
        assert receipt.memory_write_ns > 0
        assert receipt.total_ns == pytest.approx(
            receipt.crossbar_write_ns + receipt.memory_write_ns
        )

    def test_receipt_lookup(self, small_controller, rng):
        small_controller.program("d", rng.integers(0, 256, size=(2, 4)))
        assert small_controller.receipt("d").name == "d"

    def test_total_preprocessing_sums(self, small_controller, rng):
        r1 = small_controller.program("a", rng.integers(0, 256, size=(2, 4)))
        r2 = small_controller.program("b", rng.integers(0, 256, size=(2, 4)))
        assert small_controller.total_preprocessing_ns() == pytest.approx(
            r1.total_ns + r2.total_ns
        )

    def test_side_data_increases_write_time(self, small_pim_platform, rng):
        matrix = rng.integers(0, 256, size=(4, 8))
        lean = PIMController(small_pim_platform).program("d", matrix)
        heavy = PIMController(small_pim_platform).program(
            "d", matrix, side_data_bytes=10**6
        )
        assert heavy.memory_write_ns > lean.memory_write_ns


class TestDotProducts:
    def test_values_exact(self, small_controller, rng):
        matrix = rng.integers(0, 256, size=(6, 12))
        small_controller.program("d", matrix)
        q = rng.integers(0, 256, size=12)
        result = small_controller.dot_products("d", q)
        assert np.array_equal(result.values, matrix @ q)
        assert result.timing.total_ns > 0

    def test_default_platform_is_paper_table5(self):
        controller = PIMController()
        assert controller.pim.config.num_crossbars == 131072
        assert controller.memory.device == "reram"
