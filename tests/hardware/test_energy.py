"""Unit tests for the energy model."""

import pytest

from repro.cost.counters import PerfCounters
from repro.hardware.config import PIMArrayConfig
from repro.hardware.energy import EnergyModel, movement_to_compute_ratio
from repro.hardware.mapper import plan_layout


@pytest.fixture
def model() -> EnergyModel:
    return EnergyModel()


@pytest.fixture
def config() -> PIMArrayConfig:
    return PIMArrayConfig()


class TestCPUEnergy:
    def test_components_add_up(self, model):
        counters = PerfCounters()
        counters.record("ED", flops=1e6, bytes_from_memory=1e6, branches=1e3)
        expected = (
            1e6 * model.cpu_flop_j
            + 1e6 * model.dram_byte_j
            + 1e3 * model.branch_j
        )
        assert model.cpu_energy_j(counters) == pytest.approx(expected)

    def test_reram_reads_cheaper(self, model):
        counters = PerfCounters()
        counters.record("ED", bytes_from_memory=1e6)
        assert model.cpu_energy_j(
            counters, reram_memory=True
        ) < model.cpu_energy_j(counters, reram_memory=False)

    def test_movement_dominates_compute(self, model):
        # the paper's motivation: moving an operand costs far more than
        # computing with it
        assert movement_to_compute_ratio(model) > 1.0


class TestPIMEnergy:
    def test_wave_energy_positive_and_scales_with_vectors(
        self, model, config
    ):
        small = plan_layout(100, 128, config)
        large = plan_layout(10000, 128, config)
        assert model.wave_energy_j(small, config) > 0
        assert model.wave_energy_j(large, config) > model.wave_energy_j(
            small, config
        )

    def test_narrow_inputs_cost_less(self, model, config):
        layout = plan_layout(1000, 128, config)
        assert model.wave_energy_j(
            layout, config, input_bits=1
        ) < model.wave_energy_j(layout, config, input_bits=32)

    def test_programming_energy_is_table1_rate(self, model, config):
        layout = plan_layout(100, 128, config)
        assert model.programming_energy_j(layout) == pytest.approx(
            layout.storage_bits * model.reram_write_bit_j
        )

    def test_pim_energy_linear_in_waves(self, model, config):
        layout = plan_layout(1000, 128, config)
        one = model.pim_energy_j(layout, config, 1)
        ten = model.pim_energy_j(layout, config, 10)
        assert ten == pytest.approx(10 * one)


class TestEndToEndComparison:
    def test_pim_bound_saves_energy_vs_full_scan(self, model, config):
        # Standard kNN: move N*d*4 bytes + 3*N*d flops.
        # Standard-PIM: one wave + N * (12 bytes + 7 flops).
        n, d = 100000, 420
        scan = PerfCounters()
        scan.record("ED", flops=3.0 * d * n, bytes_from_memory=4.0 * d * n)
        scan_j = model.cpu_energy_j(scan)

        layout = plan_layout(n, d, config)
        pim_side = model.pim_energy_j(layout, config, 1)
        host = PerfCounters()
        host.record("G", flops=7.0 * n, bytes_from_memory=12.0 * n)
        pim_j = pim_side + model.cpu_energy_j(host, reram_memory=True)
        assert pim_j < scan_j
