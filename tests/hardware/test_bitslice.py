"""Unit tests for operand bit-slicing (Fig. 2 semantics)."""

import numpy as np
import pytest

from repro.errors import OperandError
from repro.hardware import bitslice


class TestCheckNonNegativeIntegers:
    def test_accepts_valid_operands(self):
        bitslice.check_non_negative_integers(np.array([0, 5, 63]), 6)

    def test_rejects_floats(self):
        with pytest.raises(OperandError, match="integer dtype"):
            bitslice.check_non_negative_integers(np.array([1.5]), 6)

    def test_rejects_negative(self):
        with pytest.raises(OperandError, match="non-negative"):
            bitslice.check_non_negative_integers(np.array([-1]), 6)

    def test_rejects_too_wide(self):
        with pytest.raises(OperandError, match="exceeds 6-bit"):
            bitslice.check_non_negative_integers(np.array([64]), 6)

    def test_empty_array_passes(self):
        bitslice.check_non_negative_integers(np.array([], dtype=np.int64), 6)


class TestNumSlices:
    def test_exact_division(self):
        assert bitslice.num_slices(6, 2) == 3

    def test_rounds_up(self):
        assert bitslice.num_slices(7, 2) == 4

    def test_one_bit_operand(self):
        assert bitslice.num_slices(1, 2) == 1

    def test_rejects_zero_width(self):
        with pytest.raises(OperandError):
            bitslice.num_slices(0, 2)


class TestSliceReconstructRoundTrip:
    def test_paper_example(self):
        # the paper's Fig. 2: 25 = 0b011001 on 2-bit cells -> [01, 10, 01]
        slices = bitslice.slice_operands(np.array([25]), 6, 2)
        assert slices.tolist() == [[1, 2, 1]]

    def test_round_trip_matrix(self):
        rng = np.random.default_rng(0)
        values = rng.integers(0, 2**12, size=(5, 7))
        slices = bitslice.slice_operands(values, 12, 3)
        back = bitslice.reconstruct(slices, 3)
        assert np.array_equal(back, values)

    def test_slice_shape(self):
        slices = bitslice.slice_operands(np.zeros((4, 3), dtype=np.int64), 8, 2)
        assert slices.shape == (4, 3, 4)


class TestShiftAddPartials:
    def test_combines_dot_product_exactly(self):
        rng = np.random.default_rng(1)
        p = rng.integers(0, 64, size=10)
        q = rng.integers(0, 64, size=10)
        p_slices = bitslice.slice_operands(p, 6, 2)
        q_slices = bitslice.slice_operands(q, 6, 2)
        partials = np.array(
            [
                [
                    int(p_slices[:, j].astype(np.int64) @ q_slices[:, k])
                    for k in range(3)
                ]
                for j in range(3)
            ]
        )
        combined = bitslice.shift_add_partials(partials, 2, 2)
        assert int(combined) == int(p @ q)

    def test_requires_two_axes(self):
        with pytest.raises(OperandError):
            bitslice.shift_add_partials(np.array([1, 2, 3]), 2, 2)


class TestTruncateResult:
    def test_wide_accumulator_is_identity(self):
        values = np.array([2**40, 17])
        assert np.array_equal(
            bitslice.truncate_result(values, 64), values
        )

    def test_truncates_to_32_bits(self):
        values = np.array([2**32 + 5])
        assert bitslice.truncate_result(values, 32).tolist() == [5]
