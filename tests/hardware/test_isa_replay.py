"""Property test: replaying a recorded instruction trace is exact.

A trace captured by :class:`TracingPIMController` re-executed with
:func:`repro.hardware.isa.replay` on a fresh controller must reproduce
bit-identical wave results and the same wave count and simulated wave
time — the instruction stream fully determines the device behaviour.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware.controller import PIMController
from repro.hardware.isa import TracingPIMController, replay


@st.composite
def traced_workloads(draw):
    """A random programmed matrix plus a random query stream."""
    n = draw(st.integers(min_value=3, max_value=24))
    dims = draw(st.sampled_from([4, 8, 16]))
    n_queries = draw(st.integers(min_value=1, max_value=6))
    seed = draw(st.integers(min_value=0, max_value=2**31))
    rng = np.random.default_rng(seed)
    matrix = rng.integers(0, 1000, size=(n, dims))
    queries = [
        rng.integers(0, 1000, size=dims) for _ in range(n_queries)
    ]
    return matrix, queries


@given(traced_workloads())
@settings(max_examples=25, deadline=None)
def test_replay_reproduces_results_and_wave_counts(workload):
    matrix, queries = workload
    traced = TracingPIMController()
    traced.program("d", matrix)
    original = [traced.dot_products("d", q).values for q in queries]
    assert traced.trace.is_well_formed()

    fresh = PIMController()
    replayed = replay(
        traced.trace, {"d": matrix}, {"d": queries}, fresh
    )

    assert len(replayed) == len(original)
    for expected, got in zip(original, replayed):
        np.testing.assert_array_equal(expected, got)
    assert fresh.pim.stats.waves == traced.pim.stats.waves
    assert fresh.pim.stats.pim_time_ns == traced.pim.stats.pim_time_ns


@st.composite
def two_matrix_workloads(draw):
    """Two same-width matrices with their own query streams."""
    dims = draw(st.sampled_from([4, 8, 16]))
    seed = draw(st.integers(min_value=0, max_value=2**31))
    rng = np.random.default_rng(seed)
    matrix_a = rng.integers(
        0, 1000, size=(draw(st.integers(3, 16)), dims)
    )
    matrix_b = rng.integers(
        0, 1000, size=(draw(st.integers(3, 16)), dims)
    )
    queries_a = [
        rng.integers(0, 1000, size=dims)
        for _ in range(draw(st.integers(1, 3)))
    ]
    queries_b = [
        rng.integers(0, 1000, size=dims)
        for _ in range(draw(st.integers(1, 3)))
    ]
    return matrix_a, queries_a, matrix_b, queries_b


@given(two_matrix_workloads())
@settings(max_examples=10, deadline=None)
def test_replay_handles_reprogramming(workload):
    """A RESET + re-PROGRAM sequence replays faithfully too."""
    matrix_a, queries_a, matrix_b, queries_b = workload
    traced = TracingPIMController()
    traced.program("a", matrix_a)
    original = [traced.dot_products("a", q).values for q in queries_a]
    traced.reset_matrix("a")
    traced.program("b", matrix_b)
    original += [traced.dot_products("b", q).values for q in queries_b]

    fresh = PIMController()
    replayed = replay(
        traced.trace,
        {"a": matrix_a, "b": matrix_b},
        {"a": queries_a, "b": queries_b},
        fresh,
    )
    assert len(replayed) == len(original)
    for expected, got in zip(original, replayed):
        np.testing.assert_array_equal(expected, got)
    assert fresh.pim.stats.waves == traced.pim.stats.waves
