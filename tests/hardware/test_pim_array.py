"""Unit tests for the array-level PIM interface."""

import numpy as np
import pytest

from repro.errors import CapacityError, OperandError, ProgrammingError
from repro.hardware.config import HardwareConfig, PIMArrayConfig
from repro.hardware.pim_array import PIMArray


@pytest.fixture
def array(small_pim_platform) -> PIMArray:
    return PIMArray(small_pim_platform)


class TestProgramming:
    def test_program_returns_layout(self, array, rng):
        matrix = rng.integers(0, 256, size=(10, 20))
        layout = array.program_matrix("data", matrix)
        assert layout.n_vectors == 10
        assert layout.dims == 20
        assert array.stats.crossbars_used == layout.n_crossbars

    def test_duplicate_name_rejected(self, array, rng):
        matrix = rng.integers(0, 256, size=(4, 8))
        array.program_matrix("data", matrix)
        with pytest.raises(ProgrammingError, match="already programmed"):
            array.program_matrix("data", matrix)

    def test_multiple_matrices_share_capacity(self, array, rng):
        array.program_matrix("a", rng.integers(0, 256, size=(4, 8)))
        array.program_matrix("b", rng.integers(0, 256, size=(4, 8)))
        assert len(array.layouts()) == 2

    def test_reset_frees_capacity(self, array, rng):
        layout = array.program_matrix("a", rng.integers(0, 256, size=(4, 8)))
        used = array.stats.crossbars_used
        array.reset_matrix("a")
        assert array.stats.crossbars_used == used - layout.n_crossbars
        with pytest.raises(ProgrammingError):
            array.query("a", np.zeros(8, dtype=np.int64))

    def test_capacity_error_on_overflow(self, small_pim_platform, rng):
        array = PIMArray(small_pim_platform)
        with pytest.raises(CapacityError):
            array.program_matrix(
                "big", rng.integers(0, 256, size=(100000, 64))
            )

    def test_rejects_negative_values(self, array):
        with pytest.raises(OperandError):
            array.program_matrix("bad", np.array([[-1, 2]]))

    def test_rejects_1d_matrix(self, array):
        with pytest.raises(OperandError):
            array.program_matrix("bad", np.arange(5))

    def test_programming_time_accumulates(self, array, rng):
        array.program_matrix("a", rng.integers(0, 256, size=(4, 8)))
        assert array.stats.programming_time_ns > 0


class TestResetAndLayouts:
    def test_reset_unknown_name_raises(self, array):
        with pytest.raises(ProgrammingError, match="no matrix"):
            array.reset_matrix("ghost")

    def test_layouts_mirror_programmed_matrices(self, array, rng):
        la = array.program_matrix("a", rng.integers(0, 256, size=(4, 8)))
        lb = array.program_matrix("b", rng.integers(0, 256, size=(6, 16)))
        layouts = array.layouts()
        assert set(layouts) == {"a", "b"}
        assert layouts["a"] == la
        assert layouts["b"] == lb

    def test_reset_removes_layout_and_stats_entry(self, array, rng):
        array.program_matrix("a", rng.integers(0, 256, size=(4, 8)))
        array.reset_matrix("a")
        assert "a" not in array.layouts()
        assert "a" not in array.stats.matrices
        with pytest.raises(ProgrammingError, match="no matrix"):
            array.reset_matrix("a")  # double reset is rejected

    def test_reprogram_same_name_after_reset(self, array, rng):
        array.program_matrix("a", rng.integers(0, 256, size=(4, 8)))
        array.reset_matrix("a")
        replacement = rng.integers(0, 256, size=(6, 8))
        layout = array.program_matrix("a", replacement)
        assert array.layouts()["a"] == layout
        assert layout.n_vectors == 6
        query = rng.integers(0, 256, size=8)
        assert np.array_equal(
            array.query("a", query).values,
            replacement.astype(np.int64) @ query.astype(np.int64),
        )

    def test_reset_reprogram_cycle_reuses_crossbars(self, array, rng):
        matrix = rng.integers(0, 256, size=(4, 8))
        array.program_matrix("a", matrix)
        used = array.stats.crossbars_used
        for _ in range(3):
            array.reset_matrix("a")
            array.program_matrix("a", matrix)
        assert array.stats.crossbars_used == used


class TestQueries:
    def test_dot_products_exact(self, array, rng):
        matrix = rng.integers(0, 256, size=(10, 20))
        array.program_matrix("data", matrix)
        query = rng.integers(0, 256, size=20)
        result = array.query("data", query)
        assert np.array_equal(result.values, matrix @ query)

    def test_unknown_matrix(self, array):
        with pytest.raises(ProgrammingError, match="no matrix"):
            array.query("missing", np.zeros(3, dtype=np.int64))

    def test_wrong_query_length(self, array, rng):
        array.program_matrix("data", rng.integers(0, 256, size=(4, 8)))
        with pytest.raises(OperandError):
            array.query("data", np.zeros(5, dtype=np.int64))

    def test_wave_stats(self, array, rng):
        matrix = rng.integers(0, 256, size=(4, 8))
        array.program_matrix("data", matrix)
        array.query("data", rng.integers(0, 256, size=8))
        array.query("data", rng.integers(0, 256, size=8))
        assert array.stats.waves == 2
        assert array.stats.results_produced == 8
        assert array.stats.pim_time_ns > 0

    def test_query_many_matches_loop(self, array, rng):
        matrix = rng.integers(0, 256, size=(10, 20))
        array.program_matrix("data", matrix)
        queries = rng.integers(0, 256, size=(5, 20))
        batched = array.query_many("data", queries)
        assert batched.values.shape == (5, 10)
        for i, q in enumerate(queries):
            assert np.array_equal(batched.values[i], matrix @ q)

    def test_query_many_charges_per_wave(self, array, rng):
        matrix = rng.integers(0, 256, size=(10, 20))
        array.program_matrix("data", matrix)
        single = array.query("data", rng.integers(0, 256, size=20))
        time_before = array.stats.pim_time_ns
        waves_before = array.stats.waves
        array.query_many("data", rng.integers(0, 256, size=(5, 20)))
        assert array.stats.waves == waves_before + 5
        assert array.stats.pim_time_ns - time_before == pytest.approx(
            5 * single.timing.total_ns
        )

    def test_accumulator_truncation(self, small_crossbar_config, rng):
        platform = HardwareConfig(
            pim=PIMArrayConfig(
                crossbar=small_crossbar_config,
                capacity_bytes=1 << 20,
                operand_bits=8,
                accumulator_bits=8,
            )
        )
        array = PIMArray(platform)
        matrix = np.full((1, 8), 255, dtype=np.int64)
        array.program_matrix("data", matrix)
        result = array.query("data", np.full(8, 255, dtype=np.int64))
        full = 8 * 255 * 255
        assert result.values[0] == full % 256


class TestCellSimulationEquivalence:
    def test_fast_path_matches_cell_path(self, small_pim_platform, rng):
        matrix = rng.integers(0, 256, size=(7, 19))
        query = rng.integers(0, 256, size=19)
        fast = PIMArray(small_pim_platform, simulate_cells=False)
        cells = PIMArray(small_pim_platform, simulate_cells=True)
        fast.program_matrix("d", matrix)
        cells.program_matrix("d", matrix)
        v_fast = fast.query("d", query).values
        v_cells = cells.query("d", query).values
        assert np.array_equal(v_fast, v_cells)
        assert np.array_equal(v_fast, matrix @ query)

    def test_cell_path_tracks_endurance_per_crossbar(
        self, small_pim_platform, rng
    ):
        array = PIMArray(small_pim_platform, simulate_cells=True)
        array.program_matrix("d", rng.integers(0, 256, size=(4, 16)))
        assert array.endurance.total_writes > 0


class TestPlatformValidation:
    def test_rejects_platform_without_pim(self):
        from repro.hardware.config import baseline_platform

        with pytest.raises(ProgrammingError):
            PIMArray(baseline_platform())


class TestBatchQueries:
    def test_unknown_matrix_rejected(self, array):
        with pytest.raises(ProgrammingError, match="no matrix"):
            array.query_batch("ghost", np.zeros((2, 8), dtype=np.int64))

    def test_wrong_query_length_rejected(self, array, rng):
        array.program_matrix("a", rng.integers(0, 256, size=(4, 8)))
        with pytest.raises(OperandError, match="length 8"):
            array.query_batch("a", np.zeros((2, 5), dtype=np.int64))

    def test_single_vector_promoted_to_batch_of_one(self, array, rng):
        matrix = rng.integers(0, 256, size=(4, 8))
        array.program_matrix("a", matrix)
        query = rng.integers(0, 256, size=8)
        result = array.query_batch("a", query)
        assert result.values.shape == (1, 4)
        assert result.timing.n_queries == 1
        assert np.array_equal(
            result.values[0], matrix.astype(np.int64) @ query
        )

    def test_cell_path_matches_fast_path(self, small_pim_platform, rng):
        fast = PIMArray(small_pim_platform)
        cells = PIMArray(small_pim_platform, simulate_cells=True)
        matrix = rng.integers(0, 256, size=(2, 8))
        queries = rng.integers(0, 256, size=(3, 8))
        fast.program_matrix("a", matrix)
        cells.program_matrix("a", matrix)
        assert np.array_equal(
            fast.query_batch("a", queries).values,
            cells.query_batch("a", queries).values,
        )


class TestStatsMergeAndPerMatrix:
    """Shard-style aggregation of array stats (serving layer contract)."""

    def _queried(self, platform, name, n_queries, rng):
        array = PIMArray(platform)
        array.program_matrix(name, rng.integers(0, 256, size=(4, 8)))
        for _ in range(n_queries):
            array.query(name, rng.integers(0, 256, size=8))
        return array

    def test_scalars_sum_and_matrices_union(self, small_pim_platform, rng):
        from repro.hardware.pim_array import PIMStats

        a = self._queried(small_pim_platform, "a", 2, rng)
        b = self._queried(small_pim_platform, "b", 3, rng)
        merged = PIMStats.merge([a.stats, b.stats])
        assert merged.waves == 5
        assert merged.pim_time_ns == (
            a.stats.pim_time_ns + b.stats.pim_time_ns
        )
        assert set(merged.matrices) == {"a", "b"}
        assert merged.per_matrix["a"].waves == 2
        assert merged.per_matrix["b"].waves == 3

    def test_prefixes_namespace_colliding_names(
        self, small_pim_platform, rng
    ):
        from repro.hardware.pim_array import PIMStats

        parts = [
            self._queried(small_pim_platform, "chunk", 1, rng).stats
            for _ in range(2)
        ]
        with pytest.raises(ProgrammingError, match="double count"):
            PIMStats.merge(parts)
        merged = PIMStats.merge(parts, prefixes=["s0.", "s1."])
        assert set(merged.matrices) == {"s0.chunk", "s1.chunk"}
        with pytest.raises(ProgrammingError, match="prefix"):
            PIMStats.merge(parts, prefixes=["only-one."])

    def test_reset_matrix_clears_stale_batch_state(
        self, small_pim_platform, rng
    ):
        array = self._queried(small_pim_platform, "a", 2, rng)
        assert array.stats.per_matrix["a"].waves == 2
        array.reset_matrix("a")
        assert "a" not in array.stats.per_matrix
        # a successor reusing the name starts its accounting from zero
        array.program_matrix("a", rng.integers(0, 256, size=(4, 8)))
        array.query("a", rng.integers(0, 256, size=8))
        assert array.stats.per_matrix["a"].waves == 1

    def test_matrix_state_created_on_first_use(self, array):
        state = array.stats.matrix_state("lazy")
        assert state.waves == 0
        assert array.stats.matrix_state("lazy") is state
