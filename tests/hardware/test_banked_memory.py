"""Unit tests for the HBM-PIM bank-level structural + timing model.

The timing goldens below are hand-derived from the per-command DRAM
model (tCK / tCCD / tRCD / tRP, MOV/FILL/write-burst cycles) so a
regression in the formulae fails against independent arithmetic, not
against a recorded snapshot of the same code.
"""

import numpy as np
import pytest

from repro.errors import CapacityError, ConfigurationError
from repro.hardware.banked_memory import (
    BankedMatrixStore,
    bank_batch_timing,
    bank_instruction_counts,
    bank_program_ns,
    bank_wave_timing,
    plan_bank_layout,
)
from repro.hardware.config import HBMPIMConfig, hbm_pim_platform


CFG = HBMPIMConfig()
HW = hbm_pim_platform()


class TestLayoutPlanning:
    def test_default_config_geometry(self):
        assert CFG.total_banks == 64
        assert CFG.burst_elems(32) == 8
        assert CFG.burst_elems(1) == 256

    def test_block_distribution_golden(self):
        # 128 vectors x 16 dims at 32-bit: 2 bursts/vector, 2 per bank
        layout = plan_bank_layout(128, 16, CFG)
        assert layout.n_data_banks == 64
        assert layout.vectors_per_bank == 2
        assert layout.bursts_per_vector == 2
        assert layout.grf_segments == 1
        assert layout.rows_touched_per_bank == 1

    def test_fewer_vectors_than_banks(self):
        layout = plan_bank_layout(5, 16, CFG)
        assert layout.n_data_banks == 5
        assert layout.vectors_per_bank == 1

    def test_grf_pressure_segments_long_queries(self):
        # 100 bursts vs an 8-entry GRF -> 13 streaming segments
        layout = plan_bank_layout(64, 800, CFG)
        assert layout.bursts_per_vector == 100
        assert layout.grf_segments == 13

    def test_crossbar_layout_compat_surface(self):
        layout = plan_bank_layout(128, 16, CFG)
        assert layout.vectors_per_crossbar == layout.vectors_per_bank
        assert layout.n_data_crossbars == layout.n_data_banks
        assert layout.n_gather_crossbars == 0
        assert layout.gather_levels == 1
        assert layout.n_crossbars == layout.n_data_banks
        assert layout.storage_bits == 128 * 16 * 32

    def test_capacity_error_past_bank_bytes(self):
        # one bank, so the whole matrix lands in it
        with pytest.raises(CapacityError):
            plan_bank_layout(
                CFG.bank_bytes // 64 + 1, 128, CFG, data_banks=1
            )

    def test_rejects_degenerate_shapes(self):
        with pytest.raises(ConfigurationError):
            plan_bank_layout(0, 16, CFG)
        with pytest.raises(CapacityError):
            plan_bank_layout(4, 16, CFG, data_banks=0)


class TestTimingGoldens:
    """Hand-computed cycle counts for the 128 x 16 golden layout."""

    # activate: 1 row * 1 segment * (tRP 14 + tRCD 14)          = 28
    # broadcast: 2 bursts * 2 MOV cycles                         =  4
    # MAC: 2 vectors * 2 bursts * tCCD 2                         =  8
    # drain: 2 vectors * (FILL 1 + MOV 2)                        =  6
    ACTIVATE = 28
    PER_QUERY = 4 + 8 + 6

    def test_single_wave_cycles(self):
        layout = plan_bank_layout(128, 16, CFG)
        wave = bank_wave_timing(layout, CFG, HW)
        assert wave.pipeline_cycles == self.ACTIVATE
        assert wave.gather_cycles == 4
        assert wave.input_cycles == self.PER_QUERY - 4
        assert wave.total_cycles == self.ACTIVATE + self.PER_QUERY
        assert wave.crossbar_ns == pytest.approx(
            (self.ACTIVATE + self.PER_QUERY) * CFG.tck_ns
        )
        result_bytes = 128 * CFG.accumulator_bits / 8.0
        assert wave.buffer_ns == pytest.approx(
            result_bytes / HW.memory.internal_bus_gbs
        )

    def test_batch_charges_activates_once(self):
        layout = plan_bank_layout(128, 16, CFG)
        batch = bank_batch_timing(layout, CFG, HW, n_queries=4)
        assert batch.setup_cycles == self.ACTIVATE
        assert batch.per_query_cycles == self.PER_QUERY
        assert batch.total_cycles == self.ACTIVATE + 4 * self.PER_QUERY
        single = bank_wave_timing(layout, CFG, HW)
        saved = 4 * single.total_ns - batch.total_ns
        assert saved == pytest.approx(3 * self.ACTIVATE * CFG.tck_ns)

    def test_batch_needs_a_query(self):
        layout = plan_bank_layout(128, 16, CFG)
        with pytest.raises(ConfigurationError):
            bank_batch_timing(layout, CFG, HW, n_queries=0)

    def test_grf_segments_reactivate_rows(self):
        # 800 dims: 100 bursts, 13 segments; rows re-open per segment
        layout = plan_bank_layout(64, 800, CFG)
        rows = layout.rows_touched_per_bank
        wave = bank_wave_timing(layout, CFG, HW)
        assert wave.pipeline_cycles == rows * 13 * (
            CFG.trp_cycles + CFG.trcd_cycles
        )

    def test_program_time_golden(self):
        layout = plan_bank_layout(128, 16, CFG)
        # 1 row activate (28) + 2 vectors * 2 bursts * 4 write cycles
        assert bank_program_ns(layout, CFG) == pytest.approx(
            (28 + 16) * CFG.tck_ns
        )


class TestInstructionCounts:
    def test_golden_mix(self):
        layout = plan_bank_layout(128, 16, CFG)
        counts = bank_instruction_counts(layout, n_queries=3)
        assert counts == {
            "mac_commands": 3 * 2 * 2,
            "mov_commands": 3 * (2 + 2),
            "fill_commands": 3 * 2,
            "row_activations": 1,
        }

    def test_counts_scale_linearly_except_activations(self):
        layout = plan_bank_layout(200, 48, CFG)
        one = bank_instruction_counts(layout, 1)
        five = bank_instruction_counts(layout, 5)
        for key in ("mac_commands", "mov_commands", "fill_commands"):
            assert five[key] == 5 * one[key]
        assert five["row_activations"] == one["row_activations"]


class TestBankedMatrixStore:
    """The instruction-stream oracle matches one exact int64 matmul."""

    @pytest.mark.parametrize(
        "n,dims", [(3, 4), (64, 16), (130, 23), (64, 100)]
    )
    def test_reference_equals_matmul(self, n, dims):
        rng = np.random.default_rng(n * 31 + dims)
        matrix = rng.integers(0, 255, size=(n, dims)).astype(np.int64)
        queries = rng.integers(0, 255, size=(5, dims)).astype(np.int64)
        layout = plan_bank_layout(n, dims, CFG)
        store = BankedMatrixStore(matrix, layout, CFG)
        got = store.dot_reference(queries)
        want = queries @ matrix.T
        assert got.dtype == np.int64
        assert np.array_equal(got, want)

    def test_reference_wraps_in_int64_like_hardware(self):
        matrix = np.full((2, 3), 2**31 - 1, dtype=np.int64)
        queries = np.full((1, 3), 2**31 - 1, dtype=np.int64)
        layout = plan_bank_layout(2, 3, CFG)
        store = BankedMatrixStore(matrix, layout, CFG)
        with np.errstate(over="ignore"):
            want = queries @ matrix.T  # wraps mod 2**64
        assert np.array_equal(store.dot_reference(queries), want)
