"""Failure-domain topology: the shard -> board -> channel -> power tree."""

import pytest

from repro.errors import ConfigurationError
from repro.hardware import DOMAIN_LEVELS, FailureDomainTopology


def topo8():
    # 8 shards, boards of 2, channels of 2 boards, 1 channel per rail:
    # power domains are {0..3} and {4..7}
    return FailureDomainTopology(
        n_shards=8,
        shards_per_board=2,
        boards_per_channel=2,
        channels_per_power_domain=1,
    )


class TestMapping:
    def test_contiguous_packing(self):
        t = topo8()
        assert [t.board_of(s) for s in range(8)] == [
            0, 0, 1, 1, 2, 2, 3, 3,
        ]
        assert [t.channel_of(s) for s in range(8)] == [
            0, 0, 0, 0, 1, 1, 1, 1,
        ]
        assert [t.power_domain_of(s) for s in range(8)] == [
            0, 0, 0, 0, 1, 1, 1, 1,
        ]

    def test_domain_counts(self):
        t = topo8()
        assert t.n_boards == 4
        assert t.n_channels == 2
        assert t.n_power_domains == 2
        assert [t.n_domains(level) for level in DOMAIN_LEVELS] == [4, 2, 2]

    def test_partial_trailing_groups(self):
        t = FailureDomainTopology(n_shards=6, shards_per_board=4)
        assert t.n_boards == 2
        assert t.shards_in("board", 0) == (0, 1, 2, 3)
        assert t.shards_in("board", 1) == (4, 5)

    def test_shards_in_is_the_blast_radius(self):
        t = topo8()
        assert t.shards_in("power", 0) == (0, 1, 2, 3)
        assert t.shards_in("power", 1) == (4, 5, 6, 7)
        assert t.shards_in("board", 2) == (4, 5)

    def test_domains_of_names_every_level(self):
        t = topo8()
        assert t.domains_of(5) == {"board": 2, "channel": 1, "power": 1}


class TestSpreadArithmetic:
    def test_shared_level_finest_wins(self):
        t = topo8()
        assert t.shared_level(0, 1) == "board"
        assert t.shared_level(0, 2) == "channel"
        assert t.shared_level(0, 7) is None
        # one channel per power domain: sharing a channel and sharing
        # power coincide, and the finer level is reported
        assert t.shared_level(0, 3) == "channel"

    def test_shared_level_power_only(self):
        t = FailureDomainTopology(
            n_shards=8,
            shards_per_board=2,
            boards_per_channel=1,
            channels_per_power_domain=2,
        )
        assert t.shared_level(0, 2) == "power"

    def test_shared_depth_ordering(self):
        t = topo8()
        assert t.shared_depth(0, 1) == 3  # same board
        assert t.shared_depth(0, 2) == 2  # same channel
        assert t.shared_depth(0, 4) == 0  # disjoint
        assert t.shared_depth(4, 5) == 3

    def test_shared_level_rejects_identical_shards(self):
        with pytest.raises(ConfigurationError):
            topo8().shared_level(3, 3)


class TestValidation:
    def test_rejects_empty_fleet(self):
        with pytest.raises(ConfigurationError):
            FailureDomainTopology(n_shards=0)

    def test_rejects_nonpositive_groups(self):
        with pytest.raises(ConfigurationError):
            FailureDomainTopology(n_shards=4, shards_per_board=0)

    def test_rejects_out_of_range_shard(self):
        with pytest.raises(ConfigurationError):
            topo8().board_of(8)

    def test_rejects_unknown_level(self):
        with pytest.raises(ConfigurationError):
            topo8().domain_of(0, "rack")
        with pytest.raises(ConfigurationError):
            topo8().n_domains("rack")

    def test_rejects_unknown_domain(self):
        with pytest.raises(ConfigurationError):
            topo8().shards_in("power", 2)


class TestSerialization:
    def test_describe_round_trip(self):
        t = topo8()
        clone = FailureDomainTopology.from_dict(t.describe())
        assert clone == t

    def test_describe_is_json_friendly(self):
        import json

        assert json.loads(json.dumps(topo8().describe())) == (
            topo8().describe()
        )
