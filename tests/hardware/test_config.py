"""Unit tests for hardware configuration (paper Tables 1 and 5)."""

import pytest

from repro.errors import ConfigurationError
from repro.hardware.config import (
    CPUConfig,
    CrossbarConfig,
    HardwareConfig,
    MemoryConfig,
    NVM_CHARACTERISTICS,
    PIMArrayConfig,
    baseline_platform,
    pim_platform,
)


class TestCrossbarConfig:
    def test_paper_defaults(self):
        cfg = CrossbarConfig()
        assert cfg.rows == cfg.cols == 256
        assert cfg.cell_bits == 2
        assert cfg.read_latency_ns == pytest.approx(29.31)
        assert cfg.write_latency_ns == pytest.approx(50.88)

    def test_capacity_bits(self):
        cfg = CrossbarConfig()
        assert cfg.capacity_bits == 256 * 256 * 2

    def test_max_cell_value(self):
        assert CrossbarConfig(cell_bits=2).max_cell_value == 3
        assert CrossbarConfig(cell_bits=4).max_cell_value == 15

    def test_rejects_bad_geometry(self):
        with pytest.raises(ConfigurationError):
            CrossbarConfig(rows=0)

    def test_rejects_bad_precision(self):
        with pytest.raises(ConfigurationError):
            CrossbarConfig(cell_bits=9)

    def test_rejects_bad_latency(self):
        with pytest.raises(ConfigurationError):
            CrossbarConfig(read_latency_ns=-1.0)


class TestPIMArrayConfig:
    def test_paper_crossbar_count(self):
        # 2 GB of 256x256 2-bit crossbars = 131072 crossbars (Section VI-A)
        assert PIMArrayConfig().num_crossbars == 131072

    def test_slices_per_operand(self):
        assert PIMArrayConfig().slices_per_operand == 16  # 32-bit on 2-bit

    def test_binary_operands_allowed(self):
        cfg = PIMArrayConfig(operand_bits=1, accumulator_bits=32)
        assert cfg.slices_per_operand == 1

    def test_rejects_narrow_accumulator(self):
        with pytest.raises(ConfigurationError):
            PIMArrayConfig(operand_bits=32, accumulator_bits=16)


class TestCPUConfig:
    def test_paper_frequency(self):
        assert CPUConfig().frequency_hz == pytest.approx(2.10e9)

    def test_seconds_per_flop(self):
        cpu = CPUConfig()
        assert cpu.seconds_per_flop == pytest.approx(
            1.0 / (2.10e9 * 4.0)
        )

    def test_rejects_bad_cache(self):
        with pytest.raises(ConfigurationError):
            CPUConfig(l1_bytes=0)


class TestHardwareConfig:
    def test_baseline_has_no_pim(self):
        platform = baseline_platform()
        assert not platform.has_pim
        assert platform.memory_array_bytes == platform.memory.total_bytes

    def test_pim_platform_partitions_memory(self):
        platform = pim_platform()
        # 16 GB total = 14 GB memory array + 16 MB buffer + 2 GB PIM
        expected = 16 * 1024**3 - 2 * 1024**3 - 16 * 1024**2
        assert platform.memory_array_bytes == expected

    def test_pim_capacity_override(self):
        platform = pim_platform(pim_capacity_bytes=1024**3)
        assert platform.pim.capacity_bytes == 1024**3


class TestNVMCharacteristics:
    def test_table1_devices_present(self):
        assert set(NVM_CHARACTERISTICS) == {"DRAM", "ReRAM", "PCM", "STT-RAM"}

    def test_reram_write_slower_than_read(self):
        reram = NVM_CHARACTERISTICS["ReRAM"]
        assert reram["write_latency_ns"][0] > reram["read_latency_ns"][0]

    def test_reram_endurance_below_dram(self):
        assert (
            NVM_CHARACTERISTICS["ReRAM"]["endurance"][1]
            < NVM_CHARACTERISTICS["DRAM"]["endurance"][0]
        )

    def test_default_crossbar_latencies_within_published_ranges(self):
        # the Table 5 crossbar read is derived from ReRAM designs; it
        # should sit near the Table 1 order of magnitude
        cfg = CrossbarConfig()
        assert 1.0 <= cfg.read_latency_ns <= 100.0
        assert cfg.write_latency_ns > cfg.read_latency_ns


class TestMemoryConfig:
    def test_rejects_zero_bandwidth(self):
        with pytest.raises(ConfigurationError):
            MemoryConfig(dram_bandwidth_gbs=0)

    def test_defaults(self):
        cfg = MemoryConfig()
        assert cfg.internal_bus_gbs == pytest.approx(50.0)
        assert cfg.buffer_bytes == 16 * 1024**2
