"""Unit tests for buffer, memory, endurance, timing and Quartz models."""

import numpy as np
import pytest

from repro.errors import CapacityError, ConfigurationError, EnduranceExceededError
from repro.hardware.buffer import BufferArray
from repro.hardware.config import (
    CPUConfig,
    HardwareConfig,
    MemoryConfig,
    PIMArrayConfig,
)
from repro.hardware.endurance import EnduranceTracker
from repro.hardware.mapper import plan_layout
from repro.hardware.memory import MemoryArray
from repro.hardware.quartz import Epoch, epoch_time_ns
from repro.hardware.timing import (
    PIPELINE_DRAIN_CYCLES,
    programming_time_ns,
    wave_timing,
)


class TestBufferArray:
    def test_push_pop_fifo(self):
        buf = BufferArray()
        buf.push(np.arange(4))
        buf.push(np.arange(8))
        assert buf.pop().shape == (4,)
        assert buf.pop().shape == (8,)

    def test_occupancy_tracking(self):
        buf = BufferArray()
        block = np.arange(100, dtype=np.int64)
        buf.push(block)
        assert buf.occupied_bytes == block.nbytes
        buf.pop()
        assert buf.occupied_bytes == 0

    def test_overflow(self):
        buf = BufferArray(MemoryConfig(buffer_bytes=16))
        with pytest.raises(CapacityError, match="overflow"):
            buf.push(np.arange(100, dtype=np.int64))

    def test_underflow(self):
        with pytest.raises(CapacityError, match="underflow"):
            BufferArray().pop()

    def test_drain_returns_all(self):
        buf = BufferArray()
        buf.push(np.arange(2))
        buf.push(np.arange(3))
        blocks = buf.drain()
        assert [b.shape[0] for b in blocks] == [2, 3]
        assert buf.occupied_bytes == 0

    def test_read_time_scales_with_bytes(self):
        buf = BufferArray()
        assert buf.read_time_ns(1000) > buf.read_time_ns(10)

    def test_traffic_counters(self):
        buf = BufferArray()
        block = np.arange(10, dtype=np.int64)
        buf.push(block)
        buf.pop()
        assert buf.total_bytes_written == block.nbytes
        assert buf.total_bytes_read == block.nbytes


class TestMemoryArray:
    def test_reram_writes_slower_than_reads(self):
        mem = MemoryArray(MemoryConfig(), device="reram")
        assert mem.write_time_ns(1000) > mem.read_time_ns(1000)

    def test_dram_symmetric(self):
        mem = MemoryArray(MemoryConfig(), device="dram")
        assert mem.write_time_ns(1000) == pytest.approx(mem.read_time_ns(1000))

    def test_reram_writes_slower_than_dram_writes(self):
        cfg = MemoryConfig()
        dram = MemoryArray(cfg, device="dram")
        reram = MemoryArray(cfg, device="reram")
        assert reram.write_time_ns(1000) > dram.write_time_ns(1000)

    def test_unknown_device(self):
        with pytest.raises(ConfigurationError):
            MemoryArray(MemoryConfig(), device="optane")


class TestEnduranceTracker:
    def test_records_and_reports(self):
        tracker = EnduranceTracker(endurance=100)
        tracker.record_write(0)
        tracker.record_write(0, count=4)
        assert tracker.write_count(0) == 5
        assert tracker.max_writes == 5
        assert tracker.total_writes == 5
        assert tracker.remaining(0) == 95
        assert tracker.wear_fraction(0) == pytest.approx(0.05)

    def test_exhaustion(self):
        tracker = EnduranceTracker(endurance=2)
        tracker.record_write(1, count=2)
        with pytest.raises(EnduranceExceededError):
            tracker.record_write(1)

    def test_untracked_unit_is_zero(self):
        assert EnduranceTracker(endurance=5).write_count(9) == 0


class TestWaveTiming:
    @pytest.fixture
    def setup(self):
        config = PIMArrayConfig()
        hardware = HardwareConfig(pim=config)
        return config, hardware

    def test_input_cycles_follow_operand_width(self, setup):
        config, hardware = setup
        layout = plan_layout(100, 128, config)
        timing = wave_timing(layout, config, hardware)
        assert timing.input_cycles == 16  # 32-bit on a 2-bit DAC

    def test_gather_adds_cycles(self, setup):
        config, hardware = setup
        flat = plan_layout(100, 128, config)
        deep = plan_layout(100, 512, config)
        t_flat = wave_timing(flat, config, hardware)
        t_deep = wave_timing(deep, config, hardware)
        assert t_deep.gather_cycles == t_flat.gather_cycles + 1
        assert t_deep.total_ns > t_flat.total_ns

    def test_total_cycles_include_drain(self, setup):
        config, hardware = setup
        layout = plan_layout(10, 64, config)
        timing = wave_timing(layout, config, hardware)
        assert timing.total_cycles == (
            timing.input_cycles + timing.gather_cycles + PIPELINE_DRAIN_CYCLES
        )

    def test_buffer_time_scales_with_results(self, setup):
        config, hardware = setup
        small = wave_timing(plan_layout(10, 64, config), config, hardware)
        large = wave_timing(plan_layout(10000, 64, config), config, hardware)
        assert large.buffer_ns > small.buffer_ns

    def test_narrow_inputs_cut_cycles(self, setup):
        config, hardware = setup
        layout = plan_layout(10, 64, config)
        binary = wave_timing(layout, config, hardware, input_bits=1)
        assert binary.input_cycles == 1

    def test_programming_time_positive(self, setup):
        config, _ = setup
        layout = plan_layout(100, 512, config)
        assert programming_time_ns(layout, config) > 0


class TestQuartzEpochs:
    def test_components_sum(self):
        cpu = CPUConfig()
        t = epoch_time_ns(
            Epoch(flops=1e6, bytes_from_memory=1e6, branches=1e4),
            cpu,
            cpu.dram_miss_latency_ns,
        )
        assert t.total_ns == pytest.approx(
            t.compute_ns + t.cache_ns + t.alu_ns + t.branch_ns + t.frontend_ns
        )

    def test_memory_bound_epochs_dominated_by_cache(self):
        cpu = CPUConfig()
        # streaming 4 bytes per flop, the paper's kNN regime
        t = epoch_time_ns(
            Epoch(flops=3e6, bytes_from_memory=4e6),
            cpu,
            cpu.dram_miss_latency_ns,
        )
        assert t.cache_ns > t.compute_ns

    def test_reram_misses_cost_more(self):
        cpu = CPUConfig()
        epoch = Epoch(flops=1e5, bytes_from_memory=1e6)
        dram = epoch_time_ns(epoch, cpu, cpu.dram_miss_latency_ns)
        reram = epoch_time_ns(epoch, cpu, cpu.reram_miss_latency_ns)
        assert reram.cache_ns > dram.cache_ns

    def test_long_ops_add_alu_stalls(self):
        cpu = CPUConfig()
        with_div = epoch_time_ns(
            Epoch(flops=1e5, long_ops=1e4), cpu, cpu.dram_miss_latency_ns
        )
        without = epoch_time_ns(
            Epoch(flops=1e5), cpu, cpu.dram_miss_latency_ns
        )
        assert with_div.alu_ns > without.alu_ns == 0.0
