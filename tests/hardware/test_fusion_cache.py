"""Regression tests: the fused kernel's bit-slice cache never goes stale.

The fused cell-level path contracts queries against a decomposition
cached at ``program_matrix`` time. Every event that changes what the
crossbars physically hold — reset + reprogram under the same name, a
spare-pool remap of one crossbar, bulk remaps — must drop that cache so
the next wave rebuilds it from the live matrix. A stale cache would
silently serve the *previous* matrix's bits: exactly the class of bug
these tests pin.
"""

import numpy as np
import pytest

from repro.hardware.config import (
    CrossbarConfig,
    HardwareConfig,
    PIMArrayConfig,
)
from repro.hardware.pim_array import PIMArray


@pytest.fixture()
def platform():
    return HardwareConfig(
        pim=PIMArrayConfig(
            crossbar=CrossbarConfig(
                rows=8, cols=8, cell_bits=2, dac_bits=2,
                read_latency_ns=10.0,
            ),
            capacity_bytes=1 << 20,
            operand_bits=8,
            accumulator_bits=64,
        )
    )


@pytest.fixture()
def matrix():
    return (np.arange(9 * 14, dtype=np.int64).reshape(9, 14) * 13) % 251


@pytest.fixture()
def query():
    return (np.arange(14, dtype=np.int64) * 7) % 256


class TestDecompositionCache:
    def test_fused_mode_caches_at_program_time(self, platform, matrix):
        array = PIMArray(platform, simulate_cells=True)
        array.program_matrix("m", matrix)
        record = array._matrices["m"]
        assert record.sliced is not None
        assert record.sliced.shape == matrix.shape + (4,)  # ceil(8/2)

    def test_fast_and_reference_modes_do_not_cache(self, platform, matrix):
        for array in (
            PIMArray(platform),
            PIMArray(platform, simulate_cells=True, reference=True),
        ):
            array.program_matrix("m", matrix)
            assert array._matrices["m"].sliced is None

    def test_reprogram_same_name_serves_fresh_values(
        self, platform, matrix, query
    ):
        array = PIMArray(platform, simulate_cells=True)
        array.program_matrix("m", matrix)
        stale = array.query("m", query).values
        successor = (matrix + 1) % 251
        array.reset_matrix("m")
        array.program_matrix("m", successor)
        fresh = array.query("m", query).values
        assert not np.array_equal(fresh, stale)
        oracle = PIMArray(platform)
        oracle.program_matrix("m", successor)
        assert np.array_equal(fresh, oracle.query("m", query).values)

    def test_remap_drops_cache_and_retargets_cells(
        self, platform, matrix, query
    ):
        array = PIMArray(platform, simulate_cells=True, spare_crossbars=2)
        array.program_matrix("m", matrix)
        expected = array.query("m", query).values
        record = array._matrices["m"]
        assert record.sliced is not None
        victim = record.crossbar_ids[0]
        spare, reprogram_ns = array.remap_crossbar(victim)
        assert reprogram_ns > 0
        assert record.sliced is None  # cache invalidated by the remap
        # the cell-mode crossbar object now answers to the spare id
        remapped = [
            xbar.crossbar_id
            for column in record.crossbars
            for xbar in column
        ]
        assert spare in remapped and victim not in remapped
        # values rebuilt from the live matrix: bit-identical to before
        assert np.array_equal(array.query("m", query).values, expected)
        assert record.sliced is not None  # lazily rebuilt by the wave

    def test_bulk_remap_preserves_values(self, platform, matrix, query):
        array = PIMArray(platform, simulate_cells=True, spare_crossbars=4)
        array.program_matrix("m", matrix)
        expected = array.query("m", query).values
        victims = array.crossbar_ids_of("m")[:2]
        spares, _ = array.remap_crossbars(victims)
        assert len(spares) == 2
        assert array.spares_remaining == 2
        assert np.array_equal(array.query("m", query).values, expected)

    def test_remap_invalidates_reference_path_too(
        self, platform, matrix, query
    ):
        # the loop oracle reads live crossbar objects, so a remap (which
        # only renames ids) must not perturb its values either
        array = PIMArray(
            platform, simulate_cells=True, reference=True, spare_crossbars=2
        )
        array.program_matrix("m", matrix)
        expected = array.query("m", query).values
        array.remap_crossbar(array.crossbar_ids_of("m")[0])
        assert np.array_equal(array.query("m", query).values, expected)

    def test_batch_after_reprogram_matches_fast_path(self, platform, matrix):
        queries = (np.arange(3 * 14, dtype=np.int64).reshape(3, 14) * 5) % 256
        array = PIMArray(platform, simulate_cells=True)
        array.program_matrix("m", matrix)
        array.query_batch("m", queries)
        successor = (matrix * 3) % 256
        array.reset_matrix("m")
        array.program_matrix("m", successor)
        oracle = PIMArray(platform)
        oracle.program_matrix("m", successor)
        assert np.array_equal(
            array.query_batch("m", queries).values,
            oracle.query_batch("m", queries).values,
        )
