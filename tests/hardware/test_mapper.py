"""Unit tests for Theorem 4 crossbar-cost equations and layout."""

import math

import numpy as np
import pytest

from repro.errors import CapacityError, ConfigurationError
from repro.hardware.config import CrossbarConfig, PIMArrayConfig
from repro.hardware import mapper


@pytest.fixture
def paper_config() -> PIMArrayConfig:
    """The paper's Table 5 PIM array (131072 crossbars)."""
    return PIMArrayConfig()


@pytest.fixture
def tiny_config(small_crossbar_config) -> PIMArrayConfig:
    return PIMArrayConfig(
        crossbar=small_crossbar_config,
        capacity_bytes=1 << 14,
        operand_bits=8,
        accumulator_bits=64,
    )


class TestGatherTreeLevels:
    def test_no_gather_when_dims_fit(self):
        assert mapper.gather_tree_levels(100, 256) == 1

    def test_one_gather_level(self):
        assert mapper.gather_tree_levels(512, 256) == 2

    def test_deep_tree(self):
        # 8 dims on 2-row crossbars: 4 leaves -> 2 -> 1: 3 levels
        assert mapper.gather_tree_levels(8, 2) == 3

    def test_rejects_bad_args(self):
        with pytest.raises(ConfigurationError):
            mapper.gather_tree_levels(0, 4)


class TestCrossbarsForVectorPair:
    def test_single_crossbar(self):
        assert mapper.crossbars_for_vector_pair(100, 256) == 1

    def test_paper_figure11_example(self):
        # s=8, m=2: 4 data + 2 gather + 1 gather = 7 crossbars
        assert mapper.crossbars_for_vector_pair(8, 2) == 7


class TestDataAndGatherCounts:
    def test_vectors_per_crossbar(self, paper_config):
        # 256 columns / (32-bit over 2-bit cells = 16 slices) = 16
        assert mapper.vectors_per_crossbar(paper_config) == 16

    def test_data_crossbars_formula(self, paper_config):
        # N*b*s/(m^2*h) for divisible shapes (Eq. 12)
        n, s = 1600, 512
        expected = math.ceil(n / 16) * math.ceil(s / 256)
        assert mapper.data_crossbars(n, s, paper_config) == expected

    def test_no_gather_below_row_count(self, paper_config):
        assert mapper.gather_crossbars(1000, 256, paper_config) == 0

    def test_gather_above_row_count(self, paper_config):
        groups = math.ceil(1000 / 16)
        assert mapper.gather_crossbars(1000, 512, paper_config) == groups

    def test_total_is_sum(self, paper_config):
        total = mapper.total_crossbars(1000, 512, paper_config)
        assert total == mapper.data_crossbars(
            1000, 512, paper_config
        ) + mapper.gather_crossbars(1000, 512, paper_config)

    def test_operand_too_wide_for_crossbar(self):
        cfg = PIMArrayConfig(
            crossbar=CrossbarConfig(rows=4, cols=4, cell_bits=2),
            capacity_bytes=1 << 12,
            operand_bits=32,
        )
        with pytest.raises(CapacityError, match="operand too wide"):
            mapper.vectors_per_crossbar(cfg)


class TestFitsAndMaxDimensionality:
    def test_paper_msd_scale_fits(self, paper_config):
        # the paper stores compressed MSD (992k x 105) on 131072 crossbars
        assert mapper.fits(992272, 105, paper_config)

    def test_paper_msd_full_does_not_fit(self, paper_config):
        # full 420 dimensions exceed the 2 GB array
        assert not mapper.fits(992272, 420 * 2, paper_config)

    def test_max_dimensionality_monotone(self, paper_config):
        s = mapper.max_dimensionality(992272, 420, paper_config)
        assert mapper.fits(992272, s, paper_config)
        if s < 420:
            assert not mapper.fits(992272, s + 1, paper_config)

    def test_candidate_restriction(self, paper_config):
        s = mapper.max_dimensionality(
            992272, 420, paper_config, candidates=[7, 28, 105, 210, 420]
        )
        assert s in {7, 28, 105, 210, 420}

    def test_raises_when_nothing_fits(self, tiny_config):
        with pytest.raises(CapacityError):
            mapper.max_dimensionality(10**9, 64, tiny_config)


class TestPlanLayout:
    def test_layout_fields(self, tiny_config):
        layout = mapper.plan_layout(4, 16, tiny_config)
        assert layout.n_vectors == 4
        assert layout.dims == 16
        assert layout.gather_levels == mapper.gather_tree_levels(16, 8)
        assert layout.n_crossbars == mapper.total_crossbars(4, 16, tiny_config)
        assert layout.storage_bits == 4 * 16 * 8

    def test_layout_rejects_oversize(self, tiny_config):
        with pytest.raises(CapacityError, match="compress the dataset"):
            mapper.plan_layout(10**6, 64, tiny_config)
