"""Unit tests for the fault-injection layer: plans, injectors, integrity.

Everything here is deterministic — the plan's master seed pins every
injected fault, so each test asserts exact values, not distributions.
The serving-level recovery behaviour built on these primitives is
tested in ``tests/serving/test_faults.py``; this file pins down the
injection mechanics themselves.
"""

import numpy as np
import pytest

from repro.errors import (
    ConfigurationError,
    CrossbarDeadError,
    EnduranceExceededError,
    OperandError,
)
from repro.faults import (
    DEFAULT_CORRUPT_MAGNITUDE,
    FaultEvent,
    FaultPlan,
    FaultyCrossbar,
    FaultyPIMArray,
    FaultyShardEngine,
    append_checksum_row,
    checksum_row,
    verify_wave_residues,
)
from repro.hardware.crossbar import Crossbar
from repro.hardware.endurance import EnduranceTracker
from repro.hardware.pim_array import PIMArray


@pytest.fixture
def matrix(rng):
    # values >= 1 so any stuck-at-0 cell strictly changes an all-ones dot
    return rng.integers(1, 256, size=(6, 8))


@pytest.fixture
def array(small_pim_platform, matrix):
    pim = PIMArray(small_pim_platform)
    pim.program_matrix("data", matrix)
    return pim


def plan_of(*events, seed=0):
    return FaultPlan(events, seed=seed)


class TestIntegrity:
    def test_checksum_row_is_column_sums_mod_modulus(self, matrix):
        row = checksum_row(matrix, 8)
        assert np.array_equal(row, matrix.sum(axis=0) % 256)
        # a valid operand: non-negative and narrower than the modulus
        assert row.min() >= 0 and row.max() < 256

    def test_append_adds_exactly_one_row(self, matrix):
        protected = append_checksum_row(matrix, 8)
        assert protected.shape == (matrix.shape[0] + 1, matrix.shape[1])
        assert np.array_equal(protected[:-1], matrix)

    def test_clean_wave_verifies(self, matrix, rng):
        protected = append_checksum_row(matrix, 8)
        queries = rng.integers(0, 256, size=(3, 8))
        dots = queries.astype(np.int64) @ protected.T
        assert verify_wave_residues(dots, 8).all()

    def test_default_corruption_is_always_detected(self, matrix, rng):
        protected = append_checksum_row(matrix, 8)
        query = rng.integers(0, 256, size=8)
        dots = (query.astype(np.int64) @ protected.T)[None, :]
        for col in range(dots.shape[1]):  # data columns AND the checksum
            bad = dots.copy()
            bad[0, col] += DEFAULT_CORRUPT_MAGNITUDE
            assert not verify_wave_residues(bad, 8)[0]

    def test_modulus_multiples_are_invisible_by_design(self, matrix, rng):
        # an error that cancels mod 2**bits is exactly the 1/M blind spot
        protected = append_checksum_row(matrix, 8)
        query = rng.integers(0, 256, size=8)
        dots = query.astype(np.int64) @ protected.T
        dots[0] += 7 * 256
        assert verify_wave_residues(dots, 8)

    def test_verify_handles_batched_shapes(self, matrix, rng):
        protected = append_checksum_row(matrix, 8)
        queries = rng.integers(0, 256, size=(4, 8))
        dots = queries.astype(np.int64) @ protected.T
        dots[2, 0] += 3
        clean = verify_wave_residues(dots, 8)
        assert clean.shape == (4,)
        assert clean.tolist() == [True, True, False, True]

    def test_rejects_bad_arguments(self, matrix):
        with pytest.raises(OperandError):
            checksum_row(matrix[0], 8)
        with pytest.raises(OperandError):
            checksum_row(matrix, 64)
        with pytest.raises(OperandError):
            verify_wave_residues(np.array([1]), 8)


class TestFaultyCrossbar:
    def test_zero_fraction_matches_pristine_crossbar(
        self, small_crossbar_config, rng
    ):
        matrix = rng.integers(0, 256, size=(2, 8))
        query = rng.integers(0, 256, size=8)
        clean = Crossbar(small_crossbar_config)
        clean.program(matrix, operand_bits=8)
        faulty = FaultyCrossbar(small_crossbar_config, stuck_fraction=0.0)
        faulty.program(matrix, operand_bits=8)
        assert faulty.stuck_cells == 0
        assert np.array_equal(
            faulty.dot_product(query).values, clean.dot_product(query).values
        )

    def test_fully_stuck_at_zero_reads_all_zero(
        self, small_crossbar_config, rng
    ):
        faulty = FaultyCrossbar(
            small_crossbar_config, stuck_fraction=1.0, stuck_to=0
        )
        faulty.program(rng.integers(1, 256, size=(2, 8)), operand_bits=8)
        values = faulty.dot_product(np.ones(8, dtype=np.int64)).values
        assert np.array_equal(values, np.zeros(2, dtype=values.dtype))

    def test_defect_map_is_seeded_and_survives_reprogramming(
        self, small_crossbar_config, rng
    ):
        matrix = rng.integers(1, 256, size=(2, 8))
        query = np.ones(8, dtype=np.int64)

        def readings(seed):
            xbar = FaultyCrossbar(
                small_crossbar_config, stuck_fraction=0.4, seed=seed
            )
            xbar.program(matrix, operand_bits=8)
            first = xbar.dot_product(query).values.copy()
            xbar.reset()
            xbar.program(matrix, operand_bits=8)  # defects re-apply
            second = xbar.dot_product(query).values.copy()
            return first, second, xbar.stuck_cells

        a1, a2, cells_a = readings(seed=1)
        b1, _, cells_b = readings(seed=1)
        assert np.array_equal(a1, a2)  # device property, not per-program
        assert np.array_equal(a1, b1) and cells_a == cells_b
        assert cells_a > 0

    def test_rejects_bad_parameters(self, small_crossbar_config):
        with pytest.raises(ValueError):
            FaultyCrossbar(small_crossbar_config, stuck_fraction=1.5)
        with pytest.raises(ValueError):
            FaultyCrossbar(small_crossbar_config, stuck_to=2)


class TestEnduranceFaultContext:
    def test_exceeding_endurance_carries_structured_context(self):
        tracker = EnduranceTracker(endurance=2)
        tracker.record_write(3)
        tracker.record_write(3)
        with pytest.raises(EnduranceExceededError) as excinfo:
            tracker.record_write(3)
        exc = excinfo.value
        assert exc.unit == 3
        assert exc.context["writes"] == 3
        assert exc.context["endurance"] == 2
        assert exc.reason == "endurance"


class TestFaultyPIMArray:
    def test_delegates_everything_not_fault_related(self, array, matrix):
        faulty = FaultyPIMArray(array, plan_of())
        assert faulty.inner is array
        assert faulty.config is array.config
        assert np.array_equal(faulty.matrix_of("data"), matrix)

    def test_no_events_is_a_transparent_wrapper(self, array, rng):
        query = rng.integers(0, 256, size=8)
        faulty = FaultyPIMArray(array, plan_of())
        assert np.array_equal(
            faulty.query("data", query).values,
            array.query("data", query).values,
        )
        assert faulty.injected == {}

    def test_fault_clock_is_monotone(self, array):
        faulty = FaultyPIMArray(array, plan_of())
        faulty.advance_to(100.0)
        faulty.advance_to(50.0)
        assert faulty.now_ns == 100.0

    def test_auto_advance_moves_the_clock_by_wave_latency(self, array, rng):
        query = rng.integers(0, 256, size=8)
        auto = FaultyPIMArray(array, plan_of(), auto_advance=True)
        result = auto.query("data", query)
        assert auto.now_ns == result.timing.total_ns
        manual = FaultyPIMArray(array, plan_of(), auto_advance=False)
        manual.query("data", query)
        assert manual.now_ns == 0.0

    def test_dead_crossbar_raises_with_context_once_active(self, array, rng):
        query = rng.integers(0, 256, size=8)
        plan = plan_of(
            FaultEvent(t_ns=1000.0, kind="crossbar_dead", target="array")
        )
        faulty = FaultyPIMArray(array, plan, auto_advance=False)
        faulty.query("data", query)  # before the fault: fine
        faulty.advance_to(1000.0)
        with pytest.raises(CrossbarDeadError) as excinfo:
            faulty.query("data", query)
        exc = excinfo.value
        assert exc.unit == "array"
        assert exc.timestamp_ns == 1000.0
        assert exc.context["fault_t_ns"] == 1000.0
        assert faulty.injected["crossbar_dead"] == 1

    def test_corruption_flips_the_residue_check(
        self, array, matrix, rng
    ):
        array.program_matrix("prot", append_checksum_row(matrix, 8))
        queries = rng.integers(0, 256, size=(3, 8))
        clean = array.query_many("prot", queries).values
        assert verify_wave_residues(clean, 8).all()
        plan = plan_of(
            FaultEvent(t_ns=0.0, kind="wave_corrupt", target="array")
        )
        faulty = FaultyPIMArray(array, plan, auto_advance=False)
        bad = faulty.query_many("prot", queries).values
        # default probability 1.0: every wave row corrupted and detected
        assert not verify_wave_residues(bad, 8).any()
        assert faulty.injected["wave_corrupt"] == 3
        # exactly one value per row moved, by the default prime offset
        diff = bad.astype(np.int64) - clean.astype(np.int64)
        assert np.count_nonzero(diff) == 3
        assert set(np.unique(diff)) == {0, DEFAULT_CORRUPT_MAGNITUDE}

    def test_corruption_respects_its_time_window(self, array, rng):
        query = rng.integers(0, 256, size=8)
        clean = array.query("data", query).values
        plan = plan_of(
            FaultEvent(
                t_ns=1000.0,
                kind="wave_corrupt",
                target="array",
                duration_ns=1000.0,
            )
        )
        faulty = FaultyPIMArray(array, plan, auto_advance=False)
        assert np.array_equal(faulty.query("data", query).values, clean)
        faulty.advance_to(1500.0)
        assert not np.array_equal(faulty.query("data", query).values, clean)
        faulty.advance_to(2000.0)  # window is half-open: [t, t+duration)
        assert np.array_equal(faulty.query("data", query).values, clean)

    def test_zero_probability_corruption_never_fires(self, array, rng):
        query = rng.integers(0, 256, size=8)
        plan = plan_of(
            FaultEvent(
                t_ns=0.0,
                kind="wave_corrupt",
                target="array",
                params={"probability": 0.0},
            )
        )
        faulty = FaultyPIMArray(array, plan, auto_advance=False)
        assert np.array_equal(
            faulty.query("data", query).values,
            array.query("data", query).values,
        )
        assert "wave_corrupt" not in faulty.injected

    def test_latency_spike_stretches_timing_not_values(self, array, rng):
        queries = rng.integers(0, 256, size=(3, 8))
        clean = array.query_batch("data", queries)
        plan = plan_of(
            FaultEvent(
                t_ns=0.0,
                kind="latency_spike",
                target="array",
                params={"factor": 4.0},
            )
        )
        faulty = FaultyPIMArray(array, plan, auto_advance=False)
        result = faulty.query_batch("data", queries)
        assert np.array_equal(result.values, clean.values)
        assert result.timing.total_ns == pytest.approx(
            4.0 * clean.timing.total_ns
        )
        assert result.timing.amortized_ns_per_query == pytest.approx(
            4.0 * clean.timing.amortized_ns_per_query
        )

    def test_stuck_cells_are_deterministic_and_change_values(
        self, array, rng
    ):
        query = np.ones(8, dtype=np.int64)
        clean = array.query("data", query).values
        event = FaultEvent(
            t_ns=0.0,
            kind="stuck_cells",
            target="array",
            params={"fraction": 0.2, "stuck_to": 0, "matrix": "data"},
        )
        first = FaultyPIMArray(array, plan_of(event), auto_advance=False)
        second = FaultyPIMArray(array, plan_of(event), auto_advance=False)
        a = first.query("data", query).values
        b = second.query("data", query).values
        assert np.array_equal(a, b)  # seeded from the plan, not the wrapper
        # stuck-at-0 on values >= 1 can only lower an all-ones dot
        assert (a <= clean).all() and (a < clean).any()
        assert first.injected["stuck_cells"] == 1


class TestFaultyShardEngine:
    def test_crash_dominates_hang_dominates_slow(self):
        plan = plan_of(
            FaultEvent(t_ns=100.0, kind="shard_crash", target="shard0"),
            FaultEvent(t_ns=0.0, kind="shard_hang", target="shard0"),
            FaultEvent(
                t_ns=0.0,
                kind="slow_shard",
                target="shard0",
                params={"factor": 2.0},
            ),
        )
        engine = FaultyShardEngine(plan, "shard0")
        assert engine.outcome(50.0).status == "hang"
        verdict = engine.outcome(150.0)
        assert verdict.status == "crash" and not verdict.ok
        assert engine.crash_time() == 100.0

    def test_slow_factors_multiply(self):
        plan = plan_of(
            FaultEvent(
                t_ns=0.0,
                kind="slow_shard",
                target="shard1",
                params={"factor": 2.0},
            ),
            FaultEvent(
                t_ns=0.0,
                kind="slow_shard",
                target="shard1",
                params={"factor": 3.0},
            ),
        )
        verdict = FaultyShardEngine(plan, "shard1").outcome(10.0)
        assert verdict.status == "slow"
        assert verdict.factor == pytest.approx(6.0)

    def test_healthy_shard_is_ok(self):
        engine = FaultyShardEngine(plan_of(), "shard0")
        verdict = engine.outcome(0.0)
        assert verdict.ok and verdict.factor == 1.0
        assert engine.crash_time() is None


class TestFaultPlan:
    def test_event_validation(self):
        with pytest.raises(ConfigurationError):
            FaultEvent(t_ns=0.0, kind="gremlins", target="shard0")
        with pytest.raises(ConfigurationError):
            FaultEvent(t_ns=-1.0, kind="shard_crash", target="shard0")
        with pytest.raises(ConfigurationError):
            FaultEvent(
                t_ns=0.0,
                kind="shard_crash",
                target="shard0",
                duration_ns=0.0,
            )

    def test_active_window_semantics(self):
        permanent = FaultEvent(t_ns=10.0, kind="shard_crash", target="s")
        assert not permanent.active_at(9.0)
        assert permanent.active_at(10.0) and permanent.active_at(1e12)
        transient = FaultEvent(
            t_ns=10.0, kind="shard_hang", target="s", duration_ns=5.0
        )
        assert transient.active_at(10.0) and transient.active_at(14.9)
        assert not transient.active_at(15.0)

    def test_plan_sorts_filters_and_lists_targets(self):
        late = FaultEvent(t_ns=50.0, kind="shard_crash", target="shard1")
        early = FaultEvent(t_ns=5.0, kind="shard_hang", target="shard0")
        plan = FaultPlan([late, early])
        assert [e.t_ns for e in plan] == [5.0, 50.0]
        assert plan.events_for("shard1") == (late,)
        assert plan.events_for("shard1", "shard_hang") == ()
        assert plan.active("shard0", "shard_hang", 6.0) == (early,)
        assert plan.targets() == ("shard0", "shard1")
        assert len(plan) == 2

    def test_rng_streams_are_keyed_and_reproducible(self):
        a = FaultPlan(seed=7).rng_for("shard0", "x").random(4)
        b = FaultPlan(seed=7).rng_for("shard0", "x").random(4)
        c = FaultPlan(seed=7).rng_for("shard0", "y").random(4)
        assert np.array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_chaos_victims_are_distinct_and_timed(self):
        plan = FaultPlan.chaos(4, 1e9, seed=3, slow_shards=1)
        kinds = {e.kind: e for e in plan}
        assert set(kinds) == {"shard_crash", "wave_corrupt", "slow_shard"}
        assert len({e.target for e in plan}) == 3  # distinct victims
        kill = kinds["shard_crash"]
        assert 0.25e9 <= kill.t_ns <= 0.75e9  # middle half of the run
        corrupt = kinds["wave_corrupt"]
        assert corrupt.t_ns == 0.0 and corrupt.duration_ns == 1e9
        assert corrupt.params["probability"] == 0.15

    def test_chaos_is_seed_deterministic_and_json_clean(self):
        # np.float64 horizons (e.g. derived from GatherTiming) must not
        # leak numpy scalars into the JSON-facing describe() records
        a = FaultPlan.chaos(4, np.float64(1e9), seed=5)
        b = FaultPlan.chaos(4, 1e9, seed=5)
        assert a.describe() == b.describe()
        for record in a.describe():
            assert type(record["t_ns"]) is float

    def test_chaos_caps_victims_at_shard_count(self):
        plan = FaultPlan.chaos(1, 1e9, seed=0)
        assert len(plan) == 1
        assert plan.events[0].kind == "shard_crash"

    def test_chaos_validation(self):
        with pytest.raises(ConfigurationError):
            FaultPlan.chaos(0, 1e9)
        with pytest.raises(ConfigurationError):
            FaultPlan.chaos(2, 0.0)
