"""Unit tests for the analog noise model and its compensation."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.hardware.config import HardwareConfig, PIMArrayConfig
from repro.hardware.controller import PIMController
from repro.hardware.noise import (
    NoiseModel,
    NoisyPIMArray,
    compensate_dot_lower,
    compensate_dot_upper,
)


@pytest.fixture
def noise() -> NoiseModel:
    return NoiseModel(cell_sigma=0.02, adc_step=64.0, seed=3)


class TestNoiseModel:
    def test_ideal_by_default(self):
        assert NoiseModel().is_ideal

    def test_error_bounds(self, noise):
        assert noise.relative_error_bound == pytest.approx(0.06)
        assert noise.additive_error_bound == pytest.approx(32.0)

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            NoiseModel(cell_sigma=-0.1)

    def test_rejects_total_noise(self):
        with pytest.raises(ConfigurationError, match="100%"):
            NoiseModel(cell_sigma=0.5)


class TestNoisyArray:
    def test_values_stay_within_worst_case(self, noise, rng):
        array = NoisyPIMArray(HardwareConfig(pim=PIMArrayConfig()), noise)
        matrix = rng.integers(0, 10**6, size=(50, 64))
        array.program_matrix("d", matrix)
        query = rng.integers(0, 10**6, size=64)
        truth = (matrix @ query).astype(np.float64)
        noisy = array.query("d", query).values
        e = noise.relative_error_bound
        a = noise.additive_error_bound
        assert np.all(noisy <= truth * (1 + e) + a + 1e-6)
        assert np.all(noisy >= truth * (1 - e) - a - 1e-6)

    def test_noise_is_reproducible(self, noise, rng):
        matrix = rng.integers(0, 1000, size=(10, 8))
        query = rng.integers(0, 1000, size=8)
        results = []
        for _ in range(2):
            array = NoisyPIMArray(
                HardwareConfig(pim=PIMArrayConfig()), noise
            )
            array.program_matrix("d", matrix)
            results.append(array.query("d", query).values)
        assert np.array_equal(results[0], results[1])

    def test_ideal_model_is_exact(self, rng):
        array = NoisyPIMArray(
            HardwareConfig(pim=PIMArrayConfig()), NoiseModel()
        )
        matrix = rng.integers(0, 1000, size=(10, 8))
        array.program_matrix("d", matrix)
        query = rng.integers(0, 1000, size=8)
        assert np.array_equal(array.query("d", query).values, matrix @ query)

    def test_query_many_also_noisy(self, noise, rng):
        array = NoisyPIMArray(HardwareConfig(pim=PIMArrayConfig()), noise)
        matrix = rng.integers(0, 10**6, size=(20, 16))
        array.program_matrix("d", matrix)
        queries = rng.integers(0, 10**6, size=(3, 16))
        truth = queries @ matrix.T
        noisy = array.query_many("d", queries).values
        assert noisy.shape == truth.shape
        assert not np.array_equal(noisy, truth)


class TestCompensation:
    def test_upper_covers_truth(self, noise, rng):
        array = NoisyPIMArray(HardwareConfig(pim=PIMArrayConfig()), noise)
        matrix = rng.integers(0, 10**6, size=(100, 32))
        array.program_matrix("d", matrix)
        query = rng.integers(0, 10**6, size=32)
        truth = (matrix @ query).astype(np.float64)
        noisy = array.query("d", query).values
        assert np.all(
            compensate_dot_upper(noisy, noise)
            >= truth * (1.0 - 1e-12) - 1e-6
        )
        assert np.all(
            compensate_dot_lower(noisy, noise)
            <= truth * (1.0 + 1e-12) + 1e-6
        )

    def test_lower_clipped_at_zero(self, noise):
        assert compensate_dot_lower(np.array([0.0]), noise)[0] == 0.0


class TestNoisyBoundsStayValid:
    def test_lb_pim_ed_under_noise(self, noise, clustered_data, query_vector):
        from repro.bounds.pim import PIMEuclideanBound
        from repro.similarity.measures import euclidean_batch

        controller = PIMController(noise=noise)
        bound = PIMEuclideanBound(controller)
        bound.prepare(clustered_data)
        lb = bound.evaluate(query_vector)
        ed = euclidean_batch(clustered_data, query_vector)
        assert np.all(lb <= ed + 1e-9)

    def test_noisy_knn_still_exact(self, noise, clustered_data, query_vector):
        from repro.mining.knn import StandardKNN, StandardPIMKNN

        ref = StandardKNN().fit(clustered_data).query(query_vector, 10)
        algo = StandardPIMKNN(controller=PIMController(noise=noise))
        res = algo.fit(clustered_data).query(query_vector, 10)
        assert np.allclose(np.sort(res.scores), np.sort(ref.scores))

    def test_noise_costs_tightness_not_correctness(
        self, clustered_data, query_vector
    ):
        from repro.bounds.pim import PIMEuclideanBound

        clean = PIMEuclideanBound(PIMController())
        clean.prepare(clustered_data)
        noisy = PIMEuclideanBound(
            PIMController(noise=NoiseModel(cell_sigma=0.05, seed=1))
        )
        noisy.prepare(clustered_data)
        assert noisy.evaluate(query_vector).mean() <= clean.evaluate(
            query_vector
        ).mean() + 1e-9
