"""Unit tests for the synthetic dataset generators and the catalog."""

import numpy as np
import pytest

from repro.data import synthetic
from repro.data.catalog import (
    KMEANS_DATASETS,
    KNN_DATASETS,
    PROFILES,
    dataset_names,
    make_dataset,
    make_queries,
    profile,
)
from repro.data.lsh import RandomHyperplaneLSH, make_binary_codes
from repro.errors import DatasetError


class TestGenerators:
    def test_clustered_shape_and_range(self):
        data = synthetic.clustered(100, 16, seed=1)
        assert data.shape == (100, 16)
        assert data.min() >= 0.0 and data.max() <= 1.0

    def test_clustered_deterministic(self):
        a = synthetic.clustered(50, 8, seed=2)
        b = synthetic.clustered(50, 8, seed=2)
        assert np.array_equal(a, b)

    def test_correlation_smooths_noise(self):
        plain = synthetic.clustered(300, 64, correlation=0.0, seed=3)
        smooth = synthetic.clustered(300, 64, correlation=0.9, seed=3)

        def adjacent_corr(data):
            deltas = data - data.mean(axis=0)
            return np.mean(
                [
                    np.corrcoef(deltas[:, j], deltas[:, j + 1])[0, 1]
                    for j in range(0, 63, 7)
                ]
            )

        assert adjacent_corr(smooth) > adjacent_corr(plain)

    def test_diffuse_prunes_poorly(self):
        # distance concentration: the coefficient of variation of pairwise
        # distances is much lower for diffuse data than for clustered data
        from repro.similarity.measures import euclidean_batch

        diffuse = synthetic.diffuse(300, 64, seed=4)
        clustered = synthetic.clustered(300, 64, spread=0.04, seed=4)

        def cv(data):
            d = euclidean_batch(data[1:], data[0])
            return d.std() / d.mean()

        assert cv(diffuse) < cv(clustered)

    def test_sparse_counts_density(self):
        data = synthetic.sparse_counts(200, 100, density=0.1, seed=5)
        nonzero_fraction = np.count_nonzero(data) / data.size
        assert nonzero_fraction < 0.3
        assert data.min() >= 0.0

    def test_sparse_rejects_bad_density(self):
        with pytest.raises(DatasetError):
            synthetic.sparse_counts(10, 10, density=0.0)

    def test_queries_near_manifold(self):
        data = synthetic.clustered(100, 16, seed=6)
        queries = synthetic.queries_from(data, 5, noise=0.01, seed=7)
        assert queries.shape == (5, 16)
        assert queries.min() >= 0.0 and queries.max() <= 1.0

    def test_rejects_bad_shapes(self):
        with pytest.raises(DatasetError):
            synthetic.clustered(0, 4)


class TestCatalog:
    def test_all_table6_datasets_present(self):
        expected = {
            "ImageNet", "MSD", "GIST", "Trevi",
            "Year", "Notre", "NUS-WIDE", "Enron",
        }
        assert set(dataset_names()) == expected
        assert set(KNN_DATASETS) | set(KMEANS_DATASETS) <= expected

    def test_paper_dimensionalities_preserved(self):
        dims = {name: prof.dims for name, prof in PROFILES.items()}
        assert dims == {
            "ImageNet": 150, "MSD": 420, "GIST": 960, "Trevi": 4096,
            "Year": 90, "Notre": 128, "NUS-WIDE": 500, "Enron": 1369,
        }

    def test_make_dataset_defaults(self):
        data = make_dataset("Year", n=123)
        assert data.shape == (123, 90)

    def test_make_dataset_deterministic(self):
        assert np.array_equal(
            make_dataset("Notre", n=50, seed=1),
            make_dataset("Notre", n=50, seed=1),
        )

    def test_unknown_dataset(self):
        with pytest.raises(DatasetError):
            make_dataset("CIFAR")
        with pytest.raises(DatasetError):
            profile("CIFAR")

    def test_make_queries_shape(self):
        data = make_dataset("Year", n=100)
        queries = make_queries("Year", data, n_queries=4)
        assert queries.shape == (4, 90)


class TestLSH:
    def test_codes_are_binary(self):
        codes = make_binary_codes(100, 128, input_dims=32, seed=1)
        assert codes.shape == (100, 128)
        assert set(np.unique(codes)) <= {0, 1}

    def test_similarity_preservation(self):
        # nearby descriptors should share more bits than far ones
        rng = np.random.default_rng(2)
        base = rng.random(64)
        near = base + 0.01 * rng.standard_normal(64)
        far = rng.random(64)
        lsh = RandomHyperplaneLSH(64, 512, seed=3)
        codes = lsh.encode(np.vstack([base, near, far]))
        hd_near = int(np.count_nonzero(codes[0] != codes[1]))
        hd_far = int(np.count_nonzero(codes[0] != codes[2]))
        assert hd_near < hd_far

    def test_rejects_wrong_input_dims(self):
        lsh = RandomHyperplaneLSH(16, 32)
        with pytest.raises(DatasetError):
            lsh.encode(np.zeros((2, 8)))

    def test_rejects_bad_config(self):
        with pytest.raises(DatasetError):
            RandomHyperplaneLSH(0, 8)
