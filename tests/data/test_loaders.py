"""Unit tests for user-dataset loading."""

import numpy as np
import pytest

from repro.data.loaders import load_matrix, normalize_unit_range
from repro.errors import DatasetError


@pytest.fixture
def raw(rng):
    return rng.random((30, 6)) * 12 - 4


class TestNormalize:
    def test_unit_range(self, raw):
        normed = normalize_unit_range(raw)
        assert normed.min() == pytest.approx(0.0)
        assert normed.max() == pytest.approx(1.0)

    def test_constant_dimension(self):
        data = np.column_stack([np.full(5, 3.0), np.arange(5.0)])
        normed = normalize_unit_range(data)
        assert np.all(normed[:, 0] == 0.0)

    def test_rejects_1d(self):
        with pytest.raises(DatasetError):
            normalize_unit_range(np.arange(5.0))


class TestLoadMatrix:
    def test_npy(self, tmp_path, raw):
        path = tmp_path / "data.npy"
        np.save(path, raw)
        data = load_matrix(path)
        assert data.shape == raw.shape
        assert data.min() >= 0.0 and data.max() <= 1.0

    def test_npz_first_2d_array(self, tmp_path, raw):
        path = tmp_path / "data.npz"
        np.savez(path, meta=np.arange(3), features=raw)
        data = load_matrix(path)
        assert data.shape == raw.shape

    def test_npz_named_array(self, tmp_path, raw):
        path = tmp_path / "data.npz"
        np.savez(path, a=raw, b=raw[:5])
        assert load_matrix(path, array_name="b").shape == (5, 6)

    def test_npz_missing_name(self, tmp_path, raw):
        path = tmp_path / "data.npz"
        np.savez(path, a=raw)
        with pytest.raises(DatasetError, match="no array"):
            load_matrix(path, array_name="zzz")

    def test_csv_with_header(self, tmp_path, raw):
        path = tmp_path / "data.csv"
        header = ",".join(f"f{i}" for i in range(raw.shape[1]))
        np.savetxt(path, raw, delimiter=",", header=header, comments="")
        data = load_matrix(path)
        assert data.shape == raw.shape

    def test_whitespace_txt(self, tmp_path, raw):
        path = tmp_path / "data.txt"
        np.savetxt(path, raw)
        assert load_matrix(path).shape == raw.shape

    def test_max_rows(self, tmp_path, raw):
        path = tmp_path / "data.npy"
        np.save(path, raw)
        assert load_matrix(path, max_rows=7).shape == (7, 6)

    def test_no_normalize(self, tmp_path, raw):
        path = tmp_path / "data.npy"
        np.save(path, raw)
        data = load_matrix(path, normalize=False)
        assert np.allclose(data, raw)

    def test_missing_file(self, tmp_path):
        with pytest.raises(DatasetError, match="no dataset file"):
            load_matrix(tmp_path / "nope.npy")

    def test_unsupported_format(self, tmp_path):
        path = tmp_path / "data.parquet"
        path.write_bytes(b"xx")
        with pytest.raises(DatasetError, match="unsupported"):
            load_matrix(path)

    def test_rejects_nan(self, tmp_path, raw):
        raw[0, 0] = np.nan
        path = tmp_path / "data.npy"
        np.save(path, raw)
        with pytest.raises(DatasetError, match="NaN"):
            load_matrix(path)

    def test_cli_integration(self, tmp_path, raw):
        import io

        from repro.cli import main

        path = tmp_path / "data.npy"
        np.save(path, raw)
        out = io.StringIO()
        code = main(
            ["knn", "--data-file", str(path), "--queries", "1", "--k", "3"],
            out=out,
        )
        assert code == 0
        assert "results exact  : True" in out.getvalue()
