"""Golden regression tests for the batched wave timing model.

Every expected number here is hand-computed from the analytical model,
so any change to the batch latency equations shows up as an explicit
diff against the derivations in the comments. The platform is the
miniature 8x8 crossbar (2-bit cells, 2-bit DACs, 8-bit operands) with a
round 10 ns read latency and the default 50 GB/s internal bus:

* ``per_query_cycles = ceil(operand_bits / dac_bits) = ceil(8/2) = 4``
* ``setup_cycles = (gather_levels - 1) + PIPELINE_DRAIN_CYCLES``
* ``buffer_ns = B * n_vectors * accumulator_bits/8 / internal_bus_gbs``
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.hardware.config import (
    CrossbarConfig,
    HardwareConfig,
    PIMArrayConfig,
)
from repro.hardware.controller import PIMController
from repro.hardware.mapper import plan_layout
from repro.hardware.timing import (
    PIPELINE_DRAIN_CYCLES,
    batch_wave_timing,
    wave_timing,
)


def _platform() -> HardwareConfig:
    return HardwareConfig(
        pim=PIMArrayConfig(
            crossbar=CrossbarConfig(
                rows=8,
                cols=8,
                cell_bits=2,
                dac_bits=2,
                read_latency_ns=10.0,
            ),
            capacity_bytes=1 << 20,
            operand_bits=8,
            accumulator_bits=64,
        )
    )


@pytest.fixture
def platform() -> HardwareConfig:
    return _platform()


class TestAnalyticalGoldens:
    def test_flat_layout_batch_of_4(self, platform):
        # 3 vectors x 8 dims on 8-row crossbars: no gather tree
        # (gather_levels == 1), so setup = 0 + drain = 2 cycles.
        layout = plan_layout(3, 8, platform.pim)
        timing = batch_wave_timing(layout, platform.pim, platform, 4)

        assert timing.per_query_cycles == 4  # ceil(8/2)
        assert timing.setup_cycles == PIPELINE_DRAIN_CYCLES  # 2
        assert timing.total_cycles == 2 + 4 * 4  # 18
        assert timing.crossbar_ns == pytest.approx(180.0)  # 18 * 10 ns
        # 4 queries x 3 vectors x 8 B each over 50 GB/s = 4 * 0.48 ns
        assert timing.buffer_ns == pytest.approx(1.92)
        assert timing.total_ns == pytest.approx(181.92)
        assert timing.amortized_ns_per_query == pytest.approx(181.92 / 4)

    def test_gathered_layout_batch_of_8(self, platform):
        # 2 vectors x 20 dims: ceil(20/8) = 3 data crossbars per vector
        # group merge through one gather level -> gather_levels == 2,
        # setup = 1 + drain = 3 cycles.
        layout = plan_layout(2, 20, platform.pim)
        assert layout.gather_levels == 2
        timing = batch_wave_timing(layout, platform.pim, platform, 8)

        assert timing.setup_cycles == 1 + PIPELINE_DRAIN_CYCLES  # 3
        assert timing.total_cycles == 3 + 8 * 4  # 35
        assert timing.crossbar_ns == pytest.approx(350.0)
        # 8 queries x 2 vectors x 8 B over 50 GB/s = 8 * 0.32 ns
        assert timing.buffer_ns == pytest.approx(2.56)
        assert timing.total_ns == pytest.approx(352.56)

    def test_narrow_input_bits_shrink_per_query_cycles(self, platform):
        # 4-bit inputs halve the DAC slice count: ceil(4/2) = 2.
        layout = plan_layout(3, 8, platform.pim)
        timing = batch_wave_timing(
            layout, platform.pim, platform, 5, input_bits=4
        )
        assert timing.per_query_cycles == 2
        assert timing.total_cycles == 2 + 5 * 2  # 12
        assert timing.crossbar_ns == pytest.approx(120.0)

    def test_batch_of_one_is_exactly_one_wave(self, platform):
        layout = plan_layout(3, 8, platform.pim)
        single = wave_timing(layout, platform.pim, platform)
        batch = batch_wave_timing(layout, platform.pim, platform, 1)
        assert batch.total_cycles == single.total_cycles
        assert batch.crossbar_ns == single.crossbar_ns
        assert batch.buffer_ns == single.buffer_ns
        assert batch.total_ns == single.total_ns

    def test_batch_saving_is_setup_amortization(self, platform):
        # B waves merged into one batch save exactly (B-1) x setup
        # crossbar cycles; buffer traffic is identical.
        layout = plan_layout(2, 20, platform.pim)
        single = wave_timing(layout, platform.pim, platform)
        for b in (2, 3, 8, 16):
            batch = batch_wave_timing(layout, platform.pim, platform, b)
            saved_cycles = b * single.total_cycles - batch.total_cycles
            assert saved_cycles == (b - 1) * batch.setup_cycles
            assert batch.buffer_ns == pytest.approx(b * single.buffer_ns)

    def test_rejects_empty_batch(self, platform):
        layout = plan_layout(3, 8, platform.pim)
        with pytest.raises(ValueError):
            batch_wave_timing(layout, platform.pim, platform, 0)


class TestArrayLevelGoldens:
    def test_query_batch_charges_analytical_total(self, platform):
        controller = PIMController(platform)
        matrix = np.arange(24, dtype=np.int64).reshape(3, 8) % 200
        controller.pim.program_matrix("m", matrix)
        queries = (np.arange(32, dtype=np.int64).reshape(4, 8) * 7) % 256

        result = controller.pim.query_batch("m", queries)

        # Same golden as test_flat_layout_batch_of_4.
        assert controller.pim.stats.pim_time_ns == pytest.approx(181.92)
        assert result.timing.total_ns == pytest.approx(181.92)
        # Sequential cost would be 4 x (6 cycles * 10 ns + 0.48 ns);
        # the booked saving is the 60 ns of skipped setup cycles.
        assert controller.pim.stats.batch_saved_ns == pytest.approx(60.0)
        assert np.array_equal(
            result.values, queries.astype(np.int64) @ matrix.T
        )

    def test_stats_track_waves_per_batch(self, platform):
        controller = PIMController(platform)
        matrix = np.ones((3, 8), dtype=np.int64)
        controller.pim.program_matrix("m", matrix)
        controller.pim.query_batch("m", np.ones((4, 8), dtype=np.int64))
        controller.pim.query_batch("m", np.ones((2, 8), dtype=np.int64))

        stats = controller.pim.stats
        assert stats.batches == 2
        assert stats.batched_queries == 6
        assert stats.waves == 6
        assert stats.waves_per_batch == pytest.approx(3.0)
