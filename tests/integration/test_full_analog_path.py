"""End-to-end fidelity: mining on the cell-level analog simulation.

The fast PIM path computes matrix products directly; these tests force
the *cell-level* path (real crossbar objects, DAC slicing, shift-and-add
on every wave) through a whole mining algorithm on a miniature platform
and assert the final mining results still match the CPU baselines —
the deepest equivalence check in the suite.
"""

import numpy as np
import pytest

from repro.hardware.config import (
    CrossbarConfig,
    HardwareConfig,
    PIMArrayConfig,
)
from repro.hardware.controller import PIMController
from repro.mining.knn import StandardKNN, StandardPIMKNN
from repro.similarity.quantization import Quantizer


@pytest.fixture
def cell_platform() -> HardwareConfig:
    """Small crossbars so the cell simulation stays fast."""
    return HardwareConfig(
        pim=PIMArrayConfig(
            crossbar=CrossbarConfig(rows=16, cols=16, cell_bits=2),
            capacity_bytes=1 << 22,
            operand_bits=10,
            accumulator_bits=64,
        )
    )


class TestCellLevelKNN:
    def test_knn_exact_through_real_crossbars(self, cell_platform, rng):
        centers = rng.random((4, 12))
        data = np.clip(
            centers[rng.integers(0, 4, 60)]
            + 0.05 * rng.standard_normal((60, 12)),
            0,
            1,
        )
        q = np.clip(data[7] + 0.02 * rng.standard_normal(12), 0, 1)
        # alpha sized to the 10-bit operand width of the tiny platform
        quantizer = Quantizer(alpha=1000, assume_normalized=True)
        controller = PIMController(cell_platform, simulate_cells=True)
        ref = StandardKNN().fit(data).query(q, 5)
        algo = StandardPIMKNN(
            controller=controller, quantizer=quantizer
        ).fit(data)
        res = algo.query(q, 5)
        assert np.allclose(np.sort(res.scores), np.sort(ref.scores))
        # the wave really ran on cell objects
        assert controller.pim.simulate_cells
        assert controller.pim.stats.waves >= 1

    def test_cell_and_fast_paths_agree_end_to_end(self, cell_platform, rng):
        data = np.clip(rng.random((40, 12)), 0, 1)
        q = rng.random(12)
        results = []
        for simulate in (False, True):
            controller = PIMController(
                cell_platform, simulate_cells=simulate
            )
            algo = StandardPIMKNN(
                controller=controller,
                quantizer=Quantizer(alpha=1000, assume_normalized=True),
            ).fit(data)
            results.append(algo.query(q, 5))
        assert np.array_equal(results[0].indices, results[1].indices)
        assert np.allclose(results[0].scores, results[1].scores)


class TestModerateScale:
    def test_knn_exactness_at_20k_objects(self, rng):
        """A larger-N smoke test: pruning machinery at realistic scale."""
        centers = rng.random((50, 64))
        data = np.clip(
            centers[rng.integers(0, 50, 20000)]
            + 0.04 * rng.standard_normal((20000, 64)),
            0,
            1,
        )
        q = np.clip(data[123] + 0.02 * rng.standard_normal(64), 0, 1)
        ref = StandardKNN().fit(data).query(q, 10)
        algo = StandardPIMKNN().fit(data)
        res = algo.query(q, 10)
        assert np.allclose(np.sort(res.scores), np.sort(ref.scores))
        # pruning must stay strong at scale
        assert res.exact_computations < 0.05 * data.shape[0]
