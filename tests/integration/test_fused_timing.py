"""Golden simulated-timing tests: fusion moved zero nanoseconds.

The kernel fusion (vectorised bit-slicing, cached decompositions, block
scoring) is a *wall-clock* optimisation only — simulated PIM latency,
energy, CPU cost-model times, refined/pruned counts and answer bits are
pinned here against values captured from the pre-fusion loop
implementation. Any drift in these constants means the fused kernels
changed observable simulator behaviour, which is a bug by definition.

The constants are compared with ``==`` on purpose: the timing model is
closed-form arithmetic on layout/config numbers and must be
reproducible to the last bit on every platform the CI matrix runs.
"""

import numpy as np
import pytest

from repro.hardware.config import (
    CrossbarConfig,
    HardwareConfig,
    PIMArrayConfig,
)
from repro.hardware.controller import PIMController
from repro.hardware.energy import EnergyModel
from repro.mining.knn import StandardPIMKNN
from repro.serving import ShardManager


def _small_platform() -> HardwareConfig:
    return HardwareConfig(
        pim=PIMArrayConfig(
            crossbar=CrossbarConfig(
                rows=8, cols=8, cell_bits=2, dac_bits=2,
                read_latency_ns=10.0,
            ),
            capacity_bytes=1 << 20,
            operand_bits=8,
            accumulator_bits=64,
        )
    )


class TestCellWaveGoldens:
    """Scenario: simulate_cells waves on the small 8x8 platform."""

    @pytest.fixture()
    def controller(self):
        ctrl = PIMController(_small_platform(), simulate_cells=True)
        matrix = (np.arange(7 * 20, dtype=np.int64).reshape(7, 20) * 13) % 251
        ctrl.program("m", matrix)
        return ctrl

    def test_single_wave_values_and_latency(self, controller):
        q = (np.arange(20, dtype=np.int64) * 7) % 256
        result = controller.dot_products("m", q)
        assert result.values.tolist() == [
            224770, 203357, 183701, 195671, 177772, 161630, 173600,
        ]
        assert result.timing.total_ns == 71.12

    def test_batch_wave_values_and_latency(self, controller):
        queries = (np.arange(5 * 20, dtype=np.int64).reshape(5, 20) * 3) % 256
        batch = controller.dot_products_batch("m", queries)
        assert batch.values[0].tolist() == [
            96330, 87153, 78729, 83859, 76188, 69270, 74400,
        ]
        assert batch.timing.total_ns == 235.6

    def test_cumulative_stats_and_energy(self, controller):
        q = (np.arange(20, dtype=np.int64) * 7) % 256
        queries = (np.arange(5 * 20, dtype=np.int64).reshape(5, 20) * 3) % 256
        controller.dot_products("m", q)
        controller.dot_products_batch("m", queries)
        stats = controller.pim.stats
        assert stats.pim_time_ns == 306.72
        assert stats.batch_saved_ns == 120.00000000000003
        assert stats.programming_time_ns == 457.92
        model = EnergyModel()
        layout = controller.pim.layouts()["m"]
        assert model.wave_energy_j(
            layout, controller.pim.config
        ) == 3.2489600000000005e-10
        assert model.programming_energy_j(layout) == 1.12e-10


class TestServingGoldens:
    """Scenario: sharded kNN + assign on seeded data, Table 5 platform."""

    def test_knn_batch_timing_and_counts(self):
        rng = np.random.default_rng(2024)
        data = rng.random((180, 24))
        manager = ShardManager(data, n_shards=3)
        queries = rng.random((4, 24))
        answers, timing = manager.knn_batch(queries, 5)
        assert [a.refined for a in answers] == [15, 15, 15, 15]
        assert [a.pruned for a in answers] == [165, 165, 165, 165]
        assert timing.service_ns == 3562.0030480248925
        assert timing.per_shard_pim_ns == [1972.86] * 3
        assert timing.per_shard_cpu_ns == [1482.4072860186693] * 3
        assert timing.merge_cpu_ns == 106.73576200622313
        assert answers[0].indices.tolist() == [111, 85, 66, 91, 73]
        assert answers[0].scores.tolist() == [
            1.1201665886942318,
            2.0368145930103037,
            2.1087885135519686,
            2.2271109645467195,
            2.4695571098088407,
        ]

    def test_assign_timing_and_counts(self):
        rng = np.random.default_rng(2024)
        data = rng.random((180, 24))
        rng.random((4, 24))  # keep the seeded draw order of the capture
        manager = ShardManager(data, n_shards=3)
        centers = rng.random((6, 24))
        answer, timing = manager.assign(centers)
        assert answer.refined == 449
        assert answer.pruned == 631
        assert timing.service_ns == 11103.715929028003
        assert answer.assignments[:10].tolist() == [
            5, 0, 2, 3, 5, 3, 4, 2, 3, 5,
        ]
        assert float(answer.distances[0]) == 3.1213128192226858


class TestMiningGoldens:
    """Scenario: full-platform fast-path kNN through the mining layer."""

    def test_standard_knn_pim_time(self):
        rng = np.random.default_rng(7)
        data = rng.random((300, 40))
        algo = StandardPIMKNN().fit(data)
        result = algo.query(np.clip(data[3] + 0.01, 0, 1), 10)
        assert result.pim_time_ns == 575.5799999999999
        assert result.indices.tolist() == [
            3, 299, 190, 166, 157, 159, 145, 220, 203, 49,
        ]
        stats = algo.controller.pim.stats
        assert stats.pim_time_ns == 575.5799999999999
        assert stats.waves == 1
