"""Integration tests: the full pipeline on catalog datasets.

These mirror the paper's experimental flow at miniature scale: generate
a Table 6 stand-in, profile a baseline, build the PIM variant, verify
exactness, and check the speedup *shape* (who wins and roughly why),
not absolute numbers.
"""

import numpy as np
import pytest

from repro.core.framework import PIMAccelerator
from repro.core.profiler import profile_kmeans, profile_knn
from repro.data.catalog import make_dataset, make_queries
from repro.data.lsh import make_binary_codes
from repro.hardware.controller import PIMController
from repro.mining.kmeans import initial_centers, make_kmeans
from repro.mining.knn import (
    HammingKNN,
    PIMHammingKNN,
    StandardKNN,
    StandardPIMKNN,
)


class TestKNNPipeline:
    @pytest.mark.parametrize("dataset", ["MSD", "Year"])
    def test_accelerate_standard_on_catalog_data(self, dataset):
        data = make_dataset(dataset, n=600, seed=0)
        queries = make_queries(dataset, data, n_queries=2)
        report = PIMAccelerator().accelerate_knn(
            "Standard", data, queries, k=10
        )
        assert report.results_match
        assert report.promising
        assert report.speedup > 2.0
        assert report.speedup <= report.oracle_speedup + 1e-9

    def test_higher_dimensionality_gives_larger_speedup(self):
        # Fig. 13a: speedup grows with d (transfer shrinks d*b -> 3*b)
        speedups = {}
        for dataset, n in [("Year", 500), ("Trevi", 200)]:
            data = make_dataset(dataset, n=n, seed=1)
            queries = make_queries(dataset, data, n_queries=2)
            report = PIMAccelerator().accelerate_knn(
                "Standard", data, queries, k=5
            )
            speedups[dataset] = report.speedup
        assert speedups["Trevi"] > speedups["Year"]

    def test_diffuse_data_weakens_pim_gain(self):
        # Fig. 13a: GIST-like data prunes poorly under the compressed
        # (Theorem 4) bound, shrinking PIM's gain vs clustered data
        gains = {}
        for dataset in ["MSD", "GIST"]:
            data = make_dataset(dataset, n=400, seed=2)
            queries = make_queries(dataset, data, n_queries=2)
            dims = data.shape[1]
            algo = StandardPIMKNN(n_segments=dims // 4).fit(data)
            result = algo.query(queries[0], 10)
            gains[dataset] = result.exact_computations / data.shape[0]
        assert gains["MSD"] < gains["GIST"]


class TestHammingPipeline:
    def test_fig14_shape_long_codes_benefit_more(self):
        # PIM transfer is fixed (64 bits) while CPU transfer grows with
        # code length, so the speedup must grow with dimensionality
        speedups = {}
        for bits in [128, 1024]:
            codes = make_binary_codes(400, bits, input_dims=64, seed=3)
            q = codes[17]
            cpu = profile_knn(HammingKNN().fit(codes), q[None, :], 10)
            pim = profile_knn(PIMHammingKNN().fit(codes), q[None, :], 10)
            speedups[bits] = cpu.total_time_ns / pim.total_time_ns
        assert speedups[1024] > speedups[128]


class TestKMeansPipeline:
    def test_accelerate_all_algorithms_exactly(self):
        data = make_dataset("Notre", n=400, seed=4)
        for name in ["Standard", "Drake", "Yinyang"]:
            report = PIMAccelerator().accelerate_kmeans(
                name, data, k=8, max_iters=5
            )
            assert report.results_match, name
            assert report.speedup > 1.0, name

    def test_standard_gains_most_from_pim(self):
        # Table 7 shape: Standard has no bounds, so PIM removes the most
        data = make_dataset("Year", n=500, seed=5)
        k = 16
        init = initial_centers(data, k, seed=6)
        speedups = {}
        for name in ["Standard", "Elkan"]:
            base = profile_kmeans(
                make_kmeans(name, k, max_iters=5), data,
                centers=init.copy(),
            )
            pim = profile_kmeans(
                make_kmeans(name + "-PIM", k, max_iters=5), data,
                centers=init.copy(),
            )
            speedups[name] = base.total_time_ns / pim.total_time_ns
        assert speedups["Standard"] > speedups["Elkan"]


class TestSharedSubstrate:
    def test_one_controller_hosts_knn_and_kmeans(self):
        # the 2 GB array is big enough for several programmed matrices
        data = make_dataset("Year", n=300, seed=7)
        controller = PIMController()
        knn = StandardPIMKNN(controller=controller).fit(data)
        queries = make_queries("Year", data, n_queries=1)
        ref = StandardKNN().fit(data).query(queries[0], 5)
        res = knn.query(queries[0], 5)
        assert np.allclose(np.sort(res.scores), np.sort(ref.scores))

        from repro.mining.kmeans import PIMAssist

        assist = PIMAssist(controller)
        algo = make_kmeans("Standard-PIM", 6, max_iters=4, pim_assist=assist)
        result = algo.fit(data, initial_centers(data, 6, seed=8))
        assert result.n_iterations >= 1
        assert len(controller.pim.layouts()) == 2
