"""Failure-injection integration tests.

Exhausted endurance, overflowing buffers, oversized datasets and
degenerate inputs must surface as the library's typed exceptions (never
silent wrong answers), and recoverable paths must actually recover.
"""

import numpy as np
import pytest

from repro.errors import (
    CapacityError,
    EnduranceExceededError,
    OperandError,
)
from repro.hardware.config import (
    CrossbarConfig,
    HardwareConfig,
    PIMArrayConfig,
)
from repro.hardware.pim_array import PIMArray
from repro.hardware.reprogramming import ChunkedDotProductEngine
from repro.mining.kmeans import make_kmeans
from repro.mining.knn import StandardKNN, StandardPIMKNN


def _worn_platform(endurance: float) -> HardwareConfig:
    xbar = CrossbarConfig(rows=16, cols=16, cell_bits=2, endurance=endurance)
    return HardwareConfig(
        pim=PIMArrayConfig(
            crossbar=xbar,
            capacity_bytes=8 * (xbar.capacity_bits // 8),
            operand_bits=8,
        )
    )


class TestEnduranceExhaustion:
    def test_chunked_engine_wears_out(self, rng):
        engine = ChunkedDotProductEngine(_worn_platform(endurance=4))
        data = rng.integers(0, 256, size=(100, 16))
        n_chunks = engine.load(data)
        assert n_chunks > 1
        query = rng.integers(0, 256, size=16)
        with pytest.raises(EnduranceExceededError):
            for _ in range(10):
                engine.dot_products_all(query)

    def test_resident_workload_survives(self, rng):
        # a dataset that fits is programmed once: low endurance is fine
        engine = ChunkedDotProductEngine(_worn_platform(endurance=2))
        data = rng.integers(0, 256, size=(4, 16))
        assert engine.load(data) == 1
        query = rng.integers(0, 256, size=16)
        for _ in range(10):
            engine.dot_products_all(query)


class TestCapacityFailures:
    def test_program_overflow_is_typed(self, rng):
        array = PIMArray(_worn_platform(endurance=1e9))
        with pytest.raises(CapacityError):
            array.program_matrix("big", rng.integers(0, 256, size=(10**5, 16)))

    def test_failed_program_leaves_array_usable(self, rng):
        array = PIMArray(_worn_platform(endurance=1e9))
        with pytest.raises(CapacityError):
            array.program_matrix("big", rng.integers(0, 256, size=(10**5, 16)))
        small = rng.integers(0, 256, size=(4, 16))
        array.program_matrix("small", small)
        q = rng.integers(0, 256, size=16)
        assert np.array_equal(array.query("small", q).values, small @ q)


class TestDegenerateInputs:
    def test_constant_dataset_knn(self):
        data = np.full((50, 8), 0.5)
        q = np.full(8, 0.5)
        ref = StandardKNN().fit(data).query(q, 5)
        pim = StandardPIMKNN().fit(data).query(q, 5)
        assert np.allclose(ref.scores, 0.0)
        assert np.allclose(pim.scores, 0.0)

    def test_duplicate_rows_kmeans(self):
        data = np.vstack(
            [np.full((30, 6), 0.2), np.full((30, 6), 0.8)]
        )
        base = make_kmeans("Standard", 2, max_iters=5).fit(data, seed=3)
        pim = make_kmeans("Standard-PIM", 2, max_iters=5).fit(data, seed=3)
        assert base.inertia == pytest.approx(0.0, abs=1e-12)
        assert pim.inertia == pytest.approx(0.0, abs=1e-12)

    def test_single_point_per_cluster(self, rng):
        data = rng.random((4, 5))
        result = make_kmeans("Elkan", 4, max_iters=5).fit(data, seed=0)
        assert result.inertia == pytest.approx(0.0, abs=1e-12)

    def test_zero_vector_queries(self, clustered_data):
        q = np.zeros(clustered_data.shape[1])
        ref = StandardKNN().fit(clustered_data).query(q, 5)
        pim = StandardPIMKNN().fit(clustered_data).query(q, 5)
        assert np.allclose(np.sort(ref.scores), np.sort(pim.scores))

    def test_query_outside_unit_cube_is_clipped_consistently(
        self, clustered_data
    ):
        # the quantizer clips online queries into the normalised range;
        # exactness is preserved because the *refinement* uses the raw
        # query, and the clipped bound is still a valid lower bound only
        # for in-range queries — so out-of-range queries must error or
        # be handled; here we check the in-range contract explicitly
        q = np.clip(
            clustered_data[0] + 0.5, 0.0, 1.0
        )
        ref = StandardKNN().fit(clustered_data).query(q, 5)
        pim = StandardPIMKNN().fit(clustered_data).query(q, 5)
        assert np.allclose(np.sort(ref.scores), np.sort(pim.scores))

    def test_wrong_dtype_rejected(self):
        array = PIMArray(_worn_platform(endurance=1e9))
        with pytest.raises(OperandError):
            array.program_matrix("f", np.random.rand(4, 8))
