"""Cost-router behaviour: winner flips, tie-breaks, objectives."""

import pytest

from repro.errors import ConfigurationError
from repro.substrate import CostRouter


class TestRouting:
    def test_low_dim_small_n_prefers_hbm(self):
        """Tiny single-query waves: per-command DRAM beats the crossbar
        pipeline fill (the bank MAC streams a handful of bursts)."""
        router = CostRouter()
        hbm = router.predict("hbm_pim", 64, 16, 1)
        xbar = router.predict("crossbar", 64, 16, 1)
        assert hbm < xbar

    def test_high_dim_batch_prefers_crossbar(self):
        """Wide batched waves: GRF pressure streams hundreds of bursts
        per vector while the crossbars stay one wave deep."""
        router = CostRouter()
        hbm = router.predict("hbm_pim", 100_000, 512, 32)
        xbar = router.predict("crossbar", 100_000, 512, 32)
        assert xbar < hbm

    def test_order_ranks_cheapest_first_with_failover_tail(self):
        router = CostRouter()
        decision = router.order(
            0,
            [(0, "crossbar", 100_000, 512), (1, "hbm_pim", 100_000, 512)],
            n_queries=32,
        )
        assert decision.winner == 0
        assert decision.winner_substrate == "crossbar"
        assert [s for s, _, _ in decision.ranked] == [0, 1]

    def test_identical_predictions_tie_break_to_lower_shard(self):
        router = CostRouter()
        decision = router.order(
            2,
            [(3, "crossbar", 500, 32), (1, "crossbar", 500, 32)],
            n_queries=2,
        )
        assert decision.winner == 1

    def test_energy_objective_is_a_distinct_ranking_key(self):
        lat = CostRouter(objective="latency")
        joules = CostRouter(objective="energy")
        a = lat.predict("hbm_pim", 1000, 64, 4)
        b = joules.predict("hbm_pim", 1000, 64, 4)
        assert a != b  # ns vs J scales differ by many orders

    def test_unknown_objective_rejected(self):
        with pytest.raises(ConfigurationError):
            CostRouter(objective="carbon")

    def test_predictions_memoized(self):
        router = CostRouter()
        router.predict("crossbar", 1000, 64, 4)
        cached = dict(router._predictions)
        router.predict("crossbar", 1000, 64, 4)
        assert router._predictions == cached

    def test_decision_to_dict_artifact_shape(self):
        router = CostRouter()
        decision = router.order(
            1, [(0, "crossbar", 64, 16), (1, "hbm_pim", 64, 16)]
        )
        artifact = decision.to_dict()
        assert artifact["chunk"] == 1
        assert artifact["winner"] == decision.winner
        assert artifact["winner_substrate"] == decision.winner_substrate
        assert len(artifact["ranked"]) == 2
        assert all(
            entry["predicted_ns"] > 0 for entry in artifact["ranked"]
        )
