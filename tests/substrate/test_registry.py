"""Registry + protocol conformance of the built-in substrates."""

import pytest

from repro.errors import ConfigurationError, ProgrammingError
from repro.hardware.pim_array import PIMArray
from repro.substrate import (
    Substrate,
    SubstrateSpec,
    available_substrates,
    create_substrate,
    register_substrate,
    substrate_capabilities,
)
from repro.substrate.hbm_pim import HBMPIMArray
from repro.substrate.registry import _REGISTRY


class TestRegistry:
    def test_builtins_registered(self):
        assert available_substrates() == ["crossbar", "hbm_pim"]

    def test_create_builds_the_right_device(self):
        assert isinstance(create_substrate("crossbar"), PIMArray)
        assert isinstance(create_substrate("hbm_pim"), HBMPIMArray)

    def test_unknown_name_raises(self):
        with pytest.raises(ConfigurationError, match="registered"):
            create_substrate("optical")
        with pytest.raises(ConfigurationError):
            substrate_capabilities("optical")

    def test_duplicate_registration_guard(self):
        spec = _REGISTRY["crossbar"]
        with pytest.raises(ProgrammingError):
            register_substrate(spec)
        register_substrate(spec, replace=True)  # tests may swap in fakes

    def test_reference_flag_reaches_the_device(self):
        assert create_substrate("crossbar", reference=True).reference
        assert create_substrate("hbm_pim", reference=True).reference


class TestProtocolConformance:
    """Both backends satisfy the structural Substrate protocol."""

    @pytest.mark.parametrize("name", ["crossbar", "hbm_pim"])
    def test_runtime_checkable(self, name):
        device = create_substrate(name)
        assert isinstance(device, Substrate)

    @pytest.mark.parametrize("name", ["crossbar", "hbm_pim"])
    def test_stats_backend_names_the_substrate(self, name):
        assert create_substrate(name).stats.backend == name

    def test_unit_names(self):
        assert create_substrate("crossbar").unit_name == "crossbar"
        assert create_substrate("hbm_pim").unit_name == "bank"


class TestCapabilities:
    def test_describe_fields(self):
        for name in available_substrates():
            desc = substrate_capabilities(name).describe()
            assert desc["name"] == name
            assert desc["memory_device"] in ("reram", "dram")
            assert desc["endurance"] > 0

    def test_dram_outlasts_reram(self):
        reram = substrate_capabilities("crossbar").endurance
        dram = substrate_capabilities("hbm_pim").endurance
        assert dram > reram

    @pytest.mark.parametrize("name", ["crossbar", "hbm_pim"])
    def test_predictions_positive_and_monotone_in_batch(self, name):
        caps = substrate_capabilities(name)
        one = caps.predict_query_ns(1000, 64, 1)
        eight = caps.predict_query_ns(1000, 64, 8)
        assert 0 < one < eight
        assert caps.predict_program_ns(1000, 64) > 0
        assert caps.predict_query_energy_j(1000, 64, 1) > 0
        assert caps.predict_program_energy_j(1000, 64) > 0

    @pytest.mark.parametrize("name", ["crossbar", "hbm_pim"])
    def test_fits_fresh_respects_spares(self, name):
        caps = substrate_capabilities(name)
        assert caps.fits_fresh(100, 16)
        assert not caps.fits_fresh(10**12, 4096)

    def test_prediction_matches_device_charge(self):
        """Capability predictions equal what a live device charges."""
        import numpy as np

        for name in available_substrates():
            caps = substrate_capabilities(name)
            device = create_substrate(name)
            rng = np.random.default_rng(3)
            matrix = rng.integers(0, 127, size=(300, 24)).astype(np.int64)
            queries = rng.integers(0, 127, size=(4, 24)).astype(np.int64)
            device.program_matrix("m", matrix)
            before = device.stats.pim_time_ns
            device.query_batch("m", queries)
            charged = device.stats.pim_time_ns - before
            assert charged == pytest.approx(
                caps.predict_query_ns(300, 24, 4), rel=1e-9
            ), name
