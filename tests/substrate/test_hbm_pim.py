"""HBM-PIM device behaviour: exactness, capacity, repair, stats."""

import numpy as np
import pytest

from repro.errors import CapacityError, OperandError, ProgrammingError
from repro.hardware import bitslice
from repro.hardware.pim_array import PIMArray, PIMStats
from repro.substrate.hbm_pim import HBMPIMArray


def _matrix(n, dims, seed=0, high=255):
    rng = np.random.default_rng(seed)
    return rng.integers(0, high, size=(n, dims)).astype(np.int64)


class TestExactness:
    def test_query_matches_crossbar_bit_for_bit(self):
        matrix = _matrix(500, 40)
        queries = _matrix(6, 40, seed=1)
        hbm = HBMPIMArray()
        xbar = PIMArray()
        hbm.program_matrix("m", matrix)
        xbar.program_matrix("m", matrix)
        for q in queries:
            assert np.array_equal(
                hbm.query("m", q).values, xbar.query("m", q).values
            )
        assert np.array_equal(
            hbm.query_batch("m", queries).values,
            xbar.query_batch("m", queries).values,
        )

    def test_fast_path_matches_instruction_stream_oracle(self):
        matrix = _matrix(130, 23)
        queries = _matrix(4, 23, seed=2)
        fast = HBMPIMArray()
        oracle = HBMPIMArray(reference=True)
        fast.program_matrix("m", matrix)
        oracle.program_matrix("m", matrix)
        assert np.array_equal(
            fast.query_batch("m", queries).values,
            oracle.query_batch("m", queries).values,
        )

    def test_accumulator_truncation_applies(self):
        hbm = HBMPIMArray()
        matrix = np.full((2, 8), 255, dtype=np.int64)
        hbm.program_matrix("m", matrix)
        q = np.full(8, 255, dtype=np.int64)
        raw = q @ matrix.T
        want = bitslice.truncate_result(raw, hbm.config.accumulator_bits)
        assert np.array_equal(hbm.query("m", q).values, want)

    def test_operand_validation(self):
        hbm = HBMPIMArray()
        with pytest.raises(OperandError):
            hbm.program_matrix("m", -_matrix(4, 4) - 1)
        hbm.program_matrix("m", _matrix(4, 4))
        with pytest.raises(OperandError):
            hbm.query("m", _matrix(1, 5)[0])  # wrong dims
        with pytest.raises(ProgrammingError):
            hbm.query("ghost", _matrix(1, 4)[0])


class TestCapacityAndPlacement:
    def test_shared_banks_host_multiple_matrices(self):
        """Hamming needs codes + complement resident simultaneously."""
        hbm = HBMPIMArray()
        hbm.program_matrix("codes", _matrix(200, 32))
        hbm.program_matrix("complement", _matrix(200, 32, seed=1))
        assert set(hbm.layouts()) == {"codes", "complement"}

    def test_duplicate_name_rejected_until_reset(self):
        hbm = HBMPIMArray()
        hbm.program_matrix("m", _matrix(10, 8))
        with pytest.raises(ProgrammingError):
            hbm.program_matrix("m", _matrix(10, 8))
        hbm.reset_matrix("m")
        hbm.program_matrix("m", _matrix(10, 8))

    def test_reset_frees_bank_bytes(self):
        hbm = HBMPIMArray()
        hbm.program_matrix("m", _matrix(64, 16))
        used = dict(hbm._bank_bytes_used)
        assert any(v > 0 for v in used.values())
        hbm.reset_matrix("m")
        assert all(v == 0 for v in hbm._bank_bytes_used.values())

    def test_fits_matrix_exclude_models_reprogram(self):
        hbm = HBMPIMArray()
        big = hbm.config.bank_bytes // hbm.config.burst_bytes // 2
        hbm.program_matrix("m", _matrix(64, 8, high=2))
        assert hbm.fits_matrix(64, 8)
        assert hbm.fits_matrix(64, 8, exclude="m")
        assert not hbm.fits_matrix(big * 64 * 4, 8)

    def test_capacity_error_message_names_banks(self):
        hbm = HBMPIMArray(spare_banks=63)  # one data bank left
        rows = hbm.config.bank_bytes // hbm.config.burst_bytes + 1
        with pytest.raises(CapacityError):
            hbm.program_matrix("m", _matrix(rows, 8, high=2))

    def test_all_spares_is_rejected(self):
        with pytest.raises(CapacityError):
            HBMPIMArray(spare_banks=64)


class TestRemapAndWear:
    def test_remap_preserves_values_and_retires_bank(self):
        matrix = _matrix(300, 24)
        q = _matrix(1, 24, seed=5)[0]
        hbm = HBMPIMArray(spare_banks=2)
        hbm.program_matrix("m", matrix)
        before = hbm.query("m", q).values
        victim = hbm.crossbar_ids_of("m")[0]
        spare, ns = hbm.remap_crossbar(victim)
        assert ns > 0
        assert spare in (0, 1)  # spares take the first physical ids
        assert victim not in hbm.crossbar_ids_of("m")
        assert hbm.remap_table[victim] == spare
        assert hbm.spares_remaining == 1
        assert np.array_equal(hbm.query("m", q).values, before)

    def test_remap_without_spares_raises(self):
        hbm = HBMPIMArray()
        hbm.program_matrix("m", _matrix(10, 8))
        with pytest.raises(CapacityError):
            hbm.remap_crossbar(hbm.crossbar_ids_of("m")[0])

    def test_substrate_neutral_aliases(self):
        hbm = HBMPIMArray(spare_banks=1)
        hbm.program_matrix("m", _matrix(10, 8))
        assert hbm.unit_ids_of("m") == hbm.crossbar_ids_of("m")
        victim = hbm.unit_ids_of("m")[0]
        spare, _ = hbm.remap_unit(victim)
        assert hbm.remap_table[victim] == spare

    def test_programming_wears_banks(self):
        hbm = HBMPIMArray()
        hbm.program_matrix("m", _matrix(64, 16))
        report = hbm.wear_report(top=3)
        assert report["max_writes"] == 1
        assert report["units_tracked"] == 64


class TestStatsAcrossBackends:
    """PIMStats aggregates cleanly over unlike backends (satellite 2)."""

    def test_backend_field_survives_uniform_merge(self):
        parts = [PIMStats(backend="hbm_pim"), PIMStats(backend="hbm_pim")]
        assert PIMStats.merge(parts).backend == "hbm_pim"

    def test_mixed_backends_merge_to_mixed(self):
        merged = PIMStats.merge(
            [PIMStats(backend="crossbar"), PIMStats(backend="hbm_pim")]
        )
        assert merged.backend == "mixed"

    def test_extra_counters_sum_keywise(self):
        a = PIMStats(backend="hbm_pim")
        a.add_extra("mac_commands", 10)
        b = PIMStats(backend="hbm_pim")
        b.add_extra("mac_commands", 5)
        b.add_extra("row_activations", 2)
        merged = PIMStats.merge([a, b])
        assert merged.extra["mac_commands"] == 15
        assert merged.extra["row_activations"] == 2

    def test_extra_overflow_folds_into_other(self):
        parts = []
        for i in range(PIMStats.MAX_EXTRA_KEYS + 8):
            p = PIMStats(backend="hbm_pim")
            p.add_extra(f"counter_{i:03d}", 1.0)
            parts.append(p)
        merged = PIMStats.merge(parts)
        assert len(merged.extra) <= PIMStats.MAX_EXTRA_KEYS + 1
        assert merged.extra["__other__"] == 8.0
        assert sum(merged.extra.values()) == len(parts)

    def test_waves_charge_backend_specific_extras(self):
        hbm = HBMPIMArray()
        hbm.program_matrix("m", _matrix(64, 16))
        hbm.query_batch("m", _matrix(3, 16, seed=9))
        for key in (
            "mac_commands",
            "mov_commands",
            "fill_commands",
            "row_activations",
        ):
            assert hbm.stats.extra[key] > 0
        assert not PIMArray().stats.extra  # crossbars stay clean

    def test_batch_amortizes_row_activations(self):
        hbm = HBMPIMArray()
        hbm.program_matrix("m", _matrix(500, 40))
        queries = _matrix(8, 40, seed=11)
        result = hbm.query_batch("m", queries)
        assert hbm.stats.batch_saved_ns > 0
        per_wave = HBMPIMArray()
        per_wave.program_matrix("m", _matrix(500, 40))
        many = per_wave.query_many("m", queries)
        assert np.array_equal(result.values, many.values)
        assert hbm.stats.pim_time_ns < per_wave.stats.pim_time_ns
