"""Unit tests for the Table 2 similarity measures."""

import numpy as np
import pytest

from repro.errors import OperandError
from repro.similarity import measures


class TestEuclidean:
    def test_is_squared(self):
        assert measures.euclidean(np.array([0.0, 0.0]), np.array([3.0, 4.0])) == 25.0

    def test_identity_is_zero(self, rng):
        v = rng.random(16)
        assert measures.euclidean(v, v) == pytest.approx(0.0)

    def test_batch_matches_scalar(self, rng):
        data = rng.random((20, 8))
        q = rng.random(8)
        batch = measures.euclidean_batch(data, q)
        for i in range(20):
            assert batch[i] == pytest.approx(measures.euclidean(data[i], q))

    def test_shape_mismatch(self):
        with pytest.raises(OperandError):
            measures.euclidean(np.zeros(3), np.zeros(4))


class TestCosine:
    def test_parallel_vectors(self):
        assert measures.cosine(np.array([1.0, 2.0]), np.array([2.0, 4.0])) == pytest.approx(1.0)

    def test_orthogonal_vectors(self):
        assert measures.cosine(np.array([1.0, 0.0]), np.array([0.0, 1.0])) == pytest.approx(0.0)

    def test_zero_vector_returns_zero(self):
        assert measures.cosine(np.zeros(4), np.ones(4)) == 0.0

    def test_batch_matches_scalar(self, rng):
        data = rng.random((15, 6))
        q = rng.random(6)
        batch = measures.cosine_batch(data, q)
        for i in range(15):
            assert batch[i] == pytest.approx(measures.cosine(data[i], q))


class TestPearson:
    def test_perfect_linear_correlation(self):
        p = np.array([1.0, 2.0, 3.0, 4.0])
        assert measures.pearson(p, 2.0 * p + 5.0) == pytest.approx(1.0)

    def test_anti_correlation(self):
        p = np.array([1.0, 2.0, 3.0])
        assert measures.pearson(p, -p) == pytest.approx(-1.0)

    def test_constant_vector_returns_zero(self):
        assert measures.pearson(np.full(5, 2.0), np.arange(5.0)) == 0.0

    def test_matches_numpy_corrcoef(self, rng):
        p, q = rng.random(32), rng.random(32)
        expected = np.corrcoef(p, q)[0, 1]
        assert measures.pearson(p, q) == pytest.approx(expected)

    def test_batch_matches_scalar(self, rng):
        data = rng.random((10, 12))
        q = rng.random(12)
        batch = measures.pearson_batch(data, q)
        for i in range(10):
            assert batch[i] == pytest.approx(measures.pearson(data[i], q))


class TestHamming:
    def test_known_distance(self):
        p = np.array([0, 1, 1, 0])
        q = np.array([1, 1, 0, 0])
        assert measures.hamming(p, q) == 2

    def test_rejects_non_binary(self):
        with pytest.raises(OperandError):
            measures.hamming(np.array([0, 2]), np.array([0, 1]))

    def test_rejects_float_codes(self):
        with pytest.raises(OperandError):
            measures.hamming(np.array([0.0, 1.0]), np.array([0, 1]))

    def test_batch_matches_scalar(self, rng):
        codes = rng.integers(0, 2, size=(10, 64))
        q = rng.integers(0, 2, size=64)
        batch = measures.hamming_batch(codes, q)
        for i in range(10):
            assert batch[i] == measures.hamming(codes[i], q)


class TestDispatch:
    def test_compute_by_name(self, rng):
        p, q = rng.random(8), rng.random(8)
        assert measures.compute("euclidean", p, q) == pytest.approx(
            measures.euclidean(p, q)
        )

    def test_compute_batch_by_name(self, rng):
        data, q = rng.random((5, 8)), rng.random(8)
        assert np.allclose(
            measures.compute_batch("cosine", data, q),
            measures.cosine_batch(data, q),
        )

    def test_unknown_measure(self):
        with pytest.raises(OperandError, match="unknown measure"):
            measures.compute("manhattan", np.zeros(2), np.zeros(2))

    def test_similarity_direction(self):
        assert measures.is_similarity("cosine")
        assert measures.is_similarity("pearson")
        assert not measures.is_similarity("euclidean")
        assert not measures.is_similarity("hamming")
        with pytest.raises(OperandError):
            measures.is_similarity("manhattan")
