"""Unit tests for the Table 4 PIM-aware decompositions.

The defining property: evaluating through G(Phi(p), Phi(q), p.q) must
equal the direct measure exactly.
"""

import numpy as np
import pytest

from repro.errors import OperandError
from repro.similarity import measures
from repro.similarity.decomposition import (
    cosine_decomposition,
    decomposition_for,
    euclidean_decomposition,
    fnn_decomposition,
    hamming_decomposition,
    is_pim_aware,
    pearson_decomposition,
)
from repro.bounds.ed import FNNBound


class TestEuclideanDecomposition:
    def test_matches_direct(self, rng):
        decomp = euclidean_decomposition()
        for _ in range(5):
            p, q = rng.random(16), rng.random(16)
            assert decomp.evaluate(p, q) == pytest.approx(
                measures.euclidean(p, q)
            )

    def test_phi_is_squared_norm(self, rng):
        p = rng.random(8)
        assert euclidean_decomposition().phi(p)[0] == pytest.approx(
            float(p @ p)
        )


class TestCosineDecomposition:
    def test_matches_direct(self, rng):
        decomp = cosine_decomposition()
        for _ in range(5):
            p, q = rng.random(16), rng.random(16)
            assert decomp.evaluate(p, q) == pytest.approx(
                measures.cosine(p, q)
            )

    def test_zero_vector(self):
        decomp = cosine_decomposition()
        assert decomp.evaluate(np.zeros(4), np.ones(4)) == 0.0


class TestPearsonDecomposition:
    def test_matches_direct(self, rng):
        decomp = pearson_decomposition()
        for _ in range(5):
            p, q = rng.random(16), rng.random(16)
            assert decomp.evaluate(p, q) == pytest.approx(
                measures.pearson(p, q)
            )

    def test_constant_vector(self, rng):
        decomp = pearson_decomposition()
        assert decomp.evaluate(np.full(8, 3.0), rng.random(8)) == 0.0


class TestHammingDecomposition:
    def test_matches_direct(self, rng):
        decomp = hamming_decomposition()
        for _ in range(5):
            p = rng.integers(0, 2, size=32)
            q = rng.integers(0, 2, size=32)
            assert decomp.evaluate(p, q) == pytest.approx(
                measures.hamming(p, q)
            )

    def test_complement_operand(self):
        decomp = hamming_decomposition()
        code, complement = decomp.dot_operands(np.array([1, 0, 1]))
        assert complement.tolist() == [0.0, 1.0, 0.0]

    def test_rejects_non_binary(self):
        with pytest.raises(OperandError):
            hamming_decomposition().dot_operands(np.array([0, 2]))


class TestFNNDecomposition:
    def test_matches_fnn_bound(self, rng):
        # the decomposition evaluates LB_FNN itself
        data = rng.random((10, 16))
        q = rng.random(16)
        bound = FNNBound(4)
        bound.prepare(data)
        decomp = fnn_decomposition(4)
        expected = bound.evaluate(q)
        for i in range(10):
            assert decomp.evaluate(data[i], q) == pytest.approx(expected[i])

    def test_requires_segments(self):
        with pytest.raises(OperandError):
            decomposition_for("LB_FNN")


class TestFactory:
    @pytest.mark.parametrize(
        "measure", ["euclidean", "cosine", "pearson", "hamming"]
    )
    def test_known_measures(self, measure):
        assert decomposition_for(measure).name == measure
        assert is_pim_aware(measure)

    def test_unknown_measure(self):
        with pytest.raises(OperandError):
            decomposition_for("manhattan")
        assert not is_pim_aware("manhattan")
