"""Unit tests for quantization (Eqs. 5-6) and the Theorem 3 error bound."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, OperandError
from repro.similarity.quantization import (
    DEFAULT_ALPHA,
    Quantizer,
    required_operand_bits,
    theorem3_error_bound,
)


class TestTheorem3:
    def test_formula(self):
        assert theorem3_error_bound(420, 1e6) == pytest.approx(
            4 * 420 / 1e6 + 2 * 420 / 1e12
        )

    def test_error_shrinks_with_alpha(self):
        assert theorem3_error_bound(100, 1e6) < theorem3_error_bound(100, 1e3)

    def test_rejects_bad_args(self):
        with pytest.raises(ConfigurationError):
            theorem3_error_bound(0, 1e6)


class TestRequiredOperandBits:
    def test_paper_alpha_fits_32_bits(self):
        assert required_operand_bits(DEFAULT_ALPHA) <= 32

    def test_small_alpha(self):
        assert required_operand_bits(255) == 8


class TestQuantizer:
    def test_must_fit_before_use(self):
        with pytest.raises(OperandError):
            Quantizer().quantize(np.ones((2, 2)))

    def test_fit_quantize_range(self, rng):
        data = rng.random((50, 8)) * 10 - 5  # raw, outside [0,1]
        qv = Quantizer(alpha=1000).fit_quantize(data)
        assert qv.integers.min() >= 0
        assert qv.integers.max() <= 1000
        assert np.all(qv.integers <= qv.scaled + 1e-12)

    def test_floor_relationship(self, rng):
        data = rng.random((20, 4))
        qv = Quantizer(alpha=997, assume_normalized=True).fit_quantize(data)
        assert np.array_equal(qv.integers, np.floor(qv.scaled).astype(np.int64))

    def test_constant_dimension_handled(self):
        data = np.column_stack([np.ones(10), np.arange(10.0)])
        qv = Quantizer(alpha=100).fit_quantize(data)
        assert np.all(qv.integers[:, 0] == 0)

    def test_assume_normalized_is_identity_scaling(self, rng):
        data = rng.random((30, 6))
        quantizer = Quantizer(alpha=1000, assume_normalized=True).fit(data)
        assert np.allclose(quantizer.scale(data), data * 1000)

    def test_assume_normalized_rejects_out_of_range(self):
        with pytest.raises(OperandError):
            Quantizer(assume_normalized=True).fit(np.array([[2.0]]))

    def test_query_clipping(self, rng):
        data = rng.random((30, 4))
        quantizer = Quantizer(alpha=100, assume_normalized=True).fit(data)
        wild_query = np.array([-1.0, 0.5, 2.0, 0.0])
        normed = quantizer.normalize(wild_query)
        assert normed.min() >= 0.0 and normed.max() <= 1.0

    def test_error_bound_passthrough(self):
        quantizer = Quantizer(alpha=1e6)
        assert quantizer.error_bound(100) == theorem3_error_bound(100, 1e6)

    def test_rejects_bad_alpha(self):
        with pytest.raises(ConfigurationError):
            Quantizer(alpha=0)

    def test_operand_bits_property(self):
        assert Quantizer(alpha=255).operand_bits == 8

    def test_for_operand_bits_maximises_alpha(self):
        quantizer = Quantizer.for_operand_bits(8)
        assert quantizer.alpha == 255.0
        assert quantizer.operand_bits == 8

    def test_for_operand_bits_tighter_with_more_bits(self):
        narrow = Quantizer.for_operand_bits(8)
        wide = Quantizer.for_operand_bits(20)
        assert wide.error_bound(64) < narrow.error_bound(64)

    def test_for_operand_bits_validation(self):
        with pytest.raises(ConfigurationError):
            Quantizer.for_operand_bits(0)

    def test_quantization_error_within_theorem3(self, rng):
        # empirical check: ED(p,q) - LB via quantized terms <= bound
        from repro.similarity.measures import euclidean

        alpha, dims = 100.0, 16
        quantizer = Quantizer(alpha=alpha, assume_normalized=True)
        data = rng.random((40, dims))
        quantizer.fit(data)
        bound = quantizer.error_bound(dims)
        qv = quantizer.quantize(data)
        phi = (qv.scaled**2).sum(axis=1) - 2.0 * qv.integers.sum(axis=1)
        for i in range(0, 40, 7):
            for j in range(1, 40, 11):
                dot = float(qv.integers[i] @ qv.integers[j])
                lb = (phi[i] + phi[j] - 2 * dot - 2 * dims) / alpha**2
                ed = euclidean(data[i], data[j])
                assert lb <= ed + 1e-9
                assert ed - lb <= bound + 1e-9
