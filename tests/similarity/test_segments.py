"""Unit tests for segment summaries and the FNN segment ladder."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, OperandError
from repro.similarity.segments import (
    equal_segment_counts,
    fnn_segment_ladder,
    summarize,
)


class TestEqualSegmentCounts:
    def test_divisors_of_12(self):
        assert equal_segment_counts(12) == [1, 2, 3, 4, 6, 12]

    def test_prime_dims(self):
        assert equal_segment_counts(13) == [1, 13]

    def test_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            equal_segment_counts(0)


class TestFNNLadder:
    def test_power_of_two_dims(self):
        # d=1024: exactly d/64=16, d/16=64, d/4=256
        assert fnn_segment_ladder(1024) == [16, 64, 256]

    def test_msd_like_dims(self):
        # d=420: nearest divisors to 6.56, 26.25, 105
        ladder = fnn_segment_ladder(420)
        assert ladder == sorted(ladder)
        assert all(420 % s == 0 for s in ladder)
        assert 105 in ladder

    def test_small_dims_deduplicate(self):
        ladder = fnn_segment_ladder(8)
        assert len(ladder) == len(set(ladder))
        assert all(8 % s == 0 for s in ladder)


class TestSummarize:
    def test_batch_shapes(self, rng):
        data = rng.random((10, 12))
        summary = summarize(data, 4)
        assert summary.means.shape == (10, 4)
        assert summary.stds.shape == (10, 4)
        assert summary.segment_length == 3
        assert summary.n_segments == 4

    def test_single_vector(self, rng):
        v = rng.random(12)
        summary = summarize(v, 3)
        assert summary.means.shape == (3,)
        assert summary.means[0] == pytest.approx(v[:4].mean())
        assert summary.stds[2] == pytest.approx(v[8:].std())

    def test_one_segment_is_global_stats(self, rng):
        v = rng.random(9)
        summary = summarize(v, 1)
        assert summary.means[0] == pytest.approx(v.mean())
        assert summary.stds[0] == pytest.approx(v.std())

    def test_full_segmentation_zero_std(self, rng):
        v = rng.random(6)
        summary = summarize(v, 6)
        assert np.allclose(summary.means, v)
        assert np.allclose(summary.stds, 0.0)

    def test_rejects_non_divisor(self, rng):
        with pytest.raises(ConfigurationError):
            summarize(rng.random(10), 3)

    def test_rejects_3d_input(self, rng):
        with pytest.raises(OperandError):
            summarize(rng.random((2, 2, 2)), 2)
