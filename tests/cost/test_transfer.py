"""Unit tests for Eq. 13 transfer bookkeeping."""

import pytest

from repro.cost.transfer import (
    TransferCost,
    bound_transfer,
    exact_transfer,
    pim_bound_transfer,
    plan_transfer_bits,
)


class TestTransferCosts:
    def test_bound_transfer_scales_with_dims(self):
        assert bound_transfer(105, 32).bits_per_object == 105 * 32

    def test_pim_bound_is_three_operands(self):
        # Fig. 8: d*b collapses to 3*b bits regardless of dimensionality
        assert pim_bound_transfer(32).bits_per_object == 3 * 32

    def test_pim_bound_with_two_dot_products(self):
        assert pim_bound_transfer(32, dot_products=2).bits_per_object == 4 * 32

    def test_exact_transfer_is_full_vector(self):
        assert exact_transfer(420, 32).bits_per_object == 420 * 32

    def test_bytes_and_totals(self):
        cost = TransferCost(bits_per_object=96)
        assert cost.bytes_per_object() == 12.0
        assert cost.total_bits(100) == 9600


class TestPlanTransferBits:
    def test_single_stage(self):
        total = plan_transfer_bits(
            1000, [TransferCost(10.0)], [0.9]
        )
        assert total == 1000 * 10.0

    def test_pruning_shrinks_later_stages(self):
        stages = [TransferCost(10.0), TransferCost(100.0)]
        total = plan_transfer_bits(1000, stages, [0.9, 0.0])
        assert total == pytest.approx(1000 * 10.0 + 100 * 100.0)

    def test_paper_shape_pim_plan_beats_original_ladder(self):
        # MSD-like: N objects, 32-bit operands, d=420.
        n, b, d = 10000, 32, 420
        # original FNN ladder: d/64, d/16, d/4 bounds then exact
        ladder = [
            bound_transfer(7, b),
            bound_transfer(28, b),
            bound_transfer(105, b),
            exact_transfer(d, b),
        ]
        original = plan_transfer_bits(n, ladder, [0.5, 0.8, 0.8, 0.0])
        # PIM plan: one 3*b bound pruning 99%, then exact
        pim = plan_transfer_bits(
            n,
            [pim_bound_transfer(b), exact_transfer(d, b)],
            [0.99, 0.0],
        )
        assert pim < original

    def test_validates_alignment(self):
        with pytest.raises(ValueError):
            plan_transfer_bits(10, [TransferCost(1.0)], [])

    def test_validates_ratio_range(self):
        with pytest.raises(ValueError):
            plan_transfer_bits(10, [TransferCost(1.0)], [1.5])
