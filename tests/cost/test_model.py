"""Unit tests for the cost model (Eq. 1 components, Eq. 2 oracle)."""

import pytest

from repro.cost.counters import PerfCounters
from repro.cost.model import CostModel, combined_time_ns
from repro.hardware.config import baseline_platform, pim_platform


@pytest.fixture
def streaming_counters() -> PerfCounters:
    """A kNN-like workload: ED dominates and is memory-bound."""
    counters = PerfCounters()
    counters.record(
        "ED", calls=1000, flops=3e6, bytes_from_memory=4e6, branches=1e3
    )
    counters.record("other", flops=2e4, branches=2e3)
    return counters


class TestCostModel:
    def test_total_is_sum_of_functions(self, streaming_counters):
        model = CostModel(baseline_platform())
        times = model.function_times_ns(streaming_counters)
        assert model.total_time_ns(streaming_counters) == pytest.approx(
            sum(times.values())
        )

    def test_memory_bound_workload_shows_cache_dominance(
        self, streaming_counters
    ):
        # the Fig. 5 observation: Tcache is 65-83% for kNN workloads
        model = CostModel(baseline_platform())
        fractions = model.component_breakdown(streaming_counters).fractions()
        assert fractions["Tcache"] > 0.5
        assert sum(fractions.values()) == pytest.approx(1.0)

    def test_pim_platform_charges_reram_latency(self, streaming_counters):
        base = CostModel(baseline_platform())
        pim = CostModel(pim_platform())
        assert pim.miss_latency_ns > base.miss_latency_ns
        assert pim.total_time_ns(streaming_counters) > base.total_time_ns(
            streaming_counters
        )

    def test_oracle_removes_offloadable_buckets(self, streaming_counters):
        model = CostModel(baseline_platform())
        oracle = model.pim_oracle_time_ns(streaming_counters, {"ED"})
        assert oracle == pytest.approx(
            model.function_time_ns(streaming_counters, "other")
        )
        assert oracle < model.total_time_ns(streaming_counters)

    def test_oracle_with_empty_set_is_total(self, streaming_counters):
        model = CostModel(baseline_platform())
        assert model.pim_oracle_time_ns(
            streaming_counters, set()
        ) == pytest.approx(model.total_time_ns(streaming_counters))

    def test_empty_counters_zero_time(self):
        model = CostModel()
        counters = PerfCounters()
        assert model.total_time_ns(counters) == 0.0
        fractions = model.component_breakdown(counters).fractions()
        assert all(v == 0.0 for v in fractions.values())


class TestCombinedTime:
    def test_serialized_sum(self):
        assert combined_time_ns(100.0, 50.0) == 150.0

    def test_overlap_hides_pim_time(self):
        assert combined_time_ns(100.0, 50.0, overlap=1.0) == 100.0
        assert combined_time_ns(100.0, 50.0, overlap=0.5) == 125.0

    def test_rejects_bad_overlap(self):
        with pytest.raises(ValueError):
            combined_time_ns(1.0, 1.0, overlap=1.5)
