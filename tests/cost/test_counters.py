"""Unit tests for the per-function event counters."""

from repro.cost.counters import OTHER, FunctionEvents, PerfCounters


class TestFunctionEvents:
    def test_add_accumulates(self):
        events = FunctionEvents()
        events.add(calls=2, flops=10.0, bytes_from_memory=64.0)
        events.add(calls=1, flops=5.0, branches=3.0)
        assert events.calls == 3
        assert events.flops == 15.0
        assert events.bytes_from_memory == 64.0
        assert events.branches == 3.0

    def test_merged_with(self):
        a = FunctionEvents(calls=1, flops=2.0)
        b = FunctionEvents(calls=2, long_ops=4.0)
        merged = a.merged_with(b)
        assert merged.calls == 3
        assert merged.flops == 2.0
        assert merged.long_ops == 4.0
        # originals untouched
        assert a.calls == 1 and b.calls == 2


class TestPerfCounters:
    def test_record_creates_buckets(self):
        counters = PerfCounters()
        counters.record("ED", calls=3, flops=30.0)
        counters.record("LB", calls=1)
        assert counters.function_names() == ["ED", "LB"]
        assert counters.events("ED").calls == 3

    def test_unknown_bucket_is_empty(self):
        assert PerfCounters().events("nope").calls == 0

    def test_total_sums_buckets(self):
        counters = PerfCounters()
        counters.record("ED", flops=10.0)
        counters.record(OTHER, flops=5.0, branches=2.0)
        total = counters.total()
        assert total.flops == 15.0
        assert total.branches == 2.0

    def test_merged_with_combines_runs(self):
        a = PerfCounters()
        a.record("ED", calls=1, flops=3.0)
        b = PerfCounters()
        b.record("ED", calls=2)
        b.record("LB", calls=5)
        merged = a.merged_with(b)
        assert merged.events("ED").calls == 3
        assert merged.events("LB").calls == 5
        assert a.events("ED").calls == 1  # inputs untouched

    def test_reset(self):
        counters = PerfCounters()
        counters.record("ED", calls=1)
        counters.reset()
        assert counters.function_names() == []
