"""Similarity-based mining algorithms.

kNN classification and k-means clustering are the paper's two worked
examples; distance-based outlier detection, time-series motif discovery
and maximum inner-product search are the further Section II-C tasks the
framework covers.
"""

from repro.mining import kmeans, knn
from repro.mining.motif import (
    MotifResult,
    PIMMotifDiscovery,
    StandardMotifDiscovery,
    sliding_windows,
)
from repro.mining.outlier import (
    OutlierResult,
    PIMOutlierDetector,
    StandardOutlierDetector,
)

__all__ = [
    "MotifResult",
    "OutlierResult",
    "PIMMotifDiscovery",
    "PIMOutlierDetector",
    "StandardMotifDiscovery",
    "StandardOutlierDetector",
    "kmeans",
    "knn",
    "sliding_windows",
]
