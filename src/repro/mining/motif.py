"""Time-series motif discovery (a paper Section II-C mining task).

The 1-motif of a series is the pair of non-overlapping subsequences with
the smallest Euclidean distance — a similarity-computation-bound search
over all subsequence pairs, so the paper's framework applies:

* :class:`StandardMotifDiscovery` — the pruned pairwise baseline: scan
  candidate pairs maintaining the best-so-far distance (classic
  MK-style early abandonment via a cheap lower bound on the host);
* :class:`PIMMotifDiscovery` — one LB_PIM-ED wave per subsequence gives
  lower bounds to *all* other subsequences at 3*b bits each; only pairs
  whose bound beats the best-so-far pay the exact distance.

Both return the identical motif pair (ties aside). Subsequences overlap
heavily (they share ``w - 1`` points with their neighbours), so an
*exclusion zone* of ``w/2`` around each position avoids trivial
matches, as standard in the motif literature.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bounds.pim import PIMEuclideanBound
from repro.cost.counters import OTHER, PerfCounters
from repro.errors import ConfigurationError, OperandError
from repro.hardware.controller import PIMController
from repro.mining.knn.base import OPERAND_BYTES
from repro.similarity.quantization import Quantizer


@dataclass
class MotifResult:
    """The best pair and the work it took to find it."""

    pair: tuple[int, int]
    distance: float
    counters: PerfCounters
    pim_time_ns: float = 0.0
    exact_computations: int = 0


def sliding_windows(series: np.ndarray, window: int) -> np.ndarray:
    """All length-``window`` subsequences of a 1-D series, min-max
    normalised into [0, 1] jointly (the PIM pipeline's input form)."""
    series = np.asarray(series, dtype=np.float64)
    if series.ndim != 1:
        raise OperandError("sliding_windows() expects a 1-D series")
    if not 1 < window <= series.shape[0]:
        raise ConfigurationError("window must be in 2..len(series)")
    lo, hi = float(series.min()), float(series.max())
    span = hi - lo if hi > lo else 1.0
    normed = (series - lo) / span
    n = series.shape[0] - window + 1
    out = np.empty((n, window))
    for i in range(n):
        out[i] = normed[i : i + window]
    return out


class _BaseMotifDiscovery:
    """Shared scaffolding: windows, exclusion zone, cost accounting."""

    name = "motif"

    def __init__(self, window: int, exclusion: int | None = None) -> None:
        if window <= 1:
            raise ConfigurationError("window must be > 1")
        self.window = window
        self.exclusion = (
            exclusion if exclusion is not None else max(1, window // 2)
        )
        self._windows: np.ndarray | None = None

    @property
    def windows(self) -> np.ndarray:
        if self._windows is None:
            raise OperandError(f"{self.name} is not fitted")
        return self._windows

    def fit(self, series: np.ndarray) -> "_BaseMotifDiscovery":
        self._windows = sliding_windows(series, self.window)
        if self._windows.shape[0] <= self.exclusion:
            raise ConfigurationError(
                "series too short for this window/exclusion zone"
            )
        self._prepare(self._windows)
        return self

    def _prepare(self, windows: np.ndarray) -> None:
        """Hook for subclasses."""

    def _charge_ed(self, counters: PerfCounters, n: int) -> None:
        counters.record(
            "ED",
            calls=n,
            flops=3.0 * self.window * n,
            bytes_from_memory=self.window * OPERAND_BYTES * n,
            branches=float(n),
        )

    def _excluded(self, i: int, j: int) -> bool:
        return abs(i - j) <= self.exclusion


class StandardMotifDiscovery(_BaseMotifDiscovery):
    """Pairwise scan with early abandonment on the running best."""

    name = "Standard"
    offloadable_functions = ("ED",)

    def discover(self) -> MotifResult:
        """The closest non-overlapping subsequence pair."""
        windows = self.windows
        n = windows.shape[0]
        counters = PerfCounters()
        best = float("inf")
        best_pair = (-1, -1)
        exact = 0
        for i in range(n):
            # vectorised row scan: distances to every later window
            js = np.arange(i + 1 + self.exclusion, n)
            if js.size == 0:
                continue
            diff = windows[js] - windows[i]
            dists_sq = np.einsum("wj,wj->w", diff, diff)
            exact += int(js.size)
            j_best = int(np.argmin(dists_sq))
            if dists_sq[j_best] < best:
                best = float(dists_sq[j_best])
                best_pair = (i, int(js[j_best]))
            counters.record(OTHER, branches=float(js.size))
        self._charge_ed(counters, exact)
        return MotifResult(
            pair=best_pair,
            distance=float(np.sqrt(best)),
            counters=counters,
            exact_computations=exact,
        )


class PIMMotifDiscovery(_BaseMotifDiscovery):
    """Motif discovery with one LB_PIM-ED wave per subsequence."""

    name = "Standard-PIM"
    offloadable_functions = ("ED", "LB_PIM-ED")

    def __init__(
        self,
        window: int,
        exclusion: int | None = None,
        controller: PIMController | None = None,
        quantizer: Quantizer | None = None,
    ) -> None:
        super().__init__(window, exclusion)
        self.controller = (
            controller if controller is not None else PIMController()
        )
        self._bound = PIMEuclideanBound(self.controller, quantizer)

    def _prepare(self, windows: np.ndarray) -> None:
        self._bound.prepare(windows)

    def discover(self) -> MotifResult:
        """Exact motif via bound-first pair filtering."""
        windows = self.windows
        n = windows.shape[0]
        counters = PerfCounters()
        pim_before = self.controller.pim.stats.pim_time_ns
        best = float("inf")
        best_pair = (-1, -1)
        exact = 0
        for i in range(n):
            lbs = self._bound.evaluate(windows[i])
            self._bound.charge(counters, n)
            js = np.arange(i + 1 + self.exclusion, n)
            if js.size == 0:
                continue
            candidates = js[lbs[js] < best]
            counters.record(OTHER, branches=float(js.size))
            if candidates.size == 0:
                continue
            diff = windows[candidates] - windows[i]
            dists_sq = np.einsum("wj,wj->w", diff, diff)
            exact += int(candidates.size)
            j_best = int(np.argmin(dists_sq))
            if dists_sq[j_best] < best:
                best = float(dists_sq[j_best])
                best_pair = (i, int(candidates[j_best]))
        self._charge_ed(counters, exact)
        pim_after = self.controller.pim.stats.pim_time_ns
        return MotifResult(
            pair=best_pair,
            distance=float(np.sqrt(best)),
            counters=counters,
            pim_time_ns=pim_after - pim_before,
            exact_computations=exact,
        )
