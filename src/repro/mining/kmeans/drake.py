"""Drake & Hamerly's k-means (NIPS OPT'12): adaptive distance bounds.

Instead of Elkan's k lower bounds per point, Drake tracks only the ``b``
closest centers (``b ~ k/8``) with individual lower bounds plus a single
aggregate bound covering all remaining centers — less bound-maintenance
traffic, slightly weaker pruning.
"""

from __future__ import annotations

import numpy as np

from repro.cost.counters import OTHER
from repro.mining.kmeans.base import BOUND_UPDATE, KMeansAlgorithm
from repro.mining.knn.base import OPERAND_BYTES


def default_tracked(k: int) -> int:
    """Drake's recommended starting point, ``b = k/8`` (at least 2)."""
    return max(2, min(k - 1, k // 8)) if k > 1 else 1


class DrakeKMeans(KMeansAlgorithm):
    """Drake's exact accelerated k-means (fixed ``b`` variant)."""

    base_name = "Drake"

    def __init__(
        self,
        n_clusters: int,
        max_iters: int = 20,
        pim_assist=None,
        n_tracked: int | None = None,
    ) -> None:
        super().__init__(n_clusters, max_iters, pim_assist)
        self.n_tracked = (
            n_tracked if n_tracked is not None else default_tracked(n_clusters)
        )

    def _initialize_state(self, centers: np.ndarray) -> None:
        n = self.data.shape[0]
        b = self.n_tracked
        self._ub = np.full(n, np.inf)
        self._a = np.full(n, -1, dtype=np.int64)
        self._tracked = np.zeros((n, b), dtype=np.int64)
        self._tracked_lb = np.zeros((n, b))
        self._rest_lb = np.zeros(n)
        self._first = True

    def _rebuild_point(
        self, i: int, values: np.ndarray, exact: np.ndarray | None = None
    ) -> None:
        """Reset point state from a full vector of distance values.

        ``values`` may mix exact distances and safe lower bounds; both
        are valid entries for the bound lists, but the *assigned* center
        must carry an exact value (``ub`` must upper-bound its true
        distance), so the winner is chosen among exact entries when an
        ``exact`` mask is provided.
        """
        b = self.n_tracked
        if exact is None:
            winner = int(np.argmin(values))
        else:
            exact_ids = np.nonzero(exact)[0]
            winner = int(exact_ids[np.argmin(values[exact_ids])])
        self._a[i] = winner
        self._ub[i] = float(values[winner])
        others = np.argsort(values)
        others = others[others != winner]
        if others.size == 0:
            # k = 1: nothing to track; the assignment can never change
            self._tracked[i] = winner
            self._tracked_lb[i] = np.inf
            self._rest_lb[i] = np.inf
            return
        self._tracked[i] = others[:b]  # size-1 broadcasts when b > others
        self._tracked_lb[i] = values[self._tracked[i]]
        if others.size > b:
            self._rest_lb[i] = float(values[others[b]])
        else:
            self._rest_lb[i] = np.inf

    def _assign(self, centers: np.ndarray) -> np.ndarray:
        n = self.data.shape[0]
        k = self.n_clusters
        ids = np.arange(k)
        if self._first:
            self._first = False
            for i in range(n):
                values, exact = self._all_values(i, centers, ids)
                self._rebuild_point(i, values, exact)
            return self._a.copy()

        for i in range(n):
            guard = min(float(self._tracked_lb[i].min(initial=np.inf)),
                        float(self._rest_lb[i]))
            if self._ub[i] <= guard:
                self._counters.record(OTHER, branches=1.0)
                continue
            a = int(self._a[i])
            d_a = float(self._exact_distances(i, centers, np.array([a]))[0])
            self._ub[i] = d_a
            if d_a <= guard:
                continue
            if self._rest_lb[i] < d_a:
                # the aggregate bound fails: rescan every center
                values, exact = self._all_values(
                    i, centers, ids, threshold=d_a
                )
                values[a] = d_a
                exact[a] = True
                self._rebuild_point(i, values, exact)
                continue
            mask = self._tracked_lb[i] < d_a
            cand = self._tracked[i][mask]
            if cand.size == 0:
                continue
            values, exact = self._distances_with_pim(i, centers, cand, d_a)
            self._tracked_lb[i][mask] = values
            j = int(np.argmin(values))
            if exact[j] and values[j] < self._ub[i]:
                # swap assignment with the tracked winner
                old_a, old_d = a, d_a
                self._a[i] = int(cand[j])
                self._ub[i] = float(values[j])
                pos = int(np.nonzero(self._tracked[i] == cand[j])[0][0])
                self._tracked[i, pos] = old_a
                self._tracked_lb[i, pos] = old_d
        return self._a.copy()

    def _all_values(
        self,
        i: int,
        centers: np.ndarray,
        ids: np.ndarray,
        threshold: float | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Distances (or safe bounds) of point ``i`` to every center,
        plus the mask of entries that are exact."""
        if self.pim is None:
            values = self._exact_distances(i, centers, ids)
            return values, np.ones(len(ids), dtype=bool)
        if threshold is None:
            lbs = self.pim.lower_bounds(i, ids)
            self.pim.charge(self._counters, len(ids))
            seed = int(np.argmin(lbs))
            threshold = float(
                self._exact_distances(i, centers, np.array([seed]))[0]
            )
            values, exact = self._distances_with_pim(
                i, centers, ids, threshold
            )
            values[seed] = threshold
            exact[seed] = True
            return values, exact
        return self._distances_with_pim(i, centers, ids, threshold)

    def _after_update(
        self, old_centers: np.ndarray, new_centers: np.ndarray
    ) -> None:
        drifts = self._center_drifts(old_centers, new_centers)
        n, b = self._tracked_lb.shape
        self._tracked_lb = np.maximum(
            self._tracked_lb - drifts[self._tracked], 0.0
        )
        self._rest_lb = np.maximum(self._rest_lb - drifts.max(), 0.0)
        self._ub += drifts[self._a]
        self._counters.record(
            BOUND_UPDATE,
            flops=float(n * b + 2 * n),
            bytes_from_memory=float(n * b * OPERAND_BYTES),
        )
