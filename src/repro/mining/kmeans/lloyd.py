"""Standard k-means: Lloyd's algorithm (paper's 'Standard').

The assign step computes all N*k distances — the heaviest data-transfer
pattern of the family, which is why Standard-PIM shows the largest
speedup (Table 7: up to 33.4x). With PIM assistance each point first
reads the LB_PIM-ED wave results, computes one exact distance to the
bound-minimising center, and refines only centers whose bound beats it.
"""

from __future__ import annotations

import numpy as np

from repro.mining.kmeans.base import KMeansAlgorithm


class LloydKMeans(KMeansAlgorithm):
    """Exhaustive assign step (optionally PIM-filtered)."""

    base_name = "Standard"

    def _assign(self, centers: np.ndarray) -> np.ndarray:
        if self.pim is None:
            return self._assign_full(centers)
        return self._assign_pim(centers)

    def _assign_full(self, centers: np.ndarray) -> np.ndarray:
        data = self.data
        # ||x - c||^2 = ||x||^2 + ||c||^2 - 2 x.c, rooted for consistency
        x_sq = np.einsum("ij,ij->i", data, data)
        c_sq = np.einsum("cj,cj->c", centers, centers)
        d2 = x_sq[:, None] + c_sq[None, :] - 2.0 * data @ centers.T
        self._charge_ed(data.shape[0] * centers.shape[0])
        return np.argmin(d2, axis=1).astype(np.int64)

    def _assign_pim(self, centers: np.ndarray) -> np.ndarray:
        data = self.data
        k = centers.shape[0]
        assignments = np.empty(data.shape[0], dtype=np.int64)
        all_ids = np.arange(k)
        for i in range(data.shape[0]):
            lbs = self.pim.lower_bounds(i, all_ids)
            self.pim.charge(self._counters, k)
            seed = int(np.argmin(lbs))
            ub = float(
                self._exact_distances(i, centers, np.array([seed]))[0]
            )
            best, best_d = seed, ub
            candidates = np.nonzero(lbs < ub)[0]
            candidates = candidates[candidates != seed]
            if candidates.size:
                dists = self._exact_distances(i, centers, candidates)
                j = int(np.argmin(dists))
                if dists[j] < best_d:
                    best, best_d = int(candidates[j]), float(dists[j])
            assignments[i] = best
        return assignments
