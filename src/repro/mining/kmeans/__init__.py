"""k-means clustering algorithms: baselines and PIM-assisted variants.

The four baselines of the paper (Standard/Lloyd, Elkan, Drake, Yinyang)
all run exact Lloyd iterations; passing a
:class:`~repro.mining.kmeans.pim.PIMAssist` turns any of them into its
``-PIM`` variant, where LB_PIM-ED (Theorem 1) filters exact distance
computations in the assign step.
"""

from repro.errors import ConfigurationError
from repro.mining.kmeans.base import (
    BOUND_UPDATE,
    KMeansAlgorithm,
    KMeansResult,
    initial_centers,
    initial_centers_plusplus,
)
from repro.mining.kmeans.drake import DrakeKMeans
from repro.mining.kmeans.elkan import ElkanKMeans
from repro.mining.kmeans.lloyd import LloydKMeans
from repro.mining.kmeans.pim import PIMAssist
from repro.mining.kmeans.yinyang import YinyangKMeans

_ALGORITHMS = {
    "Standard": LloydKMeans,
    "Elkan": ElkanKMeans,
    "Drake": DrakeKMeans,
    "Yinyang": YinyangKMeans,
}


def make_kmeans(
    name: str,
    n_clusters: int,
    max_iters: int = 20,
    pim_assist: PIMAssist | None = None,
) -> KMeansAlgorithm:
    """k-means factory by paper name.

    ``name`` may be a baseline (``"Standard"``) or a PIM variant
    (``"Standard-PIM"``); the latter requires ``pim_assist`` or creates
    a default one.
    """
    base = name[: -len("-PIM")] if name.endswith("-PIM") else name
    if base not in _ALGORITHMS:
        raise ConfigurationError(
            f"unknown k-means algorithm {name!r}; "
            f"bases: {sorted(_ALGORITHMS)} (optionally with -PIM suffix)"
        )
    if name.endswith("-PIM") and pim_assist is None:
        pim_assist = PIMAssist()
    if not name.endswith("-PIM"):
        pim_assist = None
    return _ALGORITHMS[base](
        n_clusters, max_iters=max_iters, pim_assist=pim_assist
    )


__all__ = [
    "BOUND_UPDATE",
    "DrakeKMeans",
    "ElkanKMeans",
    "KMeansAlgorithm",
    "KMeansResult",
    "LloydKMeans",
    "PIMAssist",
    "YinyangKMeans",
    "initial_centers",
    "initial_centers_plusplus",
    "make_kmeans",
]
