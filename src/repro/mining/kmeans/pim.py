"""PIM assistance for the k-means assign step (paper Section VI-D).

The quantized dataset is programmed onto the crossbars once; at the start
of every Lloyd iteration one PIM wave per center delivers
``LB_PIM-ED(p, c)`` for *all* points simultaneously. The assign step then
consults the (rooted) bound before each exact distance: a center whose
bound already meets the point's current best distance is discarded with
``3*b`` bits of transfer instead of ``d*b``.

:class:`PIMAssist` is the single object the algorithm family shares; it
owns the controller, the Theorem 1 bound and the per-iteration LB matrix.
"""

from __future__ import annotations

import numpy as np

from repro.bounds.pim import PIMEuclideanBound
from repro.cost.counters import PerfCounters
from repro.errors import OperandError
from repro.hardware.controller import PIMController
from repro.similarity.quantization import Quantizer
from repro.telemetry import get_recorder


class PIMAssist:
    """LB_PIM-ED provider for PIM-optimized k-means variants."""

    def __init__(
        self,
        controller: PIMController | None = None,
        quantizer: Quantizer | None = None,
    ) -> None:
        self.controller = (
            controller if controller is not None else PIMController()
        )
        self.bound = PIMEuclideanBound(self.controller, quantizer)
        self._lb: np.ndarray | None = None
        self._prepared = False

    @property
    def bound_name(self) -> str:
        """Counter bucket of the PIM bound."""
        return self.bound.name

    def prepare(self, data: np.ndarray) -> None:
        """Offline stage: quantize and program the dataset (idempotent)."""
        if not self._prepared:
            self.bound.prepare(np.asarray(data, dtype=np.float64))
            self._prepared = True

    def begin_iteration(self, centers: np.ndarray) -> None:
        """One batched wave over all centers; cache the rooted N x k LBs.

        The k center queries ship as a single multi-query dispatch, so
        each Lloyd iteration pays one pipeline setup instead of k.
        """
        if not self._prepared:
            raise OperandError("PIMAssist.prepare() must run before use")
        tele = get_recorder()
        if tele.enabled:
            with tele.span(
                "kmeans.center_wave", "query_batch",
                centers=int(np.atleast_2d(centers).shape[0]),
            ):
                self._lb = np.sqrt(self.bound.evaluate_matrix(centers))
            tele.metrics.counter("kmeans.center_waves").add(1)
        else:
            self._lb = np.sqrt(self.bound.evaluate_matrix(centers))

    def batch_stats(self) -> tuple[int, float]:
        """(batches dispatched, mean waves per batch) on this controller."""
        stats = self.controller.pim.stats
        return stats.batches, stats.waves_per_batch

    def lower_bounds(self, i: int, center_ids: np.ndarray) -> np.ndarray:
        """Rooted LB_PIM-ED of point ``i`` to the selected centers."""
        if self._lb is None:
            raise OperandError("begin_iteration() must run each iteration")
        return self._lb[i, center_ids]

    def charge(self, counters: PerfCounters, n_pairs: int) -> None:
        """Host-side cost of consulting ``n_pairs`` bound values."""
        self.bound.charge(counters, n_pairs)

    def pim_time_ns(self) -> float:
        """Cumulative simulated wave time on this assist's controller."""
        return self.controller.pim.stats.pim_time_ns
