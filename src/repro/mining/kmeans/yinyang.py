"""Yinyang k-means (Ding et al., ICML'15): group-level filtering.

Centers are clustered into ``t ~ k/10`` groups once at start-up; each
point keeps one upper bound and one lower bound per *group* rather than
per center. The global filter skips points whose upper bound beats every
group bound; the group filter opens only groups whose bound fails. Fewer
bounds than Elkan means far cheaper maintenance, at slightly weaker
pruning — efficient at low dimensionality but ED-dominated at high
dimensionality, where the paper's Yinyang-PIM shines (up to 4.9x).
"""

from __future__ import annotations

import numpy as np

from repro.cost.counters import OTHER
from repro.mining.kmeans.base import BOUND_UPDATE, KMeansAlgorithm
from repro.mining.knn.base import OPERAND_BYTES


def default_groups(k: int) -> int:
    """Yinyang's recommended group count, ``t = k / 10`` (at least 1)."""
    return max(1, k // 10)


def group_centers(centers: np.ndarray, t: int, seed: int = 0) -> np.ndarray:
    """Cluster the initial centers into ``t`` groups (tiny Lloyd run).

    Grouping quality affects efficiency only, never correctness.
    """
    k = centers.shape[0]
    if t >= k:
        return np.arange(k, dtype=np.int64)
    rng = np.random.default_rng(seed)
    seeds = centers[rng.choice(k, size=t, replace=False)].copy()
    labels = np.zeros(k, dtype=np.int64)
    for _ in range(5):
        d2 = (
            np.einsum("cj,cj->c", centers, centers)[:, None]
            + np.einsum("gj,gj->g", seeds, seeds)[None, :]
            - 2.0 * centers @ seeds.T
        )
        labels = np.argmin(d2, axis=1).astype(np.int64)
        for g in range(t):
            members = labels == g
            if members.any():
                seeds[g] = centers[members].mean(axis=0)
    return labels


class YinyangKMeans(KMeansAlgorithm):
    """Yinyang exact accelerated k-means."""

    base_name = "Yinyang"

    def __init__(
        self,
        n_clusters: int,
        max_iters: int = 20,
        pim_assist=None,
        n_groups: int | None = None,
    ) -> None:
        super().__init__(n_clusters, max_iters, pim_assist)
        self.n_groups = (
            n_groups if n_groups is not None else default_groups(n_clusters)
        )

    def _initialize_state(self, centers: np.ndarray) -> None:
        n = self.data.shape[0]
        self._labels = group_centers(centers, self.n_groups)
        self._groups = [
            np.nonzero(self._labels == g)[0] for g in range(self.n_groups)
        ]
        self._ub = np.full(n, np.inf)
        self._glb = np.zeros((n, self.n_groups))
        self._a = np.full(n, -1, dtype=np.int64)
        self._first = True

    def _assign(self, centers: np.ndarray) -> np.ndarray:
        n = self.data.shape[0]
        if self._first:
            self._first = False
            for i in range(n):
                self._scan_point(i, centers, initial=True)
            return self._a.copy()
        for i in range(n):
            gmin = float(self._glb[i].min())
            if self._ub[i] <= gmin:
                self._counters.record(OTHER, branches=1.0)
                continue
            a = int(self._a[i])
            d_a = float(self._exact_distances(i, centers, np.array([a]))[0])
            self._ub[i] = d_a
            if d_a <= gmin:
                continue
            self._scan_point(i, centers, initial=False)
        return self._a.copy()

    def _scan_point(self, i: int, centers: np.ndarray, initial: bool) -> None:
        """Open failing groups and refresh the point's bounds.

        Group bounds must cover every non-assigned center: values seen
        during the scan (exact or PIM lower bounds) are collected per
        group and the bounds are rebuilt *after* the final winner is
        known, so interim bests never leave a center uncovered. When the
        assignment leaves a group that was not rescanned, the old
        center's exact distance is folded into that group's bound.
        """
        if initial:
            best_d, best_c = np.inf, -1
            open_groups = list(range(self.n_groups))
            old_a, old_d = -1, np.inf
        else:
            best_d, best_c = float(self._ub[i]), int(self._a[i])
            old_a, old_d = best_c, best_d
            open_groups = [
                g
                for g in range(self.n_groups)
                if self._glb[i, g] < best_d
            ]
            self._counters.record(
                BOUND_UPDATE, flops=float(self.n_groups), branches=1.0
            )
        seen: dict[int, np.ndarray] = {}
        for g in open_groups:
            members = self._groups[g]
            if members.size == 0:
                self._glb[i, g] = np.inf
                continue
            values, exact = self._distances_with_pim(
                i, centers, members, best_d if best_d < np.inf else np.inf
            )
            seen[g] = values
            exact_ids = np.nonzero(exact)[0]
            if exact_ids.size:
                j = int(exact_ids[np.argmin(values[exact_ids])])
                if values[j] < best_d:
                    best_d, best_c = float(values[j]), int(members[j])
        for g, values in seen.items():
            mask = self._groups[g] != best_c
            self._glb[i, g] = (
                float(values[mask].min()) if mask.any() else np.inf
            )
        if best_c != old_a and old_a >= 0:
            g_old = int(self._labels[old_a])
            if g_old not in seen:
                self._glb[i, g_old] = min(self._glb[i, g_old], old_d)
        self._a[i] = best_c
        self._ub[i] = best_d

    def _after_update(
        self, old_centers: np.ndarray, new_centers: np.ndarray
    ) -> None:
        drifts = self._center_drifts(old_centers, new_centers)
        group_drift = np.array(
            [
                drifts[members].max() if members.size else 0.0
                for members in self._groups
            ]
        )
        n, t = self._glb.shape
        self._glb = np.maximum(self._glb - group_drift[None, :], 0.0)
        self._ub += drifts[self._a]
        self._counters.record(
            BOUND_UPDATE,
            flops=float(n * t + n),
            bytes_from_memory=float(n * t * OPERAND_BYTES),
        )
