"""Elkan's k-means (ICML'03): full triangle-inequality bounding.

Elkan keeps one upper bound per point and one lower bound per
(point, center) pair, plus half the pairwise center distances. The
bounds eliminate most exact distances, but *maintaining* the N x k
lower-bound matrix is itself O(N k) work and traffic per iteration —
which is why the paper finds Elkan-PIM gains little (Section VI-D:
"updating original bounds often occupies up to 45% of total time").
"""

from __future__ import annotations

import numpy as np

from repro.cost.counters import OTHER
from repro.mining.kmeans.base import BOUND_UPDATE, KMeansAlgorithm
from repro.mining.knn.base import OPERAND_BYTES


class ElkanKMeans(KMeansAlgorithm):
    """Elkan's exact accelerated k-means."""

    base_name = "Elkan"

    def _initialize_state(self, centers: np.ndarray) -> None:
        n = self.data.shape[0]
        k = self.n_clusters
        self._ub = np.full(n, np.inf)
        self._lb = np.zeros((n, k))
        self._a = np.full(n, -1, dtype=np.int64)
        self._first = True

    def _center_separations(self, centers: np.ndarray) -> np.ndarray:
        """Pairwise center distances, charged as ED on the host."""
        k = centers.shape[0]
        c_sq = np.einsum("cj,cj->c", centers, centers)
        d2 = c_sq[:, None] + c_sq[None, :] - 2.0 * centers @ centers.T
        np.maximum(d2, 0.0, out=d2)
        self._charge_ed(k * (k - 1) // 2)
        return np.sqrt(d2)

    def _assign(self, centers: np.ndarray) -> np.ndarray:
        if self._first:
            self._first = False
            return self._assign_initial(centers)
        n = self.data.shape[0]
        k = self.n_clusters
        dcc = self._center_separations(centers)
        np.fill_diagonal(dcc, np.inf)
        s = 0.5 * dcc.min(axis=1)
        ids = np.arange(k)
        for i in range(n):
            a = int(self._a[i])
            if self._ub[i] <= s[a]:
                self._counters.record(OTHER, branches=1.0)
                continue
            mask = (self._lb[i] < self._ub[i]) & (
                0.5 * dcc[a] < self._ub[i]
            )
            mask[a] = False
            self._counters.record(BOUND_UPDATE, flops=2.0 * k, branches=1.0)
            if not mask.any():
                continue
            # tighten the upper bound with one exact distance
            d_a = float(self._exact_distances(i, centers, np.array([a]))[0])
            self._ub[i] = d_a
            self._lb[i, a] = d_a
            mask &= (self._lb[i] < d_a) & (0.5 * dcc[a] < d_a)
            cand = ids[mask]
            if cand.size == 0:
                continue
            values, exact = self._distances_with_pim(
                i, centers, cand, self._ub[i]
            )
            self._lb[i, cand] = values
            if exact.any():
                j = int(np.argmin(values))
                if exact[j] and values[j] < self._ub[i]:
                    self._a[i] = int(cand[j])
                    self._ub[i] = float(values[j])
        return self._a.copy()

    def _assign_initial(self, centers: np.ndarray) -> np.ndarray:
        """First pass: establish assignments, ub and the lb matrix."""
        n = self.data.shape[0]
        k = self.n_clusters
        ids = np.arange(k)
        for i in range(n):
            if self.pim is None:
                values = self._exact_distances(i, centers, ids)
                self._lb[i] = values
                self._a[i] = int(np.argmin(values))
                self._ub[i] = float(values[self._a[i]])
            else:
                lbs = self.pim.lower_bounds(i, ids)
                self.pim.charge(self._counters, k)
                seed = int(np.argmin(lbs))
                ub = float(
                    self._exact_distances(i, centers, np.array([seed]))[0]
                )
                values, exact = self._distances_with_pim(i, centers, ids, ub)
                values[seed] = ub
                exact[seed] = True
                self._lb[i] = values
                # the assigned center must carry an exact value so that
                # ub really upper-bounds its distance
                exact_ids = np.nonzero(exact)[0]
                winner = int(exact_ids[np.argmin(values[exact_ids])])
                self._a[i] = winner
                self._ub[i] = float(values[winner])
        return self._a.copy()

    def _after_update(
        self, old_centers: np.ndarray, new_centers: np.ndarray
    ) -> None:
        drifts = self._center_drifts(old_centers, new_centers)
        n, k = self._lb.shape
        self._lb = np.maximum(self._lb - drifts[None, :], 0.0)
        self._ub += drifts[self._a]
        # the N x k bound matrix is streamed from memory every update
        self._counters.record(
            BOUND_UPDATE,
            flops=float(n * k + n),
            bytes_from_memory=float(n * k * OPERAND_BYTES),
        )
