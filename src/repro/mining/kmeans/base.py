"""Shared machinery of the k-means algorithm family.

All variants implement *exact* Lloyd iterations — Elkan/Drake/Yinyang
only avoid distance computations that provably cannot change the
assignment, and the PIM-assisted variants add one more such filter
(LB_PIM-ED, Section V-B of the paper). Consequently every variant
produces the same clustering as Lloyd from the same initial centers
(up to distance ties), which the test suite asserts.

Internally the algorithms work with *true* (root) Euclidean distances so
the triangle inequality holds; reported inertia is the usual sum of
squared distances.

Cost accounting: exact distance computations are charged to the ``ED``
bucket, bound maintenance to ``bound_update``, PIM-bound consultations to
the bound's own bucket, and everything else (argmin bookkeeping, the
update step) to ``other`` — matching the function breakdown of Fig. 6.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

import numpy as np

from repro.cost.counters import OTHER, PerfCounters
from repro.errors import ConfigurationError, OperandError
from repro.mining.knn.base import OPERAND_BYTES
from repro.telemetry import get_recorder

#: Counter bucket for Elkan/Drake/Yinyang bound maintenance.
BOUND_UPDATE = "bound_update"


@dataclass
class KMeansResult:
    """Outcome of one k-means run.

    Attributes
    ----------
    assignments:
        Cluster index per point.
    centers:
        Final cluster centers.
    inertia:
        Sum of squared distances to assigned centers.
    n_iterations:
        Lloyd iterations executed (assign+update pairs).
    counters:
        Host-side events over the whole run.
    pim_time_ns:
        Simulated PIM wave time over the whole run.
    exact_distances:
        Number of full-dimensional ED evaluations.
    converged:
        Whether assignments stabilised before the iteration cap.
    """

    assignments: np.ndarray
    centers: np.ndarray
    inertia: float
    n_iterations: int
    counters: PerfCounters
    pim_time_ns: float = 0.0
    exact_distances: int = 0
    converged: bool = False
    iteration_exact_distances: list[int] = field(default_factory=list)
    iteration_counters: list[PerfCounters] = field(default_factory=list)


def initial_centers(data: np.ndarray, k: int, seed: int = 0) -> np.ndarray:
    """k distinct data points chosen uniformly (the shared seeding the
    paper uses so every algorithm starts identically)."""
    data = np.asarray(data, dtype=np.float64)
    if k <= 0 or k > data.shape[0]:
        raise ConfigurationError(
            f"k={k} must be in 1..{data.shape[0]} for this dataset"
        )
    rng = np.random.default_rng(seed)
    picks = rng.choice(data.shape[0], size=k, replace=False)
    return data[picks].copy()


def initial_centers_plusplus(
    data: np.ndarray, k: int, seed: int = 0
) -> np.ndarray:
    """k-means++ seeding (Arthur & Vassilvitskii).

    Each further center is sampled with probability proportional to the
    squared distance from the nearest chosen center — better-separated
    starts than uniform picks, fewer Lloyd iterations. Deterministic
    given ``seed`` so every algorithm still shares identical centers.
    """
    data = np.asarray(data, dtype=np.float64)
    n = data.shape[0]
    if k <= 0 or k > n:
        raise ConfigurationError(
            f"k={k} must be in 1..{n} for this dataset"
        )
    rng = np.random.default_rng(seed)
    centers = np.empty((k, data.shape[1]))
    centers[0] = data[rng.integers(0, n)]
    diff = data - centers[0]
    closest_sq = np.einsum("ij,ij->i", diff, diff)
    for c in range(1, k):
        total = float(closest_sq.sum())
        if total <= 0.0:
            # all remaining points coincide with a chosen center
            centers[c:] = data[rng.choice(n, size=k - c, replace=False)]
            break
        probs = closest_sq / total
        pick = int(rng.choice(n, p=probs))
        centers[c] = data[pick]
        diff = data - centers[c]
        closest_sq = np.minimum(
            closest_sq, np.einsum("ij,ij->i", diff, diff)
        )
    return centers


class KMeansAlgorithm(abc.ABC):
    """Base of every k-means implementation.

    Parameters
    ----------
    n_clusters:
        k.
    max_iters:
        Iteration cap.
    pim_assist:
        Optional :class:`repro.mining.kmeans.pim.PIMAssist`; when set the
        exact-distance helper first consults LB_PIM-ED and skips
        computations the bound proves useless, and the algorithm's name
        gains a ``-PIM`` suffix.
    """

    base_name: str = "kmeans"

    def __init__(
        self,
        n_clusters: int,
        max_iters: int = 20,
        pim_assist=None,
    ) -> None:
        if n_clusters <= 0:
            raise ConfigurationError("n_clusters must be positive")
        if max_iters <= 0:
            raise ConfigurationError("max_iters must be positive")
        self.n_clusters = n_clusters
        self.max_iters = max_iters
        self.pim = pim_assist
        self._data: np.ndarray | None = None
        self._counters = PerfCounters()
        self._exact = 0

    @property
    def name(self) -> str:
        """Display name (paper naming: e.g. ``Elkan-PIM``)."""
        return self.base_name + ("-PIM" if self.pim is not None else "")

    # ------------------------------------------------------------------
    # distance helpers (single source of ED cost accounting)
    # ------------------------------------------------------------------
    @property
    def data(self) -> np.ndarray:
        if self._data is None:
            raise OperandError("algorithm not fitted")
        return self._data

    def _charge_ed(self, n: int) -> None:
        d = self.data.shape[1]
        self._counters.record(
            "ED",
            calls=n,
            flops=3.0 * d * n,
            bytes_from_memory=d * OPERAND_BYTES * n,
            long_ops=float(n),  # the sqrt
            branches=float(n),
        )
        self._exact += n

    def _exact_distances(
        self, i: int, centers: np.ndarray, center_ids: np.ndarray
    ) -> np.ndarray:
        """True Euclidean distance of point ``i`` to selected centers."""
        diff = centers[center_ids] - self.data[i]
        dists = np.sqrt(np.einsum("cj,cj->c", diff, diff))
        self._charge_ed(len(center_ids))
        return dists

    def _distances_with_pim(
        self,
        i: int,
        centers: np.ndarray,
        center_ids: np.ndarray,
        ub: float,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Distances (or safe lower bounds) to selected centers.

        Returns ``(values, is_exact)``. With PIM assistance, centers
        whose LB_PIM-ED already meets ``ub`` return the bound instead of
        the exact distance (the bound proves they cannot win, so using
        it as the value keeps every argmin decision intact).
        """
        center_ids = np.asarray(center_ids)
        if self.pim is None:
            values = self._exact_distances(i, centers, center_ids)
            return values, np.ones(len(center_ids), dtype=bool)
        lbs = self.pim.lower_bounds(i, center_ids)
        self.pim.charge(self._counters, len(center_ids))
        exact_mask = lbs < ub
        values = lbs.copy()
        if exact_mask.any():
            values[exact_mask] = self._exact_distances(
                i, centers, center_ids[exact_mask]
            )
        return values, exact_mask

    # ------------------------------------------------------------------
    # the Lloyd loop
    # ------------------------------------------------------------------
    def fit(
        self,
        data: np.ndarray,
        centers: np.ndarray | None = None,
        seed: int = 0,
    ) -> KMeansResult:
        """Run the algorithm to convergence (or the iteration cap)."""
        data = np.asarray(data, dtype=np.float64)
        if data.ndim != 2 or data.shape[0] < self.n_clusters:
            raise OperandError(
                "fit() expects a 2-D dataset with at least k points"
            )
        self._data = data
        self._counters = PerfCounters()
        self._exact = 0
        centers = (
            initial_centers(data, self.n_clusters, seed)
            if centers is None
            else np.array(centers, dtype=np.float64, copy=True)
        )
        if centers.shape != (self.n_clusters, data.shape[1]):
            raise OperandError("initial centers have the wrong shape")

        pim_before = self.pim.pim_time_ns() if self.pim is not None else 0.0
        if self.pim is not None:
            self.pim.prepare(data)
        self._initialize_state(centers)

        assignments = np.full(data.shape[0], -1, dtype=np.int64)
        converged = False
        iterations = 0
        per_iter_exact: list[int] = []
        per_iter_counters: list[PerfCounters] = []
        total_counters = self._counters  # setup events recorded so far
        tele = get_recorder()
        for _ in range(self.max_iters):
            exact_before = self._exact
            self._counters = PerfCounters()  # this iteration's bucket
            iter_span = (
                tele.begin_span(
                    "kmeans.iteration", "iteration",
                    algorithm=self.name, iteration=iterations,
                )
                if tele.enabled
                else None
            )
            if self.pim is not None:
                self.pim.begin_iteration(centers)
            new_assignments = self._assign(centers)
            iterations += 1
            iter_exact = self._exact - exact_before
            per_iter_exact.append(iter_exact)
            if iter_span is not None:
                tele.end_span(exact_distances=iter_exact)
                tele.metrics.counter("kmeans.iterations").add(1)
                tele.metrics.counter("kmeans.exact_distances").add(
                    iter_exact
                )
                tele.metrics.gauge("prune.ratio").set(
                    1.0 - iter_exact / (data.shape[0] * self.n_clusters)
                )
            if np.array_equal(new_assignments, assignments):
                assignments = new_assignments
                converged = True
                per_iter_counters.append(self._counters)
                total_counters = total_counters.merged_with(self._counters)
                break
            assignments = new_assignments
            new_centers = self._update_centers(assignments, centers)
            self._after_update(centers, new_centers)
            centers = new_centers
            per_iter_counters.append(self._counters)
            total_counters = total_counters.merged_with(self._counters)
        self._counters = total_counters

        inertia = self._inertia(assignments, centers)
        pim_after = self.pim.pim_time_ns() if self.pim is not None else 0.0
        return KMeansResult(
            assignments=assignments,
            centers=centers,
            inertia=inertia,
            n_iterations=iterations,
            counters=self._counters,
            pim_time_ns=pim_after - pim_before,
            exact_distances=self._exact,
            converged=converged,
            iteration_exact_distances=per_iter_exact,
            iteration_counters=per_iter_counters,
        )

    # ------------------------------------------------------------------
    # hooks
    # ------------------------------------------------------------------
    def _initialize_state(self, centers: np.ndarray) -> None:
        """Build per-point bound state before the first iteration."""

    @abc.abstractmethod
    def _assign(self, centers: np.ndarray) -> np.ndarray:
        """One assign step; must be Lloyd-exact."""

    def _after_update(
        self, old_centers: np.ndarray, new_centers: np.ndarray
    ) -> None:
        """Adjust bound state for the center drift (triangle inequality)."""

    # ------------------------------------------------------------------
    # shared steps
    # ------------------------------------------------------------------
    def _update_centers(
        self, assignments: np.ndarray, old_centers: np.ndarray
    ) -> np.ndarray:
        """Mean of assigned points; empty clusters keep their center."""
        data = self.data
        n, d = data.shape
        new_centers = old_centers.copy()
        for c in range(self.n_clusters):
            members = assignments == c
            if members.any():
                new_centers[c] = data[members].mean(axis=0)
        self._counters.record(
            OTHER,
            flops=float(n * d),
            bytes_from_memory=float(n * d * OPERAND_BYTES),
        )
        return new_centers

    def _center_drifts(
        self, old_centers: np.ndarray, new_centers: np.ndarray
    ) -> np.ndarray:
        """True-distance center movement, charged to bound_update."""
        diff = new_centers - old_centers
        drifts = np.sqrt(np.einsum("cj,cj->c", diff, diff))
        self._counters.record(
            BOUND_UPDATE,
            flops=3.0 * old_centers.size,
            bytes_cached=float(old_centers.nbytes),
        )
        return drifts

    def _inertia(self, assignments: np.ndarray, centers: np.ndarray) -> float:
        diff = self.data - centers[assignments]
        return float(np.einsum("ij,ij->", diff, diff))

    def offloadable_functions(self) -> tuple[str, ...]:
        """The set F of Eq. 2 — buckets PIM could absorb."""
        names = ["ED"]
        if self.pim is not None:
            names.append(self.pim.bound_name)
        return tuple(names)
