"""Distance-based outlier detection (a paper Section II-C mining task).

The classic definition (Ramaswamy et al.): rank every object by the
distance to its k-th nearest neighbour; the top-m ranks are outliers.
This is similarity-computation-bound exactly like kNN classification,
and the paper's framework applies unchanged:

* :class:`StandardOutlierDetector` — the nested-loop baseline with the
  ORCA-style cutoff: once the m-th best outlier score so far is known,
  a candidate's scan stops as soon as its running k-th distance drops
  below that cutoff (it can no longer be an outlier);
* :class:`PIMOutlierDetector` — the same algorithm, but each candidate
  first gets one LB_PIM-ED wave: visiting neighbours in ascending bound
  order finds the true k nearest (and triggers the cutoff) after a few
  exact distances instead of a full scan.

Both return the identical outlier set (ties aside), which tests assert.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

import numpy as np

from repro.bounds.pim import PIMEuclideanBound
from repro.cost.counters import OTHER, PerfCounters
from repro.errors import ConfigurationError, OperandError
from repro.hardware.controller import PIMController
from repro.mining.knn.base import OPERAND_BYTES
from repro.similarity.quantization import Quantizer


@dataclass
class OutlierResult:
    """Top-m outliers, best (most outlying) first."""

    indices: np.ndarray
    scores: np.ndarray
    counters: PerfCounters
    pim_time_ns: float = 0.0
    exact_computations: int = 0
    extras: dict = field(default_factory=dict)


class _BaseOutlierDetector:
    """Shared cutoff machinery and cost accounting."""

    name = "outlier"

    def __init__(self, n_neighbors: int = 5, n_outliers: int = 10) -> None:
        if n_neighbors <= 0 or n_outliers <= 0:
            raise ConfigurationError(
                "n_neighbors and n_outliers must be positive"
            )
        self.k = n_neighbors
        self.m = n_outliers
        self._data: np.ndarray | None = None

    @property
    def data(self) -> np.ndarray:
        if self._data is None:
            raise OperandError(f"{self.name} is not fitted")
        return self._data

    def fit(self, data: np.ndarray) -> "_BaseOutlierDetector":
        data = np.asarray(data, dtype=np.float64)
        if data.ndim != 2 or data.shape[0] <= self.k:
            raise OperandError(
                "fit() needs a 2-D dataset with more than k objects"
            )
        self._data = data
        self._prepare(data)
        return self

    def _prepare(self, data: np.ndarray) -> None:
        """Hook for subclasses."""

    def _charge_ed(self, counters: PerfCounters, n: int) -> None:
        d = self.data.shape[1]
        counters.record(
            "ED",
            calls=n,
            flops=3.0 * d * n,
            bytes_from_memory=d * OPERAND_BYTES * n,
            branches=float(n),
        )

    @staticmethod
    def _kth_so_far(heap: list[float], k: int) -> float:
        """Current k-th smallest distance (inf until k seen).

        ``heap`` is a max-heap (negated) of the k smallest distances.
        """
        if len(heap) < k:
            return float("inf")
        return -heap[0]

    def _finalize(
        self,
        scores: dict[int, float],
        counters: PerfCounters,
        pim_time_ns: float,
        exact: int,
    ) -> OutlierResult:
        ranked = sorted(scores.items(), key=lambda kv: -kv[1])[: self.m]
        return OutlierResult(
            indices=np.array([i for i, _ in ranked], dtype=np.int64),
            scores=np.array([s for _, s in ranked]),
            counters=counters,
            pim_time_ns=pim_time_ns,
            exact_computations=exact,
        )


class StandardOutlierDetector(_BaseOutlierDetector):
    """Nested-loop detector with the ORCA cutoff."""

    name = "Standard"
    offloadable_functions = ("ED",)

    def detect(self) -> OutlierResult:
        """Rank all objects; return the top-m by k-NN distance."""
        data = self.data
        n = data.shape[0]
        counters = PerfCounters()
        cutoff = 0.0
        top: list[tuple[float, int]] = []  # min-heap of outlier scores
        scores: dict[int, float] = {}
        exact = 0
        for i in range(n):
            knn_heap: list[float] = []  # max-heap (negated) of distances
            pruned = False
            for j in range(n):
                if j == i:
                    continue
                diff = data[j] - data[i]
                dist = float(np.sqrt(diff @ diff))
                exact += 1
                heapq.heappush(knn_heap, -dist)
                if len(knn_heap) > self.k:
                    heapq.heappop(knn_heap)
                kth = self._kth_so_far(knn_heap, self.k)
                if len(top) >= self.m and kth < cutoff:
                    pruned = True
                    break
            counters.record(OTHER, branches=float(n))
            if pruned:
                continue
            score = self._kth_so_far(knn_heap, self.k)
            scores[i] = score
            heapq.heappush(top, (score, i))
            if len(top) > self.m:
                heapq.heappop(top)
            if len(top) >= self.m:
                cutoff = top[0][0]
        self._charge_ed(counters, exact)
        return self._finalize(scores, counters, 0.0, exact)


class PIMOutlierDetector(_BaseOutlierDetector):
    """The same detector with an LB_PIM-ED wave per candidate."""

    name = "Standard-PIM"
    offloadable_functions = ("ED", "LB_PIM-ED")

    def __init__(
        self,
        n_neighbors: int = 5,
        n_outliers: int = 10,
        controller: PIMController | None = None,
        quantizer: Quantizer | None = None,
    ) -> None:
        super().__init__(n_neighbors, n_outliers)
        self.controller = (
            controller if controller is not None else PIMController()
        )
        self._bound = PIMEuclideanBound(self.controller, quantizer)

    def _prepare(self, data: np.ndarray) -> None:
        self._bound.prepare(data)

    def detect(self) -> OutlierResult:
        """Exact top-m outliers with bound-guided neighbour scans."""
        data = self.data
        n = data.shape[0]
        counters = PerfCounters()
        pim_before = self.controller.pim.stats.pim_time_ns
        cutoff = 0.0
        top: list[tuple[float, int]] = []
        scores: dict[int, float] = {}
        exact = 0
        for i in range(n):
            lbs = np.sqrt(self._bound.evaluate(data[i]))
            self._bound.charge(counters, n)
            order = np.argsort(lbs)
            knn_heap: list[float] = []
            is_outlier_candidate = True
            for j in order:
                j = int(j)
                if j == i:
                    continue
                kth = self._kth_so_far(knn_heap, self.k)
                if len(top) >= self.m and kth < cutoff:
                    # true k-NN distance is already below the cutoff
                    is_outlier_candidate = False
                    break
                if lbs[j] >= kth:
                    # every remaining bound is >= kth: the k-NN set is
                    # final and the score is exactly kth
                    break
                diff = data[j] - data[i]
                dist = float(np.sqrt(diff @ diff))
                exact += 1
                heapq.heappush(knn_heap, -dist)
                if len(knn_heap) > self.k:
                    heapq.heappop(knn_heap)
            if not is_outlier_candidate:
                counters.record(OTHER, branches=1.0)
                continue
            score = self._kth_so_far(knn_heap, self.k)
            scores[i] = score
            heapq.heappush(top, (score, i))
            if len(top) > self.m:
                heapq.heappop(top)
            if len(top) >= self.m:
                cutoff = top[0][0]
        self._charge_ed(counters, exact)
        pim_after = self.controller.pim.stats.pim_time_ns
        return self._finalize(
            scores, counters, pim_after - pim_before, exact
        )
