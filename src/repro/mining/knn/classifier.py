"""kNN *classification* on top of the kNN search algorithms.

The paper's headline task is kNN classification: the class of a query
is the majority label among its k nearest neighbours. Since every
PIM-optimized search returns exactly the baseline's neighbour set, the
predicted labels — and therefore classification accuracy — are
identical. :class:`KNNClassifier` wraps any
:class:`~repro.mining.knn.base.KNNAlgorithm` and exposes the usual
fit/predict/score interface so that claim is directly measurable.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError, OperandError
from repro.mining.knn.base import KNNAlgorithm


@dataclass
class ClassificationReport:
    """Accuracy plus the work the underlying search performed."""

    accuracy: float
    n_queries: int
    exact_computations: int
    pim_time_ns: float


class KNNClassifier:
    """Majority-vote classifier over a pluggable kNN search.

    Parameters
    ----------
    search:
        Any (unfitted) kNN algorithm — a baseline or a PIM variant.
    k:
        Number of neighbours voting.

    Ties are broken toward the label of the nearest neighbour among the
    tied classes, which is deterministic and identical across search
    algorithms returning the same neighbour set.
    """

    def __init__(self, search: KNNAlgorithm, k: int = 10) -> None:
        if k <= 0:
            raise ConfigurationError("k must be positive")
        self.search = search
        self.k = k
        self._labels: np.ndarray | None = None

    def fit(self, data: np.ndarray, labels: np.ndarray) -> "KNNClassifier":
        """Index the training set and remember its labels."""
        data = np.asarray(data)
        labels = np.asarray(labels)
        if labels.ndim != 1 or labels.shape[0] != data.shape[0]:
            raise OperandError("labels must align with the training rows")
        self.search.fit(data)
        self._labels = labels
        return self

    def predict_one(self, q: np.ndarray):
        """Predicted label of one query."""
        if self._labels is None:
            raise OperandError("classifier is not fitted")
        result = self.search.query(q, self.k)
        neighbour_labels = self._labels[result.indices]
        counts = Counter(neighbour_labels.tolist())
        top = max(counts.values())
        tied = {label for label, c in counts.items() if c == top}
        for label in neighbour_labels:
            if label in tied:
                return label
        return neighbour_labels[0]

    def predict(self, queries: np.ndarray) -> np.ndarray:
        """Predicted labels for a batch of queries."""
        queries = np.atleast_2d(np.asarray(queries))
        return np.array([self.predict_one(q) for q in queries])

    def score(
        self, queries: np.ndarray, true_labels: np.ndarray
    ) -> ClassificationReport:
        """Accuracy over a labelled query set, with work accounting."""
        queries = np.atleast_2d(np.asarray(queries))
        true_labels = np.asarray(true_labels)
        if true_labels.shape[0] != queries.shape[0]:
            raise OperandError("true_labels must align with the queries")
        correct = 0
        exact = 0
        pim_ns = 0.0
        for q, truth in zip(queries, true_labels):
            result = self.search.query(q, self.k)
            exact += result.exact_computations
            pim_ns += result.pim_time_ns
            neighbour_labels = self._labels[result.indices]
            counts = Counter(neighbour_labels.tolist())
            top = max(counts.values())
            tied = {label for label, c in counts.items() if c == top}
            predicted = next(
                (lb for lb in neighbour_labels if lb in tied),
                neighbour_labels[0],
            )
            if predicted == truth:
                correct += 1
        return ClassificationReport(
            accuracy=correct / len(queries),
            n_queries=len(queries),
            exact_computations=exact,
            pim_time_ns=pim_ns,
        )


def labelled_dataset(
    n: int,
    dims: int,
    n_classes: int = 8,
    spread: float = 0.06,
    seed: int = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """A labelled Gaussian-mixture classification dataset in [0, 1].

    Each mixture component is a class, so kNN accuracy is high but not
    trivial (components overlap at the given spread).
    """
    if n_classes <= 0 or n <= 0:
        raise ConfigurationError("n and n_classes must be positive")
    rng = np.random.default_rng(seed)
    centers = rng.random((n_classes, dims))
    labels = rng.integers(0, n_classes, size=n)
    data = centers[labels] + spread * rng.standard_normal((n, dims))
    return np.clip(data, 0.0, 1.0), labels
