"""kNN on binary codes under Hamming distance (paper Fig. 14).

The paper observes no filtering technique beats a linear scan for HD, so
only two algorithms exist:

* :class:`HammingKNN` — the CPU linear scan over bit-packed codes
  (``d`` bits of transfer per object);
* :class:`PIMHammingKNN` — Standard-PIM: PIM computes HD *exactly* via
  the two-dot-product decomposition of Table 4, moving only ``2 x 32``
  result bits per object. For short codes that transfer saving is too
  small to matter — exactly the crossover Fig. 14 shows.
"""

from __future__ import annotations

import numpy as np

from repro.bounds.pim import PIMHammingDistance
from repro.cost.counters import PerfCounters
from repro.errors import OperandError
from repro.hardware.config import HardwareConfig, PIMArrayConfig
from repro.hardware.controller import PIMController
from repro.mining.knn.base import KNNAlgorithm, KNNResult, _Heap, validate_query
from repro.similarity import measures


def binary_pim_platform(
    pim_capacity_bytes: int = 2 * 1024**3,
) -> HardwareConfig:
    """A PIM platform configured for 1-bit operands / 32-bit results."""
    return HardwareConfig(
        pim=PIMArrayConfig(
            capacity_bytes=pim_capacity_bytes,
            operand_bits=1,
            accumulator_bits=32,
        )
    )


class HammingKNN(KNNAlgorithm):
    """Linear-scan kNN over binary codes."""

    name = "Standard"

    def __init__(self) -> None:
        super().__init__(measure="hamming")
        self.offloadable_functions = ("hamming",)

    def query(self, q: np.ndarray, k: int) -> KNNResult:
        q = validate_query(q, self.dims)
        counters = PerfCounters()
        scores = measures.hamming_batch(self.data, q)
        self.charge_exact(counters, self.n_objects)
        self.charge_heap(counters, self.n_objects)
        heap = _Heap(k, minimize=True)
        for i, s in enumerate(scores):
            heap.push(float(s), i)
        return self._finalize(
            heap, counters, exact_computations=self.n_objects
        )


class PIMHammingKNN(KNNAlgorithm):
    """Standard-PIM kNN over binary codes: exact HD from two PIM waves."""

    name = "Standard-PIM"

    def __init__(self, controller: PIMController | None = None) -> None:
        super().__init__(measure="hamming")
        self.controller = (
            controller
            if controller is not None
            else PIMController(binary_pim_platform())
        )
        if self.controller.pim.config.operand_bits != 1:
            raise OperandError(
                "PIMHammingKNN needs a 1-bit-operand platform; "
                "use binary_pim_platform()"
            )
        self._distance = PIMHammingDistance(self.controller)
        self.offloadable_functions = ("hamming", self._distance.name)

    def _prepare(self, data: np.ndarray) -> None:
        self._distance.prepare(data)

    def query(self, q: np.ndarray, k: int) -> KNNResult:
        q = validate_query(q, self.dims)
        counters = PerfCounters()
        pim_before = self.controller.pim.stats.pim_time_ns
        values = self._distance.evaluate(q)
        self._distance.charge(counters, self.n_objects)
        self.charge_heap(counters, self.n_objects)
        heap = _Heap(k, minimize=True)
        for i, s in enumerate(values):
            heap.push(float(s), i)
        pim_after = self.controller.pim.stats.pim_time_ns
        return self._finalize(
            heap,
            counters,
            pim_time_ns=pim_after - pim_before,
            exact_computations=0,
        )

    def query_batch(self, queries: np.ndarray, k: int) -> list[KNNResult]:
        """Batched variant: two amortized waves cover every query's HD."""
        queries = np.atleast_2d(np.asarray(queries))
        pim_before = self.controller.pim.stats.pim_time_ns
        self._distance.prime_queries(queries)
        prime_ns = self.controller.pim.stats.pim_time_ns - pim_before
        results = [self.query(q, k) for q in queries]
        share = prime_ns / len(results) if results else 0.0
        for result in results:
            result.pim_time_ns += share
        return results
