"""Shared machinery of the kNN classification algorithms.

Every algorithm follows the filtering-and-refinement paradigm of Section
II-C: candidates are screened by one or more bounds against the current
k-th best distance, and only survivors pay the exact similarity
computation. Implementations differ in which bounds they stack; the
*result set is always exact* (identical to a linear scan), which tests
enforce.

Execution-time accounting: every algorithm records its events in a fresh
:class:`~repro.cost.counters.PerfCounters` per query; the caller converts
them to simulated time with :class:`~repro.cost.model.CostModel` and adds
the PIM wave time of the algorithm's controller (if any), mirroring the
paper's NVSim + Quartz summation.
"""

from __future__ import annotations

import abc
import heapq
from dataclasses import dataclass, field

import numpy as np

from repro.cost.counters import OTHER, PerfCounters
from repro.errors import ConfigurationError, OperandError
from repro.similarity import measures

#: Bytes one stored coordinate occupies on the modelled machines
#: (the paper's baselines stream 32-bit values).
OPERAND_BYTES = 4

#: Chunk size for vectorised filter-and-refine passes. Thresholds are
#: refreshed between chunks; within a chunk the threshold is frozen,
#: which is safe (a frozen, looser threshold only prunes less).
CHUNK = 256


@dataclass
class KNNResult:
    """Outcome of one kNN query.

    Attributes
    ----------
    indices:
        The k nearest (most similar) object indices, best first.
    scores:
        Their distances (ED/HD) or similarities (CS/PCC).
    counters:
        Host-side events recorded during the query.
    pim_time_ns:
        Simulated PIM wave time consumed by the query (0 for baselines).
    exact_computations:
        How many full-dimensional exact evaluations were needed.
    """

    indices: np.ndarray
    scores: np.ndarray
    counters: PerfCounters
    pim_time_ns: float = 0.0
    exact_computations: int = 0
    stage_evaluations: dict[str, int] = field(default_factory=dict)


class _Heap:
    """Fixed-size best-k heap with threshold access.

    Keeps the k best scores seen so far; ``threshold`` is the score a new
    candidate must beat. For distances (minimise) it is the largest kept
    value; for similarities (maximise) the smallest.
    """

    def __init__(self, k: int, minimize: bool) -> None:
        self.k = k
        self.minimize = minimize
        self._heap: list[tuple[float, int]] = []

    def push(self, score: float, index: int) -> None:
        """Offer one candidate."""
        key = -score if self.minimize else score
        if len(self._heap) < self.k:
            heapq.heappush(self._heap, (key, index))
        elif key > self._heap[0][0]:
            heapq.heapreplace(self._heap, (key, index))

    @property
    def full(self) -> bool:
        """Whether k candidates have been collected."""
        return len(self._heap) >= self.k

    @property
    def threshold(self) -> float:
        """Current pruning threshold (inf/-inf until the heap fills)."""
        if not self.full:
            return float("inf") if self.minimize else float("-inf")
        key = self._heap[0][0]
        return -key if self.minimize else key

    def sorted_items(self) -> list[tuple[int, float]]:
        """(index, score) pairs, best first."""
        items = [
            (index, -key if self.minimize else key)
            for key, index in self._heap
        ]
        return sorted(items, key=lambda t: t[1] if self.minimize else -t[1])


class KNNAlgorithm(abc.ABC):
    """Base of every kNN implementation.

    Parameters
    ----------
    measure:
        One of ``euclidean``, ``cosine``, ``pearson``, ``hamming``.
    """

    #: Display name, e.g. ``"FNN-PIM"``.
    name: str = "knn"
    #: Cost buckets that PIM could absorb (the set F of Eq. 2).
    offloadable_functions: tuple[str, ...] = ()

    def __init__(self, measure: str = "euclidean") -> None:
        if measure not in measures.MEASURES:
            raise ConfigurationError(
                f"unknown measure {measure!r}; one of {measures.MEASURES}"
            )
        self.measure = measure
        self.minimize = not measures.is_similarity(measure)
        self._data: np.ndarray | None = None

    # ------------------------------------------------------------------
    @property
    def data(self) -> np.ndarray:
        """The fitted dataset."""
        if self._data is None:
            raise OperandError(f"{self.name} must be fitted before querying")
        return self._data

    @property
    def n_objects(self) -> int:
        """Dataset cardinality."""
        return self.data.shape[0]

    @property
    def dims(self) -> int:
        """Dataset dimensionality."""
        return self.data.shape[1]

    def fit(self, data: np.ndarray) -> "KNNAlgorithm":
        """Offline stage: store the dataset and build summaries."""
        data = np.asarray(data)
        if data.ndim != 2 or data.shape[0] == 0:
            raise OperandError("fit() expects a non-empty 2-D dataset")
        self._data = data
        self._prepare(data)
        return self

    def _prepare(self, data: np.ndarray) -> None:
        """Hook for subclasses to build bounds/summaries."""

    @abc.abstractmethod
    def query(self, q: np.ndarray, k: int) -> KNNResult:
        """Online stage: the k nearest/most-similar objects to ``q``."""

    def query_batch(self, queries: np.ndarray, k: int) -> list[KNNResult]:
        """kNN of every row of ``queries``, results in row order.

        The base implementation is a plain loop; PIM-backed subclasses
        override it to ship the whole batch as one amortized wave per
        bound. Results are identical to calling :meth:`query` per row
        either way — batching changes timing, never answers.
        """
        queries = np.atleast_2d(np.asarray(queries))
        return [self.query(q, k) for q in queries]

    # ------------------------------------------------------------------
    # shared cost-charging helpers
    # ------------------------------------------------------------------
    def charge_exact(self, counters: PerfCounters, n: int) -> None:
        """Cost of ``n`` exact measure evaluations over the full vectors."""
        d = self.dims
        # hamming runs on bit-packed codes: one xor+popcount word pair
        # covers 64 dimensions, so its arithmetic is ~d/16, not O(d)
        flops_per = {"euclidean": 3.0 * d, "cosine": 4.0 * d,
                     "pearson": 6.0 * d, "hamming": d / 16.0}[self.measure]
        long_ops = 0.0 if self.measure in ("euclidean", "hamming") else 2.0
        bytes_per = (
            d / 8.0 if self.measure == "hamming" else d * OPERAND_BYTES
        )
        counters.record(
            self.measure,
            calls=n,
            flops=flops_per * n,
            bytes_from_memory=bytes_per * n,
            long_ops=long_ops * n,
            branches=float(n),
        )

    def charge_heap(self, counters: PerfCounters, n: int) -> None:
        """Cost of offering ``n`` candidates to the result heap."""
        counters.record(OTHER, flops=2.0 * n, branches=2.0 * n)

    def exact_scores(self, q: np.ndarray, indices: np.ndarray) -> np.ndarray:
        """Exact measure values for selected objects."""
        return measures.compute_batch(self.measure, self.data[indices], q)

    def _finalize(
        self,
        heap: _Heap,
        counters: PerfCounters,
        pim_time_ns: float = 0.0,
        exact_computations: int = 0,
        stage_evaluations: dict[str, int] | None = None,
    ) -> KNNResult:
        items = heap.sorted_items()
        return KNNResult(
            indices=np.array([i for i, _ in items], dtype=np.int64),
            scores=np.array([s for _, s in items], dtype=np.float64),
            counters=counters,
            pim_time_ns=pim_time_ns,
            exact_computations=exact_computations,
            stage_evaluations=dict(stage_evaluations or {}),
        )

    def _seed_heap(
        self, q: np.ndarray, k: int, counters: PerfCounters
    ) -> _Heap:
        """Initialise the heap with the first k objects, computed exactly."""
        heap = _Heap(k, self.minimize)
        seed = np.arange(min(k, self.n_objects))
        scores = self.exact_scores(q, seed)
        self.charge_exact(counters, len(seed))
        self.charge_heap(counters, len(seed))
        for i, s in zip(seed, scores):
            heap.push(float(s), int(i))
        return heap


def validate_query(q: np.ndarray, dims: int) -> np.ndarray:
    """Check a query vector's shape."""
    q = np.asarray(q)
    if q.ndim != 1 or q.shape[0] != dims:
        raise OperandError(f"query must be a vector of length {dims}")
    return q
