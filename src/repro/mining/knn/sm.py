"""SM kNN (Yi & Faloutsos): segmented-mean filtering before exact ED."""

from __future__ import annotations

from repro.bounds.ed import SMBound
from repro.mining.knn.filtered import FilteredKNN
from repro.similarity.segments import equal_segment_counts


def default_segments(dims: int) -> int:
    """Closest divisor of ``dims`` to ``dims / 4``.

    Matches the finest level of the FNN ladder: coarse enough to reduce
    transfer 4x, fine enough that the bound (not the ED refinement)
    carries the work — the regime the paper's Fig. 6 profiles.
    """
    target = max(1, dims // 4)
    return min(equal_segment_counts(dims), key=lambda s: (abs(s - target), s))


class SMKNN(FilteredKNN):
    """LB_SM filter-and-refine kNN (ED only)."""

    def __init__(self, dims: int, n_segments: int | None = None) -> None:
        segments = (
            n_segments if n_segments is not None else default_segments(dims)
        )
        super().__init__(
            bounds=[SMBound(n_segments=segments)],
            measure="euclidean",
            name="SM",
        )
        self.n_segments = segments
