"""FNN kNN (Hwang et al.): progressive LB_FNN bounds before exact ED.

The algorithm stacks three LB_FNN bounds of increasing resolution
(``d/64``, ``d/16``, ``d/4`` segments — Fig. 12a of the paper): cheap
coarse bounds eliminate most objects, finer ones catch stragglers, and
only survivors pay the full ED.
"""

from __future__ import annotations

from repro.bounds.ed import FNNBound
from repro.mining.knn.filtered import FilteredKNN
from repro.similarity.segments import fnn_segment_ladder


class FNNKNN(FilteredKNN):
    """Three-level LB_FNN filter-and-refine kNN (ED only)."""

    def __init__(
        self, dims: int, segment_ladder: list[int] | None = None
    ) -> None:
        ladder = (
            list(segment_ladder)
            if segment_ladder is not None
            else fnn_segment_ladder(dims)
        )
        super().__init__(
            bounds=[FNNBound(n_segments=s) for s in ladder],
            measure="euclidean",
            name="FNN",
        )
        self.segment_ladder = ladder
