"""kNN join: the k nearest neighbours in S for *every* object of R.

The batch workhorse behind classification pipelines, LOF-style outlier
scores and recommendation candidate generation — and the heaviest
similarity workload of all (|R| x |S| distances for the baseline).
PIM changes the economics: the quantized S is programmed once and one
wave per R-object delivers lower bounds to all of S, so the exact work
collapses to the few true neighbours per object.

Self-joins (R is S) exclude each object from its own neighbour list.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bounds.pim import PIMEuclideanBound
from repro.cost.counters import OTHER, PerfCounters
from repro.errors import ConfigurationError, OperandError
from repro.hardware.controller import PIMController
from repro.mining.knn.base import OPERAND_BYTES
from repro.similarity.quantization import Quantizer


@dataclass
class KNNJoinResult:
    """Per-R-object neighbour lists, nearest first."""

    indices: np.ndarray  # (|R|, k)
    distances: np.ndarray  # (|R|, k), true (rooted) distances
    counters: PerfCounters
    pim_time_ns: float = 0.0
    exact_computations: int = 0


class _BaseKNNJoin:
    name = "knn-join"

    def __init__(self, k: int = 5) -> None:
        if k <= 0:
            raise ConfigurationError("k must be positive")
        self.k = k
        self._s: np.ndarray | None = None

    @property
    def s_data(self) -> np.ndarray:
        if self._s is None:
            raise OperandError(f"{self.name} is not fitted")
        return self._s

    def fit(self, s_data: np.ndarray) -> "_BaseKNNJoin":
        s_data = np.asarray(s_data, dtype=np.float64)
        if s_data.ndim != 2 or s_data.shape[0] <= self.k:
            raise OperandError("fit() needs a 2-D S with more than k rows")
        self._s = s_data
        self._prepare(s_data)
        return self

    def _prepare(self, s_data: np.ndarray) -> None:
        """Hook for subclasses."""

    def _charge_ed(self, counters: PerfCounters, n: int) -> None:
        d = self.s_data.shape[1]
        counters.record(
            "ED",
            calls=n,
            flops=3.0 * d * n,
            bytes_from_memory=d * OPERAND_BYTES * n,
            branches=float(n),
        )

    @staticmethod
    def _self_join_mask(r_index: int | None, n: int) -> np.ndarray:
        mask = np.ones(n, dtype=bool)
        if r_index is not None:
            mask[r_index] = False
        return mask


class StandardKNNJoin(_BaseKNNJoin):
    """Nested-loop kNN join (the |R| x |S| baseline)."""

    name = "Standard"
    offloadable_functions = ("ED",)

    def join(
        self, r_data: np.ndarray | None = None
    ) -> KNNJoinResult:
        """Neighbour lists for every row of R (default: self-join)."""
        s = self.s_data
        self_join = r_data is None
        r = s if self_join else np.asarray(r_data, dtype=np.float64)
        counters = PerfCounters()
        n_r = r.shape[0]
        indices = np.empty((n_r, self.k), dtype=np.int64)
        distances = np.empty((n_r, self.k))
        exact = 0
        for i in range(n_r):
            diff = s - r[i]
            d2 = np.einsum("sj,sj->s", diff, diff)
            exact += s.shape[0]
            mask = self._self_join_mask(i if self_join else None, s.shape[0])
            candidates = np.nonzero(mask)[0]
            order = candidates[np.argsort(d2[candidates], kind="stable")]
            indices[i] = order[: self.k]
            distances[i] = np.sqrt(d2[indices[i]])
            counters.record(OTHER, branches=float(s.shape[0]))
        self._charge_ed(counters, exact)
        return KNNJoinResult(
            indices=indices,
            distances=distances,
            counters=counters,
            exact_computations=exact,
        )


class PIMKNNJoin(_BaseKNNJoin):
    """kNN join with one LB_PIM-ED wave per R-object."""

    name = "Standard-PIM"
    offloadable_functions = ("ED", "LB_PIM-ED")

    def __init__(
        self,
        k: int = 5,
        controller: PIMController | None = None,
        quantizer: Quantizer | None = None,
    ) -> None:
        super().__init__(k)
        self.controller = (
            controller if controller is not None else PIMController()
        )
        self._bound = PIMEuclideanBound(self.controller, quantizer)

    def _prepare(self, s_data: np.ndarray) -> None:
        self._bound.prepare(s_data)

    def join(
        self, r_data: np.ndarray | None = None
    ) -> KNNJoinResult:
        """Exact neighbour lists via bound-sorted refinement."""
        s = self.s_data
        self_join = r_data is None
        r = s if self_join else np.asarray(r_data, dtype=np.float64)
        counters = PerfCounters()
        pim_before = self.controller.pim.stats.pim_time_ns
        # one wave per R-object, batched through the array
        lb_matrix = np.sqrt(self._bound.evaluate_matrix(r))  # (|S|, |R|)
        self._bound.charge(counters, int(lb_matrix.size))
        n_r = r.shape[0]
        indices = np.empty((n_r, self.k), dtype=np.int64)
        distances = np.empty((n_r, self.k))
        exact = 0
        for i in range(n_r):
            lbs = lb_matrix[:, i]
            mask = self._self_join_mask(i if self_join else None, s.shape[0])
            candidates = np.nonzero(mask)[0]
            order = candidates[np.argsort(lbs[candidates], kind="stable")]
            kth = np.inf
            kept: list[tuple[float, int]] = []
            for j in order:
                j = int(j)
                if len(kept) >= self.k and lbs[j] >= kth:
                    break  # sorted: nothing later can improve
                diff = s[j] - r[i]
                dist = float(np.sqrt(diff @ diff))
                exact += 1
                kept.append((dist, j))
                kept.sort()
                kept = kept[: self.k]
                if len(kept) >= self.k:
                    kth = kept[-1][0]
            indices[i] = [j for _, j in kept]
            distances[i] = [d for d, _ in kept]
        self._charge_ed(counters, exact)
        pim_after = self.controller.pim.stats.pim_time_ns
        return KNNJoinResult(
            indices=indices,
            distances=distances,
            counters=counters,
            pim_time_ns=pim_after - pim_before,
            exact_computations=exact,
        )
