"""Standard kNN: the linear-scan baseline (paper's 'Standard').

Every object pays one exact measure evaluation — O(N d) transfer, which
is what makes it the algorithm PIM accelerates the most (Fig. 13a).
"""

from __future__ import annotations

import numpy as np

from repro.cost.counters import PerfCounters
from repro.mining.knn.base import KNNAlgorithm, KNNResult, _Heap, validate_query
from repro.similarity import measures


class StandardKNN(KNNAlgorithm):
    """Exhaustive scan with a best-k heap."""

    name = "Standard"

    def __init__(self, measure: str = "euclidean") -> None:
        super().__init__(measure=measure)
        self.offloadable_functions = (measure,)

    def query(self, q: np.ndarray, k: int) -> KNNResult:
        q = validate_query(q, self.dims)
        counters = PerfCounters()
        scores = measures.compute_batch(self.measure, self.data, q)
        self.charge_exact(counters, self.n_objects)
        self.charge_heap(counters, self.n_objects)
        heap = _Heap(k, self.minimize)
        for i, s in enumerate(scores):
            heap.push(float(s), i)
        return self._finalize(
            heap,
            counters,
            exact_computations=self.n_objects,
            stage_evaluations={self.measure: self.n_objects},
        )
