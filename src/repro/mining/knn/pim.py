"""PIM-optimized kNN algorithms (paper Section V / Fig. 13).

Each baseline's bottleneck bound is replaced by its PIM-aware bound
(Section V-B); the remaining original bounds stay in place — exactly the
"default execution plan" of Section V-D. ``FNNPIMOptimizeKNN`` applies
the plan optimization: the Eq. 13 cost model decides which original
bounds to drop (Fig. 16).

Factory helpers build the right bound for each distance measure, so
``StandardPIMKNN(measure="cosine")`` transparently uses the quantized
cosine *upper* bound.
"""

from __future__ import annotations

import numpy as np

from repro.bounds.base import Bound
from repro.bounds.ed import FNNBound
from repro.bounds.pim import (
    PIMCosineBound,
    PIMEuclideanBound,
    PIMFNNBound,
    PIMOSTBound,
    PIMPearsonBound,
    PIMSMBound,
)
from repro.core.memory_manager import choose_fnn_segments, choose_full_dims
from repro.errors import CapacityError, ConfigurationError
from repro.hardware.controller import PIMController
from repro.mining.knn.filtered import FilteredKNN
from repro.mining.knn.fnn import FNNKNN
from repro.mining.knn.ost import default_head_dims
from repro.mining.knn.sm import default_segments
from repro.similarity.quantization import Quantizer


def _controller(controller: PIMController | None) -> PIMController:
    return controller if controller is not None else PIMController()


def pim_bound_for_measure(
    measure: str, controller: PIMController, quantizer: Quantizer | None = None
) -> Bound:
    """The Section V-B bound matching a distance measure."""
    if measure == "euclidean":
        return PIMEuclideanBound(controller, quantizer)
    if measure == "cosine":
        return PIMCosineBound(controller, quantizer)
    if measure == "pearson":
        return PIMPearsonBound(controller, quantizer)
    raise ConfigurationError(
        f"no PIM bound for measure {measure!r} "
        "(hamming uses mining.knn.hamming.PIMHammingKNN)"
    )


class StandardPIMKNN(FilteredKNN):
    """Standard-PIM: linear scan with the PIM-aware bound as filter.

    When the quantized dataset does not fit the PIM array at full
    dimensionality, the ED bound falls back to the compressed
    LB_PIM-FNN^s with ``s`` from Theorem 4 — exactly the paper's setup
    (Section VI-C: "s is 50 for ImageNet and 105 for MSD"). The CS/PCC
    upper bounds have no segment-summary form, so those measures require
    the full dataset to fit.
    """

    def __init__(
        self,
        measure: str = "euclidean",
        controller: PIMController | None = None,
        quantizer: Quantizer | None = None,
        n_segments: int | None = None,
    ) -> None:
        ctl = _controller(controller)
        self._quantizer = quantizer
        if n_segments is not None:
            bound: Bound = PIMFNNBound(n_segments, ctl, quantizer)
        else:
            bound = pim_bound_for_measure(measure, ctl, quantizer)
        super().__init__(
            bounds=[bound],
            measure=measure,
            name="Standard-PIM",
            controller=ctl,
        )
        self.n_segments = n_segments

    def _prepare(self, data: np.ndarray) -> None:
        n, d = np.asarray(data).shape
        if self.n_segments is not None:
            super()._prepare(data)
            return
        plan = choose_full_dims(n, d, self.controller.pim.config)
        if not plan.is_lossless:
            if self.measure != "euclidean":
                raise CapacityError(
                    f"dataset {n}x{d} does not fit the PIM array at full "
                    f"dimensionality (max {plan.compressed_dims}) and the "
                    f"{self.measure} bound has no compressed form"
                )
            s = choose_fnn_segments(n, d, self.controller.pim.config)
            self.bounds = [PIMFNNBound(s, self.controller, self._quantizer)]
            self.offloadable_functions = (
                self.bounds[0].name,
                self.measure,
            )
            self.n_segments = s
        super()._prepare(data)


class OSTPIMKNN(FilteredKNN):
    """OST-PIM: LB_OST replaced by its PIM-aware bound."""

    def __init__(
        self,
        dims: int,
        head_dims: int | None = None,
        controller: PIMController | None = None,
        quantizer: Quantizer | None = None,
    ) -> None:
        ctl = _controller(controller)
        head = head_dims if head_dims is not None else default_head_dims(dims)
        super().__init__(
            bounds=[PIMOSTBound(head, ctl, quantizer)],
            measure="euclidean",
            name="OST-PIM",
            controller=ctl,
        )
        self.head_dims = head


class SMPIMKNN(FilteredKNN):
    """SM-PIM: LB_SM replaced by its PIM-aware bound."""

    def __init__(
        self,
        dims: int,
        n_segments: int | None = None,
        controller: PIMController | None = None,
        quantizer: Quantizer | None = None,
    ) -> None:
        ctl = _controller(controller)
        segments = (
            n_segments if n_segments is not None else default_segments(dims)
        )
        super().__init__(
            bounds=[PIMSMBound(segments, ctl, quantizer)],
            measure="euclidean",
            name="SM-PIM",
            controller=ctl,
        )
        self.n_segments = segments


class FNNPIMKNN(FilteredKNN):
    """FNN-PIM: the coarsest (bottleneck) LB_FNN replaced by LB_PIM-FNN^s.

    ``s`` is chosen by Theorem 4 (largest divisor of ``d`` whose
    concatenated mean/std matrix fits the array). Following the paper's
    default execution plan (Section VI-C: "other original bounds are
    still in the algorithms"), the remaining ladder bounds stay in the
    cascade; the Section V-D optimizer is what removes redundant ones
    (Fig. 16).
    """

    def __init__(
        self,
        dims: int,
        n_vectors: int,
        segment_ladder: list[int] | None = None,
        controller: PIMController | None = None,
        quantizer: Quantizer | None = None,
        n_segments: int | None = None,
    ) -> None:
        from repro.similarity.segments import fnn_segment_ladder

        ctl = _controller(controller)
        ladder = (
            list(segment_ladder)
            if segment_ladder is not None
            else fnn_segment_ladder(dims)
        )
        s = (
            n_segments
            if n_segments is not None
            else choose_fnn_segments(n_vectors, dims, ctl.pim.config)
        )
        bounds: list[Bound] = [PIMFNNBound(s, ctl, quantizer)]
        bounds.extend(FNNBound(n) for n in ladder[1:])
        super().__init__(
            bounds=bounds,
            measure="euclidean",
            name="FNN-PIM",
            controller=ctl,
        )
        self.n_segments = s
        self.segment_ladder = ladder


class FNNPIMOptimizeKNN(FilteredKNN):
    """FNN-PIM-optimize: the Eq. 13-chosen execution plan.

    Built by :class:`repro.core.planner.ExecutionPlanner`; this class
    simply runs an explicit bound list under the optimized name.
    """

    def __init__(
        self,
        bounds: list[Bound],
        controller: PIMController,
    ) -> None:
        super().__init__(
            bounds=bounds,
            measure="euclidean",
            name="FNN-PIM-optimize",
            controller=controller,
        )


def make_baseline(name: str, dims: int, measure: str = "euclidean"):
    """Baseline kNN factory by paper name (Standard/OST/SM/FNN)."""
    from repro.mining.knn.ost import OSTKNN
    from repro.mining.knn.sm import SMKNN
    from repro.mining.knn.standard import StandardKNN

    if name == "Standard":
        return StandardKNN(measure=measure)
    if name == "OST":
        return OSTKNN(dims)
    if name == "SM":
        return SMKNN(dims)
    if name == "FNN":
        return FNNKNN(dims)
    raise ConfigurationError(f"unknown kNN baseline {name!r}")


def make_pim_variant(
    name: str,
    dims: int,
    n_vectors: int,
    measure: str = "euclidean",
    controller: PIMController | None = None,
):
    """PIM-optimized kNN factory by paper name."""
    if name == "Standard-PIM":
        return StandardPIMKNN(measure=measure, controller=controller)
    if name == "OST-PIM":
        return OSTPIMKNN(dims, controller=controller)
    if name == "SM-PIM":
        return SMPIMKNN(dims, controller=controller)
    if name == "FNN-PIM":
        return FNNPIMKNN(dims, n_vectors, controller=controller)
    raise ConfigurationError(f"unknown PIM kNN variant {name!r}")
