"""OST kNN (Liaw et al.): LB_OST filtering before exact ED.

The original work organises points in an orthogonal search tree; its
pruning power comes from the LB_OST bound of Table 3, which is what the
paper profiles (Fig. 6 attributes OST's time to the bound function). We
implement it as LB_OST filter-and-refine, the form the paper's cost
analysis uses.
"""

from __future__ import annotations

from repro.bounds.ed import OSTBound
from repro.mining.knn.filtered import FilteredKNN


def default_head_dims(dims: int) -> int:
    """The paper does not fix ``d0``; half the dimensions balances the
    bound's transfer cost against its tightness."""
    return max(1, dims // 2)


class OSTKNN(FilteredKNN):
    """LB_OST filter-and-refine kNN (ED only)."""

    def __init__(self, dims: int, head_dims: int | None = None) -> None:
        head = head_dims if head_dims is not None else default_head_dims(dims)
        super().__init__(
            bounds=[OSTBound(head_dims=head)],
            measure="euclidean",
            name="OST",
        )
        self.head_dims = head
