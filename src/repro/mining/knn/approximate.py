"""Approximate PIM kNN — the design the paper argues *against*.

GraphR-style accelerators accept the analog value itself as the answer.
:class:`ApproximatePIMKNN` does exactly that: it ranks candidates by the
(possibly noisy, quantization-truncated) PIM distance estimate and never
refines, so a query costs a single wave and *zero* exact computations —
but returns approximate neighbours. :func:`recall_at_k` measures what
that costs, which is the quantitative version of the paper's Section
II-A argument ("such precision loss may compromise the accuracy of
results in data mining tasks").

Useful in its own right for recall-tolerant applications, and as the
contrast case in the noise-accuracy bench.
"""

from __future__ import annotations

import numpy as np

from repro.cost.counters import PerfCounters
from repro.errors import OperandError
from repro.hardware.controller import PIMController
from repro.mining.knn.base import KNNAlgorithm, KNNResult, validate_query
from repro.similarity.quantization import Quantizer


class ApproximatePIMKNN(KNNAlgorithm):
    """Rank by the raw PIM distance estimate; never refine.

    The distance estimate is the quantized expansion
    ``(Phi(p) + Phi(q) - 2 * dot) / alpha^2`` with whatever error the
    device introduced (floor truncation, analog noise); results are
    approximate and :attr:`KNNResult.scores` carry the *estimates*.
    """

    name = "Approx-PIM"

    def __init__(
        self,
        controller: PIMController | None = None,
        quantizer: Quantizer | None = None,
    ) -> None:
        super().__init__(measure="euclidean")
        self.controller = (
            controller if controller is not None else PIMController()
        )
        self.quantizer = (
            quantizer
            if quantizer is not None
            else Quantizer(assume_normalized=True)
        )
        self.offloadable_functions = ("euclidean",)
        self._matrix_name = f"approx#{id(self)}"
        self._phi: np.ndarray | None = None

    def _prepare(self, data: np.ndarray) -> None:
        data = np.asarray(data, dtype=np.float64)
        if not self.quantizer.is_fitted:
            self.quantizer.fit(data)
        qv = self.quantizer.quantize(data)
        self._phi = (qv.scaled**2).sum(axis=1)
        self.controller.program(
            self._matrix_name, qv.integers, self._phi.nbytes
        )

    def query(self, q: np.ndarray, k: int) -> KNNResult:
        q = validate_query(q, self.dims)
        if self._phi is None:
            raise OperandError(f"{self.name} is not fitted")
        counters = PerfCounters()
        pim_before = self.controller.pim.stats.pim_time_ns
        qq = self.quantizer.quantize(np.asarray(q, dtype=np.float64))
        dots = self.controller.dot_products(
            self._matrix_name, qq.integers
        ).values.astype(np.float64)
        phi_q = float((qq.scaled**2).sum())
        estimates = np.maximum(
            (self._phi + phi_q - 2.0 * dots) / self.quantizer.alpha**2, 0.0
        )
        counters.record(
            "euclidean",
            calls=self.n_objects,
            flops=5.0 * self.n_objects,
            bytes_from_memory=12.0 * self.n_objects,
            branches=float(self.n_objects),
        )
        order = np.argsort(estimates, kind="stable")[:k]
        pim_after = self.controller.pim.stats.pim_time_ns
        return KNNResult(
            indices=order.astype(np.int64),
            scores=estimates[order],
            counters=counters,
            pim_time_ns=pim_after - pim_before,
            exact_computations=0,
        )


def recall_at_k(
    approximate: np.ndarray, exact: np.ndarray
) -> float:
    """|approx top-k ∩ exact top-k| / k."""
    approximate = np.asarray(approximate)
    exact = np.asarray(exact)
    if exact.size == 0:
        raise OperandError("exact neighbour set is empty")
    return len(set(approximate.tolist()) & set(exact.tolist())) / exact.size
