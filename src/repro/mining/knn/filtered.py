"""Generic filter-and-refine kNN over a bound cascade.

OST, SM, FNN and every PIM-optimized variant are thin subclasses that
merely choose which bounds to stack; the scan/prune/refine loop and its
cost accounting live here once.

The loop is the classic sorted filter-and-refine: the coarsest bound is
computed for every object (one PIM wave when that bound lives on the
crossbars), objects are visited in ascending bound order, finer bounds
screen each candidate, survivors pay the exact measure, and the walk
stops once the coarse bound itself exceeds the live k-th-best threshold
— sortedness proves everything later loses too. Results are exact.
"""

from __future__ import annotations

import numpy as np

from repro.bounds.base import Bound
from repro.cost.counters import OTHER, PerfCounters
from repro.errors import PlanError
from repro.hardware.controller import PIMController
from repro.mining.knn.base import (
    KNNAlgorithm,
    KNNResult,
    _Heap,
    validate_query,
)
from repro.telemetry import get_recorder


class FilteredKNN(KNNAlgorithm):
    """kNN with an explicit bound cascade.

    Parameters
    ----------
    bounds:
        Unprepared bounds, coarse (cheap) first; all must share the
        pruning direction implied by ``measure``.
    measure:
        The exact measure used for refinement.
    name:
        Display name.
    controller:
        The PIM controller shared by any PIM bounds in ``bounds``; used
        to attribute wave time to queries. ``None`` for pure-CPU stacks.
    """

    def __init__(
        self,
        bounds: list[Bound],
        measure: str = "euclidean",
        name: str = "Filtered",
        controller: PIMController | None = None,
    ) -> None:
        super().__init__(measure=measure)
        if not bounds:
            raise PlanError(f"{name} needs at least one bound")
        expected = "lower" if self.minimize else "upper"
        for bound in bounds:
            if bound.kind != expected:
                raise PlanError(
                    f"bound {bound.name} is a {bound.kind} bound but "
                    f"measure {measure} needs {expected} bounds"
                )
        self.bounds = list(bounds)
        self.name = name
        self.controller = controller
        self.offloadable_functions = tuple(
            [b.name for b in self.bounds] + [measure]
        )

    def _prepare(self, data: np.ndarray) -> None:
        for bound in self.bounds:
            bound.prepare(np.asarray(data, dtype=np.float64))

    def query(self, q: np.ndarray, k: int) -> KNNResult:
        """Sorted filter-and-refine.

        The coarsest bound is evaluated on every object (on PIM that is
        one wave regardless of N); candidates are then refined in
        ascending bound order against the live k-th-best threshold, so
        the scan stops as soon as the bound value itself exceeds the
        threshold — every later candidate is pruned by sortedness.
        Finer bounds (if any) screen each candidate before the exact
        computation. Results are exact: only provably-losing candidates
        are skipped.
        """
        q = validate_query(q, self.dims)
        counters = PerfCounters()
        tele = get_recorder()
        query_span = (
            tele.begin_span("knn.query", "query", algorithm=self.name, k=k)
            if tele.enabled
            else None
        )
        pim_before = (
            self.controller.pim.stats.pim_time_ns if self.controller else 0.0
        )
        for bound in self.bounds:
            bound.charge_query_setup(counters, self.dims)
        first = self.bounds[0]
        finer = self.bounds[1:]
        values = first.evaluate(q)
        first.charge(counters, self.n_objects)
        stage_evals: dict[str, int] = {b.name: 0 for b in self.bounds}
        stage_evals[first.name] = self.n_objects

        order = np.argsort(values if self.minimize else -values)
        heap = _Heap(k, self.minimize)
        exact = 0
        for i in order:
            if heap.full and first.prunes(
                values[i : i + 1], heap.threshold
            )[0]:
                # sorted by this bound: everything later is pruned too
                counters.record(OTHER, branches=1.0)
                break
            candidate = int(i)
            pruned = False
            for bound in finer:
                v = bound.evaluate(q, np.array([candidate]))
                bound.charge(counters, 1)
                stage_evals[bound.name] += 1
                if heap.full and bound.prunes(v, heap.threshold)[0]:
                    pruned = True
                    break
            if pruned:
                continue
            score = float(self.exact_scores(q, np.array([candidate]))[0])
            self.charge_exact(counters, 1)
            self.charge_heap(counters, 1)
            exact += 1
            heap.push(score, candidate)

        pim_after = (
            self.controller.pim.stats.pim_time_ns if self.controller else 0.0
        )
        stage_evals[self.measure] = exact
        if query_span is not None:
            tele.end_span(exact=exact)
            m = tele.metrics
            m.counter("knn.queries").add(1)
            m.counter("knn.exact_computations").add(exact)
            for bound in self.bounds:
                m.counter(f"knn.stage.{bound.name}.evaluated").add(
                    stage_evals[bound.name]
                )
            # fraction of the dataset the bound ladder pruned away
            # before the exact measure — the per-query survival series
            m.gauge("prune.ratio").set(1.0 - exact / self.n_objects)
            m.histogram("prune.survivors").observe(exact)
        return self._finalize(
            heap,
            counters,
            pim_time_ns=pim_after - pim_before,
            exact_computations=exact,
            stage_evaluations=stage_evals,
        )

    def query_batch(self, queries: np.ndarray, k: int) -> list[KNNResult]:
        """Batched filter-and-refine: one amortized wave per PIM bound.

        Every PIM-backed bound in the cascade is *primed* with the whole
        query batch first — a single multi-query wave per bound instead
        of one dispatch per query — and the per-query scan/prune/refine
        loops then run entirely off the primed caches. Answers are
        bit-identical to sequential :meth:`query` calls; the batch wave
        time is attributed to the per-query results in equal shares.
        """
        queries = np.atleast_2d(np.asarray(queries))
        primable = [b for b in self.bounds if hasattr(b, "prime_queries")]
        tele = get_recorder()
        prime_span = (
            tele.begin_span(
                "knn.prime", "query_batch",
                algorithm=self.name, queries=int(queries.shape[0]),
                bounds=len(primable),
            )
            if tele.enabled and primable
            else None
        )
        pim_before = (
            self.controller.pim.stats.pim_time_ns if self.controller else 0.0
        )
        for bound in primable:
            bound.prime_queries(queries)
        prime_ns = (
            self.controller.pim.stats.pim_time_ns - pim_before
            if self.controller
            else 0.0
        )
        if prime_span is not None:
            tele.end_span(prime_ns=prime_ns)
        results = [self.query(q, k) for q in queries]
        # the per-query loops hit the primed caches, so their own pim
        # windows are ~0; spread the batch wave time evenly instead
        share = prime_ns / len(results) if results else 0.0
        for result in results:
            result.pim_time_ns += share
        return results

    def pruning_ratios(self, queries: np.ndarray, k: int) -> dict[str, float]:
        """Observed pruning ratio of each bound over sample queries.

        Used by the execution-plan optimizer (Section V-D) to estimate
        ``Pr(B_i)`` offline.
        """
        evaluated = {b.name: 0 for b in self.bounds}
        pruned = {b.name: 0 for b in self.bounds}
        for q in np.atleast_2d(np.asarray(queries)):
            result = self.query(q, k)
            threshold = (
                result.scores.max() if self.minimize else result.scores.min()
            )
            current = np.arange(self.n_objects)
            for bound in self.bounds:
                if current.size == 0:
                    break
                values = bound.evaluate(q, current)
                keep = ~bound.prunes(values, float(threshold))
                evaluated[bound.name] += int(current.size)
                pruned[bound.name] += int(current.size - keep.sum())
                current = current[keep]
        return {
            name: (pruned[name] / evaluated[name] if evaluated[name] else 0.0)
            for name in evaluated
        }
