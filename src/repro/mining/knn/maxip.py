"""Maximum inner-product search (MIPS), the reduction the paper uses
for CS/PCC (Section II-C: "the computation can be reduced to the
maximum dot-product search problem").

* :class:`StandardMIPS` — LEMP-style baseline: objects sorted by norm;
  the running best inner product prunes whole suffixes because
  ``p.q <= |p| |q|`` (Cauchy-Schwarz), and UB_part screens survivors;
* :class:`PIMMIPS` — the quantized floor inequalities give *two-sided*
  bounds on every inner product from a single PIM wave:
  ``dot/alpha^2 <= p.q <= (dot + S_p + S_q + d)/alpha^2``;
  candidates whose upper bound cannot beat the best lower bound are
  dropped without touching their coordinates.

Both return the exact top-t inner products, asserted by tests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bounds.ed import PartitionUpperBound
from repro.cost.counters import OTHER, PerfCounters
from repro.errors import ConfigurationError, OperandError
from repro.hardware.controller import PIMController
from repro.mining.knn.base import OPERAND_BYTES
from repro.similarity.quantization import Quantizer


@dataclass
class MIPSResult:
    """Top-t inner products, best first."""

    indices: np.ndarray
    products: np.ndarray
    counters: PerfCounters
    pim_time_ns: float = 0.0
    exact_computations: int = 0


class _BaseMIPS:
    name = "mips"

    def __init__(self, top: int = 10) -> None:
        if top <= 0:
            raise ConfigurationError("top must be positive")
        self.top = top
        self._data: np.ndarray | None = None

    @property
    def data(self) -> np.ndarray:
        if self._data is None:
            raise OperandError(f"{self.name} is not fitted")
        return self._data

    def fit(self, data: np.ndarray) -> "_BaseMIPS":
        data = np.asarray(data, dtype=np.float64)
        if data.ndim != 2 or data.shape[0] < self.top:
            raise OperandError("fit() needs a 2-D dataset with >= top rows")
        self._data = data
        self._prepare(data)
        return self

    def _prepare(self, data: np.ndarray) -> None:
        """Hook for subclasses."""

    def _charge_dot(self, counters: PerfCounters, n: int) -> None:
        d = self.data.shape[1]
        counters.record(
            "dot",
            calls=n,
            flops=2.0 * d * n,
            bytes_from_memory=d * OPERAND_BYTES * n,
            branches=float(n),
        )

    def _finalize(
        self,
        indices: list[int],
        products: list[float],
        counters: PerfCounters,
        pim_time_ns: float,
        exact: int,
    ) -> MIPSResult:
        order = np.argsort(products)[::-1][: self.top]
        return MIPSResult(
            indices=np.array([indices[i] for i in order], dtype=np.int64),
            products=np.array([products[i] for i in order]),
            counters=counters,
            pim_time_ns=pim_time_ns,
            exact_computations=exact,
        )


class StandardMIPS(_BaseMIPS):
    """Norm-sorted scan with Cauchy-Schwarz suffix pruning + UB_part."""

    name = "LEMP"
    offloadable_functions = ("dot", "UB_part")

    def __init__(self, top: int = 10, head_dims: int | None = None) -> None:
        super().__init__(top)
        self.head_dims = head_dims
        self._norm_order: np.ndarray | None = None
        self._norms: np.ndarray | None = None
        self._ub: PartitionUpperBound | None = None

    def _prepare(self, data: np.ndarray) -> None:
        self._norms = np.linalg.norm(data, axis=1)
        self._norm_order = np.argsort(-self._norms)
        head = (
            self.head_dims
            if self.head_dims is not None
            else max(1, data.shape[1] // 4)
        )
        self._ub = PartitionUpperBound(
            head_dims=head, normalize=False
        )
        self._ub.prepare(data)

    def query(self, q: np.ndarray) -> MIPSResult:
        """Exact top-t inner products with ``q``."""
        data = self.data
        counters = PerfCounters()
        q = np.asarray(q, dtype=np.float64)
        q_norm = float(np.linalg.norm(q))
        kept_idx: list[int] = []
        kept_val: list[float] = []
        threshold = -np.inf
        exact = 0
        for i in self._norm_order:
            i = int(i)
            cs_cap = self._norms[i] * q_norm
            counters.record(OTHER, flops=1.0, branches=1.0)
            if len(kept_val) >= self.top and cs_cap <= threshold:
                break  # norm-sorted: every later cap is smaller
            ub = float(self._ub.evaluate(q, np.array([i]))[0])
            self._ub.charge(counters, 1)
            if len(kept_val) >= self.top and ub <= threshold:
                continue
            value = float(data[i] @ q)
            exact += 1
            kept_idx.append(i)
            kept_val.append(value)
            if len(kept_val) >= self.top:
                threshold = float(np.sort(kept_val)[-self.top])
        self._charge_dot(counters, exact)
        return self._finalize(kept_idx, kept_val, counters, 0.0, exact)


class PIMMIPS(_BaseMIPS):
    """MIPS with two-sided quantized bounds from one PIM wave."""

    name = "LEMP-PIM"
    offloadable_functions = ("dot", "LB/UB_PIM-dot")

    def __init__(
        self,
        top: int = 10,
        controller: PIMController | None = None,
        quantizer: Quantizer | None = None,
    ) -> None:
        super().__init__(top)
        self.controller = (
            controller if controller is not None else PIMController()
        )
        self.quantizer = (
            quantizer
            if quantizer is not None
            else Quantizer(assume_normalized=True)
        )
        self._floor_sums: np.ndarray | None = None
        self._matrix_name = f"MIPS#{id(self)}"

    def _prepare(self, data: np.ndarray) -> None:
        if not self.quantizer.is_fitted:
            self.quantizer.fit(data)
        qv = self.quantizer.quantize(data)
        self._floor_sums = qv.integers.sum(axis=1).astype(np.float64)
        self.controller.program(
            self._matrix_name, qv.integers, self._floor_sums.nbytes
        )

    def query(self, q: np.ndarray) -> MIPSResult:
        """Exact top-t inner products using PIM dot bounds."""
        data = self.data
        n, d = data.shape
        counters = PerfCounters()
        pim_before = self.controller.pim.stats.pim_time_ns
        qq = self.quantizer.quantize(np.asarray(q, dtype=np.float64))
        dots = self.controller.dot_products(
            self._matrix_name, qq.integers
        ).values.astype(np.float64)
        alpha_sq = self.quantizer.alpha**2
        lower = dots / alpha_sq
        upper = (dots + self._floor_sums + qq.integers.sum() + d) / alpha_sq
        counters.record(
            "LB/UB_PIM-dot",
            calls=n,
            flops=6.0 * n,
            bytes_from_memory=3 * OPERAND_BYTES * n,
            branches=float(n),
        )

        # the top-t by guaranteed lower bound set the admission threshold
        threshold = float(np.sort(lower)[-self.top])
        candidates = np.nonzero(upper >= threshold)[0]
        values = data[candidates] @ np.asarray(q, dtype=np.float64)
        exact = int(candidates.size)
        self._charge_dot(counters, exact)
        pim_after = self.controller.pim.stats.pim_time_ns
        return self._finalize(
            [int(i) for i in candidates],
            [float(v) for v in values],
            counters,
            pim_after - pim_before,
            exact,
        )
