"""kNN classification algorithms: baselines and PIM-optimized variants."""

from repro.mining.knn.approximate import ApproximatePIMKNN, recall_at_k
from repro.mining.knn.base import KNNAlgorithm, KNNResult
from repro.mining.knn.classifier import (
    ClassificationReport,
    KNNClassifier,
    labelled_dataset,
)
from repro.mining.knn.filtered import FilteredKNN
from repro.mining.knn.maxip import MIPSResult, PIMMIPS, StandardMIPS
from repro.mining.knn.fnn import FNNKNN
from repro.mining.knn.join import KNNJoinResult, PIMKNNJoin, StandardKNNJoin
from repro.mining.knn.hamming import (
    HammingKNN,
    PIMHammingKNN,
    binary_pim_platform,
)
from repro.mining.knn.ost import OSTKNN
from repro.mining.knn.pim import (
    FNNPIMKNN,
    FNNPIMOptimizeKNN,
    OSTPIMKNN,
    SMPIMKNN,
    StandardPIMKNN,
    make_baseline,
    make_pim_variant,
    pim_bound_for_measure,
)
from repro.mining.knn.sm import SMKNN
from repro.mining.knn.standard import StandardKNN

__all__ = [
    "ApproximatePIMKNN",
    "ClassificationReport",
    "FNNKNN",
    "FNNPIMKNN",
    "FNNPIMOptimizeKNN",
    "FilteredKNN",
    "HammingKNN",
    "KNNAlgorithm",
    "KNNClassifier",
    "KNNJoinResult",
    "KNNResult",
    "MIPSResult",
    "OSTKNN",
    "OSTPIMKNN",
    "PIMHammingKNN",
    "PIMKNNJoin",
    "PIMMIPS",
    "SMKNN",
    "SMPIMKNN",
    "StandardKNN",
    "StandardKNNJoin",
    "StandardMIPS",
    "StandardPIMKNN",
    "binary_pim_platform",
    "labelled_dataset",
    "make_baseline",
    "make_pim_variant",
    "pim_bound_for_measure",
    "recall_at_k",
]
