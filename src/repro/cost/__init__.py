"""Event counting and analytical cost modelling (the simulator's PAPI).

* :mod:`repro.cost.counters` — per-function event recording;
* :mod:`repro.cost.model` — events -> Eq. 1 time components per platform;
* :mod:`repro.cost.transfer` — Eq. 13 data-transfer bookkeeping.
"""

from repro.cost.counters import OTHER, FunctionEvents, PerfCounters
from repro.cost.model import ComponentBreakdown, CostModel, combined_time_ns
from repro.cost.transfer import (
    TransferCost,
    bound_transfer,
    exact_transfer,
    pim_bound_transfer,
    plan_transfer_bits,
)

__all__ = [
    "ComponentBreakdown",
    "CostModel",
    "FunctionEvents",
    "OTHER",
    "PerfCounters",
    "TransferCost",
    "bound_transfer",
    "combined_time_ns",
    "exact_transfer",
    "pim_bound_transfer",
    "plan_transfer_bits",
]
