"""Per-function event counters — the simulator's answer to PAPI.

The paper profiles algorithms two ways (Section IV): by hardware
component, via PAPI hardware counters, and by function, via fine-grained
timers. Our algorithms cannot be measured with hardware counters (they
run in Python), so instead every implementation *records the events it
would execute on the modelled machine*: flops, bytes pulled from main
memory, bytes served from cache, long-latency ops, branches, calls —
bucketed per named function (``"ED"``, ``"LB_FNN"``, ``"other"`` ...).

:mod:`repro.cost.model` later converts these exact counts into simulated
times for either platform, which is what makes the profiling figures
reproducible without hardware.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class FunctionEvents:
    """Accumulated events of one named function."""

    calls: int = 0
    flops: float = 0.0
    bytes_from_memory: float = 0.0
    bytes_cached: float = 0.0
    long_ops: float = 0.0
    branches: float = 0.0

    def add(
        self,
        calls: int = 0,
        flops: float = 0.0,
        bytes_from_memory: float = 0.0,
        bytes_cached: float = 0.0,
        long_ops: float = 0.0,
        branches: float = 0.0,
    ) -> None:
        """Accumulate one batch of events."""
        self.calls += calls
        self.flops += flops
        self.bytes_from_memory += bytes_from_memory
        self.bytes_cached += bytes_cached
        self.long_ops += long_ops
        self.branches += branches

    def merged_with(self, other: "FunctionEvents") -> "FunctionEvents":
        """A new record holding the sum of both."""
        return FunctionEvents(
            calls=self.calls + other.calls,
            flops=self.flops + other.flops,
            bytes_from_memory=self.bytes_from_memory + other.bytes_from_memory,
            bytes_cached=self.bytes_cached + other.bytes_cached,
            long_ops=self.long_ops + other.long_ops,
            branches=self.branches + other.branches,
        )


#: Bucket name for work not attributable to a similarity/bound function
#: (condition checks, heap maintenance, center updates ...).
OTHER = "other"


@dataclass
class PerfCounters:
    """Named buckets of :class:`FunctionEvents` for one algorithm run."""

    functions: dict[str, FunctionEvents] = field(default_factory=dict)

    def record(
        self,
        function: str,
        calls: int = 0,
        flops: float = 0.0,
        bytes_from_memory: float = 0.0,
        bytes_cached: float = 0.0,
        long_ops: float = 0.0,
        branches: float = 0.0,
    ) -> None:
        """Accumulate events into the bucket of ``function``."""
        bucket = self.functions.setdefault(function, FunctionEvents())
        bucket.add(
            calls=calls,
            flops=flops,
            bytes_from_memory=bytes_from_memory,
            bytes_cached=bytes_cached,
            long_ops=long_ops,
            branches=branches,
        )

    def events(self, function: str) -> FunctionEvents:
        """The bucket of ``function`` (empty record if never touched)."""
        return self.functions.get(function, FunctionEvents())

    def function_names(self) -> list[str]:
        """All bucket names, insertion-ordered."""
        return list(self.functions)

    def total(self) -> FunctionEvents:
        """Sum over all buckets."""
        total = FunctionEvents()
        for bucket in self.functions.values():
            total = total.merged_with(bucket)
        return total

    def merged_with(self, other: "PerfCounters") -> "PerfCounters":
        """A new counter set combining both runs."""
        merged = PerfCounters()
        for name, bucket in self.functions.items():
            merged.functions[name] = bucket.merged_with(FunctionEvents())
        for name, bucket in other.functions.items():
            if name in merged.functions:
                merged.functions[name] = merged.functions[name].merged_with(
                    bucket
                )
            else:
                merged.functions[name] = bucket.merged_with(FunctionEvents())
        return merged

    def reset(self) -> None:
        """Clear every bucket."""
        self.functions.clear()
