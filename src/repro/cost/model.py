"""Cost model: turn recorded events into simulated execution times.

Given :class:`~repro.cost.counters.PerfCounters` recorded by an algorithm
run, the model answers three questions the paper's evaluation needs:

1. **Per-hardware-component breakdown** (Fig. 5): T_c, T_cache, T_ALU,
   T_Br, T_Fe per Eq. 1, computed by summing the Quartz epoch model over
   every function bucket.
2. **Per-function breakdown** (Fig. 6): total time of each bucket.
3. **PIM-oracle bound** (Eq. 2 / Fig. 7): total time minus the buckets in
   the PIM-offloadable set ``F``.

The model is platform-aware: the baseline services misses from DRAM, the
PIM platform from the slower ReRAM memory array. PIM-side wave time is
*not* produced here — it comes from :class:`~repro.hardware.pim_array.PIMArray`
stats — but :func:`combined_time_ns` merges the two, mirroring the
paper's "NVSim time + Quartz time" summation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cost.counters import FunctionEvents, PerfCounters
from repro.hardware.config import HardwareConfig, baseline_platform
from repro.hardware.quartz import Epoch, EpochTime, epoch_time_ns


@dataclass(frozen=True)
class ComponentBreakdown:
    """The five Eq. 1 components, in nanoseconds."""

    compute_ns: float
    cache_ns: float
    alu_ns: float
    branch_ns: float
    frontend_ns: float

    @property
    def total_ns(self) -> float:
        """T_total of Eq. 1."""
        return (
            self.compute_ns
            + self.cache_ns
            + self.alu_ns
            + self.branch_ns
            + self.frontend_ns
        )

    def fractions(self) -> dict[str, float]:
        """Share of each component in the total (Fig. 5's y-axis)."""
        total = self.total_ns
        if total <= 0:
            return {k: 0.0 for k in ("Tc", "Tcache", "TALU", "TBr", "TFe")}
        return {
            "Tc": self.compute_ns / total,
            "Tcache": self.cache_ns / total,
            "TALU": self.alu_ns / total,
            "TBr": self.branch_ns / total,
            "TFe": self.frontend_ns / total,
        }


class CostModel:
    """Event-to-time conversion for one hardware platform."""

    def __init__(self, hardware: HardwareConfig | None = None) -> None:
        self.hardware = (
            hardware if hardware is not None else baseline_platform()
        )

    @property
    def miss_latency_ns(self) -> float:
        """Last-level miss service latency on this platform."""
        cpu = self.hardware.cpu
        if self.hardware.has_pim:
            return cpu.reram_miss_latency_ns
        return cpu.dram_miss_latency_ns

    # ------------------------------------------------------------------
    def _epoch(self, events: FunctionEvents) -> EpochTime:
        epoch = Epoch(
            flops=events.flops,
            bytes_from_memory=events.bytes_from_memory,
            bytes_cached=events.bytes_cached,
            long_ops=events.long_ops,
            branches=events.branches,
        )
        return epoch_time_ns(epoch, self.hardware.cpu, self.miss_latency_ns)

    def function_time_ns(self, counters: PerfCounters, function: str) -> float:
        """Simulated time attributable to one function bucket."""
        return self._epoch(counters.events(function)).total_ns

    def function_times_ns(self, counters: PerfCounters) -> dict[str, float]:
        """Per-function simulated times (Fig. 6 series)."""
        return {
            name: self._epoch(events).total_ns
            for name, events in counters.functions.items()
        }

    def total_time_ns(self, counters: PerfCounters) -> float:
        """T_total over every bucket."""
        return sum(self.function_times_ns(counters).values())

    def component_breakdown(self, counters: PerfCounters) -> ComponentBreakdown:
        """Hardware-component breakdown (Fig. 5 series)."""
        compute = cache = alu = branch = frontend = 0.0
        for events in counters.functions.values():
            t = self._epoch(events)
            compute += t.compute_ns
            cache += t.cache_ns
            alu += t.alu_ns
            branch += t.branch_ns
            frontend += t.frontend_ns
        return ComponentBreakdown(
            compute_ns=compute,
            cache_ns=cache,
            alu_ns=alu,
            branch_ns=branch,
            frontend_ns=frontend,
        )

    def pim_oracle_time_ns(
        self, counters: PerfCounters, offloadable: set[str] | list[str]
    ) -> float:
        """Theoretical optimum with PIM (Eq. 2).

        ``T_PIM-oracle = T_total - sum_{f in F} T_f``: the time left if
        every offloadable function became free.
        """
        names = set(offloadable)
        return sum(
            time
            for name, time in self.function_times_ns(counters).items()
            if name not in names
        )


def combined_time_ns(
    cpu_time_ns: float, pim_time_ns: float, overlap: float = 0.0
) -> float:
    """Total PIM-optimized time: Quartz CPU time plus NVSim PIM time.

    Parameters
    ----------
    cpu_time_ns, pim_time_ns:
        The two components the paper sums.
    overlap:
        Fraction of the PIM time hidden behind CPU work thanks to the
        buffer array (0 = fully serialized, the paper's conservative
        accounting; the ablation bench sweeps this).
    """
    if not 0.0 <= overlap <= 1.0:
        raise ValueError("overlap must be within [0, 1]")
    return cpu_time_ns + (1.0 - overlap) * pim_time_ns
