"""Data-transfer bookkeeping for the execution-plan optimizer (Eq. 13).

Section V-D ranks candidate execution plans by the memory->CPU transfer
they trigger:

``Tcost = N * sum_i Tcost(B_i) * prod_{j<=i} (1 - Pr(B_j))``

where ``Tcost(B_i)`` is the bits a single evaluation of bound ``B_i``
moves to the CPU and ``Pr(B_j)`` the pruning ratio of the j-th applied
bound. This module provides the per-bound transfer constants:

* an original bound over ``s`` dimensions of ``b``-bit values moves
  ``s*b`` bits (the reduced vector must be fetched);
* a PIM-aware bound moves ``3*b`` bits regardless of dimensionality
  (``Phi(p)`` + the dot-product result(s), Fig. 8);
* an exact refinement over ``d`` dimensions moves ``d*b`` bits.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Bits moved to the CPU per object by a PIM-aware bound evaluation
#: (Fig. 8: Phi(p) and the PIM dot-product result; Phi(q) is amortised).
PIM_BOUND_TRANSFER_OPERANDS = 3

#: Control-message bits of one host->PIM wave dispatch (opcode, matrix
#: handle, geometry and the buffer-drain handshake). Paid once per
#: dispatch, so batching B queries into one dispatch amortises it B-fold.
DISPATCH_OVERHEAD_BITS = 256.0


@dataclass(frozen=True)
class TransferCost:
    """Bits of memory->CPU traffic per evaluated object."""

    bits_per_object: float

    def bytes_per_object(self) -> float:
        """Same cost in bytes."""
        return self.bits_per_object / 8.0

    def total_bits(self, n_objects: float) -> float:
        """Traffic for evaluating ``n_objects`` objects."""
        return self.bits_per_object * n_objects


def bound_transfer(dims: int, operand_bits: int) -> TransferCost:
    """Transfer of one original (CPU) bound over ``dims`` dimensions."""
    return TransferCost(bits_per_object=float(dims * operand_bits))


def pim_bound_transfer(operand_bits: int, dot_products: int = 1) -> TransferCost:
    """Transfer of one PIM-aware bound evaluation.

    ``dot_products`` > 1 covers bounds needing several PIM terms (e.g.
    LB_PIM-FNN moves both the mean and the std dot product; HD moves two
    results). The precomputed ``Phi`` term always adds one operand.
    """
    operands = dot_products + (PIM_BOUND_TRANSFER_OPERANDS - 1)
    return TransferCost(bits_per_object=float(operands * operand_bits))


def dispatch_transfer(
    dims: int, operand_bits: int, batch_size: int = 1
) -> TransferCost:
    """Per-query host->PIM traffic of dispatching a wave.

    Each query uploads its ``dims * operand_bits`` input vector; the
    control message (:data:`DISPATCH_OVERHEAD_BITS`) is paid once per
    dispatch, so a batch of ``batch_size`` queries amortises it.
    """
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    return TransferCost(
        bits_per_object=float(dims * operand_bits)
        + DISPATCH_OVERHEAD_BITS / batch_size
    )


def exact_transfer(dims: int, operand_bits: int) -> TransferCost:
    """Transfer of one exact distance refinement (full vector fetch)."""
    return TransferCost(bits_per_object=float(dims * operand_bits))


def plan_transfer_bits(
    n_objects: float,
    stage_costs: list[TransferCost],
    pruning_ratios: list[float],
) -> float:
    """Eq. 13: total transfer of a staged filtering plan.

    Parameters
    ----------
    n_objects:
        Initial candidate count ``N``.
    stage_costs:
        Per-stage per-object transfer, first filter first. The final
        refinement stage should be included as the last entry.
    pruning_ratios:
        ``Pr(B_i)`` for each stage (the last stage's ratio does not
        affect the total but keeps the lists aligned).
    """
    if len(stage_costs) != len(pruning_ratios):
        raise ValueError("stage_costs and pruning_ratios must align")
    total = 0.0
    survivors = float(n_objects)
    for cost, ratio in zip(stage_costs, pruning_ratios):
        if not 0.0 <= ratio <= 1.0:
            raise ValueError(f"pruning ratio {ratio} outside [0, 1]")
        total += cost.bits_per_object * survivors
        survivors *= 1.0 - ratio
    return total
