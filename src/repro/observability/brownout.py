"""Brownout control: degrade gracefully while the error budget burns.

When a burn-rate alert is firing, the service is already failing its
SLO — rejecting even more traffic to protect itself converts a latency
problem into an availability problem. A *brownout* does the opposite:
while any watched (objective, rule) pair fires, admitted requests are
served from the degraded/approximate tier (lower-bound scores, no
exact refinement — much cheaper waves) and queue overflow degrades
instead of shedding. Answers are flagged ``approximate``/``degraded``
exactly like the existing backpressure tier, so callers can tell.

The controller is pure policy glue: it reads
:meth:`~repro.observability.burnrate.BurnRateMonitor.firing` and keeps
a hold-down window so serving does not flap between full-fidelity and
degraded service on every alert edge. It never touches answers itself
— :class:`~repro.serving.service.QueryService` consults
:meth:`active` at admission time.
"""

from __future__ import annotations

from repro.errors import ServingError
from repro.telemetry import get_recorder


class BrownoutController:
    """Hysteretic degrade-instead-of-shed switch over burn-rate alerts.

    Parameters
    ----------
    monitor:
        The :class:`~repro.observability.burnrate.BurnRateMonitor` whose
        firing state drives the brownout.
    objectives:
        Objective names that may engage the brownout. Defaults to the
        latency/availability budgets; ``exactness`` is deliberately
        excluded — serving *more* approximate answers is no cure for
        wrong ones.
    hold_ns:
        Hold-down: once engaged, the brownout stays active this long
        past the last firing observation, so a single recovered window
        does not flap service fidelity back and forth.
    """

    def __init__(
        self,
        monitor,
        objectives: tuple = ("p99_deadline", "shed_rate"),
        *,
        hold_ns: float = 2_000_000.0,
    ) -> None:
        if monitor is None:
            raise ServingError("BrownoutController needs a BurnRateMonitor")
        if hold_ns < 0:
            raise ServingError("hold_ns must be >= 0")
        self.monitor = monitor
        self.objectives = tuple(objectives)
        self.hold_ns = float(hold_ns)
        self._active_until_ns: float | None = None
        #: Times the controller transitioned idle -> active.
        self.engagements = 0
        #: Requests served degraded because the brownout was active.
        self.degraded_requests = 0
        #: Queue-overflow requests admitted degraded instead of shed.
        self.rescued_sheds = 0
        #: (t_ns, event) transition log for the campaign timeline.
        self.events: list[tuple[float, str]] = []

    # ------------------------------------------------------------------
    def active(self, now_ns: float) -> bool:
        """Whether admissions at ``now_ns`` should run degraded.

        Re-reads the monitor's firing state: any watched objective
        firing (re)arms the hold-down window; otherwise the brownout
        stays active only until the window expires.
        """
        firing = any(
            objective in self.objectives
            for objective, _rule in self.monitor.firing()
        )
        if firing:
            if self._active_until_ns is None:
                self.engagements += 1
                self.events.append((float(now_ns), "engaged"))
                tele = get_recorder()
                if tele.enabled:
                    tele.metrics.counter(
                        "observability.brownout.engagements"
                    ).add(1)
            self._active_until_ns = float(now_ns) + self.hold_ns
            return True
        if self._active_until_ns is None:
            return False
        if now_ns <= self._active_until_ns:
            return True
        self._active_until_ns = None
        self.events.append((float(now_ns), "released"))
        return False

    def note_degraded(self) -> None:
        """One admission was degraded under the brownout."""
        self.degraded_requests += 1

    def note_rescued(self) -> None:
        """One queue-overflow shed was converted into a degraded admit."""
        self.rescued_sheds += 1

    def snapshot(self) -> dict:
        """Counters + transition log for reports and the ops surface."""
        return {
            "objectives": list(self.objectives),
            "hold_ns": self.hold_ns,
            "active": self._active_until_ns is not None,
            "engagements": self.engagements,
            "degraded_requests": self.degraded_requests,
            "rescued_sheds": self.rescued_sheds,
            "events": [
                {"t_ns": t, "event": e} for t, e in self.events
            ],
        }
