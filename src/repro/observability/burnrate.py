"""Multi-window SLO burn-rate alerting on simulated time.

The classic Google-SRE construction: an SLO defines an *error budget*
(e.g. "1% of requests may miss their deadline"), and the *burn rate* of
a window is ``error_rate / budget`` — 1.0 means the budget is consumed
exactly at its sustainable pace, N means N-times too fast. Each rule
pairs a long window with a short confirmation window: the alert fires
only when *both* burn above the threshold, so a long-gone spike cannot
page (the short window has recovered) and a brief blip cannot either
(the long window dilutes it). A fast/page rule uses a short long-window
and a high threshold; a slow/ticket rule uses a longer window and a
lower threshold.

Windows here are *simulated* nanoseconds — the monitor observes
terminal :class:`~repro.serving.service.Response` objects, whose
completion times come from the discrete-event loop, so alert behaviour
is deterministic and replayable. Alerts are emitted as structured
events on the active telemetry recorder (``kind: "alert"`` in the
metrics JSONL, ``ph: "i"`` instants in the Chrome trace) and kept on
:attr:`BurnRateMonitor.alerts` for programmatic checks.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass

from repro.telemetry import get_recorder


@dataclass(frozen=True)
class SLObjective:
    """One error budget: at most ``budget`` of events may be bad."""

    name: str
    budget: float

    def __post_init__(self) -> None:
        if not 0.0 < self.budget <= 1.0:
            raise ValueError(
                f"objective {self.name!r} needs a budget in (0, 1]"
            )


@dataclass(frozen=True)
class BurnRateRule:
    """One multi-window rule: long window + short confirmation window."""

    name: str
    long_window_ns: float
    short_window_ns: float
    threshold: float
    severity: str = "page"

    def __post_init__(self) -> None:
        if self.short_window_ns > self.long_window_ns:
            raise ValueError(
                f"rule {self.name!r}: short window exceeds long window"
            )
        if self.threshold <= 0:
            raise ValueError(f"rule {self.name!r}: threshold must be > 0")


#: Default budgets: 1% deadline misses, 5% sheds, and effectively zero
#: tolerated exactness violations (any violation burns 10^4x).
DEFAULT_OBJECTIVES = (
    SLObjective("p99_deadline", 0.01),
    SLObjective("shed_rate", 0.05),
    SLObjective("exactness", 1e-4),
)


def default_rules(base_window_ns: float) -> tuple[BurnRateRule, ...]:
    """The standard fast/slow pair scaled to one base window.

    The 14.4/6 thresholds are the canonical SRE-workbook multipliers
    (the pace that exhausts a 30-day budget in 1 day / 5 days); the
    window shapes (short = long/4, slow-long = 6x base) keep the same
    proportions on the compressed simulated timeline.
    """
    return (
        BurnRateRule(
            "fast",
            long_window_ns=base_window_ns,
            short_window_ns=base_window_ns / 4.0,
            threshold=14.4,
            severity="page",
        ),
        BurnRateRule(
            "slow",
            long_window_ns=6.0 * base_window_ns,
            short_window_ns=base_window_ns,
            threshold=6.0,
            severity="ticket",
        ),
    )


class BurnRateMonitor:
    """Streaming burn-rate evaluator over terminal responses.

    Feed it every terminal response (:class:`QueryService` does this
    when the monitor is attached); it classifies each against the
    objectives, re-evaluates every rule at that simulated instant, and
    emits one structured alert per (objective, rule) transition into
    the firing state (with hysteresis: the pair must stop firing before
    it can alert again).

    ``min_events`` suppresses evaluation until the long window holds a
    meaningful sample — a single bad first event is a 100% error rate
    but not a trend.
    """

    def __init__(
        self,
        objectives=None,
        *,
        base_window_ns: float = 500_000.0,
        rules=None,
        min_events: int = 12,
    ) -> None:
        self.objectives = tuple(
            objectives if objectives is not None else DEFAULT_OBJECTIVES
        )
        self.rules = tuple(
            rules if rules is not None else default_rules(base_window_ns)
        )
        self.min_events = min_events
        self._by_name = {o.name: o for o in self.objectives}
        # (t_ns, bad) kept time-sorted — sheds at dispatch time can be
        # recorded after completions stamped later on the event loop
        self._events: dict[str, list[tuple[float, int]]] = {
            o.name: [] for o in self.objectives
        }
        self._active: dict[tuple[str, str], bool] = {}
        #: Structured alerts in emission order.
        self.alerts: list[dict] = []

    # ------------------------------------------------------------------
    def observe(self, response, deadline_ns: float | None = None) -> None:
        """Classify one terminal response against every objective."""
        t = response.completion_ns
        deadline_bad = (
            not response.ok and response.shed_reason == "deadline"
        ) or (
            response.ok
            and deadline_ns is not None
            and response.completion_ns > deadline_ns
        )
        self.record("p99_deadline", t, deadline_bad)
        self.record("shed_rate", t, not response.ok)
        if response.ok:
            # completions are the exactness denominator; violations
            # arrive via record_violation from verification layers
            self.record("exactness", t, False)

    def record_violation(self, t_ns: float) -> None:
        """Record one exactness violation (wrong answer served)."""
        self.record("exactness", t_ns, True)

    def record(self, objective: str, t_ns: float, bad: bool) -> None:
        """Record one good/bad event and re-evaluate that objective."""
        events = self._events.get(objective)
        if events is None:
            return
        bisect.insort(events, (float(t_ns), 1 if bad else 0))
        self._evaluate(objective, float(t_ns))

    # ------------------------------------------------------------------
    @staticmethod
    def _window(
        events: list[tuple[float, int]], t_ns: float, window_ns: float
    ) -> tuple[int, int]:
        """(total, bad) over the half-open window ``(t - w, t]``."""
        lo = bisect.bisect_right(events, (t_ns - window_ns, 1))
        hi = bisect.bisect_right(events, (t_ns, 1))
        total = hi - lo
        bad = sum(flag for _, flag in events[lo:hi])
        return total, bad

    def _evaluate(self, objective: str, t_ns: float) -> None:
        obj = self._by_name[objective]
        events = self._events[objective]
        for rule in self.rules:
            long_total, long_bad = self._window(
                events, t_ns, rule.long_window_ns
            )
            short_total, short_bad = self._window(
                events, t_ns, rule.short_window_ns
            )
            if long_total < self.min_events or short_total == 0:
                continue
            long_burn = (long_bad / long_total) / obj.budget
            short_burn = (short_bad / short_total) / obj.budget
            firing = (
                long_burn >= rule.threshold
                and short_burn >= rule.threshold
            )
            key = (objective, rule.name)
            if firing and not self._active.get(key, False):
                self._active[key] = True
                self._emit(obj, rule, t_ns, long_burn, short_burn)
            elif not firing and self._active.get(key, False):
                self._active[key] = False

    def _emit(
        self,
        obj: SLObjective,
        rule: BurnRateRule,
        t_ns: float,
        long_burn: float,
        short_burn: float,
    ) -> None:
        alert = {
            "objective": obj.name,
            "rule": rule.name,
            "severity": rule.severity,
            "t_ns": t_ns,
            "burn_rate": long_burn,
            "short_burn_rate": short_burn,
            "threshold": rule.threshold,
            "budget": obj.budget,
            "window_ns": rule.long_window_ns,
        }
        self.alerts.append(alert)
        tele = get_recorder()
        if tele.enabled:
            tele.record_event(
                "slo_burn_rate",
                ts_ns=t_ns,
                category="alert",
                **{k: v for k, v in alert.items() if k != "t_ns"},
            )
            tele.metrics.counter(
                "observability.alerts",
                labels={"objective": obj.name, "rule": rule.name},
            ).add(1)

    # ------------------------------------------------------------------
    def firing(self) -> list[tuple[str, str]]:
        """(objective, rule) pairs currently in the firing state."""
        return sorted(k for k, v in self._active.items() if v)

    def snapshot(self, t_ns: float | None = None) -> dict:
        """Current burn rates per objective per rule window."""
        out: dict = {}
        for obj in self.objectives:
            events = self._events[obj.name]
            t = t_ns
            if t is None:
                t = events[-1][0] if events else 0.0
            windows: dict = {}
            for rule in self.rules:
                total, bad = self._window(events, t, rule.long_window_ns)
                rate = bad / total if total else 0.0
                windows[rule.name] = {
                    "events": total,
                    "error_rate": rate,
                    "burn_rate": rate / obj.budget,
                    "threshold": rule.threshold,
                    "firing": self._active.get((obj.name, rule.name), False),
                }
            out[obj.name] = {"budget": obj.budget, "windows": windows}
        return out
