"""Operational observability over the serving stack.

Three pieces layered on :mod:`repro.telemetry`:

* :mod:`repro.observability.burnrate` — Google-SRE-style multi-window
  burn-rate alerting over the serving error budgets (p99-deadline
  misses, shed rate, exactness violations), on simulated time;
* :mod:`repro.observability.brownout` — degrade-instead-of-shed
  control: while burn-rate alerts fire, admissions run from the
  approximate tier rather than being rejected (the one deliberate
  exception to "read-side only", opted into by attaching it);
* :mod:`repro.observability.critical_path` — analysis of exported
  request traces: span-tree reconstruction, orphan detection, and
  per-request latency attribution (queue / dispatch / wave / ADC /
  gather / retry segments);
* :mod:`repro.observability.dashboard` — the ``repro serve
  --live-report`` periodic console dashboard (throughput, p50/p99,
  budget burn, repair/quarantine state).

Everything here is read-side: attaching a monitor or dashboard never
changes serving decisions, timings or answers.
"""

from repro.observability.brownout import BrownoutController
from repro.observability.burnrate import (
    DEFAULT_OBJECTIVES,
    BurnRateMonitor,
    BurnRateRule,
    SLObjective,
    default_rules,
)
from repro.observability.critical_path import (
    load_trace,
    orphan_spans,
    request_breakdowns,
    request_roots,
    slowest_request,
    format_breakdown,
)
from repro.observability.dashboard import LiveReport

__all__ = [
    "DEFAULT_OBJECTIVES",
    "BrownoutController",
    "BurnRateMonitor",
    "BurnRateRule",
    "LiveReport",
    "SLObjective",
    "default_rules",
    "format_breakdown",
    "load_trace",
    "orphan_spans",
    "request_breakdowns",
    "request_roots",
    "slowest_request",
]
