"""Critical-path analysis over exported request traces.

The serving layer emits, per request, a root ``request`` span plus
chained child segments (queue / coscheduled / retry / wave / host /
degraded / gather) and per-shard wave spans on the event-loop timeline
(see :data:`repro.serving.service.SEGMENT_ORDER`). These helpers
reconstruct and check that structure from the exported Chrome trace:

* :func:`request_roots` / :func:`orphan_spans` — tree integrity (one
  root per request, every ``parent_id`` resolves inside its trace);
* :func:`request_breakdowns` — per-request latency attribution with
  the segment-sum-vs-latency residual, the acceptance check that the
  decomposition is exact (within 1 simulated ns);
* :func:`slowest_request` / :func:`format_breakdown` — the "why was
  *this* query slow?" answer the CLI and examples print.

All functions accept the ``traceEvents`` list (or a recorder via
:func:`repro.telemetry.chrome_trace_events`), so they work on live
recorders and on files alike.
"""

from __future__ import annotations

import json


def load_trace(path: str) -> list[dict]:
    """The ``traceEvents`` list of an exported Chrome trace file."""
    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    return payload["traceEvents"]


def span_events(events: list[dict]) -> list[dict]:
    """Only the complete-span (``ph == "X"``) events."""
    return [e for e in events if e.get("ph") == "X"]


def request_roots(events: list[dict]) -> list[dict]:
    """The per-request root spans (category ``request``, no parent)."""
    return [
        e
        for e in span_events(events)
        if e.get("cat") == "request"
        and "parent_id" not in e.get("args", {})
    ]


def orphan_spans(events: list[dict]) -> list[dict]:
    """Spans whose ``parent_id`` resolves to no span in the export."""
    spans = span_events(events)
    known = {
        e["args"]["span_id"] for e in spans if "span_id" in e.get("args", {})
    }
    return [
        e
        for e in spans
        if "parent_id" in e.get("args", {})
        and e["args"]["parent_id"] not in known
    ]


def request_breakdowns(events: list[dict]) -> list[dict]:
    """Per-request latency attribution from the exported span trees.

    Returns one dict per root request span: identity (request_id,
    tenant, trace_id), outcome, total ``latency_ns``, the per-segment
    nanoseconds, the per-shard wave spans, and ``residual_ns`` — the
    difference between the segment sum and the end-to-end latency
    (float rounding only; the acceptance gate holds it under 1 ns).
    """
    roots = request_roots(events)
    children: dict[str, list[dict]] = {}
    for event in span_events(events):
        parent = event.get("args", {}).get("parent_id")
        if parent is not None:
            children.setdefault(parent, []).append(event)
    out = []
    for root in roots:
        args = root["args"]
        segments: dict[str, float] = {}
        waves: list[dict] = []
        for child in children.get(args.get("span_id"), ()):
            cargs = child.get("args", {})
            if "segment" in cargs:
                segments[cargs["segment"]] = cargs["dur_ns"]
            elif child.get("name") == "request.shard_wave":
                waves.append(
                    {
                        "shard": cargs.get("shard"),
                        "chunks": cargs.get("chunks"),
                        "pim_ns": cargs.get("pim_ns"),
                        "cpu_ns": cargs.get("cpu_ns"),
                        "hedged": cargs.get("hedged"),
                        "start_ns": cargs.get("start_ns"),
                        "dur_ns": cargs.get("dur_ns"),
                    }
                )
        latency = args["dur_ns"]
        out.append(
            {
                "request_id": args.get("request_id"),
                "tenant": args.get("tenant"),
                "trace_id": args.get("trace_id"),
                "ok": args.get("ok"),
                "shed_reason": args.get("shed_reason"),
                "critical_shard": args.get("critical_shard"),
                "latency_ns": latency,
                "segments": segments,
                "waves": sorted(
                    waves, key=lambda w: (w["start_ns"], w["shard"])
                ),
                "residual_ns": latency - sum(segments.values()),
            }
        )
    return out


def slowest_request(events: list[dict]) -> dict | None:
    """The breakdown of the highest-latency completed request."""
    completed = [
        b for b in request_breakdowns(events) if b.get("ok")
    ]
    if not completed:
        return None
    return max(completed, key=lambda b: b["latency_ns"])


def format_breakdown(breakdown: dict) -> str:
    """Render one request breakdown as the console block the CLI prints."""
    lines = [
        f"request {breakdown['request_id']} "
        f"(tenant={breakdown['tenant']}, trace={breakdown['trace_id']}): "
        f"{breakdown['latency_ns'] / 1e3:.2f} us"
    ]
    latency = breakdown["latency_ns"] or 1.0
    for segment, dur in sorted(
        breakdown["segments"].items(), key=lambda kv: -kv[1]
    ):
        share = 100.0 * dur / latency
        lines.append(
            f"  {segment[:-3]:<12} {dur / 1e3:9.2f} us  {share:5.1f}%"
        )
    for wave in breakdown["waves"]:
        tag = " (hedged)" if wave.get("hedged") else ""
        lines.append(
            f"  wave shard{wave['shard']}: pim={wave['pim_ns'] / 1e3:.2f} us"
            f" cpu={wave['cpu_ns'] / 1e3:.2f} us{tag}"
        )
    if breakdown.get("critical_shard") is not None:
        lines.append(
            f"  critical shard: {breakdown['critical_shard']}"
        )
    return "\n".join(lines)
