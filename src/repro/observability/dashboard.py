"""The ``repro serve --live-report`` periodic console dashboard.

A :class:`LiveReport` bound to a :class:`~repro.serving.service.QueryService`
prints one status line per reporting period of *simulated* time as the
event loop crosses it: throughput, p50/p99 latency, shed rate, error-
budget burn (when a burn-rate monitor is attached) and the repair /
quarantine state of the fleet. Because the period is simulated ns, a
run prints the same dashboard every time — useful both interactively
and in golden logs.
"""

from __future__ import annotations

import sys


class LiveReport:
    """Periodic operational status lines on simulated time.

    Bind via ``QueryService(..., live_report=LiveReport(...))`` (the
    service calls :meth:`bind` itself); the service then invokes
    :meth:`maybe_report` as responses retire. Lines are kept on
    :attr:`lines` for tests and written to ``out`` (default stdout).
    """

    def __init__(self, period_ns: float = 500_000.0, out=None) -> None:
        if period_ns <= 0:
            raise ValueError("report period must be positive")
        self.period_ns = float(period_ns)
        self.out = out
        self.lines: list[str] = []
        self._service = None
        self._next_ns = float(period_ns)
        self._header_emitted = False

    def bind(self, service) -> None:
        self._service = service

    # ------------------------------------------------------------------
    def maybe_report(self, now_ns: float) -> None:
        """Emit one line if simulated time crossed the next period."""
        if self._service is None or now_ns < self._next_ns:
            return
        while self._next_ns <= now_ns:
            self._next_ns += self.period_ns
        self._emit(now_ns)

    def _emit(self, now_ns: float) -> None:
        service = self._service
        tracker = service.tracker
        pcts = tracker.percentiles()
        statuses: dict[str, int] = {}
        for shard in service.manager.health.snapshot(now_ns):
            status = shard.get("status", "up")
            statuses[status] = statuses.get(status, 0) + 1
        health = " ".join(
            f"{status}={count}" for status, count in sorted(statuses.items())
        )
        burn = ""
        if service.monitor is not None:
            snap = service.monitor.snapshot(now_ns)
            worst = max(
                (
                    w["burn_rate"]
                    for obj in snap.values()
                    for w in obj["windows"].values()
                ),
                default=0.0,
            )
            firing = service.monitor.firing()
            burn = f" burn={worst:5.1f}x"
            if firing:
                burn += " ALERT[" + ",".join(
                    f"{o}/{r}" for o, r in firing
                ) + "]"
        repair = ""
        if service.repair is not None:
            counts = tracker.repair_counts
            active = sum(counts.values())
            repair = f" repair={active}"
        line = (
            f"[t={now_ns / 1e6:8.3f} ms] "
            f"done={tracker.completed:5d} shed={tracker.shed:4d} "
            f"qps={tracker.throughput_qps(now_ns):10.0f} "
            f"p50={pcts['p50_ns'] / 1e3:8.2f} us "
            f"p99={pcts['p99_ns'] / 1e3:8.2f} us"
            f"{burn}{repair} | shards: {health}"
        )
        if not self._header_emitted:
            self._header_emitted = True
            header = (
                "live report (simulated time, period "
                f"{self.period_ns / 1e3:.0f} us)"
            )
            self.lines.append(header)
            print(header, file=self.out or sys.stdout)
        self.lines.append(line)
        print(line, file=self.out or sys.stdout)
