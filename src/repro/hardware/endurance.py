"""Write-endurance accounting for ReRAM crossbars.

ReRAM cells tolerate a limited number of SET/RESET cycles (1e8-1e11,
paper Table 1). The paper's memory-management section (V-C) is motivated
by exactly this: re-programming crossbars for every dataset chunk would
wear the device out, so the dataset is compressed to fit instead.

:class:`EnduranceTracker` counts writes per crossbar (a full crossbar
programming counts as one write to each touched cell) and raises
:class:`~repro.errors.EnduranceExceededError` once a cell's budget is
exhausted. It also exposes wear statistics used by the ablation bench.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import EnduranceExceededError


@dataclass
class EnduranceTracker:
    """Tracks per-unit write counts against a fixed endurance budget.

    The tracker is deliberately coarse: it records the maximum write count
    over the cells of each tracked unit (a crossbar), which is the figure
    of merit for device lifetime.
    """

    endurance: float
    writes: dict[int, int] = field(default_factory=dict)

    def record_write(self, unit_id: int, count: int = 1) -> None:
        """Record ``count`` write cycles to unit ``unit_id``.

        Raises
        ------
        EnduranceExceededError
            If the cumulative writes exceed the configured endurance.
            The exception carries the worn unit id, its write count, the
            rated endurance and the simulated timestamp as structured
            context (see :class:`~repro.errors.FaultError`), so the
            serving layer can shed with a reason code instead of
            crashing and operators can pinpoint the worn crossbar.

        The write is recorded *before* the exception is raised: the
        terminal write did physically happen, so ``wear_fraction`` must
        be able to reach (and pass) 1.0 and a repeated call must report
        the advancing count rather than re-raising with a stale one.
        """
        total = self.writes.get(unit_id, 0) + count
        self.writes[unit_id] = total
        if total > self.endurance:
            from repro.telemetry import get_recorder

            raise EnduranceExceededError(
                f"unit {unit_id} written {total} times "
                f"(endurance {self.endurance:.3g})",
                unit=unit_id,
                timestamp_ns=get_recorder().now_ns,
                writes=total,
                endurance=self.endurance,
            )

    def write_count(self, unit_id: int) -> int:
        """Cumulative writes recorded for ``unit_id``."""
        return self.writes.get(unit_id, 0)

    @property
    def max_writes(self) -> int:
        """Largest write count over all tracked units."""
        return max(self.writes.values(), default=0)

    @property
    def total_writes(self) -> int:
        """Total writes over all tracked units."""
        return sum(self.writes.values())

    def remaining(self, unit_id: int) -> float:
        """Write cycles left before ``unit_id`` exceeds its endurance."""
        return self.endurance - self.write_count(unit_id)

    def wear_fraction(self, unit_id: int) -> float:
        """Fraction of the endurance budget consumed by ``unit_id``."""
        return self.write_count(unit_id) / self.endurance

    def wear_report(self, top: int | None = None) -> dict:
        """Structured wear summary shared by the repair layer and benches.

        Returns the rated endurance, aggregate counters and the ``top``
        most-worn units (all units when ``top`` is ``None``), each with
        its write count and wear fraction. Ties are broken by unit id so
        the report is deterministic.
        """
        entries = sorted(self.writes.items(), key=lambda kv: (-kv[1], kv[0]))
        if top is not None:
            entries = entries[:top]
        return {
            "endurance": self.endurance,
            "units_tracked": len(self.writes),
            "total_writes": self.total_writes,
            "max_writes": self.max_writes,
            "max_wear_fraction": (
                self.max_writes / self.endurance if self.endurance else 0.0
            ),
            "hottest": [
                {
                    "unit": unit,
                    "writes": count,
                    "wear_fraction": (
                        count / self.endurance if self.endurance else 0.0
                    ),
                }
                for unit, count in entries
            ],
        }
