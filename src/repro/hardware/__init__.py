"""ReRAM processing-in-memory substrate (functional + timing simulator).

The public surface re-exported here is what the mining layer and the
benchmarks use; submodules hold the detail:

* :mod:`repro.hardware.config` — platform descriptions (paper Table 5);
* :mod:`repro.hardware.crossbar` — bit-exact single-crossbar model;
* :mod:`repro.hardware.pim_array` — array-level programming and waves;
* :mod:`repro.hardware.mapper` — Theorem 4 crossbar-cost equations;
* :mod:`repro.hardware.controller` — offline/online orchestration;
* :mod:`repro.hardware.quartz` / :mod:`repro.hardware.timing` — the
  Quartz-style CPU model and the NVSim-style wave latency model.
"""

from repro.hardware.banked_memory import (
    BankLayout,
    BankedMatrixStore,
    plan_bank_layout,
)
from repro.hardware.config import (
    CPUConfig,
    CrossbarConfig,
    DOMAIN_LEVELS,
    FailureDomainTopology,
    HardwareConfig,
    HBMPIMConfig,
    MemoryConfig,
    NVM_CHARACTERISTICS,
    PIMArrayConfig,
    baseline_platform,
    hbm_pim_platform,
    pim_platform,
)
from repro.hardware.controller import PIMController, ProgramReceipt
from repro.hardware.energy import EnergyModel, movement_to_compute_ratio
from repro.hardware.crossbar import Crossbar, WaveResult
from repro.hardware.endurance import EnduranceTracker
from repro.hardware.isa import (
    Instruction,
    InstructionTrace,
    TracingPIMController,
)
from repro.hardware.mapper import (
    DatasetLayout,
    data_crossbars,
    fits,
    gather_crossbars,
    max_dimensionality,
    plan_layout,
    total_crossbars,
)
from repro.hardware.noise import (
    NoiseModel,
    NoisyPIMArray,
    compensate_dot_lower,
    compensate_dot_upper,
)
from repro.hardware.pim_array import (
    MatrixBatchState,
    PIMArray,
    PIMBatchResult,
    PIMQueryResult,
    PIMStats,
)
from repro.hardware.timing import BatchWaveTiming, WaveTiming
from repro.hardware.reprogramming import (
    ChunkedDotProductEngine,
    ReprogrammingStats,
)

__all__ = [
    "BankLayout",
    "BankedMatrixStore",
    "BatchWaveTiming",
    "CPUConfig",
    "ChunkedDotProductEngine",
    "Crossbar",
    "CrossbarConfig",
    "DOMAIN_LEVELS",
    "DatasetLayout",
    "EnduranceTracker",
    "EnergyModel",
    "FailureDomainTopology",
    "HBMPIMConfig",
    "HardwareConfig",
    "Instruction",
    "InstructionTrace",
    "MatrixBatchState",
    "MemoryConfig",
    "NVM_CHARACTERISTICS",
    "NoiseModel",
    "NoisyPIMArray",
    "PIMArray",
    "PIMArrayConfig",
    "PIMBatchResult",
    "PIMController",
    "PIMQueryResult",
    "PIMStats",
    "ProgramReceipt",
    "ReprogrammingStats",
    "TracingPIMController",
    "WaveResult",
    "WaveTiming",
    "baseline_platform",
    "compensate_dot_lower",
    "compensate_dot_upper",
    "data_crossbars",
    "fits",
    "gather_crossbars",
    "hbm_pim_platform",
    "max_dimensionality",
    "movement_to_compute_ratio",
    "pim_platform",
    "plan_bank_layout",
    "plan_layout",
    "total_crossbars",
]
