"""eDRAM buffer array that decouples the PIM array from the host CPU.

The massive parallelism of the PIM array produces a burst of results per
wave; the buffer array caches them so the CPU can drain results while the
crossbars start the next wave (paper Section III-A). The model tracks
occupancy against the configured capacity and counts the bytes moved so
the cost model can charge internal-bus transfer time.
"""

from __future__ import annotations

import numpy as np

from repro.errors import CapacityError
from repro.hardware.config import MemoryConfig
from repro.telemetry import get_recorder


class BufferArray:
    """Bounded FIFO of PIM result blocks.

    Parameters
    ----------
    config:
        Memory configuration providing capacity and latency numbers.
    """

    def __init__(self, config: MemoryConfig | None = None) -> None:
        self.config = config if config is not None else MemoryConfig()
        self._blocks: list[np.ndarray] = []
        self._occupied_bytes = 0
        self.total_bytes_written = 0
        self.total_bytes_read = 0

    @property
    def occupied_bytes(self) -> int:
        """Bytes currently buffered."""
        return self._occupied_bytes

    @property
    def free_bytes(self) -> int:
        """Remaining buffer capacity."""
        return self.config.buffer_bytes - self._occupied_bytes

    def push(self, results: np.ndarray) -> None:
        """Deposit one wave's results into the buffer.

        Raises
        ------
        CapacityError
            If the block does not fit; callers should drain first (the
            controller sizes waves so this only signals a logic error).
        """
        block = np.asarray(results)
        nbytes = block.nbytes
        if nbytes > self.free_bytes:
            raise CapacityError(
                f"buffer overflow: {nbytes} B pushed, {self.free_bytes} B free"
            )
        self._blocks.append(block)
        self._occupied_bytes += nbytes
        self.total_bytes_written += nbytes
        tele = get_recorder()
        if tele.enabled:
            tele.metrics.counter("buffer.bytes_written").add(nbytes)
            tele.metrics.gauge("buffer.occupied_bytes").set(
                self._occupied_bytes
            )

    def pop(self) -> np.ndarray:
        """Remove and return the oldest buffered block."""
        if not self._blocks:
            raise CapacityError("buffer underflow: no results buffered")
        block = self._blocks.pop(0)
        self._occupied_bytes -= block.nbytes
        self.total_bytes_read += block.nbytes
        tele = get_recorder()
        if tele.enabled:
            tele.metrics.counter("buffer.bytes_read").add(block.nbytes)
            tele.metrics.gauge("buffer.occupied_bytes").set(
                self._occupied_bytes
            )
        return block

    def pulse_rows(self, rows: np.ndarray) -> int:
        """Synchronously push+pop each row that fits; returns bytes moved.

        Semantically a ``push(row); pop()`` pair per fitting row on an
        otherwise-empty buffer — occupancy is unchanged throughout — but
        the byte counters are recorded once for the whole burst instead
        of per row, which keeps the hot batched-wave drain loop off the
        telemetry registry. Falls back to the explicit pair when blocks
        are already buffered (pop order would matter then).
        """
        if self._blocks:
            moved = 0
            for row in rows:
                if row.nbytes <= self.free_bytes:
                    self.push(row)
                    self.pop()
                    moved += row.nbytes
            return moved
        moved = 0
        free = self.free_bytes
        for row in rows:
            if row.nbytes <= free:
                moved += row.nbytes
        self.total_bytes_written += moved
        self.total_bytes_read += moved
        if moved:
            tele = get_recorder()
            if tele.enabled:
                m = tele.metrics
                m.counter("buffer.bytes_written").add(moved)
                m.counter("buffer.bytes_read").add(moved)
                m.gauge("buffer.occupied_bytes").set(self._occupied_bytes)
        return moved

    def drain(self) -> list[np.ndarray]:
        """Remove and return every buffered block, oldest first."""
        blocks = []
        while self._blocks:
            blocks.append(self.pop())
        return blocks

    def read_time_ns(self, nbytes: int) -> float:
        """Time for the CPU to pull ``nbytes`` from the buffer.

        Charged as fixed access latency plus internal-bus streaming time.
        """
        stream_ns = nbytes / self.config.internal_bus_gbs  # B/(GB/s)=ns
        return self.config.buffer_read_latency_ns + stream_ns
