"""Bank-level structural + timing model behind the HBM-PIM substrate.

Commercial HBM-PIM (Samsung FIMDRAM / Aquabolt-XL, the organisation
captured in SNIPPETS.md) puts a small digital MAC unit next to every
DRAM bank: operands stream out of the open row one ``burst_bytes`` burst
per column access, a general register file (GRF) holds the broadcast
query and the running accumulators, and MAC/MAD/MOV/FILL commands execute
in *all-bank lockstep* — every bank performs the same command on its own
resident data. This module models exactly that:

* :func:`plan_bank_layout` — block-distributes an ``n x dims`` integer
  matrix over the available banks (bank ``j`` holds vectors
  ``[j*vpb, (j+1)*vpb)``), maximising MAC parallelism;
* :func:`bank_batch_timing` / :func:`bank_wave_timing` — per-command DRAM
  timing: MAC bursts paced by ``tCCD``, row switches paying
  ``tRP + tRCD``, the query broadcast as ``MOV`` bursts, and a GRF-
  pressure term (a query longer than ``grf_entries`` bursts is streamed
  in segments, re-activating each vector's rows once per segment);
* :func:`bank_program_ns` — programming writes all banks in parallel at
  burst granularity (DRAM writes, no SET/RESET cost — far cheaper than
  crossbar programming);
* :class:`BankedMatrixStore` — the ``reference=True`` oracle: executes
  the generated MOV/FILL/MAC/result stream bank by bank, burst by burst,
  against per-bank row storage with GRF semantics, wrapping in int64
  exactly like the hardware accumulator.

Arithmetic is digital and exact, so the fast path (one int64 matmul) and
the instruction-stream oracle are bit-identical; only the cost model
differs from the crossbar substrate. The timing results reuse the
crossbar model's :class:`~repro.hardware.timing.WaveTiming` containers
(field mapping documented on each function), so every downstream
consumer — telemetry spans, fault latency inflation, serving accounting —
works unchanged.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import CapacityError, ConfigurationError
from repro.hardware.config import HardwareConfig, HBMPIMConfig
from repro.hardware.timing import BatchWaveTiming, WaveTiming


@dataclass(frozen=True)
class BankLayout:
    """Concrete placement of an ``n_vectors x dims`` matrix on the banks.

    Exposes the attribute names the repair layer reads off crossbar
    layouts (``vectors_per_crossbar``, ``n_data_crossbars``, ...) so the
    vector → physical-unit mapping logic works verbatim on banks: the
    distribution is block-major with a stack depth of 1 and no gather
    tree.
    """

    n_vectors: int
    dims: int
    operand_bits: int
    vectors_per_bank: int
    n_data_banks: int
    bursts_per_vector: int
    grf_segments: int
    rows_touched_per_bank: int

    # -- crossbar-layout compatible aliases (repair + stats consumers) --
    @property
    def vectors_per_crossbar(self) -> int:
        """Alias: vectors per physical unit (bank)."""
        return self.vectors_per_bank

    @property
    def n_data_crossbars(self) -> int:
        """Alias: physical units holding data."""
        return self.n_data_banks

    @property
    def n_gather_crossbars(self) -> int:
        """Banks accumulate locally; there is no gather tree."""
        return 0

    @property
    def gather_levels(self) -> int:
        return 1

    @property
    def n_crossbars(self) -> int:
        """Alias: total physical units occupied."""
        return self.n_data_banks

    @property
    def storage_bits(self) -> int:
        """Payload bits programmed (padding bursts excluded)."""
        return self.n_vectors * self.dims * self.operand_bits



def plan_bank_layout(
    n_vectors: int,
    dims: int,
    config: HBMPIMConfig,
    data_banks: int | None = None,
    operand_bits: int | None = None,
) -> BankLayout:
    """Block-distribute a matrix over the stack's MAC banks.

    Vectors spread over ``min(data_banks, n_vectors)`` banks to maximise
    lockstep parallelism; each bank stores its vectors padded to whole
    bursts, row-major.

    Raises
    ------
    CapacityError
        If the busiest bank's share exceeds the bank capacity.
    """
    if n_vectors <= 0 or dims <= 0:
        raise ConfigurationError("matrix shape must be positive")
    bits = operand_bits if operand_bits is not None else config.operand_bits
    banks = data_banks if data_banks is not None else config.total_banks
    if banks <= 0:
        raise CapacityError("no data banks available (all reserved?)")
    be = config.burst_elems(bits)
    bursts_per_vector = math.ceil(dims / be)
    vector_bytes = bursts_per_vector * config.burst_bytes
    n_data_banks = min(banks, n_vectors)
    vectors_per_bank = math.ceil(n_vectors / n_data_banks)
    if vectors_per_bank * vector_bytes > config.bank_bytes:
        raise CapacityError(
            f"matrix {n_vectors}x{dims} needs "
            f"{vectors_per_bank * vector_bytes} bytes in the busiest bank, "
            f"bank holds {config.bank_bytes}; add banks or shard the data"
        )
    grf_segments = max(1, math.ceil(bursts_per_vector / config.grf_entries))
    rows_touched = max(
        1, math.ceil(vectors_per_bank * vector_bytes / config.row_bytes)
    )
    return BankLayout(
        n_vectors=n_vectors,
        dims=dims,
        operand_bits=bits,
        vectors_per_bank=vectors_per_bank,
        n_data_banks=n_data_banks,
        bursts_per_vector=bursts_per_vector,
        grf_segments=grf_segments,
        rows_touched_per_bank=rows_touched,
    )


def bank_instruction_counts(layout: BankLayout, n_queries: int = 1) -> dict:
    """Command mix of ``n_queries`` waves (busiest-bank perspective).

    The counts feed the backend-specific ``PIMStats.extra`` counters and
    the energy model; they are exactly the commands
    :meth:`BankedMatrixStore.dot_reference` executes. Row activations are
    charged once per dispatched batch (rows stay open between queries of
    one dispatch), matching :func:`bank_batch_timing`.
    """
    vpb = layout.vectors_per_bank
    return {
        "mac_commands": n_queries * vpb * layout.bursts_per_vector,
        "mov_commands": n_queries
        * (layout.bursts_per_vector + vpb),  # query broadcast + result drain
        "fill_commands": n_queries * vpb,  # accumulator clears
        "row_activations": layout.rows_touched_per_bank * layout.grf_segments,
    }


def bank_batch_timing(
    layout: BankLayout,
    config: HBMPIMConfig,
    hardware: HardwareConfig,
    n_queries: int,
) -> BatchWaveTiming:
    """Per-command DRAM timing of one batched all-bank wave.

    Field mapping onto the shared :class:`BatchWaveTiming` container:

    * ``setup_cycles`` — row activate/precharge cycles, charged once per
      batch (rows stay open between queries of one dispatch; the
      GRF-segment multiplier still applies, a long query re-opens rows
      per segment);
    * ``per_query_cycles`` — query-broadcast MOVs plus the busiest
      bank's MAC/FILL/result-MOV stream;
    * ``crossbar_ns`` — all command cycles times ``tCK`` (the name is
      historical; here it is DRAM command time);
    * ``buffer_ns`` — accumulator drain over the internal bus, per query.
    """
    if n_queries < 1:
        raise ConfigurationError("a batch needs at least one query")
    vpb = layout.vectors_per_bank
    activate_cycles = (
        layout.rows_touched_per_bank
        * layout.grf_segments
        * (config.trp_cycles + config.trcd_cycles)
    )
    broadcast_cycles = layout.bursts_per_vector * config.mov_cycles
    mac_cycles = vpb * layout.bursts_per_vector * config.tccd_cycles
    drain_cycles = vpb * (config.fill_cycles + config.mov_cycles)
    per_query = broadcast_cycles + mac_cycles + drain_cycles
    cycles = activate_cycles + n_queries * per_query
    result_bytes = layout.n_vectors * config.accumulator_bits / 8.0
    buffer_ns = n_queries * result_bytes / hardware.memory.internal_bus_gbs
    return BatchWaveTiming(
        n_queries=n_queries,
        setup_cycles=activate_cycles,
        per_query_cycles=per_query,
        crossbar_ns=cycles * config.tck_ns,
        buffer_ns=buffer_ns,
    )


def bank_wave_timing(
    layout: BankLayout,
    config: HBMPIMConfig,
    hardware: HardwareConfig,
) -> WaveTiming:
    """Timing of a single (unbatched) wave.

    Defined as the batch timing at ``n_queries=1`` and repackaged in the
    single-wave container: ``input_cycles`` carries the MAC/FILL/drain
    stream, ``gather_cycles`` the query-broadcast MOVs, and
    ``pipeline_cycles`` the row activates — so ``total_cycles`` equals
    the batch's cycle count exactly.
    """
    batch = bank_batch_timing(layout, config, hardware, 1)
    broadcast_cycles = layout.bursts_per_vector * config.mov_cycles
    return WaveTiming(
        input_cycles=batch.per_query_cycles - broadcast_cycles,
        gather_cycles=broadcast_cycles,
        pipeline_cycles=batch.setup_cycles,
        crossbar_ns=batch.crossbar_ns,
        buffer_ns=batch.buffer_ns,
    )


def bank_program_ns(layout: BankLayout, config: HBMPIMConfig) -> float:
    """Offline time to program a layout onto the banks.

    Every bank is written in parallel through its own IO; the busiest
    bank pays one activate/precharge per touched row plus one write
    burst per stored burst. Plain DRAM writes — no SET/RESET latency —
    which is what makes re-programming this substrate cheap relative to
    the ReRAM crossbars.
    """
    bursts = layout.vectors_per_bank * layout.bursts_per_vector
    cycles = (
        layout.rows_touched_per_bank * (config.trp_cycles + config.trcd_cycles)
        + bursts * config.write_burst_cycles
    )
    return cycles * config.tck_ns


class BankedMatrixStore:
    """Per-bank padded row storage plus the instruction-stream oracle.

    ``banks[j]`` holds bank ``j``'s resident vectors as an
    ``(vectors_in_bank, bursts_per_vector * burst_elems)`` int64 block —
    exactly the bursts the MAC unit would stream out of the open row,
    zero-padded past ``dims``.
    """

    def __init__(
        self, matrix: np.ndarray, layout: BankLayout, config: HBMPIMConfig
    ) -> None:
        self.layout = layout
        self.config = config
        be = config.burst_elems(layout.operand_bits)
        padded_dims = layout.bursts_per_vector * be
        n, dims = matrix.shape
        padded = np.zeros((n, padded_dims), dtype=np.int64)
        padded[:, :dims] = matrix
        vpb = layout.vectors_per_bank
        self.banks: list[np.ndarray] = [
            padded[j * vpb : (j + 1) * vpb]
            for j in range(layout.n_data_banks)
        ]
        self._burst_elems = be

    def dot_reference(self, queries: np.ndarray) -> np.ndarray:
        """Execute the MOV/FILL/MAC stream per bank, burst by burst.

        The loop nests mirror the all-bank lockstep command order: per
        GRF segment, the query bursts are MOVed into the GRF once and
        reused by every resident vector's MACs; accumulators are int64
        and wrap exactly like the hardware (truncation to the
        accumulator width is the caller's job, as on the fast path).
        Returns ``(B, n_vectors)`` raw accumulator values.
        """
        queries = np.atleast_2d(queries).astype(np.int64)
        be = self._burst_elems
        cfg = self.config
        lay = self.layout
        padded_dims = lay.bursts_per_vector * be
        out = np.zeros((queries.shape[0], lay.n_vectors), dtype=np.int64)
        for b, q in enumerate(queries):
            q_pad = np.zeros(padded_dims, dtype=np.int64)
            q_pad[: q.shape[0]] = q
            col = 0
            for bank_rows in self.banks:
                n_here = bank_rows.shape[0]
                acc = np.zeros(n_here, dtype=np.int64)  # FILL GRF_ACC
                for seg in range(lay.grf_segments):
                    lo = seg * cfg.grf_entries
                    hi = min(lo + cfg.grf_entries, lay.bursts_per_vector)
                    # MOV: query bursts [lo, hi) into the GRF
                    for burst in range(lo, hi):
                        sl = slice(burst * be, (burst + 1) * be)
                        grf = q_pad[sl]
                        # MAC: every resident vector's matching burst
                        for v in range(n_here):
                            acc[v] += np.dot(bank_rows[v, sl], grf)
                out[b, col : col + n_here] = acc  # result MOVs
                col += n_here
        return out
