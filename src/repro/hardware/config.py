"""Hardware configuration for the simulated platforms.

Two platforms are modelled, mirroring Table 5 of the paper:

* the **baseline** (conventional von Neumann) platform — a Xeon-class CPU
  with a three-level cache hierarchy and DDR4 DRAM; and
* the **PIM** platform — the same CPU, but main memory is ReRAM-based and
  contains a *memory array* (plain storage), a small eDRAM *buffer array*
  for PIM results, and a *PIM array* made of many small ReRAM crossbars.

The classes here are plain frozen dataclasses: they carry numbers, validate
them, and derive a few convenient quantities (e.g. the crossbar count of a
PIM array of a given byte capacity). All timing logic lives in
:mod:`repro.hardware.timing` and :mod:`repro.cost.model`.

Table 1 of the paper (NVM device characteristics) is exposed as
:data:`NVM_CHARACTERISTICS` for documentation and for tests that sanity
check the chosen ReRAM latencies against the published ranges.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError

#: Representative NVM characteristics (paper Table 1). Latencies in ns,
#: cell size in F^2, write energy in J/bit. Ranges are (low, high).
NVM_CHARACTERISTICS = {
    "DRAM": {
        "volatile": True,
        "endurance": (1e15, 1e15),
        "read_latency_ns": (10.0, 10.0),
        "write_latency_ns": (10.0, 10.0),
        "cell_size_f2": (60, 100),
        "write_energy_j_per_bit": 1e-14,
    },
    "ReRAM": {
        "volatile": False,
        "endurance": (1e8, 1e11),
        "read_latency_ns": (10.0, 10.0),
        "write_latency_ns": (50.0, 50.0),
        "cell_size_f2": (4, 10),
        "write_energy_j_per_bit": 1e-13,
    },
    "PCM": {
        "volatile": False,
        "endurance": (1e8, 1e9),
        "read_latency_ns": (20.0, 60.0),
        "write_latency_ns": (20.0, 150.0),
        "cell_size_f2": (4, 12),
        "write_energy_j_per_bit": 1e-11,
    },
    "STT-RAM": {
        "volatile": False,
        "endurance": (1e12, 1e15),
        "read_latency_ns": (2.0, 35.0),
        "write_latency_ns": (3.0, 50.0),
        "cell_size_f2": (6, 50),
        "write_energy_j_per_bit": 1e-13,
    },
}


@dataclass(frozen=True)
class CrossbarConfig:
    """Geometry and device parameters of one ReRAM crossbar.

    Defaults follow the paper's evaluation setup: 256x256 cells with 2-bit
    precision, read/write latencies of 29.31/50.88 ns (derived from the
    ReRAM design of Niu et al.), and DAC/ADC resolutions used by the
    bit-sliced dot-product pipeline of Fig. 2.
    """

    rows: int = 256
    cols: int = 256
    cell_bits: int = 2
    read_latency_ns: float = 29.31
    write_latency_ns: float = 50.88
    dac_bits: int = 2
    adc_bits: int = 8
    endurance: float = 1e10

    def __post_init__(self) -> None:
        if self.rows <= 0 or self.cols <= 0:
            raise ConfigurationError("crossbar dimensions must be positive")
        if not 1 <= self.cell_bits <= 8:
            raise ConfigurationError("cell precision must be 1..8 bits")
        if self.dac_bits < 1 or self.adc_bits < 1:
            raise ConfigurationError("DAC/ADC resolution must be >= 1 bit")
        if self.read_latency_ns <= 0 or self.write_latency_ns <= 0:
            raise ConfigurationError("crossbar latencies must be positive")
        if self.endurance <= 0:
            raise ConfigurationError("endurance must be positive")

    @property
    def cells(self) -> int:
        """Number of cells in the crossbar."""
        return self.rows * self.cols

    @property
    def capacity_bits(self) -> int:
        """Storage capacity of the crossbar in bits."""
        return self.cells * self.cell_bits

    @property
    def max_cell_value(self) -> int:
        """Largest integer one cell can represent."""
        return (1 << self.cell_bits) - 1


@dataclass(frozen=True)
class PIMArrayConfig:
    """Capacity and organisation of the PIM array (a pool of crossbars)."""

    crossbar: CrossbarConfig = field(default_factory=CrossbarConfig)
    capacity_bytes: int = 2 * 1024**3  # 2 GB, paper default
    operand_bits: int = 32
    accumulator_bits: int = 64

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise ConfigurationError("PIM array capacity must be positive")
        if self.operand_bits < 1:
            raise ConfigurationError("operand width must be at least 1 bit")
        if self.accumulator_bits < self.operand_bits:
            raise ConfigurationError("accumulator must be wider than operands")

    @property
    def num_crossbars(self) -> int:
        """Total crossbars in the array (paper: 131072 for the defaults)."""
        return (self.capacity_bytes * 8) // self.crossbar.capacity_bits

    @property
    def slices_per_operand(self) -> int:
        """How many cell-width slices a ``operand_bits`` value occupies."""
        h = self.crossbar.cell_bits
        return -(-self.operand_bits // h)  # ceil division


@dataclass(frozen=True)
class HBMPIMConfig:
    """Geometry and DRAM timing of a bank-level-MAC HBM-PIM stack.

    Models the commercial HBM-PIM organisation (Samsung FIMDRAM /
    Aquabolt-XL as captured in SNIPPETS.md): a channel → bank-group →
    bank hierarchy where every bank carries a small digital MAC unit fed
    from the open DRAM row, a pair of general register files (GRFs) for
    query operands and partial accumulators, and a scalar register file
    (SRF). Commands (MAC/MAD/MOV/FILL) execute in all-bank lockstep, one
    burst of ``burst_bytes`` per column access, paced by the DRAM
    column-to-column delay ``tccd_cycles``; switching DRAM rows pays
    ``trp_cycles + trcd_cycles``.

    Arithmetic is digital and exact (no DAC/ADC slicing): the backend
    built on this config produces values bit-identical to the crossbar
    substrate while its *cost model* is dominated by per-command DRAM
    timing instead of per-operand-slice analog cycles.
    """

    channels: int = 4
    bankgroups_per_channel: int = 4
    banks_per_bankgroup: int = 4
    row_bytes: int = 1024
    rows_per_bank: int = 16384
    burst_bytes: int = 32
    grf_entries: int = 8
    srf_entries: int = 8
    tck_ns: float = 0.833  # 1.2 GHz HBM2-class command clock
    tccd_cycles: int = 2  # back-to-back column (MAC burst) spacing
    trcd_cycles: int = 14  # row activate -> first column
    trp_cycles: int = 14  # precharge before the next activate
    mov_cycles: int = 2  # GRF <-> bus move per burst
    fill_cycles: int = 1  # accumulator clear
    write_burst_cycles: int = 4  # one burst written during programming
    operand_bits: int = 32
    accumulator_bits: int = 64
    endurance: float = 1e15  # DRAM (Table 1)

    def __post_init__(self) -> None:
        if min(
            self.channels, self.bankgroups_per_channel,
            self.banks_per_bankgroup,
        ) <= 0:
            raise ConfigurationError("bank hierarchy counts must be positive")
        if self.row_bytes <= 0 or self.rows_per_bank <= 0:
            raise ConfigurationError("row geometry must be positive")
        if self.burst_bytes <= 0 or self.burst_bytes > self.row_bytes:
            raise ConfigurationError(
                "burst size must be positive and fit one row"
            )
        if self.grf_entries <= 0 or self.srf_entries <= 0:
            raise ConfigurationError("register files need >= 1 entry")
        if self.tck_ns <= 0:
            raise ConfigurationError("tCK must be positive")
        if min(
            self.tccd_cycles, self.trcd_cycles, self.trp_cycles,
            self.mov_cycles, self.fill_cycles, self.write_burst_cycles,
        ) <= 0:
            raise ConfigurationError("command timings must be positive")
        if self.operand_bits < 1:
            raise ConfigurationError("operand width must be at least 1 bit")
        if self.accumulator_bits < self.operand_bits:
            raise ConfigurationError("accumulator must be wider than operands")
        if self.endurance <= 0:
            raise ConfigurationError("endurance must be positive")

    @property
    def total_banks(self) -> int:
        """MAC-equipped banks across the whole stack."""
        return (
            self.channels
            * self.bankgroups_per_channel
            * self.banks_per_bankgroup
        )

    @property
    def bank_bytes(self) -> int:
        """Data capacity of one bank."""
        return self.row_bytes * self.rows_per_bank

    @property
    def capacity_bytes(self) -> int:
        """Data capacity of the whole stack."""
        return self.bank_bytes * self.total_banks

    def burst_elems(self, operand_bits: int | None = None) -> int:
        """Operands carried by one burst (one MAC command's fan-in)."""
        bits = operand_bits if operand_bits is not None else self.operand_bits
        return max((self.burst_bytes * 8) // bits, 1)


@dataclass(frozen=True)
class CPUConfig:
    """Host-processor model (paper: Broadwell Xeon E5-2620 @ 2.10 GHz)."""

    frequency_hz: float = 2.10e9
    l1_bytes: int = 32 * 1024
    l2_bytes: int = 256 * 1024
    l3_bytes: int = 20 * 1024**2
    cache_line_bytes: int = 64
    #: average useful flops retired per cycle for the streaming kernels
    #: the mining algorithms execute (vectorised adds/multiplies).
    flops_per_cycle: float = 4.0
    #: penalty of one last-level cache miss serviced from DRAM.
    dram_miss_latency_ns: float = 80.0
    #: penalty of one last-level cache miss serviced from the ReRAM
    #: memory array (higher read latency than DRAM).
    reram_miss_latency_ns: float = 105.0
    branch_mispredict_penalty_ns: float = 7.0

    def __post_init__(self) -> None:
        if self.frequency_hz <= 0:
            raise ConfigurationError("CPU frequency must be positive")
        if min(self.l1_bytes, self.l2_bytes, self.l3_bytes) <= 0:
            raise ConfigurationError("cache sizes must be positive")
        if self.cache_line_bytes <= 0:
            raise ConfigurationError("cache line size must be positive")

    @property
    def seconds_per_flop(self) -> float:
        """Time to retire one useful floating-point operation."""
        return 1.0 / (self.frequency_hz * self.flops_per_cycle)


@dataclass(frozen=True)
class MemoryConfig:
    """Main-memory organisation shared by both platforms."""

    total_bytes: int = 16 * 1024**3
    dram_bandwidth_gbs: float = 19.2
    internal_bus_gbs: float = 50.0
    buffer_bytes: int = 16 * 1024**2
    buffer_read_latency_ns: float = 2.0

    def __post_init__(self) -> None:
        if self.total_bytes <= 0 or self.buffer_bytes <= 0:
            raise ConfigurationError("memory sizes must be positive")
        if self.dram_bandwidth_gbs <= 0 or self.internal_bus_gbs <= 0:
            raise ConfigurationError("bandwidths must be positive")


@dataclass(frozen=True)
class HardwareConfig:
    """Complete platform description (paper Table 5).

    ``pim`` may be ``None`` to describe the conventional baseline platform,
    in which case all of main memory is DRAM.
    """

    cpu: CPUConfig = field(default_factory=CPUConfig)
    memory: MemoryConfig = field(default_factory=MemoryConfig)
    pim: PIMArrayConfig | None = field(default_factory=PIMArrayConfig)
    #: Optional bank-level-MAC HBM-PIM stack (``None`` = not fitted; the
    #: hbm_pim substrate falls back to a default stack that mirrors the
    #: platform's operand/accumulator widths — see
    #: :func:`repro.substrate.hbm_pim.hbm_config_for`).
    hbm: HBMPIMConfig | None = None

    @property
    def has_pim(self) -> bool:
        """Whether this platform contains a PIM array."""
        return self.pim is not None

    @property
    def memory_array_bytes(self) -> int:
        """Plain-storage capacity (total minus PIM array and buffer)."""
        if self.pim is None:
            return self.memory.total_bytes
        return (
            self.memory.total_bytes
            - self.pim.capacity_bytes
            - self.memory.buffer_bytes
        )


#: Failure-domain levels, finest to coarsest blast radius. A board
#: failure takes its shards; a channel failure takes every board on the
#: channel; a power-domain failure takes every channel it feeds.
DOMAIN_LEVELS = ("board", "channel", "power")


@dataclass(frozen=True)
class FailureDomainTopology:
    """The shard -> board -> channel -> power-domain tree of one fleet.

    Real PIM deployments fail in correlated groups, not one array at a
    time: the boards of one memory channel share a controller, the
    channels of one power domain share a supply. This class maps shard
    ids onto that tree so placement can *spread* the replicas of a
    chunk across domains (no single correlated outage takes every copy)
    and the fault layer can script whole-domain outages.

    Shards are packed contiguously: shard ``s`` sits on board
    ``s // shards_per_board``, boards pack into channels and channels
    into power domains the same way. Partial trailing groups are legal
    (a 6-shard fleet at 4 shards/board has boards of 4 and 2 shards).
    """

    n_shards: int
    shards_per_board: int = 2
    boards_per_channel: int = 2
    channels_per_power_domain: int = 2

    def __post_init__(self) -> None:
        if self.n_shards < 1:
            raise ConfigurationError("topology needs at least one shard")
        if min(
            self.shards_per_board,
            self.boards_per_channel,
            self.channels_per_power_domain,
        ) < 1:
            raise ConfigurationError(
                "topology group sizes must be positive"
            )

    # -- shard -> domain ------------------------------------------------
    def _check(self, shard: int) -> int:
        shard = int(shard)
        if not 0 <= shard < self.n_shards:
            raise ConfigurationError(
                f"shard {shard} outside fleet of {self.n_shards}"
            )
        return shard

    def board_of(self, shard: int) -> int:
        """Board id hosting ``shard``."""
        return self._check(shard) // self.shards_per_board

    def channel_of(self, shard: int) -> int:
        """Memory channel id hosting ``shard``'s board."""
        return self.board_of(shard) // self.boards_per_channel

    def power_domain_of(self, shard: int) -> int:
        """Power domain id feeding ``shard``'s channel."""
        return self.channel_of(shard) // self.channels_per_power_domain

    def domain_of(self, shard: int, level: str) -> int:
        """Domain id of ``shard`` at one :data:`DOMAIN_LEVELS` level."""
        if level == "board":
            return self.board_of(shard)
        if level == "channel":
            return self.channel_of(shard)
        if level == "power":
            return self.power_domain_of(shard)
        raise ConfigurationError(
            f"unknown domain level {level!r}; one of {DOMAIN_LEVELS}"
        )

    def domains_of(self, shard: int) -> dict:
        """``{level: domain id}`` for every level, for one shard."""
        return {
            level: self.domain_of(shard, level) for level in DOMAIN_LEVELS
        }

    # -- domain -> shards -----------------------------------------------
    @property
    def n_boards(self) -> int:
        return -(-self.n_shards // self.shards_per_board)

    @property
    def n_channels(self) -> int:
        return -(-self.n_boards // self.boards_per_channel)

    @property
    def n_power_domains(self) -> int:
        return -(-self.n_channels // self.channels_per_power_domain)

    def n_domains(self, level: str) -> int:
        """Distinct domains at ``level``."""
        if level == "board":
            return self.n_boards
        if level == "channel":
            return self.n_channels
        if level == "power":
            return self.n_power_domains
        raise ConfigurationError(
            f"unknown domain level {level!r}; one of {DOMAIN_LEVELS}"
        )

    def shards_in(self, level: str, domain: int) -> tuple[int, ...]:
        """Shard ids inside one domain (the domain's blast radius)."""
        domain = int(domain)
        if not 0 <= domain < self.n_domains(level):
            raise ConfigurationError(
                f"no {level} domain {domain} "
                f"(fleet has {self.n_domains(level)})"
            )
        return tuple(
            s
            for s in range(self.n_shards)
            if self.domain_of(s, level) == domain
        )

    # -- spread arithmetic ----------------------------------------------
    def shared_level(self, a: int, b: int) -> str | None:
        """Finest domain two shards share (``None`` = fully disjoint).

        Sharing a board implies sharing its channel and power domain,
        so the finest shared level names the *smallest* outage that
        takes both shards at once.
        """
        if a == b:
            raise ConfigurationError("shared_level needs distinct shards")
        if self.board_of(a) == self.board_of(b):
            return "board"
        if self.channel_of(a) == self.channel_of(b):
            return "channel"
        if self.power_domain_of(a) == self.power_domain_of(b):
            return "power"
        return None

    def shared_depth(self, a: int, b: int) -> int:
        """How many domain levels two shards share (0 = disjoint, 3 =
        same board). The quantity spread placement minimises."""
        level = self.shared_level(a, b)
        if level is None:
            return 0
        return len(DOMAIN_LEVELS) - DOMAIN_LEVELS.index(level)

    # -- (de)serialisation ----------------------------------------------
    def describe(self) -> dict:
        """JSON-friendly form (checkpoints, timeline artifacts)."""
        return {
            "n_shards": self.n_shards,
            "shards_per_board": self.shards_per_board,
            "boards_per_channel": self.boards_per_channel,
            "channels_per_power_domain": self.channels_per_power_domain,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "FailureDomainTopology":
        """Inverse of :meth:`describe`."""
        return cls(
            n_shards=int(payload["n_shards"]),
            shards_per_board=int(payload["shards_per_board"]),
            boards_per_channel=int(payload["boards_per_channel"]),
            channels_per_power_domain=int(
                payload["channels_per_power_domain"]
            ),
        )


def baseline_platform() -> HardwareConfig:
    """The conventional DRAM-only platform of the paper's experiments."""
    return HardwareConfig(pim=None)


def pim_platform(
    pim_capacity_bytes: int = 2 * 1024**3,
    crossbar: CrossbarConfig | None = None,
) -> HardwareConfig:
    """A ReRAM PIM platform with the paper's Table 5 defaults.

    Parameters
    ----------
    pim_capacity_bytes:
        Size of the PIM array (default 2 GB as in the paper).
    crossbar:
        Crossbar geometry override; defaults to 256x256 2-bit cells.
    """
    xbar = crossbar if crossbar is not None else CrossbarConfig()
    return HardwareConfig(
        pim=PIMArrayConfig(crossbar=xbar, capacity_bytes=pim_capacity_bytes)
    )


def hbm_pim_platform(
    pim_capacity_bytes: int = 2 * 1024**3,
    hbm: HBMPIMConfig | None = None,
) -> HardwareConfig:
    """A platform carrying both a crossbar PIM array and an HBM-PIM stack.

    The crossbar array is kept (heterogeneous placements program some
    shards on each substrate) and the HBM stack defaults to the
    :class:`HBMPIMConfig` geometry.
    """
    stack = hbm if hbm is not None else HBMPIMConfig()
    return HardwareConfig(
        pim=PIMArrayConfig(capacity_bytes=pim_capacity_bytes), hbm=stack
    )
