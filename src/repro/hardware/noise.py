"""Analog non-ideality model for ReRAM crossbars.

The paper's Section II-A argues *against* computing similarity values
directly in analog PIM: GraphR-style fixed-point approximation "may
compromise the accuracy of results in data mining tasks (e.g., kNN
classification)"; the paper instead computes *bounds* on PIM and
refines survivors exactly on the host. This module makes that argument
quantitative:

* :class:`NoiseModel` — bounded multiplicative cell/read noise (each
  analog product is off by a factor in ``[1-e, 1+e]`` with
  ``e <= 3*cell_sigma``) plus ADC quantization with a known step;
* :class:`NoisyPIMArray` — a drop-in PIM array whose waves return
  perturbed dot products, with the *worst-case* error bounds exposed;
* :func:`compensate_dot_upper` / :func:`compensate_dot_lower` — recover
  safe bounds on the true dot product from a noisy reading, so bound
  functions stay correct under noise (at some tightness cost).

The noise-accuracy bench contrasts (a) trusting noisy analog values as
distances — accuracy degrades — with (b) the paper's bound-and-refine
under the same noise with compensation — results stay exact.

Composability with fault injection: a
:class:`~repro.faults.injectors.FaultyPIMArray` wraps *any* array with
query/query_many/query_batch — including a :class:`NoisyPIMArray` — so
analog noise and injected faults (stuck cells, corrupted waves,
latency spikes, crossbar death) stack. Note that residue verification
(:mod:`repro.faults.integrity`) assumes the exact digital path; under
analog noise every wave would flag, so serving-level ``verify`` must
stay off for noisy arrays and corruption is handled by compensation
bounds instead.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.hardware.config import HardwareConfig
from repro.hardware.pim_array import PIMArray, PIMBatchResult, PIMQueryResult

#: Noise samples are truncated at this many standard deviations so the
#: worst-case compensation bound is finite and provable.
TRUNCATION_SIGMAS = 3.0


@dataclass(frozen=True)
class NoiseModel:
    """Bounded analog error description.

    Attributes
    ----------
    cell_sigma:
        Relative standard deviation of each analog product (device
        conductance variation + read noise), truncated at
        :data:`TRUNCATION_SIGMAS`.
    adc_step:
        Quantization step of the digitised result (absolute units of
        the integer dot product); 0 disables quantization.
    seed:
        RNG seed for reproducible noise.
    """

    cell_sigma: float = 0.0
    adc_step: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.cell_sigma < 0 or self.adc_step < 0:
            raise ConfigurationError("noise magnitudes must be >= 0")
        if self.cell_sigma * TRUNCATION_SIGMAS >= 1.0:
            raise ConfigurationError(
                "cell_sigma too large: worst-case error reaches 100%"
            )

    @property
    def relative_error_bound(self) -> float:
        """Largest possible relative error of a dot-product reading."""
        return TRUNCATION_SIGMAS * self.cell_sigma

    @property
    def additive_error_bound(self) -> float:
        """Largest possible additive error (ADC rounding)."""
        return self.adc_step / 2.0

    @property
    def is_ideal(self) -> bool:
        """True when the model introduces no error."""
        return self.cell_sigma == 0.0 and self.adc_step == 0.0


#: Relative inflation applied to compensated bounds so floating-point
#: rounding in the division can never flip a guarantee.
_ROUNDING_GUARD = 1e-9


def compensate_dot_upper(noisy: np.ndarray, model: NoiseModel) -> np.ndarray:
    """A guaranteed *upper* bound on the true dot product.

    With ``true*(1-e) - a <= noisy <= true*(1+e) + a`` (e the relative
    cap, a the additive cap) and non-negative operands:
    ``true <= (noisy + a) / (1 - e)``.
    """
    e = model.relative_error_bound
    a = model.additive_error_bound
    upper = (np.asarray(noisy, dtype=np.float64) + a) / (1.0 - e)
    return upper * (1.0 + _ROUNDING_GUARD)


def compensate_dot_lower(noisy: np.ndarray, model: NoiseModel) -> np.ndarray:
    """A guaranteed *lower* bound on the true dot product (clipped >= 0)."""
    e = model.relative_error_bound
    a = model.additive_error_bound
    lower = (np.asarray(noisy, dtype=np.float64) - a) / (1.0 + e)
    return np.maximum(lower * (1.0 - _ROUNDING_GUARD), 0.0)


class NoisyPIMArray(PIMArray):
    """A PIM array whose analog waves return perturbed dot products.

    Values are perturbed multiplicatively with truncated Gaussian noise
    and then quantized to the ADC step; integer exactness is lost, which
    is precisely the regime the paper's bound-based design tolerates.
    """

    def __init__(
        self,
        hardware: HardwareConfig | None = None,
        noise: NoiseModel | None = None,
    ) -> None:
        super().__init__(hardware, simulate_cells=False)
        self.noise = noise if noise is not None else NoiseModel()
        self._rng = np.random.default_rng(self.noise.seed)

    def _perturb(self, values: np.ndarray) -> np.ndarray:
        if self.noise.is_ideal:
            return values
        floats = values.astype(np.float64)
        if self.noise.cell_sigma > 0.0:
            raw = self._rng.normal(
                0.0, self.noise.cell_sigma, size=floats.shape
            )
            cap = self.noise.relative_error_bound
            noise = np.clip(raw, -cap, cap)
            floats = floats * (1.0 + noise)
        if self.noise.adc_step > 0.0:
            floats = np.round(floats / self.noise.adc_step) * self.noise.adc_step
        return floats

    def query(self, name, vector, input_bits=None) -> PIMQueryResult:
        result = super().query(name, vector, input_bits=input_bits)
        return PIMQueryResult(
            values=self._perturb(result.values), timing=result.timing
        )

    def query_many(self, name, vectors, input_bits=None) -> PIMQueryResult:
        result = super().query_many(name, vectors, input_bits=input_bits)
        return PIMQueryResult(
            values=self._perturb(result.values), timing=result.timing
        )

    def query_batch(self, name, vectors, input_bits=None) -> PIMBatchResult:
        result = super().query_batch(name, vectors, input_bits=input_bits)
        return PIMBatchResult(
            values=self._perturb(result.values), timing=result.timing
        )
