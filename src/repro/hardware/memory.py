"""Memory-array access-time model (DRAM vs ReRAM storage).

Both platforms expose the same storage abstraction: the baseline keeps
datasets in DRAM, the PIM platform keeps them in the ReRAM memory array
(whose reads are as fast as DRAM but whose writes are ~5x slower, Table
1). :class:`MemoryArray` answers "how long does moving this many bytes
take" for sequential streams and charges write time for pre-processing
(Fig. 17 compares exactly these write costs).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.hardware.config import MemoryConfig

#: Per-device relative write slowdown vs read (Table 1: DRAM ~10/10 ns,
#: ReRAM ~50/10 ns).
WRITE_SLOWDOWN = {"dram": 1.0, "reram": 5.0}


@dataclass(frozen=True)
class MemoryArray:
    """Streaming-bandwidth model of one storage device.

    Parameters
    ----------
    config:
        Shared memory configuration (bandwidths).
    device:
        ``"dram"`` or ``"reram"``.
    """

    config: MemoryConfig
    device: str = "dram"

    def __post_init__(self) -> None:
        if self.device not in WRITE_SLOWDOWN:
            raise ConfigurationError(
                f"unknown memory device {self.device!r}; "
                f"expected one of {sorted(WRITE_SLOWDOWN)}"
            )

    @property
    def read_bandwidth_gbs(self) -> float:
        """Sequential read bandwidth in GB/s."""
        return self.config.dram_bandwidth_gbs

    @property
    def write_bandwidth_gbs(self) -> float:
        """Sequential write bandwidth in GB/s (device-dependent)."""
        return self.config.dram_bandwidth_gbs / WRITE_SLOWDOWN[self.device]

    def read_time_ns(self, nbytes: float) -> float:
        """Time to stream ``nbytes`` out of the array."""
        return nbytes / self.read_bandwidth_gbs  # B / (GB/s) = ns

    def write_time_ns(self, nbytes: float) -> float:
        """Time to stream ``nbytes`` into the array."""
        return nbytes / self.write_bandwidth_gbs
