"""Array-level PIM interface: program matrices, fire dot-product waves.

:class:`PIMArray` is the substrate the mining layer talks to. Datasets
(or several distinct matrices — e.g. a code matrix and its complement for
Hamming distance) are programmed once at the offline stage; at the online
stage a *wave* evaluates one query vector against every programmed vector
of a matrix concurrently and deposits the results in the buffer array.

Three execution paths produce identical values:

* the default fast path computes the integer matrix-vector product with
  NumPy (the bit-sliced analog pipeline is value-exact, so this is a pure
  optimisation), while still charging the cycle-accurate wave latency;
* ``simulate_cells=True`` runs the *fused* bit-sliced kernel: the
  operand bit-slice decomposition is precomputed at ``program()`` time
  (cached per matrix, dropped on reprogram/remap) and every wave is one
  whole-array tensor contraction over (operand-slice, input-slice)
  partials — cell-faithful DAC/ADC bit-slicing without Python loops; and
* ``simulate_cells=True, reference=True`` shards the matrix over real
  :class:`~repro.hardware.crossbar.Crossbar` objects and merges their
  partial results per crossbar and per slice — the slow loop oracle the
  fused kernel is checked against, bit for bit, on small geometries.

All three share the analytical timing model (latency is computed from
the layout, not from the execution style), so simulated times are
identical by construction; the fusion golden tests pin them anyway.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import CapacityError, OperandError, ProgrammingError
from repro.hardware import bitslice
from repro.hardware.buffer import BufferArray
from repro.hardware.config import HardwareConfig, PIMArrayConfig, pim_platform
from repro.hardware.crossbar import Crossbar
from repro.hardware.endurance import EnduranceTracker
from repro.hardware.mapper import (
    DatasetLayout,
    plan_layout,
    reserve_spares,
    vectors_per_crossbar,
)
from repro.hardware.timing import (
    BatchWaveTiming,
    WaveTiming,
    batch_wave_timing,
    programming_time_ns,
    wave_timing,
)
from repro.telemetry import get_recorder


@dataclass(frozen=True)
class PIMQueryResult:
    """Values plus timing of one dot-product wave."""

    values: np.ndarray
    timing: WaveTiming


@dataclass(frozen=True)
class PIMBatchResult:
    """Values plus timing of one batched multi-query wave."""

    values: np.ndarray
    timing: BatchWaveTiming


@dataclass
class MatrixBatchState:
    """Per-matrix dispatch accounting (batch traffic of one matrix).

    Scoped to the *currently programmed* matrix of a name: resetting the
    matrix discards its record, so a later matrix reusing the name (the
    chunked re-programming engine does this constantly) starts from zero
    and shard-level aggregation never double counts a stale generation.
    """

    waves: int = 0
    batches: int = 0
    batched_queries: int = 0
    pim_time_ns: float = 0.0


@dataclass
class PIMStats:
    """Cumulative activity counters of a :class:`PIMArray`.

    ``waves`` counts logical query waves regardless of dispatch style, so
    a batch of B queries and B sequential queries report the same count;
    ``batches``/``batched_queries`` record how much of that traffic went
    through the amortized batch path, and ``batch_saved_ns`` the wave
    time the amortization saved versus sequential dispatch.
    ``per_matrix`` holds the same dispatch counters scoped to each live
    programmed matrix (cleared by ``reset_matrix``).

    The counters are substrate-neutral: ``crossbars_used`` counts
    occupied *physical units* of whatever the backend calls them
    (crossbars, DRAM banks, ...), ``backend`` names the substrate, and
    backend-specific counters (MAC commands, row activations, ADC
    conversions per domain, ...) live in the free-form ``extra`` map so
    unlike backends merge without assuming each other's fields.
    """

    waves: int = 0
    pim_time_ns: float = 0.0
    programming_time_ns: float = 0.0
    crossbars_used: int = 0
    results_produced: int = 0
    batches: int = 0
    batched_queries: int = 0
    batch_saved_ns: float = 0.0
    remaps: int = 0
    matrices: dict[str, "object"] = field(default_factory=dict)
    per_matrix: dict[str, MatrixBatchState] = field(default_factory=dict)
    backend: str = "crossbar"
    extra: dict[str, float] = field(default_factory=dict)

    #: distinct ``extra`` keys a merged stats object keeps before folding
    #: the remainder into ``__other__`` (cardinality guard for reports)
    MAX_EXTRA_KEYS = 16

    def add_extra(self, key: str, amount: float) -> None:
        """Accumulate a backend-specific counter."""
        self.extra[key] = self.extra.get(key, 0.0) + float(amount)

    @property
    def waves_per_batch(self) -> float:
        """Mean batch size of the batched traffic (0 when unused)."""
        if self.batches == 0:
            return 0.0
        return self.batched_queries / self.batches

    def matrix_state(self, name: str) -> MatrixBatchState:
        """The live batch state of one matrix (created on first use)."""
        state = self.per_matrix.get(name)
        if state is None:
            state = MatrixBatchState()
            self.per_matrix[name] = state
        return state

    @classmethod
    def merge(
        cls,
        parts: "list[PIMStats] | tuple[PIMStats, ...]",
        prefixes: list[str] | tuple[str, ...] | None = None,
    ) -> "PIMStats":
        """Aggregate the stats of several arrays (e.g. one per shard).

        Scalar counters sum; the ``matrices``/``per_matrix`` maps are
        united, with each part's keys optionally namespaced by the
        matching entry of ``prefixes`` (shards that reuse a matrix name,
        like the chunked engine's ``"chunk"``, need distinct prefixes).
        An un-prefixed name collision raises :class:`ProgrammingError`
        rather than silently double counting.

        The merge is backend-agnostic: parts from unlike substrates
        combine cleanly — ``backend`` becomes ``"mixed"`` when the parts
        disagree, and the backend-specific ``extra`` counters sum
        key-wise, with keys past :attr:`MAX_EXTRA_KEYS` folded into a
        single ``__other__`` bucket so heterogeneous fleets cannot blow
        up report cardinality.
        """
        if prefixes is not None and len(prefixes) != len(parts):
            raise ProgrammingError(
                "merge() needs exactly one prefix per stats part"
            )
        merged = cls()
        backends = {part.backend for part in parts}
        if backends:
            merged.backend = (
                backends.pop() if len(backends) == 1 else "mixed"
            )
        for i, part in enumerate(parts):
            prefix = prefixes[i] if prefixes is not None else ""
            for key in sorted(part.extra):
                target = key
                if (
                    target not in merged.extra
                    and len(merged.extra) >= cls.MAX_EXTRA_KEYS
                ):
                    target = "__other__"
                merged.extra[target] = (
                    merged.extra.get(target, 0.0) + part.extra[key]
                )
            merged.waves += part.waves
            merged.pim_time_ns += part.pim_time_ns
            merged.programming_time_ns += part.programming_time_ns
            merged.crossbars_used += part.crossbars_used
            merged.results_produced += part.results_produced
            merged.batches += part.batches
            merged.batched_queries += part.batched_queries
            merged.batch_saved_ns += part.batch_saved_ns
            merged.remaps += part.remaps
            for name, layout in part.matrices.items():
                key = prefix + name
                if key in merged.matrices:
                    raise ProgrammingError(
                        f"merge() would double count matrix {key!r}; "
                        "pass distinct prefixes"
                    )
                merged.matrices[key] = layout
            for name, state in part.per_matrix.items():
                key = prefix + name
                if key in merged.per_matrix:
                    raise ProgrammingError(
                        f"merge() would double count matrix {key!r}; "
                        "pass distinct prefixes"
                    )
                merged.per_matrix[key] = MatrixBatchState(
                    waves=state.waves,
                    batches=state.batches,
                    batched_queries=state.batched_queries,
                    pim_time_ns=state.pim_time_ns,
                )
        return merged


class _ProgrammedMatrix:
    """Internal record of one programmed matrix.

    ``sliced`` caches the operand bit-slice decomposition the fused
    cell-level kernel contracts against — shape ``(n_vectors, dims,
    n_operand_slices)``, int64. It is built at program time, rebuilt
    lazily after :meth:`drop_sliced` (any reprogram/remap event), and
    absent entirely on the fast and reference paths.
    """

    def __init__(
        self,
        matrix: np.ndarray,
        layout: DatasetLayout,
        crossbars: list[list[Crossbar]] | None,
        crossbar_ids: list[int] | None = None,
    ) -> None:
        self.matrix = matrix
        self.layout = layout
        self.crossbars = crossbars  # only in simulate_cells mode
        self.crossbar_ids = crossbar_ids or []
        self.sliced: np.ndarray | None = None

    def drop_sliced(self) -> None:
        """Invalidate the cached bit-slice decomposition."""
        self.sliced = None


class PIMArray:
    """The PIM array of one ReRAM memory module.

    Parameters
    ----------
    hardware:
        Platform description; must contain a PIM array. Defaults to the
        paper's Table 5 platform.
    simulate_cells:
        Route every wave through cell-faithful bit-sliced computation
        (the fused whole-array kernel by default).
    reference:
        With ``simulate_cells``, use the original per-crossbar/per-slice
        loop oracle instead of the fused kernel. Bit-identical values,
        orders of magnitude slower; intended for small-geometry
        verification and as the perf-trajectory baseline.
    spare_crossbars:
        Crossbars withheld from data placement as a repair pool. A
        stuck/dead crossbar can be remapped onto the least-worn spare
        (see :meth:`remap_crossbar`); the capacity available to
        :meth:`program_matrix` shrinks by the reservation.
    """

    def __init__(
        self,
        hardware: HardwareConfig | None = None,
        simulate_cells: bool = False,
        spare_crossbars: int = 0,
        reference: bool = False,
    ) -> None:
        self.hardware = hardware if hardware is not None else pim_platform()
        if self.hardware.pim is None:
            raise ProgrammingError("hardware platform has no PIM array")
        if reference and not simulate_cells:
            raise ProgrammingError(
                "reference=True is the loop oracle of the cell-level "
                "path; it requires simulate_cells=True"
            )
        self.config: PIMArrayConfig = self.hardware.pim
        self.simulate_cells = simulate_cells
        self.reference = reference
        self.buffer = BufferArray(self.hardware.memory)
        self.endurance = EnduranceTracker(self.config.crossbar.endurance)
        self.stats = PIMStats()
        self._matrices: dict[str, _ProgrammedMatrix] = {}
        self._next_crossbar_id = 0
        self._free_crossbar_ids: list[int] = []
        self.spare_crossbars = int(spare_crossbars)
        self.data_capacity = reserve_spares(self.config, self.spare_crossbars)
        # spares take the first physical ids so data/spare sets are
        # disjoint and deterministic across runs
        self._spare_ids: list[int] = list(range(self.spare_crossbars))
        self._next_crossbar_id = self.spare_crossbars
        self.remap_table: dict[int, int] = {}
        self._retired_ids: set[int] = set()

    # ------------------------------------------------------------------
    # programming (offline stage)
    # ------------------------------------------------------------------
    def program_matrix(
        self, name: str, matrix: np.ndarray, input_bits: int | None = None
    ) -> DatasetLayout:
        """Program a named ``(n_vectors, dims)`` integer matrix.

        Parameters
        ----------
        name:
            Handle used by :meth:`query`.
        matrix:
            Non-negative integers below ``2**operand_bits``.
        input_bits:
            Reserved for callers that later query with narrower inputs;
            only validated here.

        Returns
        -------
        DatasetLayout
            The crossbar placement, also recorded in :attr:`stats`.
        """
        if name in self._matrices:
            raise ProgrammingError(
                f"matrix {name!r} already programmed; reset it first"
            )
        matrix = np.ascontiguousarray(matrix)
        if matrix.ndim != 2:
            raise OperandError("expected a 2-D (vectors x dims) matrix")
        bitslice.check_non_negative_integers(matrix, self.config.operand_bits)
        n_vectors, dims = matrix.shape
        layout = plan_layout(n_vectors, dims, self.config)
        used = self.stats.crossbars_used + layout.n_crossbars
        if used > self.data_capacity:
            detail = (
                f" ({self.spare_crossbars} reserved as spares)"
                if self.spare_crossbars
                else ""
            )
            raise CapacityError(
                f"programming {name!r} would use {used} crossbars, "
                f"array has {self.data_capacity}{detail}"
            )
        crossbars: list[list[Crossbar]] | None = None
        crossbar_ids: list[int] = []
        if self.simulate_cells:
            crossbars = self._program_cells(matrix, layout)
            crossbar_ids = [
                xbar.crossbar_id for column in crossbars for xbar in column
            ]
        else:
            # charge endurance at layout granularity (one write per
            # crossbar), reusing freed physical crossbars so repeated
            # re-programming accumulates wear on the same cells
            for _ in range(layout.n_crossbars):
                if self._free_crossbar_ids:
                    unit = self._free_crossbar_ids.pop()
                else:
                    unit = self._next_crossbar_id
                    self._next_crossbar_id += 1
                self.endurance.record_write(unit)
                crossbar_ids.append(unit)
        record = _ProgrammedMatrix(
            matrix.astype(np.int64), layout, crossbars, crossbar_ids
        )
        if self.simulate_cells and not self.reference:
            record.sliced = self._decompose(record.matrix)
        self._matrices[name] = record
        self.stats.crossbars_used = used
        self.stats.matrices[name] = layout
        program_ns = programming_time_ns(layout, self.config)
        self.stats.programming_time_ns += program_ns
        tele = get_recorder()
        if tele.enabled:
            with tele.span(
                "pim.program", "pim_program",
                matrix=name, vectors=n_vectors, dims=dims,
                crossbars=layout.n_crossbars,
            ):
                tele.advance(program_ns)
            tele.metrics.counter("pim.programmed_crossbars").add(
                layout.n_crossbars
            )
            tele.metrics.gauge("pim.crossbars_used").set(used)
        return layout

    def _program_cells(
        self, matrix: np.ndarray, layout: DatasetLayout
    ) -> list[list[Crossbar]]:
        """Shard the matrix over real crossbar objects (simulate mode)."""
        rows = self.config.crossbar.rows
        per_xbar = vectors_per_crossbar(self.config)
        n_vectors, dims = matrix.shape
        shards: list[list[Crossbar]] = []
        for v0 in range(0, n_vectors, per_xbar):
            chunk_vectors = matrix[v0 : v0 + per_xbar]
            column: list[Crossbar] = []
            for d0 in range(0, dims, rows):
                xbar = Crossbar(
                    self.config.crossbar,
                    crossbar_id=self._next_crossbar_id,
                    endurance_tracker=self.endurance,
                )
                self._next_crossbar_id += 1
                xbar.program(
                    chunk_vectors[:, d0 : d0 + rows], self.config.operand_bits
                )
                column.append(xbar)
            shards.append(column)
        return shards

    def reset_matrix(self, name: str) -> None:
        """Erase a programmed matrix, freeing its crossbars.

        Re-programming afterwards wears the device: the endurance tracker
        keeps counting against the same crossbar budget. The matrix's
        per-matrix batch state is dropped too, so a successor matrix
        reusing the name starts its accounting from zero (aggregating
        shard stats would otherwise double count stale generations).
        """
        record = self._matrices.pop(name, None)
        if record is None:
            raise ProgrammingError(f"no matrix named {name!r}")
        self.stats.crossbars_used -= record.layout.n_crossbars
        del self.stats.matrices[name]
        self.stats.per_matrix.pop(name, None)
        record.drop_sliced()
        if record.crossbars is None:
            # cell-mode crossbar objects are not recycled; only the
            # fast path returns physical ids to the free pool
            self._free_crossbar_ids.extend(record.crossbar_ids)
        tele = get_recorder()
        if tele.enabled:
            tele.metrics.counter("pim.matrix_resets").add(1)
            tele.metrics.gauge("pim.crossbars_used").set(
                self.stats.crossbars_used
            )
        if record.crossbars is not None:
            for column in record.crossbars:
                for xbar in column:
                    xbar.reset()

    def layouts(self) -> dict[str, DatasetLayout]:
        """Layouts of all programmed matrices."""
        return {name: rec.layout for name, rec in self._matrices.items()}

    def matrix_of(self, name: str) -> np.ndarray:
        """The integer matrix currently programmed under ``name``.

        Read-only view for diagnostics and fault injectors; mutating the
        returned array is undefined behaviour.
        """
        record = self._matrices.get(name)
        if record is None:
            raise ProgrammingError(f"no matrix named {name!r}")
        return record.matrix

    # ------------------------------------------------------------------
    # spare pool + remap table (repair layer)
    # ------------------------------------------------------------------
    @property
    def spares_remaining(self) -> int:
        """Spare crossbars still available for remapping."""
        return len(self._spare_ids)

    def crossbar_ids_of(self, name: str) -> list[int]:
        """Physical crossbar ids currently backing matrix ``name``."""
        record = self._matrices.get(name)
        if record is None:
            raise ProgrammingError(f"no matrix named {name!r}")
        return list(record.crossbar_ids)

    def remap_crossbar(self, old_id: int) -> tuple[int, float]:
        """Remap one flagged crossbar onto the least-worn spare.

        The owning matrix's placement is rewritten in place (values are
        unchanged — the logical matrix is simply reprogrammed onto the
        spare), the spare is charged one endurance write plus the
        per-crossbar reprogramming latency, and ``old_id`` is retired
        permanently: it never re-enters the free list.

        Returns
        -------
        tuple
            ``(spare_id, reprogram_ns)``.

        Raises
        ------
        CapacityError
            When the spare pool is exhausted.
        ProgrammingError
            When ``old_id`` backs no programmed matrix.
        """
        owner = None
        for name, record in self._matrices.items():
            if old_id in record.crossbar_ids:
                owner = (name, record)
                break
        if owner is None:
            raise ProgrammingError(
                f"crossbar {old_id} backs no programmed matrix"
            )
        if not self._spare_ids:
            raise CapacityError(
                f"spare pool exhausted remapping crossbar {old_id}"
            )
        name, record = owner
        spare = min(
            self._spare_ids,
            key=lambda u: (self.endurance.write_count(u), u),
        )
        self._spare_ids.remove(spare)
        self.endurance.record_write(spare)
        record.crossbar_ids[record.crossbar_ids.index(old_id)] = spare
        # the logical values are reprogrammed onto the spare: any cached
        # bit-slice decomposition is rebuilt from scratch on next query
        # (defensively — stale cell state must never outlive a remap)
        record.drop_sliced()
        if record.crossbars is not None:
            for column in record.crossbars:
                for xbar in column:
                    if xbar.crossbar_id == old_id:
                        xbar.crossbar_id = spare
        self.remap_table[old_id] = spare
        self._retired_ids.add(old_id)
        from repro.hardware.reprogramming import crossbar_reprogram_ns

        reprogram_ns = crossbar_reprogram_ns(record.layout, self.config)
        self.stats.programming_time_ns += reprogram_ns
        self.stats.remaps += 1
        tele = get_recorder()
        if tele.enabled:
            with tele.span(
                "pim.remap", "pim_program",
                matrix=name, old_crossbar=old_id, spare=spare,
            ):
                tele.advance(reprogram_ns)
            tele.metrics.counter("pim.remaps").add(1)
            tele.metrics.gauge("pim.spares_remaining").set(
                len(self._spare_ids)
            )
        return spare, reprogram_ns

    def remap_crossbars(self, old_ids: list[int]) -> tuple[list[int], float]:
        """Remap several crossbars; returns the spares and total latency."""
        spares: list[int] = []
        total_ns = 0.0
        for old_id in old_ids:
            spare, ns = self.remap_crossbar(old_id)
            spares.append(spare)
            total_ns += ns
        return spares, total_ns

    # ------------------------------------------------------------------
    # substrate protocol surface (see repro.substrate.protocol)
    # ------------------------------------------------------------------
    #: what this backend calls one physical unit
    unit_name = "crossbar"

    def units_needed(self, n_vectors: int, dims: int) -> int:
        """Physical units a fresh ``(n_vectors, dims)`` matrix occupies."""
        from repro.hardware.mapper import total_crossbars

        return total_crossbars(n_vectors, dims, self.config)

    def fits_matrix(
        self, n_vectors: int, dims: int, exclude: str | None = None
    ) -> bool:
        """Would a ``(n_vectors, dims)`` matrix fit alongside current data?

        ``exclude`` names a programmed matrix whose units are treated as
        free — the grow-in-place check used by chunk re-replication.
        """
        free = self.data_capacity - self.stats.crossbars_used
        if exclude is not None and exclude in self._matrices:
            free += self._matrices[exclude].layout.n_crossbars
        return self.units_needed(n_vectors, dims) <= free

    def unit_ids_of(self, name: str) -> list[int]:
        """Substrate-neutral alias of :meth:`crossbar_ids_of`."""
        return self.crossbar_ids_of(name)

    def remap_unit(self, old_id: int) -> tuple[int, float]:
        """Substrate-neutral alias of :meth:`remap_crossbar`."""
        return self.remap_crossbar(old_id)

    def remap_units(self, old_ids: list[int]) -> tuple[list[int], float]:
        """Substrate-neutral alias of :meth:`remap_crossbars`."""
        return self.remap_crossbars(old_ids)

    def wear_report(self, top: int | None = None) -> dict:
        """Endurance wear summary of this array's physical units."""
        return self.endurance.wear_report(top=top)

    def capabilities(self):
        """The crossbar capability descriptor (cost-prediction hooks)."""
        from repro.substrate.crossbar import CrossbarCapabilities

        return CrossbarCapabilities(self.hardware)

    # ------------------------------------------------------------------
    # querying (online stage)
    # ------------------------------------------------------------------
    def query(
        self, name: str, vector: np.ndarray, input_bits: int | None = None
    ) -> PIMQueryResult:
        """Fire one wave: dot products of ``vector`` with every row of ``name``.

        Results are truncated to the accumulator width (the paper keeps
        the least-significant 64 bits; 32 for binary codes) and pushed to
        the buffer array; the caller is expected to drain the buffer.
        """
        record = self._matrices.get(name)
        if record is None:
            raise ProgrammingError(f"no matrix named {name!r}")
        vector = np.asarray(vector)
        bits = input_bits if input_bits is not None else self.config.operand_bits
        bitslice.check_non_negative_integers(vector, bits)
        if vector.ndim != 1 or vector.shape[0] != record.layout.dims:
            raise OperandError(
                f"query must be a vector of length {record.layout.dims}"
            )
        if record.crossbars is not None:
            values = self._cell_values(record, vector[np.newaxis, :], bits)[0]
        else:
            values = record.matrix @ vector.astype(np.int64)
        values = bitslice.truncate_result(values, self.config.accumulator_bits)
        timing = wave_timing(
            record.layout, self.config, self.hardware, input_bits=bits
        )
        if values.nbytes <= self.buffer.free_bytes:
            self.buffer.push(values)
            self.buffer.pop()  # the host drains synchronously in this model
        self.stats.waves += 1
        self.stats.pim_time_ns += timing.total_ns
        self.stats.results_produced += int(values.shape[0])
        state = self.stats.matrix_state(name)
        state.waves += 1
        state.pim_time_ns += timing.total_ns
        tele = get_recorder()
        if tele.enabled:
            with tele.span(
                "pim.wave", "pim_dispatch",
                matrix=name, queries=1, results=int(values.shape[0]),
                input_cycles=timing.input_cycles,
                gather_cycles=timing.gather_cycles,
                pipeline_cycles=timing.pipeline_cycles,
                crossbar_ns=timing.crossbar_ns,
                buffer_ns=timing.buffer_ns,
            ):
                tele.advance(timing.total_ns)
            self._record_wave_metrics(
                tele, waves=1, cycles=timing.input_cycles,
                results=int(values.shape[0]),
            )
        return PIMQueryResult(values=values, timing=timing)

    def query_many(
        self,
        name: str,
        vectors: np.ndarray,
        input_bits: int | None = None,
    ) -> PIMQueryResult:
        """Fire one wave per row of ``vectors`` (a batched :meth:`query`).

        Semantically identical to looping :meth:`query` — each row is
        its own wave, charged separately — but evaluated as a single
        matrix product, which keeps large sweeps (k-means iterations
        firing one wave per center) fast to simulate. Returns values of
        shape ``(n_queries, n_programmed_vectors)``.
        """
        record = self._matrices.get(name)
        if record is None:
            raise ProgrammingError(f"no matrix named {name!r}")
        vectors = np.atleast_2d(np.asarray(vectors))
        bits = input_bits if input_bits is not None else self.config.operand_bits
        bitslice.check_non_negative_integers(vectors, bits)
        if vectors.shape[1] != record.layout.dims:
            raise OperandError(
                f"queries must have length {record.layout.dims}"
            )
        if record.crossbars is not None:
            values = self._cell_values(record, vectors, bits)
        else:
            values = vectors.astype(np.int64) @ record.matrix.T
        values = bitslice.truncate_result(values, self.config.accumulator_bits)
        timing = wave_timing(
            record.layout, self.config, self.hardware, input_bits=bits
        )
        n_queries = vectors.shape[0]
        self.stats.waves += n_queries
        self.stats.pim_time_ns += timing.total_ns * n_queries
        self.stats.results_produced += int(values.size)
        state = self.stats.matrix_state(name)
        state.waves += n_queries
        state.pim_time_ns += timing.total_ns * n_queries
        tele = get_recorder()
        if tele.enabled:
            with tele.span(
                "pim.wave_train", "pim_dispatch",
                matrix=name, queries=n_queries, results=int(values.size),
                input_cycles=timing.input_cycles * n_queries,
                gather_cycles=timing.gather_cycles * n_queries,
                pipeline_cycles=timing.pipeline_cycles * n_queries,
                crossbar_ns=timing.crossbar_ns * n_queries,
                buffer_ns=timing.buffer_ns * n_queries,
            ):
                tele.advance(timing.total_ns * n_queries)
            self._record_wave_metrics(
                tele, waves=n_queries,
                cycles=timing.input_cycles * n_queries,
                results=int(values.size),
            )
        return PIMQueryResult(values=values, timing=timing)

    def query_batch(
        self,
        name: str,
        vectors: np.ndarray,
        input_bits: int | None = None,
    ) -> PIMBatchResult:
        """Fire one *batched* wave: all rows of ``vectors`` in one dispatch.

        Values are bit-identical to looping :meth:`query` (the analog
        pipeline is value-exact either way), and each row still counts as
        one logical wave in :attr:`stats`, but the timing model charges
        one pipeline setup plus per-query DAC/ADC increments instead of B
        full dispatches — see
        :func:`~repro.hardware.timing.batch_wave_timing`.
        """
        record = self._matrices.get(name)
        if record is None:
            raise ProgrammingError(f"no matrix named {name!r}")
        vectors = np.atleast_2d(np.asarray(vectors))
        bits = input_bits if input_bits is not None else self.config.operand_bits
        bitslice.check_non_negative_integers(vectors, bits)
        if vectors.shape[1] != record.layout.dims:
            raise OperandError(
                f"queries must have length {record.layout.dims}"
            )
        if record.crossbars is not None:
            values = self._cell_values(record, vectors, bits)
        else:
            values = vectors.astype(np.int64) @ record.matrix.T
        values = bitslice.truncate_result(values, self.config.accumulator_bits)
        n_queries = vectors.shape[0]
        timing = batch_wave_timing(
            record.layout, self.config, self.hardware, n_queries,
            input_bits=bits,
        )
        single = wave_timing(
            record.layout, self.config, self.hardware, input_bits=bits
        )
        self.buffer.pulse_rows(values)  # the host drains synchronously
        self.stats.waves += n_queries
        self.stats.batches += 1
        self.stats.batched_queries += n_queries
        saved_ns = n_queries * single.total_ns - timing.total_ns
        self.stats.pim_time_ns += timing.total_ns
        self.stats.batch_saved_ns += saved_ns
        self.stats.results_produced += int(values.size)
        state = self.stats.matrix_state(name)
        state.waves += n_queries
        state.batches += 1
        state.batched_queries += n_queries
        state.pim_time_ns += timing.total_ns
        tele = get_recorder()
        if tele.enabled:
            # begin/end pair instead of the contextmanager: this is the
            # serving hot path and the generator frame is measurable
            tele.begin_span(
                "pim.batch_wave", "pim_dispatch",
                matrix=name, queries=n_queries, results=int(values.size),
                saved_ns=saved_ns,
                setup_cycles=timing.setup_cycles,
                per_query_cycles=timing.per_query_cycles,
                crossbar_ns=timing.crossbar_ns,
                buffer_ns=timing.buffer_ns,
            )
            tele.advance(timing.total_ns)
            tele.end_span()
            self._record_wave_metrics(
                tele, waves=n_queries,
                cycles=timing.per_query_cycles * n_queries,
                results=int(values.size),
            )
            m = self._wave_instruments(tele, batch=True)
            m["batch_flushes"].add(1)
            m["batch_saved_ns"].add(max(saved_ns, 0.0))
            m["batch_size"].observe(n_queries)
        return PIMBatchResult(values=values, timing=timing)

    def _wave_instruments(self, tele, batch: bool = False) -> dict:
        """Per-array cache of the hot wave instruments.

        Invalidated when the active registry changes (a new telemetry
        session), so dispatch paths skip the registry lookup per wave.
        The batch instruments are only created when a batch path asks,
        preserving the instrument set of scalar-only runs.
        """
        m = tele.metrics
        if m is not getattr(self, "_metrics_src", None):
            self._metrics_src = m
            self._metrics_cache = {
                "waves": m.counter("pim.waves"),
                "bit_slice_passes": m.counter("pim.bit_slice_passes"),
                "adc_conversions": m.counter("pim.adc_conversions"),
                "results_produced": m.counter("pim.results_produced"),
            }
        cache = self._metrics_cache
        if batch and "batch_flushes" not in cache:
            cache["batch_flushes"] = m.counter("pim.batch_flushes")
            cache["batch_saved_ns"] = m.counter("pim.batch_saved_ns")
            cache["batch_size"] = m.histogram("pim.batch_size")
        return cache

    def _record_wave_metrics(
        self, tele, waves: int, cycles: int, results: int
    ) -> None:
        """Wave counters shared by the three dispatch styles.

        ``cycles`` are the DAC input cycles charged, i.e. the bit-slice
        passes through the analog array; every pass converts each
        result column once, so ADC conversions are ``results_per_wave x
        cycles_per_wave`` summed over the dispatch.
        """
        m = self._wave_instruments(tele)
        m["waves"].add(waves)
        m["bit_slice_passes"].add(cycles)
        if waves:
            m["adc_conversions"].add(results / waves * cycles)
        m["results_produced"].add(results)

    def _decompose(self, matrix: np.ndarray) -> np.ndarray:
        """Operand bit-slice tensor of ``matrix`` for the fused kernel.

        Shape ``(n_vectors, dims, n_operand_slices)``; slice ``j`` holds
        bits ``[j*h, (j+1)*h)`` of each operand — exactly the cell
        contents :meth:`_program_cells` writes, reassembled whole-array.
        """
        return bitslice.slice_operands(
            matrix, self.config.operand_bits, self.config.crossbar.cell_bits
        ).astype(np.int64)

    def _cell_values(
        self, record: _ProgrammedMatrix, vectors: np.ndarray, bits: int
    ) -> np.ndarray:
        """Cell-level values of a ``(B, dims)`` query block.

        Fused kernel by default; ``reference=True`` replays the
        per-crossbar loop oracle row by row. Both are exact integer
        arithmetic mod 2**64 over the same (operand-slice, input-slice)
        partials, so the results are bit-identical — the fusion property
        suite holds this line.
        """
        if self.reference:
            return np.vstack(
                [self._query_cells(record, v, bits) for v in vectors]
            )
        return self._query_fused(record, vectors, bits)

    def _query_fused(
        self, record: _ProgrammedMatrix, vectors: np.ndarray, bits: int
    ) -> np.ndarray:
        """Whole-array bit-sliced wave: one contraction, one shift-add.

        The crossbar loop computes, per crossbar/input slice/operand
        slice, ``partials[j, k] = sum_r Q_k[r] * cell_j[r, v]`` and
        shift-adds ``partials[j, k] << (j*h + k*g)``. Mod-2**64 integer
        arithmetic is a commutative ring, and the DAC slices recombine
        exactly (``sum_k Q_k * 2**(k*g) == q``), so the per-input-slice
        axis folds away algebraically: contracting the *unsliced* query
        against each cached operand-slice plane and shift-adding over
        operand slices alone is bit-identical to the loop — at a
        fraction of the multiplies. The property suite pins the
        equivalence against the crossbar oracle.
        """
        sliced = record.sliced
        if sliced is None:  # dropped by a reprogram/remap — rebuild
            sliced = record.sliced = self._decompose(record.matrix)
        queries = np.atleast_2d(vectors).astype(np.int64)  # (B, dims)
        # contract the shared dims axis: -> (B, n_vectors, n_op)
        planes = np.tensordot(queries, sliced, axes=([1], [1]))
        # operand-slice shift-add; the input-slice axis is a singleton
        # because the DAC slices were recombined before the contraction
        partials = planes.transpose(2, 0, 1)[:, np.newaxis]
        return bitslice.shift_add_partials(
            partials,
            self.config.crossbar.cell_bits,
            self.config.crossbar.dac_bits,
        )

    def _query_cells(
        self, record: _ProgrammedMatrix, vector: np.ndarray, bits: int
    ) -> np.ndarray:
        """Per-crossbar bit-sliced evaluation (the loop oracle)."""
        rows = self.config.crossbar.rows
        outputs: list[np.ndarray] = []
        for column in record.crossbars or []:
            partial_sum: np.ndarray | None = None
            for i, xbar in enumerate(column):
                segment = vector[i * rows : i * rows + xbar._rows_used]
                wave = xbar.dot_product(
                    segment, input_bits=bits, reference=True
                )
                partial_sum = (
                    wave.values
                    if partial_sum is None
                    else partial_sum + wave.values
                )
            assert partial_sum is not None
            outputs.append(partial_sum)
        return np.concatenate(outputs)

    # ------------------------------------------------------------------
    def total_pim_time_ns(self) -> float:
        """Cumulative simulated PIM time (waves only)."""
        return self.stats.pim_time_ns
