"""Functional model of a single ReRAM crossbar (paper Section II-A).

A crossbar is an ``m x m`` grid of multi-level cells. Vectors are
pre-programmed along bitlines (columns); injecting a voltage-encoded
input vector on the wordlines (rows) produces, per column, the analog
dot product of the input with that column — all columns concurrently.

Because one cell only stores ``h`` bits and one DAC only drives ``g``
input bits per cycle, wide operands are *bit-sliced*: an operand occupies
``ceil(b/h)`` adjacent columns and an input is applied over
``ceil(b/g)`` cycles; the shift-and-add unit reconstructs the exact
integer result (Fig. 2). This module implements that faithfully —
results are bit-exact against NumPy integer dot products, which the test
suite verifies — while also reporting the cycle counts the timing model
charges for.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import OperandError, ProgrammingError
from repro.hardware import bitslice
from repro.hardware.config import CrossbarConfig
from repro.hardware.endurance import EnduranceTracker


@dataclass(frozen=True)
class WaveResult:
    """Outcome of one dot-product wave on a crossbar.

    Attributes
    ----------
    values:
        Integer dot product per programmed column group.
    cycles:
        Crossbar read cycles consumed (input slices; the per-column and
        per-operand-slice work happens concurrently in the analog domain).
    adc_conversions:
        Number of ADC sample conversions performed (for energy models).
    """

    values: np.ndarray
    cycles: int
    adc_conversions: int


class Crossbar:
    """One ReRAM crossbar holding bit-sliced operand columns.

    Parameters
    ----------
    config:
        Geometry and device parameters.
    crossbar_id:
        Identifier used by the endurance tracker.
    endurance_tracker:
        Shared tracker; ``None`` disables endurance accounting.
    """

    def __init__(
        self,
        config: CrossbarConfig | None = None,
        crossbar_id: int = 0,
        endurance_tracker: EnduranceTracker | None = None,
    ) -> None:
        self.config = config if config is not None else CrossbarConfig()
        self.crossbar_id = crossbar_id
        self._endurance = endurance_tracker
        self._cells = np.zeros(
            (self.config.rows, self.config.cols), dtype=np.uint8
        )
        self._operand_bits: int | None = None
        self._num_vectors = 0
        self._rows_used = 0
        self._programmed = False

    # ------------------------------------------------------------------
    # programming
    # ------------------------------------------------------------------
    @property
    def is_programmed(self) -> bool:
        """Whether operand data has been programmed onto the crossbar."""
        return self._programmed

    @property
    def num_vectors(self) -> int:
        """How many operand vectors are stored (column groups in use)."""
        return self._num_vectors

    def vectors_capacity(self, operand_bits: int) -> int:
        """How many ``operand_bits``-wide vectors fit side by side."""
        slices = bitslice.num_slices(operand_bits, self.config.cell_bits)
        return self.config.cols // slices

    def program(self, matrix: np.ndarray, operand_bits: int) -> None:
        """Program operand vectors as bit-sliced columns.

        Parameters
        ----------
        matrix:
            ``(n_vectors, dims)`` non-negative integer array; vector ``i``
            becomes the ``i``-th column group. ``dims`` must not exceed the
            row count and ``n_vectors`` must fit after slicing.
        operand_bits:
            Width ``b`` of each operand element.
        """
        matrix = np.asarray(matrix)
        if matrix.ndim != 2:
            raise OperandError("program() expects a 2-D (vectors x dims) array")
        n_vectors, dims = matrix.shape
        if dims > self.config.rows:
            raise OperandError(
                f"vector dimensionality {dims} exceeds crossbar rows "
                f"{self.config.rows}"
            )
        if n_vectors > self.vectors_capacity(operand_bits):
            raise OperandError(
                f"{n_vectors} vectors exceed crossbar column capacity "
                f"{self.vectors_capacity(operand_bits)}"
            )
        slices = bitslice.slice_operands(
            matrix, operand_bits, self.config.cell_bits
        )
        n_slices = slices.shape[-1]
        self._cells[:] = 0
        for i in range(n_vectors):
            cols = slice(i * n_slices, (i + 1) * n_slices)
            self._cells[:dims, cols] = slices[i].astype(np.uint8)
        self._operand_bits = operand_bits
        self._num_vectors = n_vectors
        self._rows_used = dims
        self._programmed = True
        if self._endurance is not None:
            self._endurance.record_write(self.crossbar_id)
        self._apply_cell_faults()

    def _apply_cell_faults(self) -> None:
        """Hook invoked after programming; the base crossbar is fault-free.

        :class:`~repro.faults.injectors.FaultyCrossbar` overrides this to
        pin a seeded subset of cells to a stuck value, modelling
        stuck-at-0/1 ReRAM defects at the physical bit-slice level.
        """

    def reset(self) -> None:
        """Erase the crossbar (counts as one write cycle)."""
        self._cells[:] = 0
        self._programmed = False
        self._num_vectors = 0
        self._rows_used = 0
        self._operand_bits = None
        if self._endurance is not None:
            self._endurance.record_write(self.crossbar_id)

    # ------------------------------------------------------------------
    # computation
    # ------------------------------------------------------------------
    def dot_product(
        self,
        query: np.ndarray,
        input_bits: int | None = None,
        reference: bool = False,
    ) -> WaveResult:
        """Compute the dot product of ``query`` with every stored vector.

        The query is DAC-sliced into ``ceil(b/g)`` input waves; per wave
        the analog array yields per-column partial sums which the S&H/ADC
        pipeline digitises and the S&A unit shifts into the accumulator.

        Parameters
        ----------
        query:
            Non-negative integer vector of the programmed dimensionality.
        input_bits:
            Width of query elements; defaults to the programmed operand
            width.
        reference:
            Route through the original one-``einsum``-per-input-slice
            loop plus the sequential shift-add oracle instead of the
            fused kernel. Both are exact integer arithmetic mod 2**64,
            so the results are bit-identical; the loop stays as the
            independent oracle the fusion property suite checks against.

        Returns
        -------
        WaveResult
            Exact integer dot products plus consumed cycles.
        """
        if not self._programmed or self._operand_bits is None:
            raise ProgrammingError("crossbar has no programmed data")
        query = np.asarray(query)
        if query.ndim != 1 or query.shape[0] != self._rows_used:
            raise OperandError(
                f"query must be a vector of length {self._rows_used}"
            )
        bits = input_bits if input_bits is not None else self._operand_bits
        n_op = bitslice.num_slices(self._operand_bits, self.config.cell_bits)

        cells = self._cells[: self._rows_used].astype(np.int64)
        # Group columns back into (operand-slice, vector) layout.
        used_cols = self._num_vectors * n_op
        grouped = cells[:, :used_cols].reshape(
            self._rows_used, self._num_vectors, n_op
        )
        if reference:
            q_slices = bitslice.slice_operands_reference(
                query, bits, self.config.dac_bits
            )
            n_in = q_slices.shape[-1]
            partials = np.empty(
                (n_op, n_in, self._num_vectors), dtype=np.int64
            )
            for k in range(n_in):
                q_k = q_slices[:, k].astype(np.int64)
                # analog MAC: every column sees the same input wave.
                partials[:, k, :] = np.einsum("r,rvj->jv", q_k, grouped)
            values = bitslice.shift_add_partials_reference(
                partials, self.config.cell_bits, self.config.dac_bits
            )
        else:
            q_slices = bitslice.slice_operands(
                query, bits, self.config.dac_bits
            )
            n_in = q_slices.shape[-1]
            # all (operand-slice, input-slice) partials in one contraction
            partials = np.einsum(
                "rk,rvj->jkv", q_slices.astype(np.int64), grouped
            )
            values = bitslice.shift_add_partials(
                partials, self.config.cell_bits, self.config.dac_bits
            )
        return WaveResult(
            values=values,
            cycles=n_in,
            adc_conversions=n_in * used_cols,
        )

    def stored_matrix(self) -> np.ndarray:
        """Reconstruct the programmed ``(n_vectors, dims)`` matrix.

        Used by tests to verify lossless programming.
        """
        if not self._programmed or self._operand_bits is None:
            raise ProgrammingError("crossbar has no programmed data")
        n_op = bitslice.num_slices(self._operand_bits, self.config.cell_bits)
        used_cols = self._num_vectors * n_op
        grouped = (
            self._cells[: self._rows_used, :used_cols]
            .reshape(self._rows_used, self._num_vectors, n_op)
            .transpose(1, 0, 2)
        )
        return bitslice.reconstruct(grouped, self.config.cell_bits).astype(
            np.int64
        )
