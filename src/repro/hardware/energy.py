"""Energy model for both platforms (NVSim also reports energy).

The motivation chain of the paper rests on data movement being two
orders of magnitude more expensive than arithmetic (its citation [21]
puts the overhead at ~200x). This module prices both platforms:

* **host side** — energy per retired flop, per cache-line moved from
  DRAM/ReRAM, per branch;
* **PIM side** — per-wave energy from the analog pipeline: DAC drives,
  cell reads, ADC conversions (the dominant term in published ReRAM
  accelerators such as ISAAC), shift-and-add, plus buffer writes;
* **programming** — ReRAM SET/RESET energy per written bit (Table 1).

Defaults follow published figures (ISAAC's ~2 pJ/8-bit ADC conversion,
DDR4's ~20 pJ/byte, ReRAM's 1e-13 J/bit writes) and are all overridable
for sensitivity sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cost.counters import PerfCounters
from repro.hardware import bitslice
from repro.hardware.config import PIMArrayConfig
from repro.hardware.mapper import DatasetLayout


@dataclass(frozen=True)
class EnergyModel:
    """Per-event energy prices (Joules)."""

    cpu_flop_j: float = 6.0e-12  # ~6 pJ per double-precision op
    dram_byte_j: float = 2.0e-11  # ~20 pJ/byte off-chip access
    reram_read_byte_j: float = 1.5e-11  # slightly cheaper reads
    branch_j: float = 1.0e-11
    adc_conversion_j: float = 2.0e-12  # ISAAC-class 8-bit ADC
    dac_drive_j: float = 1.0e-13  # per row per input wave
    cell_read_j: float = 1.0e-15  # per cell per cycle (analog MAC)
    shift_add_j: float = 5.0e-14  # per partial combined
    buffer_byte_j: float = 1.0e-12  # eDRAM buffer write+read
    reram_write_bit_j: float = 1.0e-13  # Table 1
    # HBM-PIM (bank-level digital MAC) prices
    row_activation_j: float = 1.0e-9  # one DRAM row activate+precharge
    bank_mac_j: float = 4.0e-13  # one burst-wide MAC command per bank
    burst_read_j: float = 3.0e-12  # one 32 B burst out of the open row
    dram_write_bit_j: float = 1.0e-14  # Table 1 (DRAM)

    # ------------------------------------------------------------------
    # host side
    # ------------------------------------------------------------------
    def cpu_energy_j(
        self, counters: PerfCounters, reram_memory: bool = False
    ) -> float:
        """Host energy of one run's recorded events."""
        total = counters.total()
        byte_price = (
            self.reram_read_byte_j if reram_memory else self.dram_byte_j
        )
        return (
            total.flops * self.cpu_flop_j
            + total.bytes_from_memory * byte_price
            + total.branches * self.branch_j
        )

    # ------------------------------------------------------------------
    # PIM side
    # ------------------------------------------------------------------
    def wave_energy_j(
        self,
        layout: DatasetLayout,
        config: PIMArrayConfig,
        input_bits: int | None = None,
    ) -> float:
        """Energy of one dot-product wave over a programmed layout."""
        bits = input_bits if input_bits is not None else config.operand_bits
        input_cycles = bitslice.num_slices(bits, config.crossbar.dac_bits)
        rows = min(layout.dims, config.crossbar.rows)
        slices = bitslice.num_slices(
            config.operand_bits, config.crossbar.cell_bits
        )
        columns_active = layout.n_vectors * slices
        dac_j = input_cycles * rows * layout.n_data_crossbars * self.dac_drive_j
        cells_j = (
            input_cycles
            * rows
            * columns_active
            * self.cell_read_j
        )
        adc_j = input_cycles * columns_active * self.adc_conversion_j
        sa_j = columns_active * input_cycles * self.shift_add_j
        buffer_j = (
            layout.n_vectors * config.accumulator_bits / 8.0
        ) * self.buffer_byte_j
        return dac_j + cells_j + adc_j + sa_j + buffer_j

    def programming_energy_j(self, layout: DatasetLayout) -> float:
        """ReRAM write energy to program a layout's payload."""
        return layout.storage_bits * self.reram_write_bit_j

    def pim_energy_j(
        self,
        layout: DatasetLayout,
        config: PIMArrayConfig,
        n_waves: int,
        input_bits: int | None = None,
    ) -> float:
        """Energy of ``n_waves`` waves against one programmed layout."""
        return n_waves * self.wave_energy_j(layout, config, input_bits)

    # ------------------------------------------------------------------
    # HBM-PIM side (bank-level digital MACs; no DAC/ADC terms)
    # ------------------------------------------------------------------
    def hbm_wave_energy_j(self, layout, n_queries: int = 1) -> float:
        """Energy of one batched wave on the banked substrate.

        ``layout`` is a :class:`~repro.hardware.banked_memory.BankLayout`;
        the command mix comes from
        :func:`~repro.hardware.banked_memory.bank_instruction_counts`, so
        the energy is priced on exactly the instructions the reference
        executor runs: row activates (shared across the batch), one burst
        read + one MAC per streamed burst per bank, and the accumulator
        drain through the buffer.
        """
        from repro.hardware.banked_memory import bank_instruction_counts

        counts = bank_instruction_counts(layout, n_queries)
        banks = layout.n_data_banks
        activates_j = counts["row_activations"] * banks * self.row_activation_j
        mac_j = counts["mac_commands"] * banks * self.bank_mac_j
        reads_j = counts["mac_commands"] * banks * self.burst_read_j
        drain_j = (
            n_queries
            * layout.n_vectors
            * 8.0  # int64 accumulators
            * self.buffer_byte_j
        )
        return activates_j + mac_j + reads_j + drain_j

    def hbm_programming_energy_j(self, layout) -> float:
        """DRAM write energy to program a banked layout's payload."""
        return layout.storage_bits * self.dram_write_bit_j


def movement_to_compute_ratio(model: EnergyModel) -> float:
    """Energy of one DRAM cache-line fetch vs one flop.

    The paper's motivation (its citation [21]) puts data movement at
    ~200x the cost of floating-point computation; with the default
    prices this model gives 64 B * 20 pJ/B / 6 pJ = ~213x.
    """
    return 64.0 * model.dram_byte_j / model.cpu_flop_j
