"""Bit-slicing of integer operands for crossbar storage (paper Fig. 2).

A ReRAM cell stores only ``h`` bits (typically 2), so a ``b``-bit operand
is split into ``ceil(b/h)`` slices stored in adjacent cells of the same
row. Symmetrically, an input (multiplicand) is fed to the DACs ``g`` bits
at a time over several cycles. The exact dot product is recovered by the
shift-and-add (S&A) unit:

``x = sum_j slice_j * 2**(j*h)``  and similarly for inputs, so

``p . q = sum_{j,k} (P_j . Q_k) * 2**(j*h + k*g)``

where ``P_j`` is the matrix of j-th operand slices and ``Q_k`` the k-th
input slice. All helpers operate on NumPy integer arrays and are the
single source of truth used by :class:`repro.hardware.crossbar.Crossbar`.

The public helpers are fully vectorised (broadcast shifts and one
weight contraction instead of per-slice Python loops); the original
loop implementations are kept as ``*_reference`` oracles. Both compute
in 64-bit wrap-around (mod 2**64) arithmetic, which is associative and
commutative, so the two always agree bit for bit — the fusion property
suite asserts exactly that.
"""

from __future__ import annotations

import numpy as np

from repro.errors import OperandError


def check_non_negative_integers(values: np.ndarray, bits: int) -> None:
    """Validate that ``values`` are PIM-compatible operands.

    ReRAM analog computation only supports non-negative integers of
    limited width; anything else raises :class:`OperandError`.
    """
    if not np.issubdtype(np.asarray(values).dtype, np.integer):
        raise OperandError("PIM operands must have an integer dtype")
    if values.size and int(values.min()) < 0:
        raise OperandError("PIM operands must be non-negative")
    if values.size and int(values.max()) >= (1 << bits):
        raise OperandError(
            f"PIM operand exceeds {bits}-bit width: max={int(values.max())}"
        )


def num_slices(operand_bits: int, slice_bits: int) -> int:
    """Number of ``slice_bits``-wide slices needed for ``operand_bits``."""
    if operand_bits <= 0 or slice_bits <= 0:
        raise OperandError("bit widths must be positive")
    return -(-operand_bits // slice_bits)


def slice_operands(values: np.ndarray, operand_bits: int, slice_bits: int) -> np.ndarray:
    """Split integers into little-endian slices of ``slice_bits`` each.

    Parameters
    ----------
    values:
        Integer array of any shape, each value < ``2**operand_bits``.
    operand_bits:
        Declared operand width ``b``.
    slice_bits:
        Cell (or DAC) precision ``h``.

    Returns
    -------
    numpy.ndarray
        Array of shape ``values.shape + (num_slices,)`` where slice ``j``
        holds bits ``[j*h, (j+1)*h)`` of the original value.
    """
    values = np.asarray(values)
    check_non_negative_integers(values, operand_bits)
    n = num_slices(operand_bits, slice_bits)
    mask = np.uint64((1 << slice_bits) - 1)
    work = values.astype(np.uint64)
    shifts = np.arange(n, dtype=np.uint64) * np.uint64(slice_bits)
    return (work[..., np.newaxis] >> shifts) & mask


def slice_operands_reference(
    values: np.ndarray, operand_bits: int, slice_bits: int
) -> np.ndarray:
    """Loop oracle for :func:`slice_operands` (one shift per slice)."""
    values = np.asarray(values)
    check_non_negative_integers(values, operand_bits)
    n = num_slices(operand_bits, slice_bits)
    mask = (1 << slice_bits) - 1
    work = values.astype(np.uint64)
    slices = np.empty(values.shape + (n,), dtype=np.uint64)
    for j in range(n):
        slices[..., j] = (work >> np.uint64(j * slice_bits)) & np.uint64(mask)
    return slices


def reconstruct(slices: np.ndarray, slice_bits: int) -> np.ndarray:
    """Inverse of :func:`slice_operands`: shift-and-add slices back.

    The last axis of ``slices`` is the slice axis. Addition wraps mod
    2**64, so the vectorised reduction is bit-identical to the
    sequential loop for any summation order.
    """
    slices = np.asarray(slices, dtype=np.uint64)
    n = slices.shape[-1]
    shifts = np.arange(n, dtype=np.uint64) * np.uint64(slice_bits)
    return np.asarray((slices << shifts).sum(axis=-1, dtype=np.uint64))


def reconstruct_reference(slices: np.ndarray, slice_bits: int) -> np.ndarray:
    """Loop oracle for :func:`reconstruct`."""
    slices = np.asarray(slices, dtype=np.uint64)
    n = slices.shape[-1]
    total = np.zeros(slices.shape[:-1], dtype=np.uint64)
    for j in range(n):
        total += slices[..., j] << np.uint64(j * slice_bits)
    return total


def _shift_weights(
    n_op: int, n_in: int, operand_slice_bits: int, input_slice_bits: int
) -> np.ndarray:
    """``2**(j*h + k*g)`` weight matrix of the S&A unit, mod 2**64."""
    shifts = (
        np.arange(n_op, dtype=np.uint64)[:, np.newaxis]
        * np.uint64(operand_slice_bits)
        + np.arange(n_in, dtype=np.uint64)[np.newaxis, :]
        * np.uint64(input_slice_bits)
    )
    return np.uint64(1) << shifts


def shift_add_partials(
    partials: np.ndarray, operand_slice_bits: int, input_slice_bits: int
) -> np.ndarray:
    """Combine per-(operand-slice, input-slice) dot-product partials.

    ``partials`` has shape ``(n_operand_slices, n_input_slices, ...)`` and
    entry ``[j, k]`` is the integer dot product of the j-th operand slice
    matrix with the k-th input slice vector. The combined exact result is
    ``sum_{j,k} partials[j, k] << (j*h + k*g)`` — exactly what the S&A
    circuit of Fig. 2 produces.

    Implemented as one contraction with the ``2**(j*h+k*g)`` weight
    matrix: ``x << s == x * 2**s (mod 2**64)``, and mod-2**64 arithmetic
    is a commutative ring, so this matches the shift-and-accumulate loop
    bit for bit.
    """
    partials = np.asarray(partials, dtype=np.int64)
    if partials.ndim < 2:
        raise OperandError("partials must have operand- and input-slice axes")
    n_op, n_in = partials.shape[0], partials.shape[1]
    weights = _shift_weights(
        n_op, n_in, operand_slice_bits, input_slice_bits
    ).reshape(n_op * n_in)
    flat = partials.astype(np.uint64).reshape((n_op * n_in,) + partials.shape[2:])
    total = np.tensordot(weights, flat, axes=([0], [0]))
    # ascontiguousarray promotes 0-d to 1-d; reshape restores the rank
    out = np.ascontiguousarray(total).view(np.int64)
    return out.reshape(partials.shape[2:])


def shift_add_partials_reference(
    partials: np.ndarray, operand_slice_bits: int, input_slice_bits: int
) -> np.ndarray:
    """Loop oracle for :func:`shift_add_partials` (per-partial shifts)."""
    partials = np.asarray(partials, dtype=np.int64)
    if partials.ndim < 2:
        raise OperandError("partials must have operand- and input-slice axes")
    total = np.zeros(partials.shape[2:], dtype=np.int64)
    n_op, n_in = partials.shape[0], partials.shape[1]
    for j in range(n_op):
        for k in range(n_in):
            shift = j * operand_slice_bits + k * input_slice_bits
            total += partials[j, k] << np.int64(shift)
    return total


def truncate_result(values: np.ndarray, accumulator_bits: int) -> np.ndarray:
    """Keep the least-significant ``accumulator_bits`` of PIM results.

    The paper keeps the least-significant 64 bits of dot-product results
    (32 bits for binary codes) to match the host word width.
    """
    if accumulator_bits >= 64:
        return np.asarray(values, dtype=np.int64)
    mask = np.uint64((1 << accumulator_bits) - 1)
    return (np.asarray(values).astype(np.uint64) & mask).astype(np.int64)
