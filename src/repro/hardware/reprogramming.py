"""Chunked crossbar re-programming for oversized datasets.

The paper's first future-work item: when a dataset does not fit the PIM
array even after Theorem 4 compression, the crossbars must be
re-programmed chunk by chunk — paying ReRAM's slow writes on every swap
and, worse, consuming the device's limited write endurance (Table 1).
Section V-C prefers compression precisely to avoid this.

:class:`ChunkedDotProductEngine` implements the naive scheme so its cost
can be measured: the dataset is partitioned into resident-size chunks;
each query wave iterates the chunks, re-programming the array whenever
the needed chunk is not resident. Two policies are provided:

* ``round_robin`` — every query touches every chunk in order (a full
  scan), so each query pays ``n_chunks - 1`` re-programmings;
* ``pinned`` — the first chunk stays resident and only the remainder
  swaps, modelling a hot-set split.

The engine reports per-query latency, cumulative write counts, and the
projected device lifetime in queries — the numbers behind the paper's
"avoid re-programming" design rule.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import CapacityError, ConfigurationError, OperandError
from repro.hardware.config import HardwareConfig, PIMArrayConfig, pim_platform
from repro.hardware.mapper import DatasetLayout, plan_layout
from repro.hardware.memory import MemoryArray
from repro.hardware.pim_array import PIMArray
from repro.hardware.timing import programming_time_ns, wave_timing
from repro.telemetry import get_recorder

POLICIES = ("round_robin", "pinned")


def crossbar_reprogram_ns(
    layout: DatasetLayout, config: PIMArrayConfig
) -> float:
    """Latency of rewriting ONE crossbar of a programmed layout.

    Programming a layout writes all of its crossbars concurrently-ish in
    the timing model, so the per-crossbar remap cost is the layout's
    programming time spread over its crossbar count. The repair layer
    charges this when a stuck or dead crossbar is remapped onto a spare.
    """
    return programming_time_ns(layout, config) / max(layout.n_crossbars, 1)


@dataclass
class ReprogrammingStats:
    """Cumulative accounting of a chunked engine."""

    queries: int = 0
    reprogrammings: int = 0
    programming_time_ns: float = 0.0
    wave_time_ns: float = 0.0

    @property
    def total_time_ns(self) -> float:
        """Programming plus wave time."""
        return self.programming_time_ns + self.wave_time_ns


class ChunkedDotProductEngine:
    """Dot products of a query against a dataset larger than the array.

    Parameters
    ----------
    hardware:
        PIM platform (Table 5 defaults).
    policy:
        ``"round_robin"`` or ``"pinned"``.
    """

    def __init__(
        self,
        hardware: HardwareConfig | None = None,
        policy: str = "round_robin",
    ) -> None:
        if policy not in POLICIES:
            raise ConfigurationError(
                f"unknown policy {policy!r}; expected one of {POLICIES}"
            )
        self.hardware = hardware if hardware is not None else pim_platform()
        self.policy = policy
        self.pim = PIMArray(self.hardware)
        self.memory = MemoryArray(self.hardware.memory, device="reram")
        self.stats = ReprogrammingStats()
        self._data: np.ndarray | None = None
        self._chunks: list[np.ndarray] = []
        self._resident: int | None = None

    # ------------------------------------------------------------------
    @property
    def n_chunks(self) -> int:
        """Number of dataset chunks."""
        return len(self._chunks)

    def load(self, data: np.ndarray) -> int:
        """Partition ``data`` into resident-size chunks.

        Returns the chunk count. A dataset that fits entirely yields a
        single chunk (no re-programming ever happens).
        """
        data = np.ascontiguousarray(data)
        if data.ndim != 2:
            raise OperandError("load() expects a (vectors x dims) matrix")
        n, dims = data.shape
        config = self.pim.config
        chunk_rows = self._max_resident_vectors(dims)
        if chunk_rows <= 0:
            raise CapacityError(
                f"not even one {dims}-dimensional vector fits the array"
            )
        n_chunks = math.ceil(n / chunk_rows)
        self._data = data
        self._chunks = [
            data[i * chunk_rows : (i + 1) * chunk_rows]
            for i in range(n_chunks)
        ]
        self._resident = None
        self.stats = ReprogrammingStats()
        return n_chunks

    def _max_resident_vectors(self, dims: int) -> int:
        """Largest chunk cardinality the array holds at ``dims``."""
        from repro.core.memory_manager import max_vectors_at_dims

        try:
            return max_vectors_at_dims(dims, self.pim.config)
        except CapacityError:
            return 0

    # ------------------------------------------------------------------
    def _make_resident(self, chunk_id: int) -> None:
        if self._resident == chunk_id:
            return
        swapped_out = self._resident
        chunk = self._chunks[chunk_id]
        tele = get_recorder()
        span = (
            tele.begin_span(
                "pim.reprogram", "pim_reprogram",
                chunk=chunk_id, evicted=swapped_out, policy=self.policy,
            )
            if tele.enabled
            else None
        )
        if self._resident is not None:
            self.pim.reset_matrix("chunk")
        # program_matrix advances the simulated clock by the crossbar
        # write time itself (nested pim.program span); only the memory
        # array read feeding the programming is charged here.
        self.pim.program_matrix("chunk", chunk)
        layout = plan_layout(
            chunk.shape[0], chunk.shape[1], self.pim.config
        )
        self.stats.reprogrammings += 1
        read_ns = self.memory.read_time_ns(chunk.nbytes)
        self.stats.programming_time_ns += programming_time_ns(
            layout, self.pim.config
        ) + read_ns
        self._resident = chunk_id
        if span is not None:
            tele.advance(read_ns)
            tele.end_span()
            tele.metrics.counter("reprogram.events").add(1)
            if swapped_out is not None:
                tele.metrics.counter("reprogram.evictions").add(1)
            tele.metrics.gauge("reprogram.resident_chunk").set(chunk_id)

    def dot_products_all(self, query: np.ndarray) -> np.ndarray:
        """Dot products of ``query`` with every vector of the dataset.

        Iterates the chunks; a chunk swap re-programs the array and is
        charged against latency and endurance.
        """
        if self._data is None:
            raise OperandError("load() must run before queries")
        query = np.asarray(query)
        outputs: list[tuple[int, np.ndarray]] = []
        order = list(range(self.n_chunks))
        if self.policy == "pinned" and self._resident is not None:
            # start with whatever is already resident: saves one
            # re-programming per query versus always starting at chunk 0
            resident = self._resident
            order = [resident] + [c for c in order if c != resident]
        for chunk_id in order:
            self._make_resident(chunk_id)
            result = self.pim.query("chunk", query)
            self.stats.wave_time_ns += result.timing.total_ns
            outputs.append((chunk_id, result.values))
        self.stats.queries += 1
        outputs.sort(key=lambda pair: pair[0])
        return np.concatenate([values for _, values in outputs])

    # ------------------------------------------------------------------
    def writes_per_query(self) -> float:
        """Average crossbar re-programmings one query costs."""
        if self.stats.queries == 0:
            return 0.0
        return self.stats.reprogrammings / self.stats.queries

    def projected_lifetime_queries(self) -> float:
        """Queries until the most-worn crossbar hits its endurance.

        With one write cycle per re-programming per crossbar, lifetime
        is ``endurance / writes_per_query`` — effectively infinite for a
        single-chunk (fully resident) dataset.
        """
        wpq = self.writes_per_query()
        if wpq == 0.0:
            return float("inf")
        return self.pim.config.crossbar.endurance / wpq

    def amortized_query_time_ns(self) -> float:
        """Average end-to-end time per query, swaps included."""
        if self.stats.queries == 0:
            return 0.0
        return self.stats.total_time_ns / self.stats.queries
