"""Quartz-style CPU performance emulation.

Quartz (Volos et al., Middleware'15) estimates application time on a
hypothetical NVM-backed machine by injecting software delays proportional
to the memory accesses of each epoch. We reproduce the idea analytically:
an *epoch* is a bundle of work described by operation counts, and the
emulator converts it to time on a platform whose last-level misses are
serviced by either DRAM or the ReRAM memory array.

The mining algorithms never call this directly — they record counters and
:mod:`repro.cost.model` calls :func:`epoch_time_ns` per function. Keeping
the formula here mirrors the paper's NVSim (PIM side) / Quartz (CPU side)
split.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.config import CPUConfig


@dataclass(frozen=True)
class Epoch:
    """One bundle of CPU work.

    Attributes
    ----------
    flops:
        Useful arithmetic operations (adds/multiplies) retired.
    bytes_from_memory:
        Bytes whose cache lines must be fetched from main memory
        (i.e. beyond what the last-level cache retains).
    bytes_cached:
        Bytes served from cache (charged only L1-hit streaming cost,
        folded into ``flops`` throughput, so they add no stall time).
    long_ops:
        Long-latency ALU operations (division, sqrt).
    branches:
        Conditional branches executed.
    branch_mispredict_rate:
        Fraction of ``branches`` that mispredict.
    """

    flops: float = 0.0
    bytes_from_memory: float = 0.0
    bytes_cached: float = 0.0
    long_ops: float = 0.0
    branches: float = 0.0
    branch_mispredict_rate: float = 0.02


#: Cycles a long-latency ALU op (division/sqrt) stalls the pipeline.
LONG_OP_STALL_CYCLES = 20.0
#: Fraction of the busy time lost to instruction fetch/decode stalls;
#: Intel's top-down method attributes a small constant share to the
#: front end for streaming kernels.
FRONTEND_FRACTION = 0.05
#: Memory-level parallelism: outstanding misses overlap, so the effective
#: per-line stall is the raw latency divided by this factor.
MEMORY_LEVEL_PARALLELISM = 4.0


@dataclass(frozen=True)
class EpochTime:
    """Per-component times of one epoch (paper Eq. 1)."""

    compute_ns: float
    cache_ns: float
    alu_ns: float
    branch_ns: float
    frontend_ns: float

    @property
    def total_ns(self) -> float:
        """T_total = T_c + T_cache + T_ALU + T_Br + T_Fe."""
        return (
            self.compute_ns
            + self.cache_ns
            + self.alu_ns
            + self.branch_ns
            + self.frontend_ns
        )


def epoch_time_ns(
    epoch: Epoch, cpu: CPUConfig, miss_latency_ns: float
) -> EpochTime:
    """Convert an epoch to the five time components of paper Eq. 1.

    Parameters
    ----------
    epoch:
        The work description.
    cpu:
        Host-processor model.
    miss_latency_ns:
        Latency of one last-level miss on this platform
        (:attr:`CPUConfig.dram_miss_latency_ns` or the ReRAM variant).
    """
    compute_ns = epoch.flops * cpu.seconds_per_flop * 1e9
    lines = epoch.bytes_from_memory / cpu.cache_line_bytes
    cache_ns = lines * miss_latency_ns / MEMORY_LEVEL_PARALLELISM
    alu_ns = (
        epoch.long_ops * LONG_OP_STALL_CYCLES / cpu.frequency_hz * 1e9
    )
    branch_ns = (
        epoch.branches
        * epoch.branch_mispredict_rate
        * cpu.branch_mispredict_penalty_ns
    )
    frontend_ns = FRONTEND_FRACTION * compute_ns
    return EpochTime(
        compute_ns=compute_ns,
        cache_ns=cache_ns,
        alu_ns=alu_ns,
        branch_ns=branch_ns,
        frontend_ns=frontend_ns,
    )
