"""Instruction-level trace of the PIM controller.

The controller is "the instruction interface between software and
hardware" (paper Fig. 4b). This module defines the small instruction
set that interface needs and a recorder that captures the instruction
stream a workload issues — useful for debugging dataflow, for checking
that the offline/online split behaves (no PROGRAM instructions during
the online phase), and for replaying a trace against a fresh device.

Instruction set:

=============  ========================================================
``PROGRAM``    write an operand matrix onto crossbars (offline stage)
``STORE``      write pre-computed side data into the memory array
``COMPUTE``    fire one dot-product wave (one query vector)
``READBUF``    drain wave results from the buffer array to the host
``RESET``      erase a programmed matrix (re-programming; wears cells)
=============  ========================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import OperandError
from repro.hardware.controller import PIMController
from repro.hardware.pim_array import PIMQueryResult

OPCODES = ("PROGRAM", "STORE", "COMPUTE", "READBUF", "RESET")


@dataclass(frozen=True)
class Instruction:
    """One controller instruction."""

    opcode: str
    target: str
    payload_bytes: float = 0.0
    detail: str = ""

    def __post_init__(self) -> None:
        if self.opcode not in OPCODES:
            raise OperandError(
                f"unknown opcode {self.opcode!r}; one of {OPCODES}"
            )


@dataclass
class InstructionTrace:
    """An ordered instruction stream with summary queries."""

    instructions: list[Instruction] = field(default_factory=list)

    def append(self, instruction: Instruction) -> None:
        self.instructions.append(instruction)

    def __len__(self) -> int:
        return len(self.instructions)

    def count(self, opcode: str) -> int:
        """Instructions of one opcode."""
        return sum(1 for i in self.instructions if i.opcode == opcode)

    def payload_bytes(self, opcode: str | None = None) -> float:
        """Total payload moved (optionally for one opcode)."""
        return sum(
            i.payload_bytes
            for i in self.instructions
            if opcode is None or i.opcode == opcode
        )

    def offline_online_split(self) -> tuple[int, int]:
        """(index of the first online instruction, total length).

        The offline stage is the PROGRAM/STORE prefix; the first
        COMPUTE/READBUF marks the online stage.
        """
        for idx, instruction in enumerate(self.instructions):
            if instruction.opcode in ("COMPUTE", "READBUF"):
                return idx, len(self.instructions)
        return len(self.instructions), len(self.instructions)

    def is_well_formed(self) -> bool:
        """Every COMPUTE targets a previously programmed (live) matrix
        and is followed eventually by a READBUF of the same target."""
        live: set[str] = set()
        pending: list[str] = []
        for instruction in self.instructions:
            if instruction.opcode == "PROGRAM":
                live.add(instruction.target)
            elif instruction.opcode == "RESET":
                live.discard(instruction.target)
            elif instruction.opcode == "COMPUTE":
                if instruction.target not in live:
                    return False
                pending.append(instruction.target)
            elif instruction.opcode == "READBUF":
                if not pending or pending[0] != instruction.target:
                    return False
                pending.pop(0)
        return not pending


class TracingPIMController(PIMController):
    """A controller that records its instruction stream.

    Drop-in for :class:`~repro.hardware.controller.PIMController`; every
    bound/algorithm built on it leaves a full trace in :attr:`trace`.
    """

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.trace = InstructionTrace()

    def program(self, name, matrix, side_data_bytes: float = 0.0):
        receipt = super().program(name, matrix, side_data_bytes)
        matrix = np.asarray(matrix)
        self.trace.append(
            Instruction(
                "PROGRAM",
                name,
                payload_bytes=float(matrix.size)
                * self.pim.config.operand_bits
                / 8.0,
                detail=f"{matrix.shape[0]}x{matrix.shape[1]}",
            )
        )
        if side_data_bytes:
            self.trace.append(
                Instruction("STORE", name, payload_bytes=side_data_bytes)
            )
        return receipt

    def _record_wave(self, name: str, result: PIMQueryResult, waves: int):
        self.trace.append(
            Instruction("COMPUTE", name, detail=f"{waves} wave(s)")
        )
        self.trace.append(
            Instruction(
                "READBUF",
                name,
                payload_bytes=float(result.values.size)
                * self.pim.config.accumulator_bits
                / 8.0,
            )
        )

    def dot_products(self, name, query, input_bits=None):
        result = super().dot_products(name, query, input_bits=input_bits)
        self._record_wave(name, result, waves=1)
        return result

    def dot_products_many(self, name, queries, input_bits=None):
        result = super().dot_products_many(
            name, queries, input_bits=input_bits
        )
        self._record_wave(
            name, result, waves=int(np.atleast_2d(queries).shape[0])
        )
        return result

    def dot_products_batch(self, name, queries, input_bits=None):
        result = super().dot_products_batch(
            name, queries, input_bits=input_bits
        )
        n = int(np.atleast_2d(queries).shape[0])
        self.trace.append(
            Instruction("COMPUTE", name, detail=f"batch of {n}")
        )
        self.trace.append(
            Instruction(
                "READBUF",
                name,
                payload_bytes=float(result.values.size)
                * self.pim.config.accumulator_bits
                / 8.0,
            )
        )
        return result

    def reset_matrix(self, name: str) -> None:
        """Erase a matrix and record the RESET."""
        self.pim.reset_matrix(name)
        self.trace.append(Instruction("RESET", name))


def replay(
    trace: InstructionTrace,
    matrices: dict[str, np.ndarray],
    queries: dict[str, list[np.ndarray]],
    controller: PIMController,
) -> list[np.ndarray]:
    """Re-execute a trace against a fresh controller.

    ``matrices`` maps PROGRAM targets to their operand matrices and
    ``queries`` maps COMPUTE targets to the query vectors in issue
    order. Returns the READBUF payloads (wave results) in order —
    replaying a trace on an identical device must reproduce the exact
    same results, which tests assert.
    """
    results: list[np.ndarray] = []
    query_cursor = {name: 0 for name in queries}
    for instruction in trace.instructions:
        if instruction.opcode == "PROGRAM":
            controller.program(
                instruction.target, matrices[instruction.target]
            )
        elif instruction.opcode == "COMPUTE":
            name = instruction.target
            cursor = query_cursor[name]
            result = controller.dot_products(name, queries[name][cursor])
            query_cursor[name] += 1
            results.append(result.values)
        elif instruction.opcode == "RESET":
            controller.pim.reset_matrix(instruction.target)
    return results
