"""Dataset-to-crossbar mapping and crossbar-cost equations (Theorem 4).

The PIM array is a pool of ``C`` crossbars of ``m x m`` cells at ``h``-bit
precision. Programming an ``N x s`` matrix of ``b``-bit operands uses:

* **data crossbars** — each vector occupies ``ceil(b/h)`` adjacent columns
  and ``min(s, m)`` rows, so one crossbar stores ``floor(m*h/b)`` vectors
  over ``m`` dimensions; a vector with ``s > m`` spans ``ceil(s/m)``
  stacked data crossbars (Fig. 3);
* **gather crossbars** — when ``s > m`` the per-crossbar partial results
  are summed by a tree of crossbars programmed with all-ones vectors;
  level ``i`` of the tree needs ``ceil(s / m**i)`` crossbars per vector
  group (Eq. 11/12 of the paper).

:func:`crossbars_for_vector_pair`, :func:`data_crossbars` and
:func:`gather_crossbars` implement Eqs. 11-12; :class:`DatasetLayout`
packages a concrete mapping used by :class:`repro.hardware.pim_array.PIMArray`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import CapacityError, ConfigurationError
from repro.hardware.config import PIMArrayConfig


def gather_tree_levels(dims: int, rows: int) -> int:
    """Depth of the gather tree for ``dims``-dimensional vectors.

    Level 1 is the data-crossbar layer; each further level divides the
    partial count by ``rows`` until a single value remains. Returns 1 when
    no gathering is needed (``dims <= rows``).
    """
    if dims <= 0 or rows <= 0:
        raise ConfigurationError("dims and rows must be positive")
    levels = 1
    remaining = math.ceil(dims / rows)
    while remaining > 1:
        levels += 1
        remaining = math.ceil(remaining / rows)
    return levels


def crossbars_for_vector_pair(dims: int, rows: int) -> int:
    """Crossbar cost of one dot product on ``dims``-dim vectors (Eq. 11).

    For ``dims <= rows`` a single (fraction of a) crossbar suffices and the
    cost is 1; otherwise the data layer plus every gather level is counted.
    """
    if dims <= rows:
        return 1
    return _pair_cost(dims, rows)


def _pair_cost(dims: int, rows: int) -> int:
    """Sum of ceil(dims / rows**i) over tree levels i=1..depth."""
    total = 0
    level = 1
    while True:
        count = math.ceil(dims / rows**level)
        total += count
        if count <= 1:
            break
        level += 1
    return total


def vectors_per_crossbar(config: PIMArrayConfig) -> int:
    """How many operand vectors share one data crossbar's columns."""
    per = config.crossbar.cols // config.slices_per_operand
    if per <= 0:
        raise CapacityError(
            "operand too wide: one vector does not fit a crossbar row"
        )
    return per


def data_crossbars(n_vectors: int, dims: int, config: PIMArrayConfig) -> int:
    """Number of data crossbars for an ``n_vectors x dims`` matrix (Eq. 12)."""
    if n_vectors <= 0 or dims <= 0:
        raise ConfigurationError("matrix shape must be positive")
    groups = math.ceil(n_vectors / vectors_per_crossbar(config))
    return groups * math.ceil(dims / config.crossbar.rows)


def gather_crossbars(n_vectors: int, dims: int, config: PIMArrayConfig) -> int:
    """Number of gather crossbars for the same matrix (Eq. 12).

    Zero when ``dims <= rows`` (no partials to merge).
    """
    rows = config.crossbar.rows
    if dims <= rows:
        return 0
    groups = math.ceil(n_vectors / vectors_per_crossbar(config))
    per_group = 0
    level = 2
    while True:
        count = math.ceil(dims / rows**level)
        if count < 1:
            count = 1
        per_group += count
        if count <= 1:
            break
        level += 1
    return groups * per_group


def total_crossbars(n_vectors: int, dims: int, config: PIMArrayConfig) -> int:
    """Data plus gather crossbars needed to host the matrix."""
    return data_crossbars(n_vectors, dims, config) + gather_crossbars(
        n_vectors, dims, config
    )


def fits(n_vectors: int, dims: int, config: PIMArrayConfig) -> bool:
    """Whether the matrix fits the PIM array without re-programming."""
    return total_crossbars(n_vectors, dims, config) <= config.num_crossbars


def reserve_spares(config: PIMArrayConfig, spare_crossbars: int) -> int:
    """Validate a spare-crossbar reservation; returns the usable pool size.

    The repair layer withholds ``spare_crossbars`` crossbars from data
    placement so a stuck or dead crossbar can be remapped onto a fresh
    one without evicting a dataset. The reservation must leave at least
    one crossbar for data.
    """
    if spare_crossbars < 0:
        raise ConfigurationError("spare_crossbars must be non-negative")
    usable = config.num_crossbars - spare_crossbars
    if usable <= 0:
        raise CapacityError(
            f"reserving {spare_crossbars} spares leaves no data crossbars "
            f"(array has {config.num_crossbars})"
        )
    return usable


def max_dimensionality(
    n_vectors: int,
    upper: int,
    config: PIMArrayConfig,
    candidates: list[int] | None = None,
) -> int:
    """Largest dimensionality ``s <= upper`` that fits (Theorem 4).

    Parameters
    ----------
    n_vectors:
        Dataset cardinality ``N``.
    upper:
        Original (or maximum useful) dimensionality ``d``.
    config:
        PIM array description.
    candidates:
        Optional restricted candidate set (e.g. divisors of ``d`` so that
        FNN-style segmentation produces equal-length segments). Defaults
        to every value in ``1..upper``.

    Returns
    -------
    int
        The chosen ``s``.

    Raises
    ------
    CapacityError
        When even ``s = 1`` does not fit.
    """
    pool = sorted(candidates) if candidates is not None else None
    if pool is not None:
        options = [s for s in pool if 1 <= s <= upper]
    else:
        options = list(range(1, upper + 1))
    best = 0
    for s in options:
        if fits(n_vectors, s, config):
            best = max(best, s)
    if best == 0:
        raise CapacityError(
            f"no dimensionality in 1..{upper} fits {n_vectors} vectors on "
            f"{config.num_crossbars} crossbars"
        )
    return best


@dataclass(frozen=True)
class DatasetLayout:
    """Concrete placement of an ``n_vectors x dims`` matrix on the array.

    Attributes mirror the quantities of Theorem 4 plus the cycle counts
    the timing model charges per dot-product wave.
    """

    n_vectors: int
    dims: int
    operand_bits: int
    vectors_per_crossbar: int
    n_data_crossbars: int
    n_gather_crossbars: int
    gather_levels: int

    @property
    def n_crossbars(self) -> int:
        """Total crossbars occupied."""
        return self.n_data_crossbars + self.n_gather_crossbars

    @property
    def storage_bits(self) -> int:
        """Payload bits programmed (excluding gather all-ones vectors)."""
        return self.n_vectors * self.dims * self.operand_bits


def plan_layout(
    n_vectors: int, dims: int, config: PIMArrayConfig
) -> DatasetLayout:
    """Compute the layout of a matrix, validating capacity.

    Raises
    ------
    CapacityError
        If the matrix does not fit the configured PIM array.
    """
    ndata = data_crossbars(n_vectors, dims, config)
    ngather = gather_crossbars(n_vectors, dims, config)
    if ndata + ngather > config.num_crossbars:
        raise CapacityError(
            f"matrix {n_vectors}x{dims} needs {ndata + ngather} crossbars, "
            f"array has {config.num_crossbars}; compress the dataset "
            f"(Theorem 4) or enlarge the PIM array"
        )
    return DatasetLayout(
        n_vectors=n_vectors,
        dims=dims,
        operand_bits=config.operand_bits,
        vectors_per_crossbar=vectors_per_crossbar(config),
        n_data_crossbars=ndata,
        n_gather_crossbars=ngather,
        gather_levels=gather_tree_levels(dims, config.crossbar.rows),
    )
