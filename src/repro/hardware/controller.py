"""Controller: the instruction interface between software and the module.

The controller (paper Fig. 4b) coordinates the dataflow between the
memory array, the PIM array and the buffer array. In this simulator it is
the convenience facade the mining layer uses:

* :meth:`PIMController.program` — offline stage: store the pre-computed
  scalar terms in the memory array (charging ReRAM write time) and
  program the integer matrix onto the crossbars;
* :meth:`PIMController.dot_products` — online stage: fire a wave and
  return the per-vector dot products together with the simulated time the
  wave and buffer drain took.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hardware.config import HardwareConfig, pim_platform
from repro.hardware.memory import MemoryArray
from repro.hardware.pim_array import PIMArray, PIMBatchResult, PIMQueryResult


@dataclass(frozen=True)
class ProgramReceipt:
    """Offline-stage accounting for one programmed dataset."""

    name: str
    crossbars: int
    crossbar_write_ns: float
    memory_write_ns: float

    @property
    def total_ns(self) -> float:
        """End-to-end pre-processing (write) time."""
        return self.crossbar_write_ns + self.memory_write_ns


class PIMController:
    """Facade coordinating memory array, compute substrate and buffer.

    ``substrate`` selects the memory-side compute backend by registry
    name (``"crossbar"``, ``"hbm_pim"``, ...). The default is the
    paper's crossbar array, constructed exactly as before; any other
    name is built through :func:`repro.substrate.create_substrate`, and
    side data is staged in the device class the backend's capability
    descriptor declares (ReRAM for crossbars, DRAM for HBM-PIM).
    """

    def __init__(
        self,
        hardware: HardwareConfig | None = None,
        simulate_cells: bool = False,
        noise=None,
        spare_crossbars: int = 0,
        reference: bool = False,
        substrate: str = "crossbar",
    ) -> None:
        self.hardware = hardware if hardware is not None else pim_platform()
        self.substrate = substrate
        memory_device = "reram"
        if noise is not None:
            if substrate != "crossbar":
                from repro.errors import ConfigurationError

                raise ConfigurationError(
                    "analog noise models apply to the crossbar substrate "
                    f"only, not {substrate!r}"
                )
            from repro.hardware.noise import NoisyPIMArray

            self.pim: PIMArray = NoisyPIMArray(self.hardware, noise)
        elif substrate == "crossbar":
            self.pim = PIMArray(
                self.hardware,
                simulate_cells=simulate_cells,
                spare_crossbars=spare_crossbars,
                reference=reference,
            )
        else:
            from repro.substrate import (
                create_substrate,
                substrate_capabilities,
            )

            self.pim = create_substrate(
                substrate,
                hardware=self.hardware,
                spare_units=spare_crossbars,
                reference=reference,
                simulate_cells=simulate_cells,
            )
            memory_device = substrate_capabilities(
                substrate, self.hardware
            ).memory_device
        self.noise = noise
        self.memory = MemoryArray(self.hardware.memory, device=memory_device)
        self._receipts: dict[str, ProgramReceipt] = {}

    def program(
        self,
        name: str,
        matrix: np.ndarray,
        side_data_bytes: float = 0.0,
    ) -> ProgramReceipt:
        """Offline stage: program ``matrix`` and store side data.

        Parameters
        ----------
        name:
            Matrix handle for later queries.
        matrix:
            Non-negative integer ``(n_vectors, dims)`` array.
        side_data_bytes:
            Pre-computed scalar terms (e.g. ``Phi(p)`` values) written to
            the memory array alongside the crossbar programming.
        """
        before = self.pim.stats.programming_time_ns
        layout = self.pim.program_matrix(name, matrix)
        crossbar_ns = self.pim.stats.programming_time_ns - before
        payload_bytes = layout.storage_bits / 8.0 + side_data_bytes
        memory_ns = self.memory.write_time_ns(payload_bytes)
        receipt = ProgramReceipt(
            name=name,
            crossbars=layout.n_crossbars,
            crossbar_write_ns=crossbar_ns,
            memory_write_ns=memory_ns,
        )
        self._receipts[name] = receipt
        return receipt

    def dot_products(
        self, name: str, query: np.ndarray, input_bits: int | None = None
    ) -> PIMQueryResult:
        """Online stage: one wave of ``query`` against matrix ``name``."""
        return self.pim.query(name, query, input_bits=input_bits)

    def dot_products_many(
        self, name: str, queries: np.ndarray, input_bits: int | None = None
    ) -> PIMQueryResult:
        """One wave per row of ``queries`` (batched dot_products)."""
        return self.pim.query_many(name, queries, input_bits=input_bits)

    def dot_products_batch(
        self, name: str, queries: np.ndarray, input_bits: int | None = None
    ) -> PIMBatchResult:
        """One *batched* wave covering every row of ``queries``.

        Values match :meth:`dot_products_many` bit for bit; the timing
        model charges one pipeline setup plus per-query increments.
        """
        return self.pim.query_batch(name, queries, input_bits=input_bits)

    def receipt(self, name: str) -> ProgramReceipt:
        """Pre-processing accounting recorded by :meth:`program`."""
        return self._receipts[name]

    def total_preprocessing_ns(self) -> float:
        """Sum of all programming receipts."""
        return sum(r.total_ns for r in self._receipts.values())
