"""NVSim-style latency model for PIM dot-product waves.

The paper measures PIM-side time with NVSim: the latency of computing a
PIM-aware bound on the crossbars plus buffering the results. We charge:

* ``ceil(b/g)`` crossbar read cycles for the DAC-sliced input waves
  (Fig. 2) — operand slices and columns are concurrent in the analog
  domain;
* a constant pipeline overhead for S&H -> ADC -> S&A drain;
* one extra read cycle per gather-tree level beyond the data layer
  (Fig. 3 / Fig. 11);
* buffer-write time for depositing the per-vector results into the
  eDRAM buffer array over the internal bus.

Every quantity is derived from :class:`~repro.hardware.config` values, so
changing the crossbar geometry or bus width in a bench sweep changes the
simulated times coherently.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware import bitslice
from repro.hardware.config import HardwareConfig, PIMArrayConfig
from repro.hardware.mapper import DatasetLayout

#: Cycles needed to drain the S&H/ADC/S&A pipeline after the last input wave.
PIPELINE_DRAIN_CYCLES = 2


@dataclass(frozen=True)
class WaveTiming:
    """Latency breakdown of one array-wide dot-product wave."""

    input_cycles: int
    gather_cycles: int
    pipeline_cycles: int
    crossbar_ns: float
    buffer_ns: float

    @property
    def total_cycles(self) -> int:
        """All crossbar read cycles charged for the wave."""
        return self.input_cycles + self.gather_cycles + self.pipeline_cycles

    @property
    def total_ns(self) -> float:
        """End-to-end wave latency in nanoseconds."""
        return self.crossbar_ns + self.buffer_ns


def wave_timing(
    layout: DatasetLayout,
    config: PIMArrayConfig,
    hardware: HardwareConfig,
    input_bits: int | None = None,
) -> WaveTiming:
    """Latency of one query wave against a programmed layout.

    A wave evaluates the dot product of one query vector against *every*
    programmed vector concurrently (the crossbars form a SIMD pool), then
    writes ``n_vectors`` accumulator-width results to the buffer array.
    """
    bits = input_bits if input_bits is not None else config.operand_bits
    input_cycles = bitslice.num_slices(bits, config.crossbar.dac_bits)
    gather_cycles = layout.gather_levels - 1
    cycles = input_cycles + gather_cycles + PIPELINE_DRAIN_CYCLES
    crossbar_ns = cycles * config.crossbar.read_latency_ns
    result_bytes = layout.n_vectors * config.accumulator_bits / 8.0
    buffer_ns = result_bytes / hardware.memory.internal_bus_gbs  # B / (GB/s) = ns
    return WaveTiming(
        input_cycles=input_cycles,
        gather_cycles=gather_cycles,
        pipeline_cycles=PIPELINE_DRAIN_CYCLES,
        crossbar_ns=crossbar_ns,
        buffer_ns=buffer_ns,
    )


@dataclass(frozen=True)
class BatchWaveTiming:
    """Latency breakdown of one *batched* wave of several query vectors.

    The controller streams the DAC slices of the B queries through the
    crossbars back to back; the gather tree and the S&H/ADC/S&A drain are
    pipelined behind the input stream, so their cycles are charged once
    per batch instead of once per query. Result drains to the buffer
    array still happen per query (every query produces ``n_vectors``
    accumulator-width results).
    """

    n_queries: int
    setup_cycles: int
    per_query_cycles: int
    crossbar_ns: float
    buffer_ns: float

    @property
    def total_cycles(self) -> int:
        """All crossbar read cycles charged for the batch."""
        return self.setup_cycles + self.n_queries * self.per_query_cycles

    @property
    def total_ns(self) -> float:
        """End-to-end batch latency in nanoseconds."""
        return self.crossbar_ns + self.buffer_ns

    @property
    def amortized_ns_per_query(self) -> float:
        """Per-query share of the batch latency."""
        return self.total_ns / self.n_queries


def batch_wave_timing(
    layout: DatasetLayout,
    config: PIMArrayConfig,
    hardware: HardwareConfig,
    n_queries: int,
    input_bits: int | None = None,
) -> BatchWaveTiming:
    """Latency of one batched wave of ``n_queries`` query vectors.

    Each query still pays its ``ceil(b/g)`` DAC input cycles (the analog
    array evaluates one input vector at a time), but the gather-tree and
    pipeline-drain cycles overlap with the next query's input stream and
    are charged once per batch. A batch of 1 therefore costs exactly
    :func:`wave_timing`; a batch of B costs strictly less than B single
    waves whenever the pipeline has anything to drain (always, since
    :data:`PIPELINE_DRAIN_CYCLES` > 0).
    """
    if n_queries < 1:
        raise ValueError("a batch needs at least one query")
    bits = input_bits if input_bits is not None else config.operand_bits
    per_query_cycles = bitslice.num_slices(bits, config.crossbar.dac_bits)
    setup_cycles = (layout.gather_levels - 1) + PIPELINE_DRAIN_CYCLES
    cycles = setup_cycles + n_queries * per_query_cycles
    crossbar_ns = cycles * config.crossbar.read_latency_ns
    result_bytes = layout.n_vectors * config.accumulator_bits / 8.0
    buffer_ns = n_queries * result_bytes / hardware.memory.internal_bus_gbs
    return BatchWaveTiming(
        n_queries=n_queries,
        setup_cycles=setup_cycles,
        per_query_cycles=per_query_cycles,
        crossbar_ns=crossbar_ns,
        buffer_ns=buffer_ns,
    )


def programming_time_ns(layout: DatasetLayout, config: PIMArrayConfig) -> float:
    """Offline time to program a layout onto the crossbars.

    Crossbars are programmed row by row; rows of different crossbars are
    written in parallel across banks, but within a crossbar each of the
    ``min(dims, rows)`` rows takes one write cycle. Gather crossbars hold
    constant all-ones vectors and are charged a single write cycle each.
    """
    rows_written = min(layout.dims, config.crossbar.rows)
    data_ns = rows_written * config.crossbar.write_latency_ns
    gather_ns = (
        config.crossbar.write_latency_ns if layout.n_gather_crossbars else 0.0
    )
    return data_ns + gather_ns
