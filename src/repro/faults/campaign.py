"""Declarative chaos campaigns: phased gray/crash scenarios, measured.

A :class:`ChaosScenario` names one fault weather — a
:meth:`~repro.faults.plan.FaultPlan.gray_chaos` parameterization plus
optional extra (binary) fault events composed on top. A
:class:`ChaosCampaign` serves the *same* seeded query trace through
three arms per scenario:

* ``clean``        — single-array reference (the exactness oracle);
* ``detector_off`` — sharded under the fault plan with the legacy
  recovery policy (no outlier ejection, no adaptive hedging);
* ``detector_on``  — same plan, same traffic, gray-failure defenses on.

Each arm's answers are compared bit-for-bit against the clean
reference (any mismatch is an exactness violation — gray faults must
never change values), and the campaign reduces every arm to p99/p50
latency, availability, hedge accounting and health state. The whole
run serializes to a JSON *timeline artifact* (fault schedule + per-arm
stats + detector verdict transitions) for CI upload.

Determinism: queries, plans and dispatch all derive from the campaign
seed on the simulated clock, so two runs of the same campaign emit
byte-identical artifacts (modulo float formatting).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError
from repro.faults.plan import FaultEvent, FaultPlan

# NOTE: repro.serving imports repro.faults (the injectors), so the
# serving classes the campaign drives are imported lazily inside the
# methods that need them to keep `import repro.faults` cycle-free.


@dataclass(frozen=True)
class ChaosScenario:
    """One named fault weather for a campaign.

    ``gray`` holds keyword arguments for
    :meth:`FaultPlan.gray_chaos` (victim counts, factors, link
    probabilities — everything except ``n_shards``/``horizon_ns``/
    ``seed``, which the campaign supplies). ``extra_events`` composes
    additional :class:`FaultEvent` s — crashes, corruption — on top of
    the gray plan; scenarios with extra non-gray events are still
    exactness-checked (corrupted waves must be *detected*, never
    served).
    """

    name: str
    description: str = ""
    gray: dict = field(default_factory=dict)
    extra_events: tuple = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("scenarios need a name")
        for event in self.extra_events:
            if not isinstance(event, FaultEvent):
                raise ConfigurationError(
                    "extra_events must be FaultEvent instances"
                )

    def plan(
        self, n_shards: int, horizon_ns: float, seed: int
    ) -> FaultPlan:
        """Materialize the scenario's fault plan for one fleet."""
        base = FaultPlan.gray_chaos(
            n_shards, horizon_ns, seed=seed, **self.gray
        )
        if not self.extra_events:
            return base
        return FaultPlan(
            base.events + tuple(self.extra_events), seed=seed
        )


def standard_campaign() -> tuple[ChaosScenario, ...]:
    """The five stock scenarios the chaos bench and CI gate run.

    ``straggler`` is the headline: one sustained slow shard, nothing
    else — the scenario under which the detector+hedging arm must beat
    the detector-off arm on p99. The others compose intermittent
    slowdowns, flaky links, the full gray mix, and gray + a mid-run
    crash (defenses must not confuse slow with dead).
    """
    no_gray = dict(
        straggler_shards=0, intermittent_shards=0, flaky_shards=0
    )
    return (
        ChaosScenario(
            name="straggler",
            description="one sustained 12x straggler shard",
            gray={
                **no_gray,
                "straggler_shards": 1,
                "straggler_factor": 12.0,
            },
        ),
        ChaosScenario(
            name="intermittent",
            description="one shard alternating fast/slow (50% duty)",
            gray={
                **no_gray,
                "intermittent_shards": 1,
                "intermittent_factor": 10.0,
            },
        ),
        ChaosScenario(
            name="flaky_link",
            description="one host<->shard link dropping/delaying",
            gray={
                **no_gray,
                "flaky_shards": 1,
                "drop_probability": 0.1,
                "delay_probability": 0.2,
            },
        ),
        ChaosScenario(
            name="gray_mix",
            description="straggler + intermittent + flaky link at once",
            gray={
                "straggler_shards": 1,
                "straggler_factor": 10.0,
                "intermittent_shards": 1,
                "flaky_shards": 1,
            },
        ),
        ChaosScenario(
            name="gray_plus_crash",
            description="gray mix with a mid-run hard shard crash",
            gray={
                **no_gray,
                "straggler_shards": 1,
                "straggler_factor": 10.0,
            },
            extra_events=(
                FaultEvent(
                    t_ns=0.5, kind="shard_crash", target="__mid__"
                ),
            ),
        ),
    )


class ChaosCampaign:
    """Run scenarios through clean / detector-off / detector-on arms.

    Parameters
    ----------
    data:
        The dataset every arm serves (``(n, dims)`` float array).
    scenarios:
        The scenario suite; defaults to :func:`standard_campaign`.
    n_shards / replication:
        Fleet shape shared by both faulted arms (equal hardware — the
        comparison is defenses on vs off, not more metal).
    n_requests / k:
        Seeded query trace length and top-k per request.
    horizon_ns:
        Fault-plan horizon; request pacing spreads the trace across it
        so every fault window sees traffic.
    hedge_budget:
        The detector arm's hedge budget (fraction of wave attempts).
    seed:
        Master seed for queries and every scenario plan.
    """

    def __init__(
        self,
        data: np.ndarray,
        scenarios=None,
        *,
        n_shards: int = 4,
        replication: int = 2,
        n_requests: int = 150,
        k: int = 10,
        horizon_ns: float = 1.5e7,
        hedge_budget: float = 0.3,
        seed: int = 0,
    ) -> None:
        self.data = np.asarray(data, dtype=np.float64)
        if self.data.ndim != 2 or self.data.shape[0] < 1:
            raise ConfigurationError(
                "campaign needs a non-empty (n, dims) dataset"
            )
        self.scenarios = tuple(
            scenarios if scenarios is not None else standard_campaign()
        )
        if not self.scenarios:
            raise ConfigurationError("campaign needs at least one scenario")
        if n_requests < 1:
            raise ConfigurationError("n_requests must be >= 1")
        self.n_shards = int(n_shards)
        self.replication = int(replication)
        self.n_requests = int(n_requests)
        self.k = int(k)
        self.horizon_ns = float(horizon_ns)
        self.hedge_budget = float(hedge_budget)
        self.seed = int(seed)
        rng = np.random.default_rng(seed)
        self.queries = rng.normal(size=(self.n_requests, self.data.shape[1]))
        # spread the trace across the horizon so every fault window
        # (stragglers live in the middle 60%) actually sees traffic
        self.gap_ns = self.horizon_ns / (self.n_requests + 1)

    # ------------------------------------------------------------------
    def _policies(self) -> dict:
        from repro.serving.health import RecoveryPolicy

        return {
            "detector_off": RecoveryPolicy(),
            "detector_on": RecoveryPolicy(
                outlier_ejection=True,
                adaptive_hedge=True,
                hedge_budget=self.hedge_budget,
            ),
        }

    def _resolve_events(self, scenario: ChaosScenario) -> ChaosScenario:
        """Resolve placeholder targets/times in extra events.

        ``target="__mid__"`` becomes the middle shard of the fleet and
        fractional ``t_ns`` in (0, 1] scales to the horizon, so stock
        scenarios stay fleet-agnostic.
        """
        if not scenario.extra_events:
            return scenario
        resolved = []
        for event in scenario.extra_events:
            target = event.target
            if target == "__mid__":
                target = f"shard{self.n_shards // 2}"
            t_ns = event.t_ns
            if 0.0 < t_ns <= 1.0:
                t_ns = t_ns * self.horizon_ns
            resolved.append(
                FaultEvent(
                    t_ns=t_ns,
                    kind=event.kind,
                    target=target,
                    duration_ns=event.duration_ns,
                    params=dict(event.params),
                )
            )
        return ChaosScenario(
            name=scenario.name,
            description=scenario.description,
            gray=scenario.gray,
            extra_events=tuple(resolved),
        )

    def _reference(self) -> list:
        """Clean single-array answers — the bit-exactness oracle."""
        from repro.serving.sharding import ShardManager

        manager = ShardManager(self.data, 1)
        answers = []
        for q in self.queries:
            result = manager.knn(q, self.k)
            answers.append(
                (result.indices.tolist(), result.scores.tolist())
            )
        return answers

    def _run_arm(
        self, plan: FaultPlan, policy, reference: list
    ) -> dict:
        from repro.serving.sharding import ShardManager

        manager = ShardManager(
            self.data,
            self.n_shards,
            replication=self.replication,
            fault_plan=plan,
            recovery=policy,
            seed=self.seed,
        )
        latencies: list[float] = []
        violations = 0
        degraded = 0
        t = 0.0
        counters = {
            "attempts": 0, "hedges": 0, "hedges_won": 0,
            "hedges_lost": 0, "hedges_denied": 0, "link_drops": 0,
            "retries": 0, "failovers": 0, "crashes": 0,
            "timeouts": 0, "degraded_chunks": 0,
        }
        for i, q in enumerate(self.queries):
            answers, timing = manager.knn_batch(
                np.atleast_2d(q), self.k, now_ns=t
            )
            result = answers[0]
            latencies.append(timing.service_ns)
            if result.degraded:
                # degraded = exact host-side recompute of a replica-less
                # chunk: slower and flagged, but still bit-exact — so it
                # dents availability yet still faces the oracle below
                degraded += 1
            if (
                result.indices.tolist(),
                result.scores.tolist(),
            ) != reference[i]:
                violations += 1
            for key in counters:
                counters[key] += getattr(timing, key)
            t += timing.service_ns + self.gap_ns
        stats = manager.merged_stats()
        lat = np.asarray(latencies)
        return {
            "latency_p50_ns": float(np.percentile(lat, 50.0)),
            "latency_p95_ns": float(np.percentile(lat, 95.0)),
            "latency_p99_ns": float(np.percentile(lat, 99.0)),
            "latency_mean_ns": float(lat.mean()),
            "requests": self.n_requests,
            "exactness_violations": violations,
            "degraded_responses": degraded,
            # degraded answers are approximate by design; availability
            # counts full-fidelity exact completions
            "availability": 1.0 - degraded / self.n_requests,
            "hedge_rate": (
                counters["hedges"] / counters["attempts"]
                if counters["attempts"]
                else 0.0
            ),
            "pim_time_ns": stats.pim_time_ns,
            "hedge_cancelled_ns": stats.extra.get(
                "hedge_cancelled_ns", 0.0
            ),
            "counters": counters,
            "health": manager.health.snapshot(self.horizon_ns),
        }

    def run(self) -> dict:
        """Execute every scenario; returns the timeline artifact dict."""
        reference = self._reference()
        scenarios_out = []
        for index, raw in enumerate(self.scenarios):
            scenario = self._resolve_events(raw)
            plan = scenario.plan(
                self.n_shards, self.horizon_ns, self.seed + index
            )
            arms = {
                arm: self._run_arm(plan, policy, reference)
                for arm, policy in self._policies().items()
            }
            scenarios_out.append(
                {
                    "name": scenario.name,
                    "description": scenario.description,
                    "plan_seed": self.seed + index,
                    "fault_timeline": plan.describe(),
                    "arms": arms,
                }
            )
        return {
            "campaign": {
                "seed": self.seed,
                "n_shards": self.n_shards,
                "replication": self.replication,
                "n_requests": self.n_requests,
                "k": self.k,
                "horizon_ns": self.horizon_ns,
                "hedge_budget": self.hedge_budget,
                "dataset_rows": int(self.data.shape[0]),
                "dims": int(self.data.shape[1]),
            },
            "scenarios": scenarios_out,
        }

    @staticmethod
    def write_artifact(result: dict, path: str) -> None:
        """Serialize one :meth:`run` result as the JSON artifact."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(result, handle, indent=2, sort_keys=True)
            handle.write("\n")
