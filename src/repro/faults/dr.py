"""Disaster-recovery campaign: correlated outages + cold restarts, measured.

Where :class:`~repro.faults.campaign.ChaosCampaign` asks "do gray
defenses help under gray weather", this campaign asks the two questions
that only matter when *whole failure domains* die:

* **Does spread placement buy survival?** The same seeded
  :meth:`~repro.faults.plan.FaultPlan.domain_outage` plan (every shard
  of a power domain crashing at the same instant) is served by two
  fleets at equal hardware — the historical ring placement
  (``spread=False``) and domain-spread placement (``spread=True``).
  Both must stay bit-exact (degraded recompute is exact by
  construction); the spread arm must keep strictly more requests on
  the full-fidelity path.
* **Does a cold restart lose anything?** A third leg serves half the
  trace, checkpoints (:func:`repro.checkpoint.write_checkpoint`),
  simulates a full-process crash by discarding every live object,
  restores (:func:`repro.checkpoint.restore_manager`) and serves the
  rest. Its answers must be bit-identical to an uninterrupted run of
  the same fleet, and the recovery point must equal the checkpoint's
  snapshot time exactly.

Determinism: the query trace, the outage plan and the checkpoint
filename all derive from the campaign seed, so two runs emit
byte-identical artifacts (modulo float formatting).
"""

from __future__ import annotations

import json
import os
import tempfile

import numpy as np

from repro.errors import ConfigurationError
from repro.faults.plan import FaultPlan
from repro.hardware.config import FailureDomainTopology

# repro.serving imports repro.faults, so serving (and the checkpoint
# module, which imports serving) loads lazily inside methods.


class DisasterRecoveryCampaign:
    """Kill whole domains, cold-restart the service, check the gates.

    Parameters
    ----------
    data:
        The dataset every arm serves (``(n, dims)`` float array).
    topology:
        Failure-domain tree; defaults to boards of 2, channels of
        2 boards, one channel per power domain — 8 shards = 2 power
        domains, the smallest shape where a power outage is survivable.
    n_shards / replication:
        Fleet shape shared by both placement arms (equal hardware —
        the comparison is *where replicas sit*, not more metal).
    n_requests / k:
        Seeded query trace length and top-k per request.
    horizon_ns:
        Plan horizon; the trace is paced across it so requests land on
        both sides of the outage.
    outage_domains / level:
        How many domains die simultaneously, and at which level.
    brownout_domains:
        Additionally brown out this many surviving power domains
        (staggered ``shard_hang`` recovery).
    checkpoint_dir:
        Where the checkpoint leg writes its container; a temporary
        directory by default.
    seed:
        Master seed for queries, the plan and the artifact.
    """

    def __init__(
        self,
        data: np.ndarray,
        *,
        topology: FailureDomainTopology | None = None,
        n_shards: int = 8,
        replication: int = 2,
        n_requests: int = 120,
        k: int = 10,
        horizon_ns: float = 1.5e7,
        outage_domains: int = 1,
        level: str = "power",
        brownout_domains: int = 0,
        checkpoint_dir: str | None = None,
        seed: int = 0,
    ) -> None:
        self.data = np.asarray(data, dtype=np.float64)
        if self.data.ndim != 2 or self.data.shape[0] < 1:
            raise ConfigurationError(
                "campaign needs a non-empty (n, dims) dataset"
            )
        if n_requests < 2:
            raise ConfigurationError("n_requests must be >= 2")
        self.n_shards = int(n_shards)
        self.replication = int(replication)
        self.topology = (
            topology
            if topology is not None
            else FailureDomainTopology(
                n_shards=self.n_shards,
                shards_per_board=2,
                boards_per_channel=2,
                channels_per_power_domain=1,
            )
        )
        if self.topology.n_shards != self.n_shards:
            raise ConfigurationError(
                f"topology describes {self.topology.n_shards} shards, "
                f"campaign runs {self.n_shards}"
            )
        self.n_requests = int(n_requests)
        self.k = int(k)
        self.horizon_ns = float(horizon_ns)
        self.outage_domains = int(outage_domains)
        self.level = level
        self.brownout_domains = int(brownout_domains)
        self.checkpoint_dir = checkpoint_dir
        self.seed = int(seed)
        rng = np.random.default_rng(seed)
        self.queries = rng.normal(
            size=(self.n_requests, self.data.shape[1])
        )
        self.gap_ns = self.horizon_ns / (self.n_requests + 1)
        self.plan = FaultPlan.domain_outage(
            self.topology,
            self.horizon_ns,
            seed=self.seed,
            outage_domains=self.outage_domains,
            level=self.level,
            brownout_domains=self.brownout_domains,
        )

    # ------------------------------------------------------------------
    def _reference(self) -> list:
        """Clean single-array answers — the bit-exactness oracle."""
        from repro.serving.sharding import ShardManager

        manager = ShardManager(self.data, 1)
        answers = []
        for q in self.queries:
            result = manager.knn(q, self.k)
            answers.append(
                (result.indices.tolist(), result.scores.tolist())
            )
        return answers

    def _make_manager(self, spread: bool, fault_plan):
        from repro.serving.sharding import ShardManager

        return ShardManager(
            self.data,
            self.n_shards,
            replication=self.replication,
            fault_plan=fault_plan,
            seed=self.seed,
            topology=self.topology,
            spread=spread,
        )

    def _serve(
        self, manager, reference, start: int, stop: int, t: float
    ) -> dict:
        """Serve trace rows ``[start, stop)`` from simulated time ``t``."""
        latencies: list[float] = []
        answers: list = []
        violations = 0
        degraded = 0
        for i in range(start, stop):
            batch, timing = manager.knn_batch(
                np.atleast_2d(self.queries[i]), self.k, now_ns=t
            )
            result = batch[0]
            latencies.append(timing.service_ns)
            pair = (result.indices.tolist(), result.scores.tolist())
            answers.append(pair)
            if result.degraded:
                degraded += 1
            if pair != reference[i]:
                violations += 1
            t += timing.service_ns + self.gap_ns
        return {
            "answers": answers,
            "latencies": latencies,
            "violations": violations,
            "degraded": degraded,
            "t_end": t,
        }

    def _placement_arm(self, spread: bool, reference) -> dict:
        manager = self._make_manager(spread, self.plan)
        served = self._serve(
            manager, reference, 0, self.n_requests, 0.0
        )
        lat = np.asarray(served["latencies"])
        report = manager.spread_report()
        return {
            "spread_placement": spread,
            "requests": self.n_requests,
            "exactness_violations": served["violations"],
            "degraded_responses": served["degraded"],
            "availability": 1.0 - served["degraded"] / self.n_requests,
            "latency_p50_ns": float(np.percentile(lat, 50.0)),
            "latency_p99_ns": float(np.percentile(lat, 99.0)),
            "at_risk_chunks_before_outage": None,  # filled by caller
            "at_risk_chunks_after": report["n_at_risk"],
            "placement_violations": len(report["violations"]),
            "min_spread": report["min_spread"],
            "health": manager.health.snapshot(self.horizon_ns),
            "answers": served["answers"],
        }

    def _checkpoint_leg(self, reference) -> dict:
        """Serve, checkpoint, crash, restore, serve — prove bit-identity."""
        from repro.checkpoint import (
            restore_manager,
            verify_checkpoint,
            write_checkpoint,
        )

        half = self.n_requests // 2
        # the uninterrupted twin: same fleet, same plan, full trace
        baseline = self._make_manager(True, self.plan)
        base = self._serve(
            baseline, reference, 0, self.n_requests, 0.0
        )
        # the crashed service: first half, checkpoint, discard, restore
        manager = self._make_manager(True, self.plan)
        first = self._serve(manager, reference, 0, half, 0.0)
        directory = self.checkpoint_dir
        if directory is None:
            directory = tempfile.mkdtemp(prefix="repro-dr-")
        os.makedirs(directory, exist_ok=True)
        path = os.path.join(
            directory, f"dr-seed{self.seed}.ckpt.npz"
        )
        manifest = write_checkpoint(
            manager, path, t_ns=first["t_end"]
        )
        integrity = verify_checkpoint(path)
        del manager  # the crash: every live object is gone
        restored = restore_manager(path, fault_plan=self.plan)
        second = self._serve(
            restored, reference, half, self.n_requests, first["t_end"]
        )
        answers = first["answers"] + second["answers"]
        restore_mismatches = sum(
            1
            for mine, theirs in zip(answers, base["answers"])
            if mine != theirs
        )
        return {
            "checkpoint_path": path,
            "checkpoint_t_ns": float(manifest["t_ns"]),
            "recovery_point_ns": float(restored.last_checkpoint_ns),
            "requests_before_crash": half,
            "requests_after_restore": self.n_requests - half,
            "exactness_violations": (
                first["violations"] + second["violations"]
            ),
            "restore_mismatches": restore_mismatches,
            "degraded_responses": first["degraded"] + second["degraded"],
            "integrity": integrity,
            "health_restored": True,
        }

    def run(self) -> dict:
        """Execute the campaign; returns the timeline artifact dict."""
        reference = self._reference()
        naive = self._placement_arm(False, reference)
        spread = self._placement_arm(True, reference)
        # pre-outage risk comes from a pristine fleet (no faults)
        for arm, flag in ((naive, False), (spread, True)):
            pristine = self._make_manager(flag, None)
            arm["at_risk_chunks_before_outage"] = (
                pristine.spread_report()["n_at_risk"]
            )
        checkpoint = self._checkpoint_leg(reference)
        # answers are for gating, not for the artifact (bulky)
        naive_answers = naive.pop("answers")
        spread_answers = spread.pop("answers")
        answer_divergence = sum(
            1
            for a, b in zip(naive_answers, spread_answers)
            if a != b
        )
        return {
            "campaign": {
                "seed": self.seed,
                "n_shards": self.n_shards,
                "replication": self.replication,
                "topology": self.topology.describe(),
                "n_requests": self.n_requests,
                "k": self.k,
                "horizon_ns": self.horizon_ns,
                "outage_domains": self.outage_domains,
                "level": self.level,
                "brownout_domains": self.brownout_domains,
                "dataset_rows": int(self.data.shape[0]),
                "dims": int(self.data.shape[1]),
            },
            "fault_timeline": self.plan.describe(),
            "arms": {"naive": naive, "spread": spread},
            "placement_answer_divergence": answer_divergence,
            "checkpoint": checkpoint,
        }

    @staticmethod
    def write_artifact(result: dict, path: str) -> None:
        """Serialize one :meth:`run` result as the JSON artifact."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(result, handle, indent=2, sort_keys=True)
            handle.write("\n")
