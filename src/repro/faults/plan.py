"""Fault plans: deterministic, seedable schedules of fault events.

A :class:`FaultPlan` is the single source of truth for *what goes wrong
when* in a run: an immutable, time-sorted list of :class:`FaultEvent`\\ s
on the simulated clock plus one master seed from which every injector
derives its RNG stream. Two runs with the same plan (and the same
workload) inject byte-identical faults — the property every recovery
test and the chaos bench relies on.

Fault kinds
-----------
Array-level (enforced by :class:`~repro.faults.injectors.FaultyPIMArray`):

* ``stuck_cells``    — a seeded region of a programmed matrix reads as a
  stuck value (``params``: ``fraction``, ``stuck_to`` 0/1, optional
  ``matrix`` name); permanent unless a duration is given.
* ``wave_corrupt``   — while active, each wave is corrupted with
  probability ``params["probability"]`` (a seeded offset is added to a
  seeded subset of result values; the default offset is guaranteed to
  flip the residue check).
* ``latency_spike``  — wave latency multiplied by ``params["factor"]``
  while active (stragglers).
* ``crossbar_dead``  — the array stops answering: every wave raises
  :class:`~repro.errors.CrossbarDeadError` from ``t_ns`` on.

Shard-level (consulted by :class:`~repro.faults.injectors.FaultyShardEngine`):

* ``shard_crash``    — dispatches fail fast from ``t_ns`` on (permanent).
* ``shard_hang``     — dispatches never complete while active; the
  serving watchdog converts this into a per-dispatch timeout.
* ``slow_shard``     — shard service time multiplied by
  ``params["factor"]`` while active.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError

ARRAY_FAULT_KINDS = (
    "stuck_cells",
    "wave_corrupt",
    "latency_spike",
    "crossbar_dead",
)
SHARD_FAULT_KINDS = ("shard_crash", "shard_hang", "slow_shard")
FAULT_KINDS = ARRAY_FAULT_KINDS + SHARD_FAULT_KINDS


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault on the simulated clock.

    ``duration_ns=None`` means permanent (active from ``t_ns`` forever);
    transient faults are active on ``[t_ns, t_ns + duration_ns)``.
    ``target`` names the victim — ``"shard3"`` for serving shards, any
    label (conventionally ``"array"``) for standalone arrays.
    """

    t_ns: float
    kind: str
    target: str
    duration_ns: float | None = None
    params: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ConfigurationError(
                f"unknown fault kind {self.kind!r}; one of {FAULT_KINDS}"
            )
        if self.t_ns < 0:
            raise ConfigurationError("fault times must be >= 0")
        if self.duration_ns is not None and self.duration_ns <= 0:
            raise ConfigurationError(
                "fault duration must be positive (None = permanent)"
            )

    def active_at(self, t_ns: float) -> bool:
        """Whether the fault is in effect at simulated time ``t_ns``."""
        if t_ns < self.t_ns:
            return False
        if self.duration_ns is None:
            return True
        return t_ns < self.t_ns + self.duration_ns

    def describe(self) -> dict:
        """JSON-friendly record for fault-timeline artifacts."""
        return {
            "t_ns": self.t_ns,
            "kind": self.kind,
            "target": self.target,
            "duration_ns": self.duration_ns,
            "params": dict(self.params),
        }


class FaultPlan:
    """An immutable, seeded schedule of :class:`FaultEvent` s.

    Parameters
    ----------
    events:
        The fault schedule; stored sorted by ``(t_ns, target, kind)``.
    seed:
        Master seed. Injectors derive independent, reproducible RNG
        streams with :meth:`rng_for`, so adding one injector never
        perturbs another's draws.
    """

    def __init__(self, events=(), seed: int = 0) -> None:
        self.events: tuple[FaultEvent, ...] = tuple(
            sorted(events, key=lambda e: (e.t_ns, e.target, e.kind))
        )
        self.seed = int(seed)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def events_for(
        self, target: str, kind: str | None = None
    ) -> tuple[FaultEvent, ...]:
        """All events aimed at ``target`` (optionally of one kind)."""
        return tuple(
            e
            for e in self.events
            if e.target == target and (kind is None or e.kind == kind)
        )

    def active(
        self, target: str, kind: str, t_ns: float
    ) -> tuple[FaultEvent, ...]:
        """Events of ``kind`` on ``target`` in effect at ``t_ns``."""
        return tuple(
            e
            for e in self.events
            if e.target == target and e.kind == kind and e.active_at(t_ns)
        )

    def targets(self) -> tuple[str, ...]:
        """Distinct victim labels, sorted."""
        return tuple(sorted({e.target for e in self.events}))

    def rng_for(self, target: str, salt: str = "") -> np.random.Generator:
        """A reproducible RNG stream for one injector.

        The stream is keyed by ``(seed, target, salt)`` through a stable
        CRC32, so the same plan always hands the same draws to the same
        injector regardless of construction order.
        """
        key = zlib.crc32(f"{target}|{salt}".encode("utf-8"))
        return np.random.default_rng((self.seed << 32) ^ key)

    def describe(self) -> list[dict]:
        """JSON-friendly schedule (for the fault-timeline artifact)."""
        return [e.describe() for e in self.events]

    # ------------------------------------------------------------------
    @classmethod
    def chaos(
        cls,
        n_shards: int,
        horizon_ns: float,
        seed: int = 0,
        *,
        kill_shards: int = 1,
        corrupt_shards: int = 1,
        corrupt_probability: float = 0.15,
        slow_shards: int = 0,
        slow_factor: float = 8.0,
    ) -> "FaultPlan":
        """A seeded chaos schedule over ``n_shards`` serving shards.

        Kills ``kill_shards`` distinct shards mid-run (uniformly in the
        middle half of the horizon), makes ``corrupt_shards`` others
        corrupt waves with ``corrupt_probability`` for the whole run,
        and optionally slows ``slow_shards`` more by ``slow_factor``
        for the middle third. Victims are distinct while shard count
        allows, so a chunk with 2 replicas never loses both to this
        generator.
        """
        if n_shards < 1:
            raise ConfigurationError("need at least one shard")
        horizon_ns = float(horizon_ns)
        if horizon_ns <= 0:
            raise ConfigurationError("horizon must be positive")
        rng = np.random.default_rng(seed)
        wanted = kill_shards + corrupt_shards + slow_shards
        victims = list(
            rng.permutation(n_shards)[: min(wanted, n_shards)]
        )
        events: list[FaultEvent] = []
        for _ in range(kill_shards):
            if not victims:
                break
            shard = int(victims.pop(0))
            t = float(rng.uniform(0.25, 0.75) * horizon_ns)
            events.append(
                FaultEvent(t_ns=t, kind="shard_crash", target=f"shard{shard}")
            )
        for _ in range(corrupt_shards):
            if not victims:
                break
            shard = int(victims.pop(0))
            events.append(
                FaultEvent(
                    t_ns=0.0,
                    kind="wave_corrupt",
                    target=f"shard{shard}",
                    duration_ns=horizon_ns,
                    params={"probability": corrupt_probability},
                )
            )
        for _ in range(slow_shards):
            if not victims:
                break
            shard = int(victims.pop(0))
            events.append(
                FaultEvent(
                    t_ns=horizon_ns / 3.0,
                    kind="slow_shard",
                    target=f"shard{shard}",
                    duration_ns=horizon_ns / 3.0,
                    params={"factor": slow_factor},
                )
            )
        return cls(events, seed=seed)

    @classmethod
    def sustained(
        cls,
        n_shards: int,
        horizon_ns: float,
        seed: int = 0,
        *,
        stuck_shards: int = 2,
        stuck_fraction: float = 0.05,
        stuck_at_ns: float | None = None,
        kill_shards: int = 1,
        kill_at_ns: float | None = None,
    ) -> "FaultPlan":
        """A sustained *silent*-corruption stream for the repair bench.

        Plants permanent ``stuck_cells`` defects on ``stuck_shards``
        **consecutive** shards starting from a seeded offset. Under the
        k-replica ring placement (chunk ``c`` on shards ``(c + j) % n``),
        consecutive victims cover every replica of at least one chunk
        whenever ``stuck_shards >= replication``, so a failover-only
        baseline is forced into degraded host recompute on that chunk
        until the defects are repaired. ``kill_shards`` of the remaining
        shards then crash mid-run, exercising live re-replication.

        Unlike :meth:`chaos`, the defects here are silent between
        queries: nothing fails until a wave (or a scrub probe) actually
        reads the stuck region.
        """
        if n_shards < 1:
            raise ConfigurationError("need at least one shard")
        horizon_ns = float(horizon_ns)
        if horizon_ns <= 0:
            raise ConfigurationError("horizon must be positive")
        if stuck_shards > n_shards:
            raise ConfigurationError(
                "cannot plant defects on more shards than exist"
            )
        rng = np.random.default_rng(seed)
        stuck_t = (
            0.1 * horizon_ns if stuck_at_ns is None else float(stuck_at_ns)
        )
        kill_t = (
            0.5 * horizon_ns if kill_at_ns is None else float(kill_at_ns)
        )
        start = int(rng.integers(0, n_shards))
        stuck_set = {(start + i) % n_shards for i in range(stuck_shards)}
        events: list[FaultEvent] = [
            FaultEvent(
                t_ns=stuck_t,
                kind="stuck_cells",
                target=f"shard{shard}",
                params={"fraction": stuck_fraction, "stuck_to": 0},
            )
            for shard in sorted(stuck_set)
        ]
        survivors = [s for s in range(n_shards) if s not in stuck_set]
        kill_order = [int(s) for s in rng.permutation(survivors)]
        for shard in kill_order[:kill_shards]:
            events.append(
                FaultEvent(
                    t_ns=kill_t, kind="shard_crash", target=f"shard{shard}"
                )
            )
        return cls(events, seed=seed)
