"""Fault plans: deterministic, seedable schedules of fault events.

A :class:`FaultPlan` is the single source of truth for *what goes wrong
when* in a run: an immutable, time-sorted list of :class:`FaultEvent`\\ s
on the simulated clock plus one master seed from which every injector
derives its RNG stream. Two runs with the same plan (and the same
workload) inject byte-identical faults — the property every recovery
test and the chaos bench relies on.

Fault kinds
-----------
Array-level (enforced by :class:`~repro.faults.injectors.FaultyPIMArray`):

* ``stuck_cells``    — a seeded region of a programmed matrix reads as a
  stuck value (``params``: ``fraction``, ``stuck_to`` 0/1, optional
  ``matrix`` name); permanent unless a duration is given.
* ``wave_corrupt``   — while active, each wave is corrupted with
  probability ``params["probability"]`` (a seeded offset is added to a
  seeded subset of result values; the default offset is guaranteed to
  flip the residue check).
* ``latency_spike``  — wave latency multiplied by ``params["factor"]``
  while active (stragglers).
* ``crossbar_dead``  — the array stops answering: every wave raises
  :class:`~repro.errors.CrossbarDeadError` from ``t_ns`` on.
* ``bankgroup_straggler`` — a seeded subset of the device's bank groups
  runs ``params["factor"]`` times slower while active. Commands on a
  banked substrate (HBM-PIM) run in all-bank lockstep, so a wave whose
  matrix touches any straggling group is bounded by the slow group and
  stretches whole; arrays without a bank layout (crossbars) degrade to
  a whole-array slowdown. ``params``: ``factor``, ``groups`` (count of
  straggling groups, default 1).

Shard-level (consulted by :class:`~repro.faults.injectors.FaultyShardEngine`):

* ``shard_crash``    — dispatches fail fast from ``t_ns`` on (permanent).
* ``shard_hang``     — dispatches never complete while active; the
  serving watchdog converts this into a per-dispatch timeout.
* ``slow_shard``     — shard service time multiplied by
  ``params["factor"]`` while active (a *sustained* gray failure).
* ``intermittent_slow`` — shard service time multiplied by
  ``params["factor"]``, but only during the first ``params["duty"]``
  fraction of each ``params["period_ns"]`` window (phase-locked to the
  event start) — a shard that alternates fast/slow.
* ``link_flaky``     — the host<->shard link misbehaves per dispatch:
  with ``params["drop_probability"]`` the dispatch is dropped (fails
  fast, transient), else with ``params["delay_probability"]`` it is
  delayed by ``params["delay_ns"]``. Draws are *stateless* — hashed
  from ``(seed, target, event, dispatch time)`` — so the verdict at an
  instant never depends on how many other draws happened first, and
  detector-on vs detector-off runs see identical link weather.

The gray kinds (everything that slows or delays but never corrupts)
preserve bit-exactness by construction: slow answers are still correct
answers.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError

ARRAY_FAULT_KINDS = (
    "stuck_cells",
    "wave_corrupt",
    "latency_spike",
    "crossbar_dead",
    "bankgroup_straggler",
)
SHARD_FAULT_KINDS = (
    "shard_crash",
    "shard_hang",
    "slow_shard",
    "intermittent_slow",
    "link_flaky",
)
#: Kinds that degrade timing but never values: answers under any plan
#: composed purely of these are bit-identical to a fault-free run.
GRAY_FAULT_KINDS = (
    "latency_spike",
    "bankgroup_straggler",
    "slow_shard",
    "intermittent_slow",
    "link_flaky",
)
FAULT_KINDS = ARRAY_FAULT_KINDS + SHARD_FAULT_KINDS


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault on the simulated clock.

    ``duration_ns=None`` means permanent (active from ``t_ns`` forever);
    transient faults are active on ``[t_ns, t_ns + duration_ns)``.
    ``target`` names the victim — ``"shard3"`` for serving shards, any
    label (conventionally ``"array"``) for standalone arrays.
    """

    t_ns: float
    kind: str
    target: str
    duration_ns: float | None = None
    params: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ConfigurationError(
                f"unknown fault kind {self.kind!r}; one of {FAULT_KINDS}"
            )
        if self.t_ns < 0:
            raise ConfigurationError("fault times must be >= 0")
        if self.duration_ns is not None and self.duration_ns <= 0:
            raise ConfigurationError(
                "fault duration must be positive (None = permanent)"
            )

    def active_at(self, t_ns: float) -> bool:
        """Whether the fault is in effect at simulated time ``t_ns``."""
        if t_ns < self.t_ns:
            return False
        if self.duration_ns is None:
            return True
        return t_ns < self.t_ns + self.duration_ns

    def describe(self) -> dict:
        """JSON-friendly record for fault-timeline artifacts."""
        return {
            "t_ns": self.t_ns,
            "kind": self.kind,
            "target": self.target,
            "duration_ns": self.duration_ns,
            "params": dict(self.params),
        }


class FaultPlan:
    """An immutable, seeded schedule of :class:`FaultEvent` s.

    Parameters
    ----------
    events:
        The fault schedule; stored sorted by ``(t_ns, target, kind)``.
    seed:
        Master seed. Injectors derive independent, reproducible RNG
        streams with :meth:`rng_for`, so adding one injector never
        perturbs another's draws.
    """

    def __init__(self, events=(), seed: int = 0) -> None:
        self.events: tuple[FaultEvent, ...] = tuple(
            sorted(events, key=lambda e: (e.t_ns, e.target, e.kind))
        )
        self.seed = int(seed)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def events_for(
        self, target: str, kind: str | None = None
    ) -> tuple[FaultEvent, ...]:
        """All events aimed at ``target`` (optionally of one kind)."""
        return tuple(
            e
            for e in self.events
            if e.target == target and (kind is None or e.kind == kind)
        )

    def active(
        self, target: str, kind: str, t_ns: float
    ) -> tuple[FaultEvent, ...]:
        """Events of ``kind`` on ``target`` in effect at ``t_ns``."""
        return tuple(
            e
            for e in self.events
            if e.target == target and e.kind == kind and e.active_at(t_ns)
        )

    def targets(self) -> tuple[str, ...]:
        """Distinct victim labels, sorted."""
        return tuple(sorted({e.target for e in self.events}))

    def rng_for(self, target: str, salt: str = "") -> np.random.Generator:
        """A reproducible RNG stream for one injector.

        The stream is keyed by ``(seed, target, salt)`` through a stable
        CRC32, so the same plan always hands the same draws to the same
        injector regardless of construction order.
        """
        key = zlib.crc32(f"{target}|{salt}".encode("utf-8"))
        return np.random.default_rng((self.seed << 32) ^ key)

    def hash_unit(self, target: str, salt: str, t_ns: float) -> float:
        """A stateless uniform draw in ``[0, 1)`` for one instant.

        Unlike :meth:`rng_for` streams, the draw is a pure function of
        ``(seed, target, salt, t_ns)``: two runs that consult the plan
        in different orders (or different numbers of times) still agree
        on every per-dispatch outcome. The ``link_flaky`` injector
        depends on this — a detector-on run must not reshuffle the link
        weather a detector-off run saw.
        """
        key = zlib.crc32(
            f"{self.seed}|{target}|{salt}|{float(t_ns)!r}".encode("utf-8")
        )
        return key / 4294967296.0

    def describe(self) -> list[dict]:
        """JSON-friendly schedule (for the fault-timeline artifact)."""
        return [e.describe() for e in self.events]

    # ------------------------------------------------------------------
    @classmethod
    def chaos(
        cls,
        n_shards: int,
        horizon_ns: float,
        seed: int = 0,
        *,
        kill_shards: int = 1,
        corrupt_shards: int = 1,
        corrupt_probability: float = 0.15,
        slow_shards: int = 0,
        slow_factor: float = 8.0,
    ) -> "FaultPlan":
        """A seeded chaos schedule over ``n_shards`` serving shards.

        Kills ``kill_shards`` distinct shards mid-run (uniformly in the
        middle half of the horizon), makes ``corrupt_shards`` others
        corrupt waves with ``corrupt_probability`` for the whole run,
        and optionally slows ``slow_shards`` more by ``slow_factor``
        for the middle third. Victims are distinct while shard count
        allows, so a chunk with 2 replicas never loses both to this
        generator.
        """
        if n_shards < 1:
            raise ConfigurationError("need at least one shard")
        horizon_ns = float(horizon_ns)
        if horizon_ns <= 0:
            raise ConfigurationError("horizon must be positive")
        rng = np.random.default_rng(seed)
        wanted = kill_shards + corrupt_shards + slow_shards
        victims = list(
            rng.permutation(n_shards)[: min(wanted, n_shards)]
        )
        events: list[FaultEvent] = []
        for _ in range(kill_shards):
            if not victims:
                break
            shard = int(victims.pop(0))
            t = float(rng.uniform(0.25, 0.75) * horizon_ns)
            events.append(
                FaultEvent(t_ns=t, kind="shard_crash", target=f"shard{shard}")
            )
        for _ in range(corrupt_shards):
            if not victims:
                break
            shard = int(victims.pop(0))
            events.append(
                FaultEvent(
                    t_ns=0.0,
                    kind="wave_corrupt",
                    target=f"shard{shard}",
                    duration_ns=horizon_ns,
                    params={"probability": corrupt_probability},
                )
            )
        for _ in range(slow_shards):
            if not victims:
                break
            shard = int(victims.pop(0))
            events.append(
                FaultEvent(
                    t_ns=horizon_ns / 3.0,
                    kind="slow_shard",
                    target=f"shard{shard}",
                    duration_ns=horizon_ns / 3.0,
                    params={"factor": slow_factor},
                )
            )
        return cls(events, seed=seed)

    @classmethod
    def gray_chaos(
        cls,
        n_shards: int,
        horizon_ns: float,
        seed: int = 0,
        *,
        straggler_shards: int = 1,
        straggler_factor: float = 8.0,
        intermittent_shards: int = 1,
        intermittent_factor: float = 8.0,
        intermittent_period_ns: float | None = None,
        intermittent_duty: float = 0.5,
        flaky_shards: int = 1,
        drop_probability: float = 0.1,
        delay_probability: float = 0.2,
        delay_ns: float = 100_000.0,
        bankgroup_shards: int = 0,
        bankgroup_factor: float = 4.0,
    ) -> "FaultPlan":
        """A seeded *gray* chaos schedule: everything slow, nothing wrong.

        Composes the gray failure modes over distinct victims while the
        shard count allows: ``straggler_shards`` run ``slow_shard`` at
        ``straggler_factor`` for the middle 60% of the horizon (the
        sustained straggler the outlier detector must eject),
        ``intermittent_shards`` alternate fast/slow with the given duty
        cycle for the whole run (the flap-admit trap),
        ``flaky_shards`` get a ``link_flaky`` link for the middle half,
        and ``bankgroup_shards`` suffer correlated bank-group
        stragglers. No kind in this generator ever corrupts a value, so
        any run under it must stay bit-identical to a clean one.
        """
        if n_shards < 1:
            raise ConfigurationError("need at least one shard")
        horizon_ns = float(horizon_ns)
        if horizon_ns <= 0:
            raise ConfigurationError("horizon must be positive")
        if not 0.0 < intermittent_duty < 1.0:
            raise ConfigurationError("intermittent_duty must be in (0, 1)")
        if drop_probability < 0 or delay_probability < 0:
            raise ConfigurationError("link probabilities must be >= 0")
        if drop_probability + delay_probability > 1.0:
            raise ConfigurationError(
                "drop_probability + delay_probability must be <= 1"
            )
        rng = np.random.default_rng(seed)
        wanted = (
            straggler_shards
            + intermittent_shards
            + flaky_shards
            + bankgroup_shards
        )
        victims = list(rng.permutation(n_shards)[: min(wanted, n_shards)])
        period = (
            horizon_ns / 16.0
            if intermittent_period_ns is None
            else float(intermittent_period_ns)
        )
        events: list[FaultEvent] = []
        for _ in range(straggler_shards):
            if not victims:
                break
            shard = int(victims.pop(0))
            events.append(
                FaultEvent(
                    t_ns=0.2 * horizon_ns,
                    kind="slow_shard",
                    target=f"shard{shard}",
                    duration_ns=0.6 * horizon_ns,
                    params={"factor": straggler_factor},
                )
            )
        for _ in range(intermittent_shards):
            if not victims:
                break
            shard = int(victims.pop(0))
            events.append(
                FaultEvent(
                    t_ns=0.0,
                    kind="intermittent_slow",
                    target=f"shard{shard}",
                    duration_ns=horizon_ns,
                    params={
                        "factor": intermittent_factor,
                        "period_ns": period,
                        "duty": intermittent_duty,
                    },
                )
            )
        for _ in range(flaky_shards):
            if not victims:
                break
            shard = int(victims.pop(0))
            events.append(
                FaultEvent(
                    t_ns=0.25 * horizon_ns,
                    kind="link_flaky",
                    target=f"shard{shard}",
                    duration_ns=0.5 * horizon_ns,
                    params={
                        "drop_probability": drop_probability,
                        "delay_probability": delay_probability,
                        "delay_ns": delay_ns,
                    },
                )
            )
        for _ in range(bankgroup_shards):
            if not victims:
                break
            shard = int(victims.pop(0))
            events.append(
                FaultEvent(
                    t_ns=0.3 * horizon_ns,
                    kind="bankgroup_straggler",
                    target=f"shard{shard}",
                    duration_ns=0.4 * horizon_ns,
                    params={"factor": bankgroup_factor, "groups": 1},
                )
            )
        return cls(events, seed=seed)

    @classmethod
    def domain_outage(
        cls,
        topology,
        horizon_ns: float,
        seed: int = 0,
        *,
        outage_domains: int = 1,
        level: str = "power",
        outage_at_ns: float | None = None,
        brownout_domains: int = 0,
        brownout_level: str = "power",
        brownout_at_ns: float | None = None,
        brownout_duration_ns: float | None = None,
        recovery_stagger_ns: float | None = None,
    ) -> "FaultPlan":
        """A seeded *correlated* outage over whole failure domains.

        Picks ``outage_domains`` distinct domains at ``level`` (board,
        channel or power — see
        :class:`repro.hardware.FailureDomainTopology`) and crashes
        every shard inside them **simultaneously** — the signature of a
        shared power rail or channel controller going down, and the
        scenario single-shard generators like :meth:`chaos` never
        produce. Optionally browns out ``brownout_domains`` *other*
        domains: their shards hang (``shard_hang``) from
        ``brownout_at_ns`` and come back with *staggered* recovery —
        shard ``i`` of the domain hangs for
        ``brownout_duration_ns + i * recovery_stagger_ns``, the way
        breakers re-close one leg at a time after a brownout.

        Victim domains are seeded draws; brownout victims are drawn
        from the domains the outage spared (at the brownout level), so
        a plan never crashes and browns out the same shard.
        """
        horizon_ns = float(horizon_ns)
        if horizon_ns <= 0:
            raise ConfigurationError("horizon must be positive")
        for lv in (level, brownout_level):
            if lv not in ("board", "channel", "power"):
                raise ConfigurationError(
                    f"unknown domain level {lv!r}; expected board, "
                    "channel or power"
                )
        if outage_domains < 0 or brownout_domains < 0:
            raise ConfigurationError("domain counts must be >= 0")
        if outage_domains > topology.n_domains(level):
            raise ConfigurationError(
                f"cannot kill {outage_domains} {level} domains, "
                f"topology has {topology.n_domains(level)}"
            )
        rng = np.random.default_rng(seed)
        outage_t = (
            0.4 * horizon_ns if outage_at_ns is None else float(outage_at_ns)
        )
        dead_domains = [
            int(d)
            for d in rng.permutation(topology.n_domains(level))[
                :outage_domains
            ]
        ]
        events: list[FaultEvent] = []
        dead_shards: set[int] = set()
        for d in dead_domains:
            for shard in topology.shards_in(level, d):
                dead_shards.add(shard)
                events.append(
                    FaultEvent(
                        t_ns=outage_t,
                        kind="shard_crash",
                        target=f"shard{shard}",
                        params={"domain": d, "level": level},
                    )
                )
        if brownout_domains:
            spared = [
                d
                for d in range(topology.n_domains(brownout_level))
                if not any(
                    s in dead_shards
                    for s in topology.shards_in(brownout_level, d)
                )
            ]
            if brownout_domains > len(spared):
                raise ConfigurationError(
                    f"cannot brown out {brownout_domains} "
                    f"{brownout_level} domains, only {len(spared)} "
                    "escape the outage"
                )
            brown_t = (
                0.2 * horizon_ns
                if brownout_at_ns is None
                else float(brownout_at_ns)
            )
            duration = (
                0.15 * horizon_ns
                if brownout_duration_ns is None
                else float(brownout_duration_ns)
            )
            stagger = (
                0.05 * horizon_ns
                if recovery_stagger_ns is None
                else float(recovery_stagger_ns)
            )
            picks = rng.permutation(len(spared))[:brownout_domains]
            for d in (int(spared[i]) for i in picks):
                for i, shard in enumerate(
                    topology.shards_in(brownout_level, d)
                ):
                    events.append(
                        FaultEvent(
                            t_ns=brown_t,
                            kind="shard_hang",
                            target=f"shard{shard}",
                            duration_ns=duration + i * stagger,
                            params={"domain": d, "level": brownout_level},
                        )
                    )
        return cls(events, seed=seed)

    @classmethod
    def sustained(
        cls,
        n_shards: int,
        horizon_ns: float,
        seed: int = 0,
        *,
        stuck_shards: int = 2,
        stuck_fraction: float = 0.05,
        stuck_at_ns: float | None = None,
        kill_shards: int = 1,
        kill_at_ns: float | None = None,
    ) -> "FaultPlan":
        """A sustained *silent*-corruption stream for the repair bench.

        Plants permanent ``stuck_cells`` defects on ``stuck_shards``
        **consecutive** shards starting from a seeded offset. Under the
        k-replica ring placement (chunk ``c`` on shards ``(c + j) % n``),
        consecutive victims cover every replica of at least one chunk
        whenever ``stuck_shards >= replication``, so a failover-only
        baseline is forced into degraded host recompute on that chunk
        until the defects are repaired. ``kill_shards`` of the remaining
        shards then crash mid-run, exercising live re-replication.

        Unlike :meth:`chaos`, the defects here are silent between
        queries: nothing fails until a wave (or a scrub probe) actually
        reads the stuck region.
        """
        if n_shards < 1:
            raise ConfigurationError("need at least one shard")
        horizon_ns = float(horizon_ns)
        if horizon_ns <= 0:
            raise ConfigurationError("horizon must be positive")
        if stuck_shards > n_shards:
            raise ConfigurationError(
                "cannot plant defects on more shards than exist"
            )
        rng = np.random.default_rng(seed)
        stuck_t = (
            0.1 * horizon_ns if stuck_at_ns is None else float(stuck_at_ns)
        )
        kill_t = (
            0.5 * horizon_ns if kill_at_ns is None else float(kill_at_ns)
        )
        start = int(rng.integers(0, n_shards))
        stuck_set = {(start + i) % n_shards for i in range(stuck_shards)}
        events: list[FaultEvent] = [
            FaultEvent(
                t_ns=stuck_t,
                kind="stuck_cells",
                target=f"shard{shard}",
                params={"fraction": stuck_fraction, "stuck_to": 0},
            )
            for shard in sorted(stuck_set)
        ]
        survivors = [s for s in range(n_shards) if s not in stuck_set]
        kill_order = [int(s) for s in rng.permutation(survivors)]
        for shard in kill_order[:kill_shards]:
            events.append(
                FaultEvent(
                    t_ns=kill_t, kind="shard_crash", target=f"shard{shard}"
                )
            )
        return cls(events, seed=seed)
