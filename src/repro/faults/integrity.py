"""Residue-checksum integrity for PIM dot-product waves (ABFT-style).

The trick is one extra *vector* per programmed matrix: the checksum row

``c = (sum of all data rows) mod 2**operand_bits``

is itself a valid non-negative ``operand_bits``-wide operand, so it is
programmed like any other vector — one more column group per crossbar,
paper-consistent, no analog trust required. Any query wave then returns
``n + 1`` dot products and must satisfy the residue invariant::

    sum_i (v_i . q)  ==  c . q      (mod 2**operand_bits)

because ``c . q = ((sum_i v_i) mod M) . q == sum_i (v_i . q)  (mod M)``.
The invariant survives the accumulator truncation (the array keeps the
least-significant 64 bits and ``M = 2**operand_bits`` divides ``2**64``),
so verification is a pure host-side modular sum of values it already has.

A fault that perturbs wave values passes undetected only if its induced
error happens to cancel mod ``M`` — probability ``1/M`` for a uniformly
random corruption — which is why the wave-corruption injector's default
offset is chosen to *never* be ``0 mod M``: injected corruption of that
kind is detected with certainty.

Only exact arrays can be verified this way: under ``NoisyPIMArray`` every
wave carries analog error and the exact residue check would flag all of
them. The serving layer (which uses exact arrays) programs the checksum
row by default; noisy experiments keep it off.
"""

from __future__ import annotations

import numpy as np

from repro.errors import OperandError


def checksum_row(matrix: np.ndarray, operand_bits: int) -> np.ndarray:
    """The residue checksum vector of ``matrix``: column sums mod ``2**b``.

    The result is a valid PIM operand (non-negative, ``< 2**operand_bits``)
    of the same dimensionality as the data rows.
    """
    matrix = np.asarray(matrix)
    if matrix.ndim != 2:
        raise OperandError("checksum_row() expects a 2-D (vectors x dims) matrix")
    if operand_bits < 1 or operand_bits > 63:
        raise OperandError("operand_bits must be in [1, 63]")
    modulus = np.uint64(1) << np.uint64(operand_bits)
    # uint64 arithmetic wraps mod 2**64, of which 2**operand_bits is a
    # divisor, so the running sum stays residue-correct at any n_vectors.
    total = matrix.astype(np.uint64).sum(axis=0, dtype=np.uint64)
    return (total % modulus).astype(np.int64)


def append_checksum_row(matrix: np.ndarray, operand_bits: int) -> np.ndarray:
    """``matrix`` with its checksum row appended as the last vector."""
    matrix = np.asarray(matrix)
    return np.vstack([matrix, checksum_row(matrix, operand_bits)[None, :]])


def verify_wave_residues(values: np.ndarray, operand_bits: int) -> np.ndarray:
    """Check the residue invariant of checksum-protected wave values.

    Parameters
    ----------
    values:
        Wave results of shape ``(..., n + 1)`` where the last column is
        the checksum row's dot product (the layout
        :func:`append_checksum_row` produces).
    operand_bits:
        The modulus width the checksum row was built with.

    Returns
    -------
    np.ndarray
        Boolean array of shape ``(...)`` — ``True`` where the wave's
        residues agree (wave plausibly clean), ``False`` where corruption
        is proven.
    """
    values = np.asarray(values)
    if values.shape[-1] < 2:
        raise OperandError(
            "verify_wave_residues() needs at least one data column "
            "plus the checksum column"
        )
    modulus = np.uint64(1) << np.uint64(operand_bits)
    # View through uint64: two's-complement reinterpretation is exactly
    # reduction mod 2**64, which preserves residues mod 2**operand_bits.
    as_u64 = values.astype(np.int64).view(np.uint64).reshape(values.shape)
    data = as_u64[..., :-1] % modulus
    check = as_u64[..., -1] % modulus
    return (data.sum(axis=-1, dtype=np.uint64) % modulus) == check
