"""Fault injectors wrapping the existing hardware simulators.

Three injection points, all driven by one :class:`~repro.faults.plan.FaultPlan`:

* :class:`FaultyCrossbar` — a :class:`~repro.hardware.crossbar.Crossbar`
  with physically stuck cells (the ``simulate_cells`` bit-slice path);
* :class:`FaultyPIMArray` — a composition wrapper around any array
  (:class:`~repro.hardware.pim_array.PIMArray` or
  :class:`~repro.hardware.noise.NoisyPIMArray` — faults compose with
  analog noise) that injects array-level faults per wave: stuck-cell
  regions, transient wave corruption, latency spikes, crossbar death;
* :class:`FaultyShardEngine` — a per-shard oracle the serving layer asks
  before each dispatch, returning a :class:`ShardVerdict`
  (ok / crash / hang / slow).

Every injector keeps its own *fault clock* on the simulated timeline;
hosts that know the dispatch time call :meth:`FaultyPIMArray.advance_to`,
standalone users let the clock auto-advance by each wave's latency.
All injections are seeded from the plan (reruns are byte-identical) and
emitted to telemetry as ``fault.*`` spans and ``faults.injected.*``
counters so every injected fault is visible in traces.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import CrossbarDeadError
from repro.faults.plan import FaultEvent, FaultPlan
from repro.hardware import bitslice
from repro.hardware.crossbar import Crossbar
from repro.hardware.pim_array import PIMBatchResult, PIMQueryResult
from repro.telemetry import get_recorder

#: Default additive corruption of a ``wave_corrupt`` fault. Chosen prime
#: and not divisible by any power of two, so the induced residue error is
#: never 0 mod 2**operand_bits — the checksum column detects it with
#: certainty (see :mod:`repro.faults.integrity`).
DEFAULT_CORRUPT_MAGNITUDE = 1_000_003


class _InflatedTiming:
    """Timing proxy that scales ``total_ns`` by a straggler factor.

    The underlying :class:`~repro.hardware.timing.WaveTiming` dataclasses
    are frozen, so latency spikes are modelled by delegation: every
    attribute of the real timing is visible unchanged except ``total_ns``
    (and the derived ``amortized_ns_per_query``), which stretch by
    ``factor``.
    """

    def __init__(self, inner, factor: float) -> None:
        self._inner = inner
        self._factor = float(factor)

    def __getattr__(self, name):
        return getattr(self._inner, name)

    @property
    def total_ns(self) -> float:
        return self._inner.total_ns * self._factor

    @property
    def amortized_ns_per_query(self) -> float:
        return self.total_ns / self._inner.n_queries


class FaultyCrossbar(Crossbar):
    """A crossbar with a fixed, seeded population of stuck cells.

    Models manufacture-time stuck-at defects at the physical bit-slice
    level: a seeded fraction of the cell grid is pinned to 0 (stuck-at-0)
    or to the cell's full-scale value (stuck-at-1). The defect map is a
    property of the device, so it survives re-programming — every
    :meth:`program` call re-applies it via the ``_apply_cell_faults``
    hook.
    """

    def __init__(
        self,
        config=None,
        crossbar_id: int = 0,
        endurance_tracker=None,
        *,
        stuck_fraction: float = 0.0,
        stuck_to: int = 0,
        seed: int = 0,
    ) -> None:
        super().__init__(config, crossbar_id, endurance_tracker)
        if not 0.0 <= stuck_fraction <= 1.0:
            raise ValueError("stuck_fraction must be in [0, 1]")
        if stuck_to not in (0, 1):
            raise ValueError("stuck_to must be 0 or 1")
        rng = np.random.default_rng((seed << 16) ^ crossbar_id)
        self._stuck_mask = rng.random(self._cells.shape) < stuck_fraction
        self._stuck_value = np.uint8(
            0 if stuck_to == 0 else (1 << self.config.cell_bits) - 1
        )

    @property
    def stuck_cells(self) -> int:
        """Number of defective cells on this crossbar."""
        return int(self._stuck_mask.sum())

    def _apply_cell_faults(self) -> None:
        self._cells[self._stuck_mask] = self._stuck_value


class FaultyPIMArray:
    """Array-level fault injection by composition.

    Wraps any PIM array (exact or noisy) and applies the plan's faults
    for ``target`` to each wave. Everything not overridden — programming,
    stats, endurance, layouts — delegates to the wrapped array, so the
    injector is a drop-in anywhere a ``PIMArray`` is expected.

    Parameters
    ----------
    inner:
        The wrapped array. Faults apply *after* the inner array computed
        its (possibly noisy) values, mirroring physical layering: read
        faults corrupt whatever the analog pipeline produced.
    plan:
        The fault schedule.
    target:
        This array's victim label in the plan (serving uses
        ``"shard<i>"``; standalone arrays conventionally ``"array"``).
    auto_advance:
        Advance the fault clock by each wave's latency. Hosts that track
        simulated time themselves (the serving layer) disable this and
        call :meth:`advance_to` before dispatching.
    """

    def __init__(
        self,
        inner,
        plan: FaultPlan,
        target: str = "array",
        *,
        auto_advance: bool = True,
    ) -> None:
        self._inner = inner
        self.plan = plan
        self.target = target
        self.auto_advance = auto_advance
        self.now_ns = 0.0
        self.injected: dict[str, int] = {}
        self._event_rngs: dict[int, np.random.Generator] = {}
        self._stuck_cache: dict[tuple[str, int], tuple] = {}
        self._bankgroup_cache: dict[int, frozenset] = {}
        self._repaired: set[int] = set()

    # Everything not fault-related is the wrapped array's business.
    def __getattr__(self, name):
        return getattr(self._inner, name)

    @property
    def inner(self):
        """The wrapped array."""
        return self._inner

    def advance_to(self, t_ns: float) -> None:
        """Move the fault clock forward to simulated time ``t_ns``."""
        self.now_ns = max(self.now_ns, float(t_ns))

    # ------------------------------------------------------------------
    # repair API (consumed by repro.repair)
    # ------------------------------------------------------------------
    #: Persistent device faults a spare-crossbar remap can clear. The
    #: transient kinds (wave_corrupt, latency_spike) expire on their own
    #: and have no physical substrate to swap out.
    REPAIRABLE_KINDS = ("stuck_cells", "crossbar_dead")

    def _active(self, kind: str) -> list[FaultEvent]:
        """Plan-active events of ``kind``, minus those already repaired."""
        return [
            e
            for e in self.plan.active(self.target, kind, self.now_ns)
            if id(e) not in self._repaired
        ]

    def repairable_events(self, now_ns: float | None = None) -> list[FaultEvent]:
        """Unrepaired persistent device faults active at ``now_ns``.

        The scrubber calls this after a failed probe to learn *what* to
        remap; ``now_ns`` defaults to the injector's fault clock.
        """
        t = self.now_ns if now_ns is None else float(now_ns)
        out: list[FaultEvent] = []
        for kind in self.REPAIRABLE_KINDS:
            out.extend(
                e
                for e in self.plan.active(self.target, kind, t)
                if id(e) not in self._repaired
            )
        return out

    def mark_repaired(self, event: FaultEvent) -> None:
        """Suppress ``event`` permanently: its physical substrate was
        remapped onto a spare, so the defect no longer touches waves."""
        self._repaired.add(id(event))
        self._stuck_cache = {
            key: cached
            for key, cached in self._stuck_cache.items()
            if key[1] != id(event)
        }
        tele = get_recorder()
        if tele.enabled:
            tele.metrics.counter("faults.repaired").add(1)

    def affected_vectors(self, name: str, event: FaultEvent) -> np.ndarray:
        """Global-in-matrix vector indices a stuck-cells event corrupts.

        The repair layer maps these onto data-crossbar indices to decide
        which physical crossbars to remap. ``crossbar_dead`` events have
        no vector footprint (the whole array refuses service).
        """
        if event.kind != "stuck_cells":
            return np.array([], dtype=np.int64)
        affected, _rows = self._stuck_rows(name, event)
        return np.asarray(affected, dtype=np.int64)

    # ------------------------------------------------------------------
    def _rng_for_event(self, event: FaultEvent) -> np.random.Generator:
        """Persistent per-event RNG stream (draws stay aligned per wave)."""
        key = id(event)
        rng = self._event_rngs.get(key)
        if rng is None:
            rng = self.plan.rng_for(
                self.target, f"{event.kind}@{event.t_ns}"
            )
            self._event_rngs[key] = rng
        return rng

    def _note(self, kind: str, **attrs) -> None:
        """Count an injection and surface it in telemetry."""
        self.injected[kind] = self.injected.get(kind, 0) + 1
        tele = get_recorder()
        if tele.enabled:
            tele.metrics.counter(f"faults.injected.{kind}").add(1)
            with tele.span(
                f"fault.{kind}", "fault_injection",
                target=self.target, **attrs,
            ):
                pass  # zero-duration marker on the trace timeline

    def _check_dead(self) -> None:
        dead = self._active("crossbar_dead")
        if dead:
            self._note("crossbar_dead")
            raise CrossbarDeadError(
                f"{self.target} is dead (crossbar failure at "
                f"t={dead[0].t_ns:.0f}ns)",
                unit=self.target,
                timestamp_ns=self.now_ns,
                fault_t_ns=dead[0].t_ns,
            )

    # ------------------------------------------------------------------
    def _stuck_rows(self, name: str, event: FaultEvent):
        """Corrupted replacement rows for a stuck-cells event.

        The defect positions are seeded once per (matrix, event) and the
        affected rows' stuck copies cached, so only those vectors' dot
        products are ever recomputed.
        """
        key = (name, id(event))
        cached = self._stuck_cache.get(key)
        if cached is not None:
            return cached
        matrix = self._inner.matrix_of(name)
        n_vectors, dims = matrix.shape
        fraction = float(event.params.get("fraction", 0.01))
        stuck_to = int(event.params.get("stuck_to", 0))
        stuck_value = (
            0 if stuck_to == 0 else (1 << self._inner.config.operand_bits) - 1
        )
        count = max(1, int(round(fraction * n_vectors * dims)))
        rng = self.plan.rng_for(
            self.target, f"stuck@{event.t_ns}:{name}"
        )
        vec_idx = rng.integers(0, n_vectors, size=count)
        dim_idx = rng.integers(0, dims, size=count)
        affected = np.unique(vec_idx)
        local = {int(v): i for i, v in enumerate(affected)}
        rows = matrix[affected].copy()
        rows[[local[int(v)] for v in vec_idx], dim_idx] = stuck_value
        self._stuck_cache[key] = (affected, rows)
        return affected, rows

    def _apply_stuck(
        self, name: str, queries: np.ndarray, values: np.ndarray
    ) -> np.ndarray:
        events = [
            e
            for e in self._active("stuck_cells")
            if e.params.get("matrix") in (None, name)
        ]
        if not events:
            return values
        values = values.copy()
        bits = self._inner.config.accumulator_bits
        for event in events:
            affected, rows = self._stuck_rows(name, event)
            dots = queries.astype(np.int64) @ rows.T
            dots = bitslice.truncate_result(dots, bits)
            values[..., affected] = dots
            self._note("stuck_cells", matrix=name, vectors=len(affected))
        return values

    def _apply_corruption(self, values: np.ndarray) -> np.ndarray:
        events = self._active("wave_corrupt")
        if not events:
            return values
        out = np.atleast_2d(values).copy()
        hit = False
        for event in events:
            rng = self._rng_for_event(event)
            probability = float(event.params.get("probability", 1.0))
            magnitude = int(
                event.params.get("magnitude", DEFAULT_CORRUPT_MAGNITUDE)
            )
            for row in out:
                if rng.random() < probability:
                    col = int(rng.integers(0, row.shape[0]))
                    row[col] += magnitude
                    hit = True
                    self._note("wave_corrupt", column=col)
        if not hit:
            return values
        return out.reshape(values.shape)

    def _straggling_groups(self, event: FaultEvent, n_groups: int) -> frozenset:
        """The seeded set of bank groups one straggler event slows."""
        key = id(event)
        cached = self._bankgroup_cache.get(key)
        if cached is None:
            count = max(1, min(int(event.params.get("groups", 1)), n_groups))
            rng = self.plan.rng_for(self.target, f"bankgroup@{event.t_ns}")
            cached = frozenset(
                int(g) for g in rng.permutation(n_groups)[:count]
            )
            self._bankgroup_cache[key] = cached
        return cached

    def _bankgroup_factor(self, name: str) -> float:
        """Wave stretch from correlated bank-group stragglers.

        Banked substrates run waves in all-bank lockstep, so the wave is
        bounded by its slowest bank: the factor applies whenever any of
        the matrix's physical banks falls in a straggling group. Arrays
        without a bank layout (crossbars) have no group structure to
        dodge into, so the whole array stretches.
        """
        events = self._active("bankgroup_straggler")
        if not events:
            return 1.0
        config = getattr(self._inner, "config", None)
        banks_per_group = int(
            getattr(config, "banks_per_bankgroup", 0) or 0
        )
        total_banks = int(getattr(config, "total_banks", 0) or 0)
        unit_ids = None
        if banks_per_group > 0 and total_banks > 0:
            unit_ids_of = getattr(self._inner, "unit_ids_of", None)
            if unit_ids_of is not None:
                try:
                    unit_ids = unit_ids_of(name)
                except Exception:
                    unit_ids = None
        factor = 1.0
        for event in events:
            hit = True
            if unit_ids is not None:
                n_groups = max(1, total_banks // banks_per_group)
                slowed = self._straggling_groups(event, n_groups)
                hit = any(
                    (int(b) // banks_per_group) in slowed for b in unit_ids
                )
            if hit:
                event_factor = float(event.params.get("factor", 4.0))
                factor *= event_factor
                self._note(
                    "bankgroup_straggler", matrix=name, factor=event_factor
                )
        return factor

    def _apply_latency(self, timing, name: str | None = None):
        factor = 1.0
        events = self._active("latency_spike")
        if events:
            for event in events:
                factor *= float(event.params.get("factor", 10.0))
            self._note("latency_spike", factor=factor)
        if name is not None:
            factor *= self._bankgroup_factor(name)
        if factor == 1.0:
            return timing
        return _InflatedTiming(timing, factor)

    # ------------------------------------------------------------------
    def _wave(self, method: str, name, vectors, input_bits):
        self._check_dead()
        result = getattr(self._inner, method)(
            name, vectors, input_bits=input_bits
        )
        queries = np.atleast_2d(np.asarray(vectors))
        values = self._apply_stuck(name, queries, result.values)
        values = self._apply_corruption(values)
        timing = self._apply_latency(result.timing, name)
        if self.auto_advance:
            self.now_ns += timing.total_ns
        return values, timing

    def query(self, name, vector, input_bits=None) -> PIMQueryResult:
        values, timing = self._wave("query", name, vector, input_bits)
        return PIMQueryResult(values=values, timing=timing)

    def query_many(self, name, vectors, input_bits=None) -> PIMQueryResult:
        values, timing = self._wave("query_many", name, vectors, input_bits)
        return PIMQueryResult(values=values, timing=timing)

    def query_batch(self, name, vectors, input_bits=None) -> PIMBatchResult:
        values, timing = self._wave("query_batch", name, vectors, input_bits)
        return PIMBatchResult(values=values, timing=timing)


@dataclass(frozen=True)
class ShardVerdict:
    """What the fault plan says about one shard at one instant.

    ``status`` is ``"ok"``, ``"crash"``, ``"hang"``, ``"drop"`` (the
    host<->shard link ate the dispatch — fail fast, transient) or
    ``"slow"``; ``factor`` is the service-time multiplier (1.0 unless
    slow); ``delay_ns`` is additive link delay on top of the stretched
    wave; ``event`` is the triggering fault, if any.
    """

    status: str
    factor: float = 1.0
    delay_ns: float = 0.0
    event: FaultEvent | None = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"


class FaultyShardEngine:
    """Per-shard fault oracle the serving layer consults each dispatch.

    Crash dominates hang dominates link drop dominates slow: a crashed
    shard fails fast regardless of other active faults, a hung one
    never answers (the serving watchdog's problem), a dropped dispatch
    fails fast but transiently, and a slow one answers late by the
    product of the active slowdown factors (sustained ``slow_shard``
    times any ``intermittent_slow`` window currently in its slow phase)
    plus any ``link_flaky`` delay. Link draws are stateless
    (:meth:`FaultPlan.hash_unit`), so the verdict at an instant is a
    pure function of the plan — independent of call order.
    """

    def __init__(self, plan: FaultPlan, target: str) -> None:
        self.plan = plan
        self.target = target

    def _link_verdict(self, now_ns: float) -> tuple[str, float, FaultEvent | None]:
        """(status, delay_ns, event) of the host<->shard link."""
        delay = 0.0
        event_hit: FaultEvent | None = None
        for event in self.plan.active(self.target, "link_flaky", now_ns):
            drop_p = float(event.params.get("drop_probability", 0.0))
            delay_p = float(event.params.get("delay_probability", 0.0))
            u = self.plan.hash_unit(
                self.target, f"link@{event.t_ns}", now_ns
            )
            if u < drop_p:
                return "drop", 0.0, event
            if u < drop_p + delay_p:
                delay += float(event.params.get("delay_ns", 100_000.0))
                event_hit = event
        return "ok", delay, event_hit

    def _slow_factor(self, now_ns: float) -> tuple[float, FaultEvent | None]:
        """Product of the active sustained + intermittent slowdowns."""
        factor = 1.0
        event_hit: FaultEvent | None = None
        for event in self.plan.active(self.target, "slow_shard", now_ns):
            factor *= float(event.params.get("factor", 10.0))
            event_hit = event_hit or event
        for event in self.plan.active(
            self.target, "intermittent_slow", now_ns
        ):
            period = float(event.params.get("period_ns", 1_000_000.0))
            duty = float(event.params.get("duty", 0.5))
            if period <= 0:
                continue
            phase = (now_ns - event.t_ns) % period
            if phase < duty * period:
                factor *= float(event.params.get("factor", 10.0))
                event_hit = event_hit or event
        return factor, event_hit

    def outcome(self, now_ns: float) -> ShardVerdict:
        """The shard's verdict at simulated time ``now_ns``."""
        crashes = self.plan.active(self.target, "shard_crash", now_ns)
        if crashes:
            return ShardVerdict(status="crash", event=crashes[0])
        hangs = self.plan.active(self.target, "shard_hang", now_ns)
        if hangs:
            return ShardVerdict(status="hang", event=hangs[0])
        link_status, delay, link_event = self._link_verdict(now_ns)
        if link_status == "drop":
            return ShardVerdict(status="drop", event=link_event)
        factor, slow_event = self._slow_factor(now_ns)
        if factor != 1.0 or delay > 0.0:
            return ShardVerdict(
                status="slow",
                factor=factor,
                delay_ns=delay,
                event=slow_event or link_event,
            )
        return ShardVerdict(status="ok")

    def crash_time(self) -> float | None:
        """Earliest scheduled crash of this shard (None if never)."""
        crashes = self.plan.events_for(self.target, "shard_crash")
        return crashes[0].t_ns if crashes else None
