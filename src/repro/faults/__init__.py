"""Deterministic fault injection for the simulated PIM stack.

The paper's pitch is *exactness on unreliable analog hardware*; this
package exercises the other half of unreliability — hardware that fails
mid-run. It provides:

* :class:`FaultPlan` / :class:`FaultEvent` — a seedable schedule of
  fault events on the simulated clock (stuck cell regions, transient
  wave corruption, latency spikes, crossbar death, shard crash/hang/
  slowdown);
* injectors wrapping the existing simulators —
  :class:`FaultyCrossbar` (cell-level stuck-at for the
  ``simulate_cells`` path), :class:`FaultyPIMArray` (array-level faults,
  composable with :class:`~repro.hardware.noise.NoisyPIMArray` and the
  :class:`~repro.hardware.endurance.EnduranceTracker`), and
  :class:`FaultyShardEngine` (shard-level crash/hang/slow verdicts the
  serving layer consults per dispatch);
* residue/checksum integrity helpers (:mod:`repro.faults.integrity`)
  that flag corrupted waves without trusting analog values — one extra
  non-negative integer column per crossbar, paper-consistent;
* gray failures (:data:`GRAY_FAULT_KINDS`) — sustained and intermittent
  slowdowns, correlated bank-group stragglers, flaky host<->shard links
  that delay or drop dispatches — all *bit-exactness-preserving* (a
  slow answer is still the right answer), generated in one call by
  :meth:`FaultPlan.gray_chaos`;
* :class:`ChaosCampaign` (:mod:`repro.faults.campaign`) — declarative
  phased scenario suites that serve identical traffic under a fault
  plan with the gray-failure defenses on and off, asserting
  bit-exactness against a clean reference and reporting p99/availability
  per arm;
* correlated outages — :meth:`FaultPlan.domain_outage` crashes every
  shard of whole failure domains simultaneously (plus staggered-recovery
  brownouts), and :class:`DisasterRecoveryCampaign`
  (:mod:`repro.faults.dr`) proves domain-spread placement survives them
  at equal hardware and that a checkpointed cold restart is
  bit-identical to an uninterrupted service.

Every injected fault is deterministic (seeded from the plan) and
visible in telemetry (``fault.*`` spans and ``faults.*`` counters), so
recovered runs are reproducible and auditable. The recovery machinery
that consumes these faults lives in :mod:`repro.serving`.
"""

from repro.faults.integrity import (
    append_checksum_row,
    checksum_row,
    verify_wave_residues,
)
from repro.faults.injectors import (
    DEFAULT_CORRUPT_MAGNITUDE,
    FaultyCrossbar,
    FaultyPIMArray,
    FaultyShardEngine,
    ShardVerdict,
)
from repro.faults.campaign import (
    ChaosCampaign,
    ChaosScenario,
    standard_campaign,
)
from repro.faults.dr import DisasterRecoveryCampaign
from repro.faults.plan import (
    ARRAY_FAULT_KINDS,
    FAULT_KINDS,
    GRAY_FAULT_KINDS,
    SHARD_FAULT_KINDS,
    FaultEvent,
    FaultPlan,
)

__all__ = [
    "ARRAY_FAULT_KINDS",
    "ChaosCampaign",
    "ChaosScenario",
    "DEFAULT_CORRUPT_MAGNITUDE",
    "DisasterRecoveryCampaign",
    "FAULT_KINDS",
    "FaultEvent",
    "FaultPlan",
    "FaultyCrossbar",
    "FaultyPIMArray",
    "FaultyShardEngine",
    "GRAY_FAULT_KINDS",
    "SHARD_FAULT_KINDS",
    "ShardVerdict",
    "append_checksum_row",
    "checksum_row",
    "standard_campaign",
    "verify_wave_residues",
]
