"""Query workload generators of controlled difficulty.

Bound pruning — and therefore every PIM speedup in the paper — depends
on how *selective* a query is: a query near dense data has a tiny k-th
distance and bounds prune almost everything; a query far from the data
sees concentrated distances and bounds prune nothing. These generators
produce workloads along that spectrum so ablations can sweep it:

* ``member``      — exact dataset points (duplicates; zero distance);
* ``near``        — small perturbations of dataset points (the default
  classification-style workload);
* ``far``         — points near the corners of the unit cube, away from
  the data manifold;
* ``uniform``     — i.i.d. uniform queries;
* ``adversarial`` — points at the *mean* of many dataset points, where
  distances concentrate the most.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DatasetError

KINDS = ("member", "near", "far", "uniform", "adversarial")


def make_workload(
    data: np.ndarray,
    kind: str,
    n_queries: int = 5,
    seed: int = 0,
    noise: float = 0.02,
) -> np.ndarray:
    """Queries of one difficulty class against ``data`` (in [0, 1])."""
    data = np.asarray(data, dtype=np.float64)
    if data.ndim != 2:
        raise DatasetError("make_workload() expects a 2-D dataset")
    if n_queries <= 0:
        raise DatasetError("n_queries must be positive")
    if kind not in KINDS:
        raise DatasetError(f"unknown kind {kind!r}; one of {KINDS}")
    rng = np.random.default_rng(seed)
    n, dims = data.shape
    if kind == "member":
        return data[rng.integers(0, n, size=n_queries)].copy()
    if kind == "near":
        picks = data[rng.integers(0, n, size=n_queries)]
        return np.clip(
            picks + noise * rng.standard_normal((n_queries, dims)), 0, 1
        )
    if kind == "far":
        corners = rng.integers(0, 2, size=(n_queries, dims)).astype(
            np.float64
        )
        return np.clip(
            corners + 0.05 * rng.standard_normal((n_queries, dims)), 0, 1
        )
    if kind == "uniform":
        return rng.random((n_queries, dims))
    # adversarial: centroids of large random subsets
    queries = np.empty((n_queries, dims))
    for i in range(n_queries):
        subset = rng.integers(0, n, size=max(10, n // 4))
        queries[i] = data[subset].mean(axis=0)
    return np.clip(queries, 0.0, 1.0)


def workload_suite(
    data: np.ndarray, n_queries: int = 5, seed: int = 0
) -> dict[str, np.ndarray]:
    """One workload of each kind, keyed by kind."""
    return {
        kind: make_workload(data, kind, n_queries=n_queries, seed=seed)
        for kind in KINDS
    }
