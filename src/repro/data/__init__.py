"""Synthetic stand-ins for the paper's datasets (Table 6 + LSH codes)."""

from repro.data.catalog import (
    KMEANS_DATASETS,
    KNN_DATASETS,
    PROFILES,
    DatasetProfile,
    dataset_names,
    make_dataset,
    make_queries,
    profile,
)
from repro.data.lsh import RandomHyperplaneLSH, make_binary_codes
from repro.data.synthetic import (
    clustered,
    correlated,
    diffuse,
    queries_from,
    sparse_counts,
)

__all__ = [
    "DatasetProfile",
    "KMEANS_DATASETS",
    "KNN_DATASETS",
    "PROFILES",
    "RandomHyperplaneLSH",
    "clustered",
    "correlated",
    "dataset_names",
    "diffuse",
    "make_binary_codes",
    "make_dataset",
    "make_queries",
    "profile",
    "queries_from",
    "sparse_counts",
]
