"""Synthetic dataset generators standing in for the paper's real data.

The paper evaluates on eight multi-GB feature datasets (Table 6). Those
are not redistributable here, so we generate scaled synthetic equivalents
that preserve what the algorithms are sensitive to:

* **dimensionality** — kept identical to Table 6 (it drives the
  transfer-volume ratio ``d*b`` vs ``3*b`` behind every speedup);
* **cluster structure** — mixture-of-Gaussians with controllable
  separation (it drives bound pruning ratios: tight clusters prune like
  MSD, diffuse noise prunes poorly like GIST);
* **inter-dimension correlation** — AR(1)-style smoothing (audio/visual
  features are strongly correlated, which segment-mean bounds exploit);
* **sparsity** — exponential magnitude with hard zeros (Enron-like
  bag-of-words features).

All generators return data min-max normalised into ``[0, 1]``, the
representation the paper's pipeline (Section V-B) and all algorithms
here operate on.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DatasetError


def _normalize(data: np.ndarray) -> np.ndarray:
    """Min-max normalise each dimension into [0, 1]."""
    lo = data.min(axis=0)
    rng = data.max(axis=0) - lo
    rng[rng == 0] = 1.0
    return (data - lo) / rng


def _check(n: int, dims: int) -> None:
    if n <= 0 or dims <= 0:
        raise DatasetError("n and dims must be positive")


def clustered(
    n: int,
    dims: int,
    n_clusters: int = 30,
    spread: float = 0.05,
    correlation: float = 0.0,
    seed: int = 0,
) -> np.ndarray:
    """Gaussian-mixture data (image/audio-feature-like).

    Parameters
    ----------
    n, dims:
        Shape of the dataset.
    n_clusters:
        Mixture components.
    spread:
        Within-cluster standard deviation relative to the unit cube;
        small spread = strong cluster structure = strong bound pruning.
    correlation:
        0..1 AR(1) smoothing across adjacent dimensions (segment-summary
        bounds profit from correlated dimensions).
    seed:
        RNG seed.
    """
    _check(n, dims)
    rng = np.random.default_rng(seed)
    centers = rng.random((n_clusters, dims))
    labels = rng.integers(0, n_clusters, size=n)
    noise = rng.standard_normal((n, dims)) * spread
    if correlation > 0.0:
        for j in range(1, dims):
            noise[:, j] = (
                correlation * noise[:, j - 1]
                + np.sqrt(1.0 - correlation**2) * noise[:, j]
            )
    return _normalize(centers[labels] + noise)


def diffuse(n: int, dims: int, seed: int = 0) -> np.ndarray:
    """Near-uniform data with weak structure (GIST-like).

    High-dimensional near-uniform data concentrates pairwise distances,
    so every bound prunes poorly — reproducing the paper's observation
    that LB_FNN 'natively shows weak pruning efficiency on GIST'.
    """
    _check(n, dims)
    rng = np.random.default_rng(seed)
    base = rng.random((n, dims))
    # a faint mixture tilt so the data is not perfectly i.i.d. uniform
    # (pure uniform would leave literally zero pruning; GIST still gives
    # the paper's bounds ~71% approximation quality, i.e. weak-but-some)
    centers = rng.random((8, dims))
    labels = rng.integers(0, 8, size=n)
    return _normalize(0.72 * base + 0.28 * centers[labels])


def sparse_counts(
    n: int,
    dims: int,
    density: float = 0.1,
    n_clusters: int = 20,
    seed: int = 0,
) -> np.ndarray:
    """Sparse non-negative data (Enron bag-of-words-like).

    Each cluster activates its own subset of dimensions with
    exponentially distributed magnitudes; everything else is zero.
    """
    _check(n, dims)
    if not 0.0 < density <= 1.0:
        raise DatasetError("density must be in (0, 1]")
    rng = np.random.default_rng(seed)
    data = np.zeros((n, dims))
    labels = rng.integers(0, n_clusters, size=n)
    active_per_cluster = max(1, int(dims * density))
    cluster_dims = [
        rng.choice(dims, size=active_per_cluster, replace=False)
        for _ in range(n_clusters)
    ]
    for i in range(n):
        cols = cluster_dims[labels[i]]
        data[i, cols] = rng.exponential(1.0, size=cols.size)
    return _normalize(data)


def correlated(
    n: int,
    dims: int,
    n_clusters: int = 30,
    spread: float = 0.06,
    seed: int = 0,
) -> np.ndarray:
    """Strongly dimension-correlated mixture (MSD/timbre-like)."""
    return clustered(
        n, dims, n_clusters=n_clusters, spread=spread,
        correlation=0.8, seed=seed,
    )


def queries_from(
    data: np.ndarray, n_queries: int, noise: float = 0.02, seed: int = 0
) -> np.ndarray:
    """Query workload: perturbed dataset points (classification-style).

    Queries near the data manifold keep kNN meaningful; pure random
    queries in high dimensions are equidistant from everything.
    """
    data = np.asarray(data, dtype=np.float64)
    if n_queries <= 0:
        raise DatasetError("n_queries must be positive")
    rng = np.random.default_rng(seed)
    picks = rng.integers(0, data.shape[0], size=n_queries)
    perturbed = data[picks] + noise * rng.standard_normal(
        (n_queries, data.shape[1])
    )
    return np.clip(perturbed, 0.0, 1.0)
