"""Loading user-supplied datasets into the pipeline's input form.

The library operates on min-max-normalised float matrices in [0, 1]
(Section V-B's first step). These helpers read a matrix from common
on-disk formats and normalise it, so real feature files can be dropped
into the CLI and the examples:

* ``.npy``  — a 2-D ``numpy.save`` array;
* ``.npz``  — the first 2-D array in the archive (or a named one);
* ``.csv`` / ``.txt`` — numeric text, comma or whitespace separated,
  optionally with a header row (auto-detected).
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.errors import DatasetError


def normalize_unit_range(data: np.ndarray) -> np.ndarray:
    """Min-max normalise each dimension into [0, 1] (constant dims -> 0)."""
    data = np.asarray(data, dtype=np.float64)
    if data.ndim != 2:
        raise DatasetError("expected a 2-D (vectors x dims) matrix")
    lo = data.min(axis=0)
    rng = data.max(axis=0) - lo
    rng[rng == 0] = 1.0
    return (data - lo) / rng


def _load_csv(path: Path) -> np.ndarray:
    with open(path) as handle:
        first = handle.readline()
    delimiter = "," if "," in first else None
    try:
        return np.loadtxt(path, delimiter=delimiter)
    except ValueError:
        # retry assuming a header row
        try:
            return np.loadtxt(path, delimiter=delimiter, skiprows=1)
        except ValueError as exc:
            raise DatasetError(f"cannot parse {path} as numbers: {exc}")


def load_matrix(
    path: str | Path,
    array_name: str | None = None,
    normalize: bool = True,
    max_rows: int | None = None,
) -> np.ndarray:
    """Read a dataset file and return a (normalised) float matrix.

    Parameters
    ----------
    path:
        ``.npy``, ``.npz``, ``.csv`` or ``.txt`` file.
    array_name:
        For ``.npz``: which archive member to use (default: the first
        2-D array).
    normalize:
        Min-max normalise into [0, 1] (the pipeline's expected form).
    max_rows:
        Keep only the first ``max_rows`` rows (handy for slicing huge
        files down to simulator scale).
    """
    path = Path(path)
    if not path.exists():
        raise DatasetError(f"no dataset file at {path}")
    suffix = path.suffix.lower()
    if suffix == ".npy":
        data = np.load(path)
    elif suffix == ".npz":
        with np.load(path) as bundle:
            if array_name is not None:
                if array_name not in bundle.files:
                    raise DatasetError(
                        f"{path} has no array {array_name!r}; "
                        f"available: {bundle.files}"
                    )
                data = bundle[array_name]
            else:
                two_d = [
                    name
                    for name in bundle.files
                    if bundle[name].ndim == 2
                ]
                if not two_d:
                    raise DatasetError(f"{path} contains no 2-D array")
                data = bundle[two_d[0]]
    elif suffix in (".csv", ".txt"):
        data = _load_csv(path)
    else:
        raise DatasetError(
            f"unsupported dataset format {suffix!r}; "
            "use .npy, .npz, .csv or .txt"
        )
    data = np.atleast_2d(np.asarray(data, dtype=np.float64))
    if data.ndim != 2 or data.size == 0:
        raise DatasetError(f"{path} did not yield a non-empty 2-D matrix")
    if not np.all(np.isfinite(data)):
        raise DatasetError(f"{path} contains NaN or infinite values")
    if max_rows is not None:
        if max_rows <= 0:
            raise DatasetError("max_rows must be positive")
        data = data[:max_rows]
    return normalize_unit_range(data) if normalize else data
