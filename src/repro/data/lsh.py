"""Locality-sensitive hashing to binary codes (Charikar, STOC'02).

The paper's Hamming-distance experiments (Fig. 14) learn 128-1024-bit
binary codes from GIST descriptors with LSH. We implement the same
random-hyperplane scheme: bit ``j`` of a vector's code is the sign of
its projection onto random hyperplane ``j``. The scheme preserves
angular similarity: ``P[bit differs] = angle(p, q) / pi``.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DatasetError


class RandomHyperplaneLSH:
    """Sign-of-projection binary encoder.

    Parameters
    ----------
    input_dims:
        Dimensionality of the source descriptors.
    code_bits:
        Length of the produced binary codes.
    seed:
        RNG seed for the hyperplane directions.
    """

    def __init__(self, input_dims: int, code_bits: int, seed: int = 0) -> None:
        if input_dims <= 0 or code_bits <= 0:
            raise DatasetError("input_dims and code_bits must be positive")
        self.input_dims = input_dims
        self.code_bits = code_bits
        rng = np.random.default_rng(seed)
        self._planes = rng.standard_normal((input_dims, code_bits))

    def encode(self, vectors: np.ndarray) -> np.ndarray:
        """Binary codes (0/1 int8 matrix) of one or more vectors.

        Vectors are centred first so sign bits split the data instead of
        collapsing (all-positive features would otherwise all hash to 1).
        """
        vectors = np.atleast_2d(np.asarray(vectors, dtype=np.float64))
        if vectors.shape[1] != self.input_dims:
            raise DatasetError(
                f"expected {self.input_dims}-dimensional vectors, "
                f"got {vectors.shape[1]}"
            )
        centred = vectors - vectors.mean(axis=1, keepdims=True)
        return (centred @ self._planes > 0).astype(np.int8)


def make_binary_codes(
    n: int,
    code_bits: int,
    input_dims: int = 960,
    n_clusters: int = 30,
    seed: int = 0,
) -> np.ndarray:
    """GIST-like descriptors hashed to ``code_bits``-bit codes.

    Mirrors the paper's Fig. 14 data pipeline: synthetic descriptors with
    cluster structure, then random-hyperplane LSH — so codes of nearby
    descriptors share most bits.
    """
    from repro.data.synthetic import clustered

    descriptors = clustered(
        n, input_dims, n_clusters=n_clusters, spread=0.05, seed=seed
    )
    lsh = RandomHyperplaneLSH(input_dims, code_bits, seed=seed + 1)
    return lsh.encode(descriptors)
