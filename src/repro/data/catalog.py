"""Scaled synthetic stand-ins for the paper's Table 6 datasets.

Each profile preserves the original dimensionality and the statistical
character that drives algorithm behaviour (see
:mod:`repro.data.synthetic`); cardinality is scaled down by
``scale`` so experiments run on a laptop. The paper's N values are kept
as ``paper_n`` for documentation and for the transfer-volume math in
EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.data import synthetic
from repro.errors import DatasetError


@dataclass(frozen=True)
class DatasetProfile:
    """One Table 6 row, plus the generator reproducing its character."""

    name: str
    paper_n: int
    dims: int
    default_n: int
    generator: Callable[[int, int, int], np.ndarray]
    description: str


def _imagenet(n: int, dims: int, seed: int) -> np.ndarray:
    return synthetic.clustered(
        n, dims, n_clusters=40, spread=0.05, correlation=0.3, seed=seed
    )


def _msd(n: int, dims: int, seed: int) -> np.ndarray:
    return synthetic.correlated(n, dims, n_clusters=30, spread=0.05, seed=seed)


def _gist(n: int, dims: int, seed: int) -> np.ndarray:
    # weak clusters + strong adjacent-dimension correlation, calibrated
    # so LB_FNN(d/4) approximates ~71% of the exact distance (the
    # paper's measured figure for GIST) and prunes correspondingly badly
    return synthetic.clustered(
        n, dims, n_clusters=8, spread=0.2, correlation=0.7, seed=seed
    )


def _trevi(n: int, dims: int, seed: int) -> np.ndarray:
    return synthetic.clustered(
        n, dims, n_clusters=50, spread=0.03, correlation=0.5, seed=seed
    )


def _year(n: int, dims: int, seed: int) -> np.ndarray:
    return synthetic.clustered(
        n, dims, n_clusters=25, spread=0.07, correlation=0.4, seed=seed
    )


def _notre(n: int, dims: int, seed: int) -> np.ndarray:
    return synthetic.clustered(
        n, dims, n_clusters=35, spread=0.04, correlation=0.4, seed=seed
    )


def _nuswide(n: int, dims: int, seed: int) -> np.ndarray:
    return synthetic.clustered(
        n, dims, n_clusters=30, spread=0.06, correlation=0.2, seed=seed
    )


def _enron(n: int, dims: int, seed: int) -> np.ndarray:
    return synthetic.sparse_counts(
        n, dims, density=0.08, n_clusters=25, seed=seed
    )


PROFILES: dict[str, DatasetProfile] = {
    p.name: p
    for p in [
        DatasetProfile(
            "ImageNet", 2340173, 150, 4000, _imagenet,
            "CNN visual features: many moderately tight clusters",
        ),
        DatasetProfile(
            "MSD", 992272, 420, 3000, _msd,
            "audio timbre features: strong inter-dimension correlation",
        ),
        DatasetProfile(
            "GIST", 1000000, 960, 2000, _gist,
            "scene descriptors: diffuse, bounds prune poorly",
        ),
        DatasetProfile(
            "Trevi", 100000, 4096, 800, _trevi,
            "patch descriptors: very high-dimensional, tight clusters",
        ),
        DatasetProfile(
            "Year", 515345, 90, 4000, _year,
            "song-year audio features: low-dimensional mixture",
        ),
        DatasetProfile(
            "Notre", 332668, 128, 4000, _notre,
            "photo-tourism patches: tight clusters",
        ),
        DatasetProfile(
            "NUS-WIDE", 269648, 500, 2500, _nuswide,
            "web-image tags+features: moderate clusters",
        ),
        DatasetProfile(
            "Enron", 100000, 1369, 1500, _enron,
            "email bag-of-words: sparse non-negative counts",
        ),
    ]
}

#: Datasets used in the paper's kNN experiments (Fig. 13a).
KNN_DATASETS = ("ImageNet", "MSD", "Trevi", "GIST")
#: Datasets used in the paper's k-means experiments (Table 7).
KMEANS_DATASETS = ("Year", "Notre", "NUS-WIDE", "Enron")


def dataset_names() -> list[str]:
    """All catalogued dataset names."""
    return list(PROFILES)


def profile(name: str) -> DatasetProfile:
    """Look up a Table 6 profile by name."""
    try:
        return PROFILES[name]
    except KeyError:
        raise DatasetError(
            f"unknown dataset {name!r}; known: {sorted(PROFILES)}"
        ) from None


def make_dataset(
    name: str, n: int | None = None, seed: int = 0
) -> np.ndarray:
    """Generate the scaled synthetic stand-in for a Table 6 dataset.

    Parameters
    ----------
    name:
        A Table 6 dataset name (case-sensitive).
    n:
        Override the scaled cardinality.
    seed:
        RNG seed (same seed = same dataset).
    """
    prof = profile(name)
    size = n if n is not None else prof.default_n
    if size <= 0:
        raise DatasetError("n must be positive")
    return prof.generator(size, prof.dims, seed)


def make_queries(
    name: str,
    data: np.ndarray,
    n_queries: int = 10,
    seed: int = 1,
) -> np.ndarray:
    """A query workload matched to a dataset's character."""
    noise = 0.02 if profile(name).name != "Enron" else 0.01
    return synthetic.queries_from(data, n_queries, noise=noise, seed=seed)
