"""Persistence of offline-stage artifacts.

The paper's offline stage is expensive on purpose — quantize, compute
``Phi``, program crossbars — so a production deployment computes it once
and reloads it at boot. This module saves/loads the host-side artifacts
(the crossbar contents are re-programmed from the saved integers, which
charges programming time exactly like a real boot would):

* :func:`save_quantized` / :func:`load_quantized` — the quantized
  dataset, the quantizer configuration, and arbitrary named side arrays
  (``Phi`` values, norms, segment summaries) in one ``.npz`` file.

The format is plain NumPy ``savez_compressed``: no pickling, no code
execution on load.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.errors import DatasetError
from repro.similarity.quantization import Quantizer

#: Format marker written into every artifact file.
FORMAT_VERSION = 1


def save_quantized(
    path: str | Path,
    quantizer: Quantizer,
    integers: np.ndarray,
    side_arrays: dict[str, np.ndarray] | None = None,
) -> Path:
    """Write quantized data + quantizer state to ``path`` (.npz).

    Parameters
    ----------
    path:
        Destination file; ``.npz`` is appended if missing.
    quantizer:
        A fitted quantizer (its alpha and normalisation ranges are
        stored so online queries quantize identically after reload).
    integers:
        The quantized integer matrix (what gets programmed).
    side_arrays:
        Extra named arrays (``Phi`` etc.). Names must not collide with
        the reserved keys.
    """
    if not quantizer.is_fitted:
        raise DatasetError("only fitted quantizers can be saved")
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    payload: dict[str, np.ndarray] = {
        "__format__": np.array([FORMAT_VERSION]),
        "__alpha__": np.array([quantizer.alpha]),
        "__assume_normalized__": np.array(
            [1 if quantizer.assume_normalized else 0]
        ),
        "__min__": quantizer._min,
        "__range__": quantizer._range,
        "integers": np.asarray(integers),
    }
    for name, array in (side_arrays or {}).items():
        if name in payload:
            raise DatasetError(f"side array name {name!r} is reserved")
        payload[name] = np.asarray(array)
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(path, **payload)
    return path


def load_quantized(
    path: str | Path,
) -> tuple[Quantizer, np.ndarray, dict[str, np.ndarray]]:
    """Load a :func:`save_quantized` artifact.

    Returns
    -------
    (quantizer, integers, side_arrays)
        The quantizer is fitted (ranges restored); ``side_arrays`` holds
        every non-reserved array by name.
    """
    path = Path(path)
    if not path.exists():
        raise DatasetError(f"no artifact at {path}")
    with np.load(path) as bundle:
        try:
            version = int(bundle["__format__"][0])
        except KeyError:
            raise DatasetError(f"{path} is not a repro artifact") from None
        if version != FORMAT_VERSION:
            raise DatasetError(
                f"artifact format {version} unsupported "
                f"(expected {FORMAT_VERSION})"
            )
        quantizer = Quantizer(
            alpha=float(bundle["__alpha__"][0]),
            assume_normalized=bool(bundle["__assume_normalized__"][0]),
        )
        quantizer._min = bundle["__min__"]
        quantizer._range = bundle["__range__"]
        integers = bundle["integers"]
        reserved = {
            "__format__",
            "__alpha__",
            "__assume_normalized__",
            "__min__",
            "__range__",
            "integers",
        }
        side = {
            name: bundle[name]
            for name in bundle.files
            if name not in reserved
        }
    return quantizer, integers, side
