"""Crossbar substrate registration: capabilities + factory.

The device itself is :class:`~repro.hardware.pim_array.PIMArray`; this
module only adds the planner-facing capability descriptor (pricing via
the analytic timing/energy models the array already charges) and the
registry factory.
"""

from __future__ import annotations

from repro.hardware.config import HardwareConfig, pim_platform
from repro.hardware.energy import EnergyModel
from repro.hardware.mapper import plan_layout, reserve_spares, total_crossbars
from repro.hardware.pim_array import PIMArray
from repro.hardware.timing import batch_wave_timing, programming_time_ns
from repro.substrate.protocol import SubstrateCapabilities


class CrossbarCapabilities(SubstrateCapabilities):
    """Cost model of the analog ReRAM crossbar array.

    Latency is nearly flat in ``n_vectors`` (every programmed column
    answers in the same bit-sliced wave; only the result drain grows),
    programming pays ReRAM SET/RESET per row, and energy is dominated
    by ADC conversions — the exact models the live array charges.
    """

    name = "crossbar"
    unit_name = "crossbar"
    memory_device = "reram"
    supports_cell_simulation = True

    def __init__(
        self, hardware: HardwareConfig | None = None, energy=None
    ) -> None:
        super().__init__(hardware if hardware is not None else pim_platform())
        if self.hardware.pim is None:
            from repro.errors import ConfigurationError

            raise ConfigurationError(
                "crossbar capabilities need a platform with a PIM array"
            )
        self.config = self.hardware.pim
        self.energy = energy if energy is not None else EnergyModel()

    def units_needed(self, n_vectors: int, dims: int) -> int:
        return total_crossbars(n_vectors, dims, self.config)

    def fits_fresh(
        self, n_vectors: int, dims: int, spare_units: int = 0
    ) -> bool:
        needed = self.units_needed(n_vectors, dims)
        return needed <= reserve_spares(self.config, spare_units)

    def _layout(self, n_vectors: int, dims: int):
        return plan_layout(n_vectors, dims, self.config)

    def predict_query_ns(
        self,
        n_vectors: int,
        dims: int,
        n_queries: int = 1,
        input_bits: int | None = None,
    ) -> float:
        layout = self._layout(n_vectors, dims)
        return batch_wave_timing(
            layout, self.config, self.hardware, n_queries,
            input_bits=input_bits,
        ).total_ns

    def predict_program_ns(self, n_vectors: int, dims: int) -> float:
        return programming_time_ns(self._layout(n_vectors, dims), self.config)

    def predict_query_energy_j(
        self,
        n_vectors: int,
        dims: int,
        n_queries: int = 1,
        input_bits: int | None = None,
    ) -> float:
        layout = self._layout(n_vectors, dims)
        return self.energy.pim_energy_j(
            layout, self.config, n_queries, input_bits=input_bits
        )

    def predict_program_energy_j(self, n_vectors: int, dims: int) -> float:
        return self.energy.programming_energy_j(self._layout(n_vectors, dims))

    @property
    def endurance(self) -> float:
        return self.config.crossbar.endurance


def build_crossbar(
    hardware: HardwareConfig | None = None,
    spare_units: int = 0,
    reference: bool = False,
    simulate_cells: bool = False,
) -> PIMArray:
    """Registry factory for the ``"crossbar"`` backend.

    ``reference=True`` implies the cell-level path (the loop oracle is
    defined on it), matching the convention the other backends follow:
    the flag alone selects the substrate's slow exact oracle.
    """
    return PIMArray(
        hardware=hardware,
        simulate_cells=simulate_cells or reference,
        spare_crossbars=spare_units,
        reference=reference,
    )
